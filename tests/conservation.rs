//! Cross-crate conservation and sanity invariants.
//!
//! Randomized-scenario tests: whatever the topology, workload, and
//! timing, packets must be conserved, buffers must respect their
//! capacity, and the transport must stay reliable. Scenarios are drawn
//! from the engine's own deterministic [`SimRng`] with a fixed seed per
//! case, so every failure reproduces by case number without any external
//! test-framework dependency.

use std::collections::HashMap;
use tahoe_dynamics::engine::{SimDuration, SimRng};
use tahoe_dynamics::experiments::{ConnSpec, Scenario};
use tahoe_dynamics::net::{PacketId, TraceEvent};
use tahoe_dynamics::tcp::{ReceiverConfig, SenderConfig};

const CASES: u64 = 24;

/// Build a randomized small scenario.
fn scenario(rng: &mut SimRng) -> Scenario {
    let seed = rng.next_range(1, 999);
    let tau_ms = rng.next_range(1, 1999);
    let buffer = if rng.chance(0.5) {
        None
    } else {
        Some(rng.next_range(2, 39) as u32)
    };
    let nf = rng.next_range(1, 3) as usize;
    let nr = rng.next_below(4) as usize;
    let dur = rng.next_range(20, 89);
    let spec = if rng.chance(0.5) {
        ConnSpec::fixed(5 + seed % 20)
    } else {
        ConnSpec::paper()
    };
    let mut sc = Scenario::paper(SimDuration::from_millis(tau_ms), buffer)
        .with_fwd(nf, spec)
        .with_rev(nr, spec);
    sc.seed = seed;
    sc.duration = SimDuration::from_secs(dur);
    sc.warmup = SimDuration::from_secs(dur / 4);
    sc
}

/// Every packet ever sent is eventually delivered, dropped, or still
/// in flight — nothing is duplicated or vanishes.
#[test]
fn packets_are_conserved() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x00C0_95E8 + case);
        let run = scenario(&mut rng).run();
        let mut state: HashMap<PacketId, &'static str> = HashMap::new();
        for r in run.world.trace().records() {
            match r.ev {
                TraceEvent::Send { pkt, .. } => {
                    let prev = state.insert(pkt.id, "inflight");
                    assert!(
                        prev.is_none(),
                        "case {case}: packet id reused: {:?}",
                        pkt.id
                    );
                }
                TraceEvent::Drop { pkt, .. } => {
                    let prev = state.insert(pkt.id, "dropped");
                    assert_eq!(
                        prev,
                        Some("inflight"),
                        "case {case}: drop of non-inflight packet"
                    );
                }
                TraceEvent::Deliver { pkt, .. } => {
                    let prev = state.insert(pkt.id, "delivered");
                    assert_eq!(
                        prev,
                        Some("inflight"),
                        "case {case}: delivery of non-inflight packet"
                    );
                }
                _ => {}
            }
        }
        // Every state is one of the three; counts add up by construction.
        let delivered = state.values().filter(|&&s| s == "delivered").count();
        let total = state.len();
        assert!(total > 0, "case {case}: nothing was ever sent");
        assert!(delivered > 0, "case {case}: nothing was ever delivered");
    }
}

/// Buffer occupancy never exceeds the configured capacity.
#[test]
fn capacity_is_respected() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x0CA9_AC17 + case);
        let sc = scenario(&mut rng);
        let cap = sc.buffer;
        let run = sc.run();
        if let Some(cap) = cap {
            for r in run.world.trace().records() {
                if let TraceEvent::Enqueue { ch, qlen_after, .. } = r.ev {
                    if ch == run.bottleneck_12 || ch == run.bottleneck_21 {
                        assert!(
                            qlen_after <= cap,
                            "case {case}: occupancy {qlen_after} > capacity {cap}"
                        );
                    }
                }
            }
        }
    }
}

/// The receiver's cumulative point equals its delivered count:
/// delivery is contiguous and exactly-once (transport reliability).
#[test]
fn transport_is_reliable() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x8E11_A81E + case);
        let run = scenario(&mut rng).run();
        for conn in run.conns() {
            let rx = run.receiver(conn);
            assert_eq!(rx.cumulative_ack(), rx.stats().delivered, "case {case}");
        }
    }
}

/// Flight size is window-bounded — except transiently after a loss,
/// where Tahoe collapses the window to 1 while the old flight is
/// still draining (BSD restores `snd_nxt` after fast retransmit).
#[test]
fn flight_never_exceeds_window() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x00F1_19A7 + case);
        let run = scenario(&mut rng).run();
        for conn in run.conns() {
            let tx = run.sender(conn);
            let st = tx.stats();
            let in_recovery = st.fast_retransmits + st.timeouts > 0;
            assert!(
                tx.outstanding() <= tx.window() || in_recovery,
                "case {case}, conn {:?}: {} in flight > window {} with no loss ever detected",
                conn,
                tx.outstanding(),
                tx.window()
            );
            // Even in recovery the flight is bounded by the configured
            // maximum window.
            assert!(tx.outstanding() <= 1000, "case {case}");
        }
    }
}

/// Utilization is a fraction.
#[test]
fn utilization_is_a_fraction() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x0711_17A7 + case);
        let run = scenario(&mut rng).run();
        for u in [run.util12(), run.util21()] {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&u),
                "case {case}: utilization {u}"
            );
        }
    }
}

/// Identical scenarios replay bit-identically.
#[test]
fn runs_are_deterministic() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xDE7E_8311 + case);
        let sc = scenario(&mut rng);
        let a = sc.run();
        let b = sc.run();
        assert_eq!(
            a.world.events_dispatched(),
            b.world.events_dispatched(),
            "case {case}"
        );
        assert_eq!(a.world.trace().len(), b.world.trace().len(), "case {case}");
        // Spot-check the full event streams match, not just the lengths.
        for (x, y) in a
            .world
            .trace()
            .records()
            .iter()
            .zip(b.world.trace().records())
        {
            assert_eq!(x, y, "case {case}");
        }
    }
}

/// Historical shrunken failure (from the retired property-test corpus):
/// three forward paper connections against one reverse over a 0.82 s
/// path with a 29-packet buffer. Re-runs the full invariant battery.
#[test]
fn regression_three_against_one_long_path() {
    let mut sc = Scenario::paper(SimDuration::from_millis(820), Some(29))
        .with_fwd(3, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    sc.seed = 1;
    sc.duration = SimDuration::from_secs(20);
    sc.warmup = SimDuration::from_secs(5);
    let run = sc.run();
    let mut state: HashMap<PacketId, u8> = HashMap::new();
    for r in run.world.trace().records() {
        match r.ev {
            TraceEvent::Send { pkt, .. } => {
                assert!(state.insert(pkt.id, 0).is_none());
            }
            TraceEvent::Drop { pkt, .. } => {
                assert_eq!(state.insert(pkt.id, 1), Some(0));
            }
            TraceEvent::Deliver { pkt, .. } => {
                assert_eq!(state.insert(pkt.id, 2), Some(0));
            }
            _ => {}
        }
    }
    for conn in run.conns() {
        let rx = run.receiver(conn);
        assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
        let tx = run.sender(conn);
        let st = tx.stats();
        assert!(
            tx.outstanding() <= tx.window() || st.fast_retransmits + st.timeouts > 0,
            "conn {conn:?}"
        );
    }
}

/// Sequence numbers delivered in order per connection (one adversarial
/// deterministic case with heavy loss).
#[test]
fn in_order_delivery_under_heavy_congestion() {
    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(3))
        .with_fwd(2, ConnSpec::paper())
        .with_rev(2, ConnSpec::paper());
    sc.duration = SimDuration::from_secs(200);
    sc.warmup = SimDuration::from_secs(40);
    let run = sc.run();
    let drops = run.drops();
    assert!(!drops.is_empty(), "a 3-packet buffer must drop");
    for conn in run.conns() {
        let rx = run.receiver(conn);
        assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
        assert!(rx.stats().delivered > 100, "conn {conn:?} starved");
    }
}

/// Zero-size ACKs and fixed windows: the conservation laws hold in the
/// idealized conjecture configuration too.
#[test]
fn conservation_with_zero_size_acks() {
    let spec = ConnSpec {
        sender: SenderConfig::fixed_window(20),
        receiver: ReceiverConfig::zero_ack(),
    };
    let mut sc = Scenario::paper(SimDuration::from_secs(1), None)
        .with_fwd(1, spec)
        .with_rev(1, spec);
    sc.duration = SimDuration::from_secs(100);
    sc.warmup = SimDuration::from_secs(20);
    let run = sc.run();
    assert!(run.drops().is_empty(), "infinite buffers cannot drop");
    for conn in run.conns() {
        let rx = run.receiver(conn);
        assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
    }
}
