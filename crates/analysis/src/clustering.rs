//! Packet-clustering metrics (§3.1, §4.1, §5).
//!
//! In the paper's configurations, "all of the packets from a single
//! connection are clustered together; the entire window's worth of packets
//! passes through the switch consecutively, uninterrupted by packets from
//! another connection." Clustering is the precondition for
//! ACK-compression, and it degrades (to *partial* clustering) with many
//! connections per direction or with delayed ACKs.
//!
//! We quantify it from the departure sequence at a bottleneck channel:
//!
//! * [`clustering_coefficient`] — probability that the next departure
//!   belongs to the same connection as the current one. With `k`
//!   connections of window `w` fully clustered this is `≈ (w−1)/w`; with
//!   fully interleaved traffic it approaches `1/k`.
//! * [`cluster_lengths`] — the run lengths themselves, whose mean tracks
//!   the window sizes when clustering is complete (the paper uses cluster
//!   size to explain the narrow plateaus of Figure 3 versus Figure 4).

use crate::extract::Departure;
use td_net::ConnId;

/// Probability that consecutive departures belong to the same connection.
/// `None` with fewer than two departures.
pub fn clustering_coefficient(departures: &[Departure]) -> Option<f64> {
    if departures.len() < 2 {
        return None;
    }
    let same = departures
        .windows(2)
        .filter(|w| w[0].pkt.conn == w[1].pkt.conn)
        .count();
    Some(same as f64 / (departures.len() - 1) as f64)
}

/// Maximal runs of same-connection departures, as `(conn, length)` in
/// order of occurrence.
pub fn cluster_lengths(departures: &[Departure]) -> Vec<(ConnId, u64)> {
    let mut runs: Vec<(ConnId, u64)> = Vec::new();
    for d in departures {
        match runs.last_mut() {
            Some((c, n)) if *c == d.pkt.conn => *n += 1,
            _ => runs.push((d.pkt.conn, 1)),
        }
    }
    runs
}

/// Mean cluster length. `None` for an empty departure sequence.
pub fn mean_cluster_length(departures: &[Departure]) -> Option<f64> {
    let runs = cluster_lengths(departures);
    if runs.is_empty() {
        return None;
    }
    let total: u64 = runs.iter().map(|(_, n)| n).sum();
    Some(total as f64 / runs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_engine::SimTime;
    use td_net::{NodeId, Packet, PacketId, PacketKind};

    fn dep(i: u64, conn: u32) -> Departure {
        Departure {
            t: SimTime::from_millis(i * 80),
            pkt: Packet {
                id: PacketId(i),
                conn: ConnId(conn),
                kind: PacketKind::Data,
                seq: i,
                size: 500,
                src: NodeId(0),
                dst: NodeId(1),
                sent_at: SimTime::ZERO,
                retx: false,
                ce: false,
                ack: 0,
            },
        }
    }

    fn seq(conns: &[u32]) -> Vec<Departure> {
        conns
            .iter()
            .enumerate()
            .map(|(i, &c)| dep(i as u64, c))
            .collect()
    }

    #[test]
    fn fully_clustered() {
        let d = seq(&[1, 1, 1, 1, 2, 2, 2, 2]);
        // 7 adjacent pairs, 6 same-conn.
        assert_eq!(clustering_coefficient(&d), Some(6.0 / 7.0));
        assert_eq!(cluster_lengths(&d), vec![(ConnId(1), 4), (ConnId(2), 4)]);
        assert_eq!(mean_cluster_length(&d), Some(4.0));
    }

    #[test]
    fn fully_interleaved() {
        let d = seq(&[1, 2, 1, 2, 1, 2]);
        assert_eq!(clustering_coefficient(&d), Some(0.0));
        assert_eq!(mean_cluster_length(&d), Some(1.0));
    }

    #[test]
    fn partial_clustering() {
        let d = seq(&[1, 1, 2, 2, 1, 2]);
        assert_eq!(clustering_coefficient(&d), Some(2.0 / 5.0));
        assert_eq!(cluster_lengths(&d).len(), 4);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(clustering_coefficient(&[]), None);
        assert_eq!(clustering_coefficient(&seq(&[1])), None);
        assert_eq!(mean_cluster_length(&[]), None);
        assert!(cluster_lengths(&[]).is_empty());
    }

    #[test]
    fn single_connection_is_one_big_cluster() {
        let d = seq(&[7; 20]);
        assert_eq!(clustering_coefficient(&d), Some(1.0));
        assert_eq!(cluster_lengths(&d), vec![(ConnId(7), 20)]);
    }
}
