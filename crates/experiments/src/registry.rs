//! Experiment registry: every reproduced figure/table, addressable by id.

use crate::report::Report;

/// Run profile: how much simulated time to give each experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Short runs for CI / quick checks (minutes of simulated time).
    Quick,
    /// Paper-scale runs (the durations behind EXPERIMENTS.md).
    Full,
}

/// One registered experiment.
pub struct Entry {
    /// Id used on the `td-repro` command line (`fig2`, `abl-pacing`, …).
    pub id: &'static str,
    /// One-line description.
    pub about: &'static str,
    runner: fn(u64, Profile) -> Report,
}

impl Entry {
    /// Build an ad-hoc entry outside the registry. Used by harness tests
    /// and benches that need a controlled runner (e.g. one that panics on
    /// purpose to exercise the pool's fault isolation) without touching
    /// the presentation-order registry below.
    pub fn new(id: &'static str, about: &'static str, runner: fn(u64, Profile) -> Report) -> Self {
        Entry { id, about, runner }
    }

    /// Execute with the given seed and profile.
    pub fn run(&self, seed: u64, profile: Profile) -> Report {
        (self.runner)(seed, profile)
    }
}

fn secs(profile: Profile, quick: u64, full: u64) -> u64 {
    if let Some(s) = crate::sim_secs_override() {
        return s;
    }
    match profile {
        Profile::Quick => quick,
        Profile::Full => full,
    }
}

/// Config-override keys `td-serve` accepts, with validation. Every key
/// here must be deterministic (same overrides + seed → byte-identical
/// report) and safe to apply per-thread; process-global settings like
/// `--shards` are deliberately excluded because concurrent requests
/// would race on them.
pub const OVERRIDE_KEYS: &[&str] = &["sim_secs"];

/// Validate one config override. `Ok` means [`config_hash`] may include
/// it and a worker may apply it.
pub fn validate_override(key: &str, value: u64) -> Result<(), String> {
    match key {
        "sim_secs" => {
            if (1..=100_000).contains(&value) {
                Ok(())
            } else {
                Err(format!("sim_secs must be in 1..=100000, got {value}"))
            }
        }
        other => Err(format!(
            "unknown override key {other:?} (known: {})",
            OVERRIDE_KEYS.join(", ")
        )),
    }
}

/// Canonical hash of a request's configuration: experiment id, profile,
/// and the sorted override list. `td-serve` content-addresses its store
/// by `(config_hash, seed)`, so two requests that would run the same
/// simulation — regardless of override order on the wire — must hash
/// identically, and any semantic change to what a config means must
/// bump the version tag baked into the preimage.
pub fn config_hash(id: &str, profile: Profile, overrides: &[(String, u64)]) -> u64 {
    let mut bytes = Vec::with_capacity(64);
    bytes.extend_from_slice(b"td-serve-config-v1\0");
    bytes.extend_from_slice(id.as_bytes());
    bytes.push(0);
    bytes.push(match profile {
        Profile::Quick => 0,
        Profile::Full => 1,
    });
    let mut sorted: Vec<&(String, u64)> = overrides.iter().collect();
    sorted.sort();
    for (k, v) in sorted {
        bytes.push(0);
        bytes.extend_from_slice(k.as_bytes());
        bytes.push(b'=');
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    crate::journal::fnv1a(&bytes)
}

/// All experiments, in presentation order.
pub fn registry() -> Vec<Entry> {
    vec![
        Entry {
            id: "fig2",
            about: "One-way baseline: 3 connections, tau = 1 s (Fig. 2)",
            runner: |seed, p| crate::fig2::report(seed, secs(p, 600, 2000)),
        },
        Entry {
            id: "fig3",
            about: "Ten connections two-way, rapid queue fluctuations (Fig. 3)",
            runner: |seed, p| crate::fig3::report(seed, secs(p, 400, 1000)),
        },
        Entry {
            id: "fig45",
            about: "1+1 two-way, small pipe: ACK-compression + out-of-phase (Figs. 4-5)",
            runner: |seed, p| crate::fig45::report(seed, secs(p, 500, 1000)),
        },
        Entry {
            id: "fig67",
            about: "1+1 two-way, large pipe: in-phase mode (Figs. 6-7)",
            runner: |seed, p| crate::fig67::report(seed, secs(p, 800, 2000)),
        },
        Entry {
            id: "fig8",
            about: "Fixed windows 30/25, small pipe (Fig. 8)",
            runner: |seed, p| crate::fig89::report_fig8(seed, secs(p, 120, 400)),
        },
        Entry {
            id: "fig9",
            about: "Fixed windows 30/25, large pipe (Fig. 9)",
            runner: |seed, p| crate::fig89::report_fig9(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "oneway-util",
            about: "One-way utilization vs pipe and buffer (in-text, Sec. 3.1)",
            runner: |seed, p| crate::oneway_util::report(seed, secs(p, 400, 800)),
        },
        Entry {
            id: "conjecture",
            about: "Zero-length-ACK fixed-window conjecture sweep (Sec. 4.3.3)",
            runner: |seed, p| crate::conjecture::report(seed, secs(p, 200, 500)),
        },
        Entry {
            id: "delayed-ack",
            about: "Delayed-ACK option fragments clusters (Sec. 5)",
            runner: |seed, p| crate::delayed_ack::report(seed, secs(p, 400, 1000)),
        },
        Entry {
            id: "multihop",
            about: "Four switches, 50 connections (Sec. 5 / [19])",
            runner: |seed, p| crate::multihop::report(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "scale",
            about: "Cluster chain of Sec. 5 units, 10k+ connections full (sharded)",
            runner: crate::scale::report,
        },
        Entry {
            id: "decbit",
            about: "DECbit AIMD under two-way traffic (Sec. 5 / OSI testbed)",
            runner: |seed, p| crate::decbit::report(seed, secs(p, 400, 1000)),
        },
        Entry {
            id: "piggyback",
            about: "Duplex connection with piggybacked ACKs (Sec. 2.1 third trigger)",
            runner: |seed, p| crate::piggyback::report(seed, secs(p, 400, 1000)),
        },
        Entry {
            id: "modes",
            about: "Synchronization-mode census across start phases (Sec. 4.3.3)",
            runner: |seed, p| crate::modes::report(seed, secs(p, 300, 600)),
        },
        Entry {
            id: "rtt-spread",
            about: "Unequal RTTs break complete clustering (Sec. 5)",
            runner: |seed, p| crate::rtt_spread::report(seed, secs(p, 600, 1000)),
        },
        Entry {
            id: "crosstraffic",
            about: "Poisson cross-traffic vs clustering (Sec. 6 open question)",
            runner: |seed, p| crate::crosstraffic::report(seed, secs(p, 400, 800)),
        },
        Entry {
            id: "short-flows",
            about: "FCT of 100-packet transfers under the fig45 dynamics",
            runner: |seed, p| crate::short_flows::report(seed, secs(p, 8, 20) as usize),
        },
        Entry {
            id: "reno",
            about: "TCP Reno under two-way traffic: structural vs Tahoe-specific findings",
            runner: |seed, p| crate::reno::report(seed, secs(p, 400, 800)),
        },
        Entry {
            id: "abl-pacing",
            about: "Ablation: paced vs nonpaced sender (Sec. 1/6 conjecture)",
            runner: |seed, p| crate::ablations::report_pacing(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "abl-increment",
            about: "Ablation: modified vs original avoidance increment (Sec. 2.1)",
            runner: |seed, p| crate::ablations::report_increment(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "abl-red",
            about: "Ablation: RED breaks drop-tail's loss synchronization",
            runner: |seed, p| crate::ablations::report_red(seed, secs(p, 600, 1500)),
        },
        Entry {
            id: "abl-discipline",
            about: "Ablation: drop-tail vs Random Drop vs Fair Queueing",
            runner: |seed, p| crate::ablations::report_discipline(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "chaos",
            about: "Robustness drill: recovery from scheduled outages and burst loss",
            runner: |seed, p| crate::chaos::report(seed, secs(p, 120, 400)),
        },
    ]
}

/// Entries addressable with `--only` but excluded from `--all`:
/// resource-budget and robustness drills rather than paper claims.
pub fn hidden() -> Vec<Entry> {
    vec![
        Entry {
            id: "scale100k",
            about: "100k-connection rung: 640-cluster chain, trace off, pinned RSS budget",
            runner: crate::scale::report_100k,
        },
        Entry {
            id: "scale1m",
            about: "1M-connection rung: 6400-cluster chain, compressed routes, pinned RSS budget",
            runner: crate::scale::report_1m,
        },
        Entry {
            id: "mc_fig45",
            about: "Bounded model checking: fault placements across one fig45 congestion epoch",
            runner: crate::mc::report,
        },
        Entry {
            id: "faulty",
            about: "Serve-harness drill: panics the first TD_FAULTY_PANICS calls, then succeeds",
            runner: faulty_runner,
        },
    ]
}

/// A deliberately unreliable runner for exercising `td-serve`'s retry,
/// backoff, and circuit-breaker paths end to end: each call panics
/// until the process-wide call counter reaches `TD_FAULTY_PANICS`
/// (default 0 — never panics). The success report is a pure function of
/// `(seed, profile)` — it must not mention the call count, so a cached
/// response and a post-retry recompute stay byte-identical.
fn faulty_runner(seed: u64, profile: Profile) -> Report {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CALLS: AtomicU64 = AtomicU64::new(0);
    let limit: u64 = std::env::var("TD_FAULTY_PANICS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let call = CALLS.fetch_add(1, Ordering::SeqCst);
    if call < limit {
        panic!("faulty: induced failure {} of {limit}", call + 1);
    }
    let mut rep = Report::new(
        "faulty",
        "Deliberate-failure drill",
        &format!("seed={seed} profile={profile:?}"),
    );
    rep.check("survived", "true", "true".into(), true);
    rep.metric("seed", seed as f64);
    rep
}

/// Look up one experiment by id, including hidden entries.
pub fn find(id: &str) -> Option<Entry> {
    registry().into_iter().chain(hidden()).find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<_> = registry().iter().map(|e| e.id).collect();
        ids.extend(hidden().iter().map(|e| e.id));
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 21);
    }

    #[test]
    fn find_works() {
        assert!(find("fig2").is_some());
        assert!(find("nonsense").is_none());
        // Hidden entries resolve by id but stay out of the listing.
        assert!(find("scale100k").is_some());
        assert!(find("scale1m").is_some());
        assert!(find("mc_fig45").is_some());
        assert!(registry()
            .iter()
            .all(|e| e.id != "scale100k" && e.id != "scale1m" && e.id != "mc_fig45"));
    }

    #[test]
    fn quick_profile_runs_an_entry() {
        let rep = find("fig8").unwrap().run(1, Profile::Quick);
        assert_eq!(rep.id, "fig8");
        assert!(!rep.rows.is_empty());
    }

    #[test]
    fn config_hash_is_order_insensitive_and_version_tagged() {
        let a = config_hash("fig8", Profile::Quick, &[]);
        let b = config_hash("fig8", Profile::Full, &[]);
        let c = config_hash("fig9", Profile::Quick, &[]);
        assert_ne!(a, b, "profile is part of the config");
        assert_ne!(a, c, "id is part of the config");

        let ov1 = vec![("sim_secs".to_owned(), 60)];
        let d = config_hash("fig8", Profile::Quick, &ov1);
        assert_ne!(a, d, "overrides are part of the config");
        // Same overrides in a different on-the-wire order hash the same.
        let two_a = vec![("a".to_owned(), 1), ("b".to_owned(), 2)];
        let two_b = vec![("b".to_owned(), 2), ("a".to_owned(), 1)];
        assert_eq!(
            config_hash("fig8", Profile::Quick, &two_a),
            config_hash("fig8", Profile::Quick, &two_b),
        );
    }

    #[test]
    fn override_validation_gates_the_config_surface() {
        assert!(validate_override("sim_secs", 1).is_ok());
        assert!(validate_override("sim_secs", 100_000).is_ok());
        assert!(validate_override("sim_secs", 0).is_err());
        assert!(validate_override("sim_secs", 100_001).is_err());
        let err = validate_override("shards", 4).unwrap_err();
        assert!(err.contains("unknown override key"), "{err}");
        for key in OVERRIDE_KEYS {
            assert!(validate_override(key, 10).is_ok());
        }
    }

    #[test]
    fn sim_secs_override_caps_the_standard_mapping() {
        assert_eq!(secs(Profile::Quick, 600, 2000), 600);
        assert_eq!(secs(Profile::Full, 600, 2000), 2000);
        {
            let _g = crate::override_sim_secs(42);
            assert_eq!(secs(Profile::Quick, 600, 2000), 42);
            assert_eq!(secs(Profile::Full, 600, 2000), 42);
        }
        assert_eq!(secs(Profile::Quick, 600, 2000), 600, "guard restores");
    }

    #[test]
    fn faulty_entry_is_hidden_and_benign_by_default() {
        // TD_FAULTY_PANICS unset: the drill never panics and its report
        // depends only on (seed, profile).
        let e = find("faulty").expect("hidden entry resolves");
        let a = e.run(7, Profile::Quick);
        let b = e.run(7, Profile::Quick);
        assert_eq!(a.config, b.config);
        assert!(a.all_ok());
        assert!(registry().iter().all(|e| e.id != "faulty"));
    }
}
