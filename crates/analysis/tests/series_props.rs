//! Property tests for the step-function time series.

use proptest::prelude::*;
use td_analysis::TimeSeries;
use td_engine::SimTime;

/// Sorted (time, value) change points.
fn points() -> impl Strategy<Value = Vec<(SimTime, f64)>> {
    proptest::collection::vec((0u64..1_000_000, -1000.0..1000.0f64), 1..80).prop_map(|mut v| {
        v.sort_by_key(|p| p.0);
        v.into_iter()
            .map(|(t, x)| (SimTime::from_micros(t), x))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The time-weighted mean always lies within [min, max] of the window.
    #[test]
    fn mean_bounded_by_extrema(pts in points(), a in 0u64..1_000_000, b in 1u64..1_000_000) {
        let ts = TimeSeries::from_points(pts);
        let (t0, t1) = (
            SimTime::from_micros(a.min(a + b)),
            SimTime::from_micros(a + b),
        );
        if let Some(m) = ts.mean_in(t0, t1) {
            // The mean may also involve the first value extended backwards,
            // so bound by the global extrema as well as the window's.
            let lo = ts
                .min_in(t0, t1)
                .unwrap_or(f64::INFINITY)
                .min(ts.points()[0].1);
            let hi = ts
                .max_in(t0, t1)
                .unwrap_or(f64::NEG_INFINITY)
                .max(ts.points()[0].1);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "mean {m} outside [{lo}, {hi}]");
        }
    }

    /// value_at agrees with a linear scan of the change points.
    #[test]
    fn value_at_matches_scan(pts in points(), probe in 0u64..1_200_000) {
        let ts = TimeSeries::from_points(pts.clone());
        let t = SimTime::from_micros(probe);
        let expected = pts.iter().rev().find(|&&(pt, _)| pt <= t).map(|&(_, v)| v);
        prop_assert_eq!(ts.value_at(t), expected);
    }

    /// Resampling returns exactly n values, all of which occur in the
    /// series (or are the first value).
    #[test]
    fn resample_values_come_from_series(pts in points(), n in 1usize..50) {
        let ts = TimeSeries::from_points(pts.clone());
        let t1 = pts.last().unwrap().0;
        let out = ts.resample(SimTime::ZERO, t1, n);
        prop_assert_eq!(out.len(), n);
        for v in out {
            prop_assert!(pts.iter().any(|&(_, x)| x == v), "resampled {v} not a point value");
        }
    }

    /// max_in ≥ min_in whenever both exist, and both are attained values.
    #[test]
    fn extrema_consistent(pts in points(), a in 0u64..1_000_000, b in 1u64..1_000_000) {
        let ts = TimeSeries::from_points(pts.clone());
        let (t0, t1) = (SimTime::from_micros(a), SimTime::from_micros(a + b));
        match (ts.min_in(t0, t1), ts.max_in(t0, t1)) {
            (Some(lo), Some(hi)) => {
                prop_assert!(lo <= hi);
                prop_assert!(pts.iter().any(|&(_, v)| v == lo));
                prop_assert!(pts.iter().any(|&(_, v)| v == hi));
            }
            (None, None) => {}
            other => return Err(TestCaseError::fail(format!("mismatched extrema {other:?}"))),
        }
    }
}
