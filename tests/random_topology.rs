//! Conservation and reachability on randomized topologies.
//!
//! The paper's configurations are dumbbells and chains; the substrate
//! must be correct on *any* connected graph. Generate random trees of
//! switches with hosts hanging off random switches, wire random TCP
//! connections across them, and assert the global laws.

use proptest::prelude::*;
use std::collections::HashMap;
use tahoe_dynamics::engine::{Rate, SimDuration, SimTime};
use tahoe_dynamics::net::{
    ConnId, DisciplineKind, FaultModel, NodeId, PacketId, TraceEvent, World,
};
use tahoe_dynamics::tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};

#[derive(Debug, Clone)]
struct Topo {
    seed: u64,
    n_switches: usize,
    /// parent[i] for switch i ≥ 1: attaches to switch parent[i] < i
    /// (yields a random tree).
    parents: Vec<usize>,
    /// host i hangs off switches[host_at[i]].
    host_at: Vec<usize>,
    /// connections as (src_host, dst_host) index pairs.
    flows: Vec<(usize, usize)>,
    secs: u64,
}

fn topo() -> impl Strategy<Value = Topo> {
    (2usize..6, 1u64..10_000).prop_flat_map(|(n_switches, seed)| {
        let parents = proptest::collection::vec(0usize..1000, n_switches - 1);
        let hosts = proptest::collection::vec(0usize..n_switches, 2..6);
        (Just(n_switches), Just(seed), parents, hosts, 20u64..50).prop_flat_map(
            |(n_switches, seed, parents, host_at, secs)| {
                let n_hosts = host_at.len();
                let flows = proptest::collection::vec((0usize..n_hosts, 0usize..n_hosts), 1..5);
                (
                    Just(n_switches),
                    Just(seed),
                    Just(parents),
                    Just(host_at),
                    Just(secs),
                    flows,
                )
                    .prop_map(
                        |(n_switches, seed, parents, host_at, secs, flows)| Topo {
                            seed,
                            n_switches,
                            parents: parents
                                .iter()
                                .enumerate()
                                .map(|(i, &p)| p % (i + 1))
                                .collect(),
                            host_at,
                            flows,
                            secs,
                        },
                    )
            },
        )
    })
}

fn build(t: &Topo) -> (World, Vec<(ConnId, tahoe_dynamics::net::EndpointId)>) {
    let mut w = World::new(t.seed);
    let switches: Vec<NodeId> = (0..t.n_switches)
        .map(|i| w.add_switch(&format!("s{i}")))
        .collect();
    let hosts: Vec<NodeId> = t
        .host_at
        .iter()
        .enumerate()
        .map(|(i, _)| w.add_host(&format!("h{i}"), SimDuration::from_micros(100)))
        .collect();
    let link = |w: &mut World, a: NodeId, b: NodeId, slow: bool| {
        let rate = if slow {
            Rate::from_kbps(50)
        } else {
            Rate::from_mbps(10)
        };
        for (x, y) in [(a, b), (b, a)] {
            w.add_channel(
                x,
                y,
                rate,
                SimDuration::from_millis(5),
                Some(15),
                DisciplineKind::DropTail.build(),
                FaultModel::NONE,
            );
        }
    };
    // Tree of switches (slow trunks → congestion happens).
    for (i, &p) in t.parents.iter().enumerate() {
        link(&mut w, switches[i + 1], switches[p], true);
    }
    for (i, &at) in t.host_at.iter().enumerate() {
        link(&mut w, hosts[i], switches[at], false);
    }
    w.compute_routes();

    let mut eps = Vec::new();
    for (k, &(a, b)) in t.flows.iter().enumerate() {
        if a == b {
            continue; // self-flows are meaningless
        }
        let conn = ConnId(k as u32);
        let s = w.attach(
            hosts[a],
            hosts[b],
            conn,
            TcpSender::boxed(SenderConfig::paper()),
        );
        let r = w.attach(
            hosts[b],
            hosts[a],
            conn,
            TcpReceiver::boxed(ReceiverConfig::paper()),
        );
        w.start_at(s, SimTime::from_millis(k as u64 * 113));
        eps.push((conn, r));
    }
    (w, eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_tree_topologies_conserve_and_deliver(t in topo()) {
        let (mut w, receivers) = build(&t);
        if receivers.is_empty() {
            return Ok(()); // all flows were self-flows
        }
        w.run_until(SimTime::from_secs(t.secs));

        // Packet conservation across the whole graph.
        let mut state: HashMap<PacketId, u8> = HashMap::new();
        for r in w.trace().records() {
            match r.ev {
                TraceEvent::Send { pkt, .. } => {
                    prop_assert!(state.insert(pkt.id, 0).is_none());
                }
                TraceEvent::Drop { pkt, .. } => {
                    prop_assert_eq!(state.insert(pkt.id, 1), Some(0));
                }
                TraceEvent::Deliver { pkt, .. } => {
                    prop_assert_eq!(state.insert(pkt.id, 2), Some(0));
                }
                _ => {}
            }
        }

        // Every connection delivered a contiguous stream and made progress.
        for &(conn, rep) in &receivers {
            let rx = w
                .endpoint(rep)
                .unwrap()
                .as_any()
                .downcast_ref::<TcpReceiver>()
                .unwrap();
            prop_assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
            prop_assert!(
                rx.stats().delivered > 0,
                "{conn:?} delivered nothing in {} s on {t:?}",
                t.secs
            );
        }

        // No channel buffer ever exceeded its 15-packet capacity.
        for r in w.trace().records() {
            if let TraceEvent::Enqueue { qlen_after, .. } = r.ev {
                prop_assert!(qlen_after <= 15);
            }
        }
    }
}
