//! `td-repro` — regenerate every figure and table of the paper.
//!
//! ```text
//! td-repro list                     # show available experiment ids
//! td-repro all [--full] [--seed N] [--out DIR]
//! td-repro fig45 [--full] [--seed N] [--out DIR]
//! ```
//!
//! Reports print to stdout (metric rows + ASCII figures). With `--out DIR`
//! the underlying CSV series and a markdown summary are written there.

use std::path::PathBuf;
use std::process::ExitCode;
use td_experiments::registry::{find, registry, Profile};
use td_experiments::Report;

struct Args {
    ids: Vec<String>,
    seed: u64,
    seeds: u64,
    profile: Profile,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut seed = 1;
    let mut seeds = 1;
    let mut profile = Profile::Quick;
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--full" => profile = Profile::Full,
            "--quick" => profile = Profile::Quick,
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--seeds" => {
                let v = argv.next().ok_or("--seeds needs a count")?;
                seeds = v.parse().map_err(|_| format!("bad count: {v}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "-h" | "--help" => {
                ids.push("help".into());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag: {other}"));
            }
            other => ids.push(other.to_owned()),
        }
    }
    Ok(Args {
        ids,
        seed,
        seeds,
        profile,
        out,
    })
}

fn usage() {
    println!("td-repro — reproduce Zhang/Shenker/Clark (SIGCOMM '91)");
    println!();
    println!("usage: td-repro <id|all|list> [--full] [--seed N] [--out DIR]");
    println!();
    println!("experiments:");
    for e in registry() {
        println!("  {:<14} {}", e.id, e.about);
    }
    println!();
    println!("flags:");
    println!("  --full      paper-scale run lengths (default: quick)");
    println!("  --seed N    simulation seed (default 1)");
    println!("  --seeds N   repeat each experiment over N consecutive seeds");
    println!("  --out DIR   also write CSV data and a markdown summary");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    if args.ids.is_empty() || args.ids.iter().any(|i| i == "help") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.ids.iter().any(|i| i == "list") {
        for e in registry() {
            println!("{:<14} {}", e.id, e.about);
        }
        return ExitCode::SUCCESS;
    }

    let entries: Vec<_> = if args.ids.iter().any(|i| i == "all") {
        registry()
    } else {
        let mut picked = Vec::new();
        for id in &args.ids {
            match find(id) {
                Some(e) => picked.push(e),
                None => {
                    eprintln!("error: unknown experiment id: {id} (try `td-repro list`)");
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    let mut reports: Vec<Report> = Vec::new();
    let mut any_failed = false;
    for e in &entries {
        let mut passes = 0;
        for s in 0..args.seeds {
            let seed = args.seed + s;
            eprintln!("running {} (seed {seed}) ...", e.id);
            let rep = e.run(seed, args.profile);
            if args.seeds == 1 || s == 0 {
                println!("{rep}");
            }
            if rep.all_ok() {
                passes += 1;
            } else {
                any_failed = true;
                eprintln!("MISMATCH in {} (seed {seed}): {:?}", rep.id, rep.failures());
            }
            if s == 0 {
                reports.push(rep);
            }
        }
        if args.seeds > 1 {
            eprintln!("{}: {passes}/{} seeds fully in-band", e.id, args.seeds);
        }
    }

    if let Some(dir) = &args.out {
        if let Err(e) = write_outputs(dir, &reports) {
            eprintln!("error writing outputs: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote CSVs and summary to {}", dir.display());
    }

    let ok = reports.iter().filter(|r| r.all_ok()).count();
    eprintln!("{ok}/{} experiments fully in-band", reports.len());
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn write_outputs(dir: &std::path::Path, reports: &[Report]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut summary = String::from("# Reproduction summary\n\n");
    for rep in reports {
        summary.push_str(&format!(
            "## {} — {}\n\n{}\n",
            rep.id, rep.title, rep.config
        ));
        summary.push('\n');
        summary.push_str(&rep.markdown_table());
        summary.push('\n');
        for p in &rep.plots {
            summary.push_str("```\n");
            summary.push_str(p);
            summary.push_str("```\n\n");
        }
        for (name, contents) in &rep.csvs {
            std::fs::write(dir.join(name), contents)?;
        }
        for (name, bytes) in &rep.blobs {
            std::fs::write(dir.join(name), bytes)?;
        }
    }
    std::fs::write(dir.join("SUMMARY.md"), summary)
}
