//! Oscillation-period estimation and fairness.
//!
//! The paper reads its ~34 s window cycle off the plots; we estimate it
//! from data. [`dominant_period`] finds the first significant peak of the
//! autocorrelation of a resampled, mean-removed series — robust to the
//! ACK-compression square waves riding on the cycle. [`jain_fairness`] is
//! the standard throughput-fairness index used to quantify the "extreme
//! unfairness" reported by the OSI-testbed study the paper discusses in
//! §5.

use crate::series::TimeSeries;
use td_engine::SimTime;

/// Autocorrelation of a mean-removed sample at integer lags `0..max_lag`.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = xs.iter().map(|x| x - mean).collect();
    let denom: f64 = centered.iter().map(|x| x * x).sum();
    if denom == 0.0 {
        return vec![1.0; max_lag.min(n)];
    }
    (0..max_lag.min(n))
        .map(|lag| {
            let num: f64 = centered[..n - lag]
                .iter()
                .zip(&centered[lag..])
                .map(|(a, b)| a * b)
                .sum();
            num / denom
        })
        .collect()
}

/// Estimate the dominant oscillation period of a series over `[t0, t1]`.
///
/// The series is resampled onto `samples` points; the period is the lag of
/// the highest autocorrelation peak that (a) follows the first
/// zero-crossing (skipping the trivial lag-0 peak) and (b) exceeds
/// `min_corr`. Returns the period in seconds, or `None` if no credible
/// peak exists (aperiodic or constant series).
pub fn dominant_period(
    ts: &TimeSeries,
    t0: SimTime,
    t1: SimTime,
    samples: usize,
    min_corr: f64,
) -> Option<f64> {
    if t1 <= t0 {
        return None;
    }
    let xs = ts.resample(t0, t1, samples);
    if xs.len() < 8 {
        return None;
    }
    let ac = autocorrelation(&xs, xs.len() / 2);
    // Skip to the first zero crossing.
    let start = ac.iter().position(|&r| r <= 0.0)?;
    let (best_lag, best_r) = ac
        .iter()
        .enumerate()
        .skip(start)
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))?;
    if *best_r < min_corr {
        return None;
    }
    let dt = t1.since(t0).as_secs_f64() / (samples as f64 - 1.0);
    Some(best_lag as f64 * dt)
}

/// Jain's fairness index of a set of throughputs:
/// `(Σx)² / (n · Σx²)` — 1.0 for perfect fairness, `1/n` for a single
/// hog. `None` for an empty or all-zero set.
pub fn jain_fairness(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return None;
    }
    Some(sum * sum / (xs.len() as f64 * sq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_engine::SimDuration;

    fn sine_series(period_s: f64, dur_s: u64) -> TimeSeries {
        let mut ts = TimeSeries::new();
        let step = SimDuration::from_millis(250);
        let n = dur_s * 4;
        for i in 0..n {
            let t = SimTime::ZERO + step * i;
            let v = (t.as_secs_f64() * std::f64::consts::TAU / period_s).sin();
            ts.push(t, v);
        }
        ts
    }

    #[test]
    fn autocorrelation_of_constant_is_one() {
        let ac = autocorrelation(&[5.0; 32], 8);
        assert!(ac.iter().all(|&r| r == 1.0));
    }

    #[test]
    fn autocorrelation_lag0_is_one() {
        let xs: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let ac = autocorrelation(&xs, 10);
        assert!((ac[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_sine_period() {
        let ts = sine_series(34.0, 400);
        let p = dominant_period(&ts, SimTime::ZERO, SimTime::from_secs(400), 1600, 0.3)
            .expect("periodic signal");
        assert!((p - 34.0).abs() < 2.0, "estimated period {p}");
    }

    #[test]
    fn recovers_sawtooth_period() {
        // The cwnd shape: linear ramp with instant resets.
        let mut ts = TimeSeries::new();
        for i in 0..2000u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(250) * i;
            let v = (t.as_secs_f64() % 20.0) / 20.0;
            ts.push(t, v);
        }
        let p = dominant_period(&ts, SimTime::ZERO, SimTime::from_secs(500), 2000, 0.3)
            .expect("periodic");
        assert!((p - 20.0).abs() < 1.5, "estimated period {p}");
    }

    #[test]
    fn aperiodic_yields_none() {
        // Monotone ramp: autocorrelation has no post-crossing peak above
        // threshold... it decays monotonically; require None or a weak peak.
        let mut ts = TimeSeries::new();
        for i in 0..400u64 {
            ts.push(SimTime::from_secs(i), i as f64);
        }
        let p = dominant_period(&ts, SimTime::ZERO, SimTime::from_secs(399), 400, 0.5);
        assert!(p.is_none(), "ramp should not report a period, got {p:?}");
    }

    #[test]
    fn constant_yields_none() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::ZERO, 3.0);
        let p = dominant_period(&ts, SimTime::ZERO, SimTime::from_secs(100), 100, 0.3);
        assert!(p.is_none());
    }

    #[test]
    fn fairness_extremes() {
        assert_eq!(jain_fairness(&[10.0, 10.0, 10.0]), Some(1.0));
        let hog = jain_fairness(&[30.0, 0.0, 0.0]).unwrap();
        assert!((hog - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), None);
        assert_eq!(jain_fairness(&[0.0, 0.0]), None);
    }

    #[test]
    fn fairness_intermediate() {
        let f = jain_fairness(&[2.0, 1.0]).unwrap();
        assert!((f - 0.9).abs() < 1e-12, "(3)^2/(2*5) = 0.9, got {f}");
    }
}
