//! `td-serve` — the simulation-serving daemon and its maintenance /
//! client subcommands.
//!
//! ```text
//! td-serve serve   --store DIR [--socket PATH] [--jobs N] [--queue-cap N]
//!                  [--retries N] [--backoff-ms N] [--breaker N] [--deadline-ms N]
//! td-serve verify  --store DIR [--fix]      # checksum-scan every cell
//! td-serve compact --store DIR              # drop tmp files + quarantine
//! td-serve req     --socket PATH JSON...    # send request line(s), print replies
//! td-serve stats   --socket PATH            # shorthand for req '{"op":"stats"}'
//! ```
//!
//! The daemon drains gracefully on SIGINT/SIGTERM (finish in-flight
//! cells, persist the unstarted queue, exit 130) or on an in-band
//! `{"op":"shutdown"}` request (same drain, exit 0).

use std::io::{BufRead as _, BufReader, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;
use td_serve::server::{run, ServeConfig};
use td_serve::store::Store;

/// Graceful-shutdown signal handling (SIGINT / SIGTERM), the same raw
/// `signal(2)` binding `td-repro` uses: the zero-dependency rule keeps
/// `unsafe` confined to the binaries, and the handler body is a single
/// atomic store, well inside the async-signal-safe set.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

fn install_signal_handlers() -> Option<&'static std::sync::atomic::AtomicBool> {
    #[cfg(unix)]
    {
        sig::install();
        Some(&sig::INTERRUPTED)
    }
    #[cfg(not(unix))]
    {
        None
    }
}

fn usage() -> String {
    "usage:\n  \
     td-serve serve   --store DIR [--socket PATH] [--jobs N] [--queue-cap N]\n                   \
     [--retries N] [--backoff-ms N] [--breaker N] [--deadline-ms N]\n  \
     td-serve verify  --store DIR [--fix]\n  \
     td-serve compact --store DIR\n  \
     td-serve req     --socket PATH JSON...\n  \
     td-serve stats   --socket PATH\n\n\
     serve flags:\n  \
     --store DIR        store directory (created if absent)\n  \
     --socket PATH      Unix socket path (default: STORE/td-serve.sock)\n  \
     --jobs N           worker threads (default: available cores)\n  \
     --queue-cap N      bounded queue capacity (default: 64)\n  \
     --retries N        retries after a failed attempt (default: 2)\n  \
     --backoff-ms N     base retry backoff in ms (default: 50)\n  \
     --breaker N        consecutive failures to open a config's circuit (default: 3)\n  \
     --deadline-ms N    default per-request deadline (default: none)"
        .to_owned()
}

fn parse_u64(flag: &str, value: Option<String>) -> Result<u64, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<u64>()
        .map_err(|_| format!("{flag} needs an unsigned integer, got {v:?}"))
}

fn cmd_serve(args: &mut std::env::Args) -> Result<i32, String> {
    let mut store_dir: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut cfg = ServeConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                store_dir = Some(PathBuf::from(args.next().ok_or("--store needs a value")?))
            }
            "--socket" => {
                socket = Some(PathBuf::from(args.next().ok_or("--socket needs a value")?))
            }
            "--jobs" => cfg.jobs = parse_u64("--jobs", args.next())?.clamp(1, 512) as usize,
            "--queue-cap" => {
                cfg.queue_cap = parse_u64("--queue-cap", args.next())?.clamp(1, 1 << 20) as usize;
            }
            "--retries" => cfg.max_retries = parse_u64("--retries", args.next())?.min(100) as u32,
            "--backoff-ms" => cfg.backoff_base_ms = parse_u64("--backoff-ms", args.next())?,
            "--breaker" => {
                cfg.breaker_threshold =
                    parse_u64("--breaker", args.next())?.clamp(1, 1 << 20) as u32;
            }
            "--deadline-ms" => {
                let ms = parse_u64("--deadline-ms", args.next())?;
                if ms == 0 {
                    return Err("--deadline-ms must be positive".to_owned());
                }
                cfg.default_deadline_ms = Some(ms);
            }
            other => return Err(format!("unknown serve flag {other:?}\n\n{}", usage())),
        }
    }
    let store_dir = store_dir.ok_or_else(|| format!("serve needs --store DIR\n\n{}", usage()))?;
    cfg.socket = socket.unwrap_or_else(|| store_dir.join("td-serve.sock"));
    cfg.store_dir = store_dir;
    let interrupt = install_signal_handlers();
    run(cfg, interrupt).map_err(|e| format!("serve failed: {e}"))
}

fn cmd_verify(args: &mut std::env::Args) -> Result<i32, String> {
    let mut store_dir: Option<PathBuf> = None;
    let mut fix = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                store_dir = Some(PathBuf::from(args.next().ok_or("--store needs a value")?))
            }
            "--fix" => fix = true,
            other => return Err(format!("unknown verify flag {other:?}")),
        }
    }
    let store_dir = store_dir.ok_or("verify needs --store DIR")?;
    let store = Store::open(&store_dir).map_err(|e| format!("cannot open store: {e}"))?;
    let report = store
        .verify(fix)
        .map_err(|e| format!("verify failed: {e}"))?;
    println!(
        "verify: {} intact cell(s), {} corrupt, {} quarantined",
        report.intact,
        report.corrupt.len(),
        report.quarantined
    );
    for (name, why) in &report.corrupt {
        println!(
            "  corrupt: {name}: {why}{}",
            if fix { " (moved to quarantine/)" } else { "" }
        );
    }
    Ok(if report.corrupt.is_empty() { 0 } else { 1 })
}

fn cmd_compact(args: &mut std::env::Args) -> Result<i32, String> {
    let mut store_dir: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                store_dir = Some(PathBuf::from(args.next().ok_or("--store needs a value")?))
            }
            other => return Err(format!("unknown compact flag {other:?}")),
        }
    }
    let store_dir = store_dir.ok_or("compact needs --store DIR")?;
    let store = Store::open(&store_dir).map_err(|e| format!("cannot open store: {e}"))?;
    let report = store
        .compact()
        .map_err(|e| format!("compact failed: {e}"))?;
    println!(
        "compact: removed {} tmp file(s) and {} quarantined cell(s), reclaimed {} byte(s)",
        report.tmp_removed, report.quarantine_removed, report.bytes_reclaimed
    );
    Ok(0)
}

/// Send each JSON line to the daemon and print each reply. Exit 0 iff
/// every reply has `"status":"ok"` or `"status":"stats"`.
fn cmd_req(args: &mut std::env::Args, implicit: Option<&str>) -> Result<i32, String> {
    let mut socket: Option<PathBuf> = None;
    let mut lines: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                socket = Some(PathBuf::from(args.next().ok_or("--socket needs a value")?))
            }
            _ => lines.push(arg),
        }
    }
    if let Some(line) = implicit {
        lines.push(line.to_owned());
    }
    let socket = socket.ok_or("req needs --socket PATH")?;
    if lines.is_empty() {
        return Err("req needs at least one JSON request line".to_owned());
    }
    #[cfg(unix)]
    {
        let stream = std::os::unix::net::UnixStream::connect(&socket)
            .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let mut all_ok = true;
        for line in &lines {
            writeln!(writer, "{line}").map_err(|e| format!("write failed: {e}"))?;
            writer.flush().map_err(|e| e.to_string())?;
            let mut reply = String::new();
            let n = reader
                .read_line(&mut reply)
                .map_err(|e| format!("read failed: {e}"))?;
            if n == 0 {
                return Err("daemon closed the connection".to_owned());
            }
            let reply = reply.trim_end();
            println!("{reply}");
            if !(reply.contains("\"status\":\"ok\"") || reply.contains("\"status\":\"stats\"")) {
                all_ok = false;
            }
        }
        Ok(if all_ok { 0 } else { 1 })
    }
    #[cfg(not(unix))]
    {
        Err("td-serve req needs Unix sockets".to_owned())
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let code = match args.next().as_deref() {
        Some("serve") => cmd_serve(&mut args),
        Some("verify") => cmd_verify(&mut args),
        Some("compact") => cmd_compact(&mut args),
        Some("req") => cmd_req(&mut args, None),
        Some("stats") => cmd_req(&mut args, Some("{\"op\":\"stats\"}")),
        Some("--help" | "-h") | None => {
            println!("{}", usage());
            Ok(0)
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{}", usage())),
    };
    match code {
        Ok(n) => ExitCode::from(u8::try_from(n).unwrap_or(1)),
        Err(msg) => {
            eprintln!("td-serve: {msg}");
            ExitCode::from(2)
        }
    }
}
