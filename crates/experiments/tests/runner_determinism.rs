//! The parallel harness must not be able to change results: for the same
//! master seed, `--jobs N` output is byte-identical to `--jobs 1`.

use td_experiments::registry::find;
use td_experiments::runner::{run_batch, RunnerConfig};

/// Full observable surface of a report: rendered text, markdown, CSV and
/// blob bytes.
fn rendered(batch: &td_experiments::runner::BatchResult) -> Vec<(String, Vec<u8>)> {
    batch
        .results
        .iter()
        .map(|r| {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(r.report.to_string().as_bytes());
            bytes.extend_from_slice(r.report.markdown_table().as_bytes());
            for (name, csv) in &r.report.csvs {
                bytes.extend_from_slice(name.as_bytes());
                bytes.extend_from_slice(csv.as_bytes());
            }
            for (name, blob) in &r.report.blobs {
                bytes.extend_from_slice(name.as_bytes());
                bytes.extend_from_slice(blob);
            }
            (format!("{}#{}", r.id, r.replicate), bytes)
        })
        .collect()
}

#[test]
fn parallel_run_is_byte_identical_to_sequential() {
    let entries = || vec![find("fig8").unwrap(), find("short-flows").unwrap()];
    let base = RunnerConfig {
        master_seed: 7,
        replicates: 1,
        ..RunnerConfig::new()
    };
    let seq = run_batch(&entries(), &RunnerConfig { jobs: 1, ..base });
    let par = run_batch(&entries(), &RunnerConfig { jobs: 4, ..base });

    assert_eq!(seq.results.len(), par.results.len());
    for ((id_a, bytes_a), (id_b, bytes_b)) in rendered(&seq).iter().zip(rendered(&par).iter()) {
        assert_eq!(id_a, id_b, "result order depends on pool size");
        assert_eq!(
            bytes_a, bytes_b,
            "{id_a}: parallel report differs from sequential"
        );
    }
    // Seeds and simulated work must match too, not just the rendering.
    for (a, b) in seq.results.iter().zip(&par.results) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.timing.events_dispatched, b.timing.events_dispatched);
        assert_eq!(a.timing.peak_queue_depth, b.timing.peak_queue_depth);
    }
}
