//! # td-engine — deterministic discrete-event simulation engine
//!
//! This crate is the substrate under every simulation in the
//! `tahoe-dynamics` workspace. It provides exactly four things:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time as integer nanoseconds.
//!   All quantities in the reproduced paper (80 ms data-packet service time,
//!   8 ms ACK service time, 0.1 ms host processing, 10 ms / 1 s propagation)
//!   are exactly representable, so simulations are free of floating-point
//!   drift and replay bit-identically.
//! * [`Rate`] — a bandwidth in bits/second with exact integer
//!   transmission-time arithmetic.
//! * [`EventQueue`] — a totally ordered, cancellable pending-event set:
//!   an indexed 4-ary min-heap over a generation-counted slab, with true
//!   O(log n) cancellation and O(1) `&self` peeking. Ties in time are
//!   broken by schedule order, which makes every run deterministic: two
//!   events scheduled for the same instant fire in the order they were
//!   scheduled. (The pre-slab implementation survives in [`legacy`] as a
//!   differential-testing oracle and benchmark baseline.)
//! * [`SimRng`] — a small, seedable, deterministic random-number generator
//!   (an `xoshiro256**` implemented locally) so experiments are reproducible
//!   from a single `u64` seed and independent of external crate versioning.
//!
//! The engine deliberately has **no** notion of network, packet, or host —
//! those live in `td-net`. It also deliberately avoids an async runtime:
//! a discrete-event simulator is CPU-bound and needs a deterministic,
//! single-threaded event loop, not an I/O reactor.
//!
//! ## Example
//!
//! ```
//! use td_engine::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_millis(2), Ev::Pong);
//! q.schedule_at(SimTime::from_millis(1), Ev::Ping);
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!((t1, e1), (SimTime::from_millis(1), Ev::Ping));
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!((t2, e2), (SimTime::from_millis(2), Ev::Pong));
//! assert!(q.pop().is_none());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod legacy;
mod queue;
mod rate;
mod rng;
pub mod snap;
pub mod telemetry;
mod time;

pub use queue::{EventId, EventQueue};
pub use rate::Rate;
pub use rng::SimRng;
pub use snap::{SnapError, SnapReader, SnapWriter};
pub use time::{SimDuration, SimTime};
