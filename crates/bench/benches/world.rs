//! Sharded-world benchmarks: the scale-experiment cluster chain executed
//! serially and at 2/4 shards, plus the canonical-mode overhead of the
//! 1-shard path against a plain serial [`td_net::World`].
//!
//! Emits `BENCH_world.json` (override with `TD_BENCH_JSON`). The schema-2
//! document records the host's core count and each bench's worker-thread
//! count as structured fields — a sharded run can only beat serial when
//! the shards have real cores to land on, so the JSON is meaningless
//! without them. On a single-core host the sharded variants measure pure
//! protocol overhead (thread handoff, horizon publishing, merged
//! telemetry), not speedup; that is still worth pinning, because the
//! overhead must stay bounded for the multi-core win to exist. The CI
//! `bench-world` job regenerates this file on a multi-core runner and
//! gates on the shards=4 line beating serial by ≥1.5× when ≥4 cores are
//! present.

use std::hint::black_box;
use td_bench::Harness;
use td_engine::SimTime;
use td_experiments::scale::{build_chain, ScaleParams};
use td_net::{ShardedWorld, World};

/// Chain dimensions for the benchmark: big enough that event dispatch
/// dominates (hundreds of connections, tens of switches), small enough
/// for a few samples per second.
fn bench_params() -> ScaleParams {
    ScaleParams {
        clusters: 4,
        conns_per_cluster: 24,
        inter_conns: 4,
        duration_s: 10,
        trace: false,
    }
}

/// The scale chain at each shard count. Identical work by construction —
/// the executor guarantees byte-identical results — so the lines compare
/// wall-clock only.
fn scale_chain(c: &mut Harness) {
    let p = bench_params();
    let t_end = SimTime::from_secs(p.duration_s);
    for shards in [1u32, 2, 4] {
        let name = format!(
            "world/scale-chain {}x{} {}s shards={}",
            p.clusters, p.conns_per_cluster, p.duration_s, shards,
        );
        c.bench_function_threads(&name, shards, |b| {
            b.iter(|| {
                let mut sw = ShardedWorld::build(7, shards, |w| {
                    build_chain(w, 7, &p);
                });
                sw.set_trace_enabled(false);
                sw.run_until(t_end);
                black_box(sw.events_dispatched())
            });
        });
    }
}

/// Canonical-mode tax: the 1-shard executor runs the same topology as a
/// plain serial `World`, but with content-derived event keys and
/// per-channel RNG streams (the price of shard invariance). The serial
/// line is the floor it is measured against.
fn canonical_overhead(c: &mut Harness) {
    let p = bench_params();
    let t_end = SimTime::from_secs(p.duration_s);
    c.bench_function(
        &format!(
            "world/scale-chain {}x{} {}s serial legacy",
            p.clusters, p.conns_per_cluster, p.duration_s,
        ),
        |b| {
            b.iter(|| {
                let mut w = World::new(7);
                build_chain(&mut w, 7, &p);
                w.trace_mut().set_enabled(false);
                w.run_until(t_end);
                black_box(w.events_dispatched())
            });
        },
    );
}

/// Route-table construction on a 64-cluster chain (320 switches × 256
/// hosts): BFS plus run-length compression and default elision, no
/// traffic attached. This is the per-replica build cost every shard pays
/// at the 100k/1M rungs, so its growth rate matters as much as dispatch.
fn route_build(c: &mut Harness) {
    let p = ScaleParams {
        clusters: 64,
        conns_per_cluster: 0,
        inter_conns: 0,
        duration_s: 1,
        trace: false,
    };
    c.bench_function("world/compute-routes 64-cluster chain", |b| {
        b.iter(|| {
            let mut w = World::new(7);
            build_chain(&mut w, 7, &p);
            black_box(w.route_table_bytes())
        });
    });
}

fn main() {
    let mut c = Harness::new();
    scale_chain(&mut c);
    canonical_overhead(&mut c);
    route_build(&mut c);
    let json_path = std::env::var("TD_BENCH_JSON").unwrap_or_else(|_| "BENCH_world.json".into());
    if let Err(e) = c.write_json(std::path::Path::new(&json_path)) {
        eprintln!("could not write {json_path}: {e}");
    }
    c.finish();
}
