//! Packet and identifier types.
//!
//! Packets carry metadata only; no payload bytes exist in the simulation.
//! The paper's packets are fixed-size: 500-byte data packets and 50-byte
//! ACKs (§2.2), but sizes are free parameters here — the §4.3.3 conjecture
//! runs use zero-length ACKs.

use std::fmt;
use td_engine::SimTime;

/// Identifies a node (host or switch) in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifies a transport connection. A connection is unidirectional at the
/// transport level: data flows source → sink, ACKs flow sink → source.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnId(pub u32);

/// Globally unique packet identity, preserved across hops (a retransmission
/// is a *new* packet with a new id but the same sequence number).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketId(pub u64);

/// Whether a packet carries data or an acknowledgment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PacketKind {
    /// A maximum-size data segment. `seq` is its 1-based sequence number,
    /// counted in packets (the paper measures windows in packets, §2.1).
    Data,
    /// A cumulative acknowledgment. `seq` is the highest in-order sequence
    /// number received; `seq = 0` acknowledges nothing.
    Ack,
}

/// A packet in flight. `Copy`: 64 bytes of metadata, cloned freely through
/// the event queue and the trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Unique identity of this transmission.
    pub id: PacketId,
    /// Connection this packet belongs to.
    pub conn: ConnId,
    /// Data segment or cumulative ACK.
    pub kind: PacketKind,
    /// Sequence number (data) or cumulative ack point (ACK).
    pub seq: u64,
    /// Piggybacked cumulative acknowledgment on a *data* packet (duplex
    /// connections): highest in-order sequence the sender has received in
    /// the reverse direction. `0` acknowledges nothing — the value every
    /// unidirectional sender uses. Pure ACK packets carry their ack point
    /// in `seq` and leave this 0.
    pub ack: u64,
    /// Wire size in bytes (may be zero for idealized ACKs).
    pub size: u32,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Time the originating endpoint handed the packet to its host.
    pub sent_at: SimTime,
    /// True if this data packet is a retransmission.
    pub retx: bool,
    /// Congestion-experienced bit (DECbit / CE marking): set by a switch
    /// whose queue exceeds its marking threshold; echoed by receivers on
    /// ACKs. Always false in the paper's Tahoe runs.
    pub ce: bool,
}

impl Packet {
    /// True for data segments.
    pub fn is_data(&self) -> bool {
        self.kind == PacketKind::Data
    }

    /// True for acknowledgments.
    pub fn is_ack(&self) -> bool {
        self.kind == PacketKind::Ack
    }

    /// Serialize every field (snapshot support). Packets appear in queue
    /// disciplines, host processing queues, channel service slots, and
    /// pending arrival events, so the full metadata must round-trip.
    pub(crate) fn save_state(&self, w: &mut td_engine::SnapWriter) {
        w.write_u64(self.id.0);
        w.write_u32(self.conn.0);
        w.write_u8(match self.kind {
            PacketKind::Data => 0,
            PacketKind::Ack => 1,
        });
        w.write_u64(self.seq);
        w.write_u64(self.ack);
        w.write_u32(self.size);
        w.write_u32(self.src.0);
        w.write_u32(self.dst.0);
        w.write_time(self.sent_at);
        w.write_bool(self.retx);
        w.write_bool(self.ce);
    }

    /// Deserialize a packet written by [`Packet::save_state`].
    pub(crate) fn load_state(
        r: &mut td_engine::SnapReader<'_>,
    ) -> Result<Packet, td_engine::SnapError> {
        let id = PacketId(r.read_u64()?);
        let conn = ConnId(r.read_u32()?);
        let kind = match r.read_u8()? {
            0 => PacketKind::Data,
            1 => PacketKind::Ack,
            k => {
                return Err(td_engine::SnapError::Corrupt(format!(
                    "unknown packet kind tag {k}"
                )))
            }
        };
        Ok(Packet {
            id,
            conn,
            kind,
            seq: r.read_u64()?,
            ack: r.read_u64()?,
            size: r.read_u32()?,
            src: NodeId(r.read_u32()?),
            dst: NodeId(r.read_u32()?),
            sent_at: r.read_time()?,
            retx: r.read_bool()?,
            ce: r.read_bool()?,
        })
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            PacketKind::Data if self.retx => "DATA*",
            PacketKind::Data => "DATA",
            PacketKind::Ack => "ACK",
        };
        write!(
            f,
            "{kind} conn={} seq={} {}B {}→{}",
            self.conn.0, self.seq, self.size, self.src.0, self.dst.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(kind: PacketKind) -> Packet {
        Packet {
            id: PacketId(1),
            conn: ConnId(0),
            kind,
            seq: 7,
            ack: 0,
            size: 500,
            src: NodeId(0),
            dst: NodeId(3),
            sent_at: SimTime::ZERO,
            retx: false,
            ce: false,
        }
    }

    #[test]
    fn kind_predicates() {
        assert!(pkt(PacketKind::Data).is_data());
        assert!(!pkt(PacketKind::Data).is_ack());
        assert!(pkt(PacketKind::Ack).is_ack());
        assert!(!pkt(PacketKind::Ack).is_data());
    }

    #[test]
    fn display_forms() {
        let d = pkt(PacketKind::Data);
        assert_eq!(d.to_string(), "DATA conn=0 seq=7 500B 0→3");
        let mut r = d;
        r.retx = true;
        assert!(r.to_string().starts_with("DATA*"));
        let a = pkt(PacketKind::Ack);
        assert!(a.to_string().starts_with("ACK"));
    }

    #[test]
    fn packet_is_small_and_copy() {
        // Keep the event queue cheap: the packet must stay pocket-sized.
        assert!(std::mem::size_of::<Packet>() <= 64);
        let p = pkt(PacketKind::Data);
        let q = p; // Copy
        assert_eq!(p, q);
    }
}
