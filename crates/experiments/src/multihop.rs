//! The four-switch, 50-connection topology of \[19\] (§5).
//!
//! The paper's generality check: "for a topology considered in \[19\]
//! consisting of four switches, with a traffic pattern of 50 connections
//! whose path lengths were roughly equally split between 1, 2, and 3 hops,
//! the queue length data displayed both the ACK-compression and
//! out-of-phase synchronization phenomena."
//!
//! We build the same shape — a chain of four switches, one host each,
//! 50 connections with path lengths cycling through 1/2/3 hops in
//! alternating directions — and verify that the two phenomena survive the
//! complexity.

use crate::report::Report;
use crate::scenario::DATA_SERVICE;
use td_analysis::plot::Plot;
use td_analysis::sync::{classify_sync, SyncMode};
use td_analysis::{compression, data_drop_fraction, queue_series, utilization_in};
use td_core::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};
use td_engine::{SimDuration, SimRng, SimTime};
use td_net::{chain, Chain, ConnId, LinkSpec};

/// Build and run the 4-switch, 50-connection chain.
pub fn run_chain(seed: u64, duration_s: u64) -> (Chain, SimTime, SimTime) {
    let trunk = LinkSpec::paper_bottleneck(SimDuration::from_millis(10), Some(30));
    let mut c = chain(
        seed,
        4,
        trunk,
        LinkSpec::paper_host_link(),
        SimDuration::from_micros(100),
    );
    let mut rng = SimRng::new(seed).derive(0x50C8);
    for i in 0..50u32 {
        let hops = 1 + (i as usize % 3); // path length 1, 2 or 3 trunk hops
        let start = rng.next_below((4 - hops) as u64) as usize;
        let (src, dst) = if i % 2 == 0 {
            (c.hosts[start], c.hosts[start + hops])
        } else {
            (c.hosts[start + hops], c.hosts[start])
        };
        let conn = ConnId(i);
        let s = c
            .world
            .attach(src, dst, conn, TcpSender::boxed(SenderConfig::paper()));
        c.world
            .attach(dst, src, conn, TcpReceiver::boxed(ReceiverConfig::paper()));
        c.world
            .start_at(s, SimTime::from_nanos(rng.next_below(1_000_000_000)));
    }
    let t1 = SimTime::from_secs(duration_s);
    c.world.run_until(t1);
    let t0 = SimTime::from_secs(duration_s / 5);
    (c, t0, t1)
}

/// Run and evaluate the multihop generality check.
pub fn report(seed: u64, duration_s: u64) -> Report {
    let (c, t0, t1) = run_chain(seed, duration_s);
    let mut rep = Report::new(
        "tbl-multihop",
        "Four switches, 50 connections, 1-3 hop paths (paper §5 / [19])",
        &format!("seed {seed}, {duration_s} s simulated, measured after {t0}"),
    );

    // ACK-compression on the middle trunk (most crossing traffic).
    let qr = queue_series(c.world.trace(), c.trunk_right[1]);
    let ql = queue_series(c.world.trace(), c.trunk_left[1]);
    let flr = compression::queue_fluctuation(&qr, t0, t1, DATA_SERVICE);
    let fll = compression::queue_fluctuation(&ql, t0, t1, DATA_SERVICE);
    rep.check(
        "rapid queue fluctuations on middle trunk",
        "ACK-compression present in the complex topology",
        format!("{flr:.0} / {fll:.0} packets per service time"),
        flr >= 3.0 && fll >= 3.0,
    );

    // Out-of-phase tendency between the two directions of the middle hop.
    let (mode, r) = classify_sync(&qr, &ql, t0, t1, 800, 10, 0.10);
    rep.check(
        "middle-trunk queue synchronization",
        "out-of-phase phenomena present",
        format!("{mode:?} (r = {r:.2})"),
        mode == SyncMode::OutOfPhase,
    );

    // In the dumbbell, ACKs are never dropped (§4.2: they reach each
    // queue pre-spaced by the data service time). Across multiple hops
    // that argument breaks — a cluster of ACKs compressed at one trunk
    // can slam the next trunk's full buffer — so data packets merely
    // *dominate* the drops here rather than monopolizing them.
    let frac = data_drop_fraction(c.world.trace()).unwrap_or(1.0);
    rep.check(
        "fraction of drops that are data packets",
        "majority data (single-bottleneck no-ACK-drop argument weakens over multiple hops)",
        format!("{:.1} %", frac * 100.0),
        frac >= 0.6,
    );

    // All trunks carry substantial load.
    for (i, &ch) in c.trunk_right.iter().enumerate() {
        let u = utilization_in(c.world.trace(), ch, t0, t1);
        rep.info(
            &format!("trunk {} -> {} utilization", i + 1, i + 2),
            "-",
            format!("{u:.3}"),
        );
    }

    let w1 = (t0 + SimDuration::from_secs(30)).min(t1);
    rep.plots.push(
        Plot::new("Middle trunk queue, switch 2 -> 3", t0, w1, 100, 10)
            .y_max(32.0)
            .series(&qr, '#')
            .render(),
    );
    rep.plots.push(
        Plot::new("Middle trunk queue, switch 3 -> 2", t0, w1, 100, 10)
            .y_max(32.0)
            .series(&ql, '#')
            .render(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multihop_reproduces() {
        let rep = report(1, 300);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }
}
