//! Event-sourced trace of a simulation run.
//!
//! Every observable state change in the network — packet sends, queue
//! arrivals and departures, drops, serialization start/end, deliveries, and
//! protocol-state samples — appends a [`TraceRecord`]. All analysis in
//! `td-analysis` is computed *offline* from this stream, so adding a metric
//! never perturbs the simulation, and a single run can answer every question
//! the paper asks of it (queue-length traces, cwnd traces, utilization,
//! drop attribution, clustering, ACK spacing).
//!
//! Records carry the full packet metadata (packets are `Copy`) plus, on
//! queue transitions, the resulting buffer occupancy — so queue-length time
//! series fall straight out of a linear scan.

use crate::packet::{ConnId, NodeId, Packet};
use crate::world::ChannelId;
use std::cmp::Ordering;
use td_engine::SimTime;

/// An online consumer of trace events, fed by [`crate::World`] at every
/// emission site **whether or not trace recording is enabled** — this is
/// what lets streaming analysis replace the materialized trace at scale.
///
/// Observers must be passive: they see each event by reference, cannot
/// touch the world, and must not panic on any event sequence. `Send`
/// because sharded worlds run on worker threads (the observer travels
/// with its shard's `World`).
pub trait TraceObserver: Send {
    /// One trace event, in emission order (the exact order the records
    /// would appear in the trace of this world).
    fn on_record(&mut self, t: SimTime, ev: &TraceEvent);

    /// Recover the concrete observer after [`crate::World::take_observers`]
    /// (mirrors [`crate::Endpoint::as_any`]).
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Why a packet was discarded at a queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// The buffer was full and the discipline chose this packet as victim.
    BufferFull,
    /// The channel fault injector destroyed it.
    Fault,
    /// Active queue management (RED) discarded it before the buffer was
    /// physically full.
    EarlyDrop,
    /// A scheduled link outage cut the channel while the packet was in
    /// flight (or it finished serializing into a down link).
    LinkDown,
}

/// How a transport sender noticed a loss (paper footnote 4: duplicate
/// acknowledgments or timer expiration).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LossKind {
    /// Three duplicate ACKs (Tahoe fast retransmit).
    DupAck,
    /// Retransmission timer expired.
    Timeout,
}

/// Protocol-level observations emitted by endpoints through
/// [`crate::Ctx::emit`]. The network layer treats these as opaque
/// annotations; `td-analysis` turns them into the paper's cwnd plots and
/// loss chronologies.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ProtoEvent {
    /// Congestion-window sample, taken whenever cwnd changes.
    Cwnd {
        /// Congestion window, in packets (fractional during avoidance).
        cwnd: f64,
        /// Slow-start threshold, in packets.
        ssthresh: f64,
    },
    /// The sender detected a packet loss.
    LossDetected {
        /// Sequence number presumed lost.
        seq: u64,
        /// Detection mechanism.
        kind: LossKind,
    },
    /// The sender retransmitted a segment.
    Retransmit {
        /// Sequence number retransmitted.
        seq: u64,
    },
    /// The receiver delivered in-order data up to this sequence number.
    InOrder {
        /// Highest contiguous sequence number delivered.
        seq: u64,
    },
}

/// One thing that happened at one instant.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TraceEvent {
    /// An endpoint handed a packet to its host for transmission.
    Send {
        /// Host that sent.
        node: NodeId,
        /// The packet.
        pkt: Packet,
    },
    /// A packet was accepted into a channel's buffer.
    Enqueue {
        /// The channel.
        ch: ChannelId,
        /// The packet.
        pkt: Packet,
        /// Buffer occupancy (waiting + in service) after acceptance.
        qlen_after: u32,
    },
    /// A packet was discarded at a channel.
    Drop {
        /// The channel.
        ch: ChannelId,
        /// The discarded packet.
        pkt: Packet,
        /// Why.
        reason: DropReason,
        /// Buffer occupancy at the time of the drop.
        qlen: u32,
    },
    /// A packet began serializing onto the wire.
    TxStart {
        /// The channel.
        ch: ChannelId,
        /// The packet.
        pkt: Packet,
    },
    /// A packet finished serializing (it leaves the buffer now and arrives
    /// at the far end one propagation delay later).
    TxEnd {
        /// The channel.
        ch: ChannelId,
        /// The packet.
        pkt: Packet,
        /// Buffer occupancy after departure.
        qlen_after: u32,
    },
    /// A packet was handed to a protocol endpoint (after host processing).
    Deliver {
        /// Receiving host.
        node: NodeId,
        /// The packet.
        pkt: Packet,
    },
    /// A protocol endpoint annotation.
    Proto {
        /// Connection the annotation belongs to.
        conn: ConnId,
        /// Host whose endpoint emitted it.
        node: NodeId,
        /// The observation.
        ev: ProtoEvent,
    },
}

/// A timestamped trace event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceRecord {
    /// When it happened.
    pub t: SimTime,
    /// What happened.
    pub ev: TraceEvent,
}

/// Tie-break rank for merged trace records at the same instant,
/// mirroring the order a serial dispatch emits them: a departure frees
/// the wire (`TxEnd`), deliveries and the endpoint reactions they
/// trigger come next (`Deliver` → `Proto` → `Send` → `Enqueue`/`Drop`),
/// and the next serialization starts last (`TxStart`). Without this, a
/// byte-wise sort can place a channel's next `TxStart` *before* the
/// `TxEnd` it follows (the encoding tags happen to order that way),
/// which corrupts any analysis that pairs starts with ends — utilization
/// would double-count entire windows. Records of one channel never span
/// shards, so this rank plus encoded-content ordering reconstructs a
/// causally consistent global trace for every shard count.
pub(crate) fn causal_rank(ev: &TraceEvent) -> u8 {
    match ev {
        TraceEvent::TxEnd { .. } => 0,
        TraceEvent::Deliver { .. } => 1,
        TraceEvent::Proto { .. } => 2,
        TraceEvent::Send { .. } => 3,
        TraceEvent::Enqueue { .. } | TraceEvent::Drop { .. } => 4,
        TraceEvent::TxStart { .. } => 5,
    }
}

/// The canonical total order on trace records: `(time, causal rank,
/// encoded content)` — exactly the order [`crate::ShardedWorld`] merges
/// shard traces into, so it is the same for every shard count.
///
/// This compares the records **field-wise, without encoding them**: the
/// snapshot codec writes every integer little-endian, and lexicographic
/// order over little-endian bytes equals numeric order of the
/// byte-swapped value, so each field comparison is a `swap_bytes`
/// compare. Zero allocation per comparison (the encoding path allocated
/// a `Vec` per record), and usable online by streaming folds that must
/// reproduce merged-trace order for same-instant ties.
pub fn canonical_trace_cmp(a: &TraceRecord, b: &TraceRecord) -> Ordering {
    // Little-endian byte-lexicographic order of an integer field.
    fn le64(a: u64, b: u64) -> Ordering {
        a.swap_bytes().cmp(&b.swap_bytes())
    }
    fn le32(a: u32, b: u32) -> Ordering {
        a.swap_bytes().cmp(&b.swap_bytes())
    }
    fn pkt_cmp(a: &Packet, b: &Packet) -> Ordering {
        let kind = |p: &Packet| match p.kind {
            crate::packet::PacketKind::Data => 0u8,
            crate::packet::PacketKind::Ack => 1,
        };
        le64(a.id.0, b.id.0)
            .then_with(|| le32(a.conn.0, b.conn.0))
            .then_with(|| kind(a).cmp(&kind(b)))
            .then_with(|| le64(a.seq, b.seq))
            .then_with(|| le64(a.ack, b.ack))
            .then_with(|| le32(a.size, b.size))
            .then_with(|| le32(a.src.0, b.src.0))
            .then_with(|| le32(a.dst.0, b.dst.0))
            .then_with(|| le64(a.sent_at.as_nanos(), b.sent_at.as_nanos()))
            .then_with(|| a.retx.cmp(&b.retx))
            .then_with(|| a.ce.cmp(&b.ce))
    }
    fn tag(ev: &TraceEvent) -> u8 {
        match ev {
            TraceEvent::Send { .. } => 0,
            TraceEvent::Enqueue { .. } => 1,
            TraceEvent::Drop { .. } => 2,
            TraceEvent::TxStart { .. } => 3,
            TraceEvent::TxEnd { .. } => 4,
            TraceEvent::Deliver { .. } => 5,
            TraceEvent::Proto { .. } => 6,
        }
    }
    fn reason_tag(r: &DropReason) -> u8 {
        match r {
            DropReason::BufferFull => 0,
            DropReason::Fault => 1,
            DropReason::EarlyDrop => 2,
            DropReason::LinkDown => 3,
        }
    }
    fn proto_cmp(a: &ProtoEvent, b: &ProtoEvent) -> Ordering {
        let ptag = |e: &ProtoEvent| match e {
            ProtoEvent::Cwnd { .. } => 0u8,
            ProtoEvent::LossDetected { .. } => 1,
            ProtoEvent::Retransmit { .. } => 2,
            ProtoEvent::InOrder { .. } => 3,
        };
        ptag(a).cmp(&ptag(b)).then_with(|| match (a, b) {
            (
                ProtoEvent::Cwnd {
                    cwnd: c1,
                    ssthresh: s1,
                },
                ProtoEvent::Cwnd {
                    cwnd: c2,
                    ssthresh: s2,
                },
            ) => le64(c1.to_bits(), c2.to_bits()).then_with(|| le64(s1.to_bits(), s2.to_bits())),
            (
                ProtoEvent::LossDetected { seq: q1, kind: k1 },
                ProtoEvent::LossDetected { seq: q2, kind: k2 },
            ) => {
                let ktag = |k: &LossKind| match k {
                    LossKind::DupAck => 0u8,
                    LossKind::Timeout => 1,
                };
                le64(*q1, *q2).then_with(|| ktag(k1).cmp(&ktag(k2)))
            }
            (ProtoEvent::Retransmit { seq: q1 }, ProtoEvent::Retransmit { seq: q2 })
            | (ProtoEvent::InOrder { seq: q1 }, ProtoEvent::InOrder { seq: q2 }) => le64(*q1, *q2),
            _ => unreachable!("equal proto tags imply equal variants"),
        })
    }
    a.t.cmp(&b.t)
        .then_with(|| causal_rank(&a.ev).cmp(&causal_rank(&b.ev)))
        .then_with(|| tag(&a.ev).cmp(&tag(&b.ev)))
        .then_with(|| match (&a.ev, &b.ev) {
            (TraceEvent::Send { node: n1, pkt: p1 }, TraceEvent::Send { node: n2, pkt: p2 })
            | (
                TraceEvent::Deliver { node: n1, pkt: p1 },
                TraceEvent::Deliver { node: n2, pkt: p2 },
            ) => le32(n1.0, n2.0).then_with(|| pkt_cmp(p1, p2)),
            (
                TraceEvent::Enqueue {
                    ch: c1,
                    pkt: p1,
                    qlen_after: q1,
                },
                TraceEvent::Enqueue {
                    ch: c2,
                    pkt: p2,
                    qlen_after: q2,
                },
            )
            | (
                TraceEvent::TxEnd {
                    ch: c1,
                    pkt: p1,
                    qlen_after: q1,
                },
                TraceEvent::TxEnd {
                    ch: c2,
                    pkt: p2,
                    qlen_after: q2,
                },
            ) => le32(c1.0, c2.0)
                .then_with(|| pkt_cmp(p1, p2))
                .then_with(|| le32(*q1, *q2)),
            (
                TraceEvent::Drop {
                    ch: c1,
                    pkt: p1,
                    reason: r1,
                    qlen: q1,
                },
                TraceEvent::Drop {
                    ch: c2,
                    pkt: p2,
                    reason: r2,
                    qlen: q2,
                },
            ) => le32(c1.0, c2.0)
                .then_with(|| pkt_cmp(p1, p2))
                .then_with(|| reason_tag(r1).cmp(&reason_tag(r2)))
                .then_with(|| le32(*q1, *q2)),
            (TraceEvent::TxStart { ch: c1, pkt: p1 }, TraceEvent::TxStart { ch: c2, pkt: p2 }) => {
                le32(c1.0, c2.0).then_with(|| pkt_cmp(p1, p2))
            }
            (
                TraceEvent::Proto {
                    conn: c1,
                    node: n1,
                    ev: e1,
                },
                TraceEvent::Proto {
                    conn: c2,
                    node: n2,
                    ev: e2,
                },
            ) => le32(c1.0, c2.0)
                .then_with(|| le32(n1.0, n2.0))
                .then_with(|| proto_cmp(e1, e2)),
            _ => unreachable!("equal event tags imply equal variants"),
        })
}

/// The append-only trace of a run.
#[derive(Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    /// An enabled, empty trace.
    pub fn new() -> Self {
        Trace {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// An enabled trace with room for `records` records before the first
    /// reallocation. Long paper-scale runs append millions of records;
    /// pre-sizing from a calibrated estimate (or a previous run's
    /// [`Trace::len`] / engine telemetry) removes the doubling-and-copy
    /// spikes from the hot loop.
    pub fn with_capacity(records: usize) -> Self {
        Trace {
            records: Vec::with_capacity(records),
            enabled: true,
        }
    }

    /// Reserve room for at least `additional` further records (no-op when
    /// recording is disabled — a disabled trace never allocates).
    pub fn reserve(&mut self, additional: usize) {
        if self.enabled {
            self.records.reserve(additional);
        }
    }

    /// Records the trace can hold before reallocating.
    pub fn capacity(&self) -> usize {
        self.records.capacity()
    }

    /// Disable recording (for benchmark runs where only the online counters
    /// matter). Already-recorded events are kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a record (no-op when disabled).
    pub fn push(&mut self, t: SimTime, ev: TraceEvent) {
        if self.enabled {
            self.records.push(TraceRecord { t, ev });
        }
    }

    /// All records, in time order (the simulator appends monotonically).
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records, keeping the enabled flag. Used to discard warm-up
    /// transients before the measured window of an experiment.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Replace the full record list (snapshot restore).
    pub(crate) fn set_records(&mut self, records: Vec<TraceRecord>) {
        self.records = records;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketId, PacketKind};

    fn pkt() -> Packet {
        Packet {
            id: PacketId(0),
            conn: ConnId(0),
            kind: PacketKind::Data,
            seq: 1,
            size: 500,
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: SimTime::ZERO,
            retx: false,
            ce: false,
            ack: 0,
        }
    }

    #[test]
    fn push_and_read_back() {
        let mut tr = Trace::new();
        tr.push(
            SimTime::from_secs(1),
            TraceEvent::Send {
                node: NodeId(0),
                pkt: pkt(),
            },
        );
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.records()[0].t, SimTime::from_secs(1));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new();
        tr.set_enabled(false);
        tr.push(
            SimTime::ZERO,
            TraceEvent::Send {
                node: NodeId(0),
                pkt: pkt(),
            },
        );
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn with_capacity_and_reserve_preallocate() {
        let mut tr = Trace::with_capacity(100);
        assert!(tr.capacity() >= 100);
        tr.reserve(500);
        assert!(tr.capacity() >= 500);
        // A disabled trace refuses to allocate: it will never be read.
        let mut off = Trace::new();
        off.set_enabled(false);
        off.reserve(1 << 20);
        assert_eq!(off.capacity(), 0);
    }

    #[test]
    fn clear_discards_but_keeps_enabled() {
        let mut tr = Trace::new();
        tr.push(
            SimTime::ZERO,
            TraceEvent::Send {
                node: NodeId(0),
                pkt: pkt(),
            },
        );
        tr.clear();
        assert!(tr.is_empty());
        assert!(tr.is_enabled());
    }
}

#[cfg(test)]
mod canonical_cmp_tests {
    use super::*;
    use crate::packet::{PacketId, PacketKind};
    use crate::world::save_trace_record;
    use crate::ChannelId;
    use td_engine::{SimRng, SnapWriter};

    /// Draw a record with every field randomized, covering all variants
    /// and both enum arms of every tagged sub-field.
    fn random_record(rng: &mut SimRng) -> TraceRecord {
        // Small value ranges force plenty of exact collisions, so the
        // comparator's later fields actually get exercised.
        let t = SimTime::from_nanos(rng.next_below(3));
        let pkt = Packet {
            id: PacketId(rng.next_below(3)),
            conn: ConnId(rng.next_below(3) as u32),
            kind: if rng.chance(0.5) {
                PacketKind::Data
            } else {
                PacketKind::Ack
            },
            seq: rng.next_below(3),
            ack: rng.next_below(3),
            size: rng.next_below(3) as u32,
            src: NodeId(rng.next_below(3) as u32),
            dst: NodeId(rng.next_below(3) as u32),
            sent_at: SimTime::from_nanos(rng.next_below(3)),
            retx: rng.chance(0.5),
            ce: rng.chance(0.5),
        };
        let ch = ChannelId(rng.next_below(3) as u32);
        let node = NodeId(rng.next_below(3) as u32);
        let conn = ConnId(rng.next_below(3) as u32);
        let qlen = rng.next_below(3) as u32;
        let ev = match rng.next_below(7) {
            0 => TraceEvent::Send { node, pkt },
            1 => TraceEvent::Enqueue {
                ch,
                pkt,
                qlen_after: qlen,
            },
            2 => TraceEvent::Drop {
                ch,
                pkt,
                reason: match rng.next_below(4) {
                    0 => DropReason::BufferFull,
                    1 => DropReason::Fault,
                    2 => DropReason::EarlyDrop,
                    _ => DropReason::LinkDown,
                },
                qlen,
            },
            3 => TraceEvent::TxStart { ch, pkt },
            4 => TraceEvent::TxEnd {
                ch,
                pkt,
                qlen_after: qlen,
            },
            5 => TraceEvent::Deliver { node, pkt },
            _ => TraceEvent::Proto {
                conn,
                node,
                ev: match rng.next_below(4) {
                    0 => ProtoEvent::Cwnd {
                        cwnd: rng.next_below(3) as f64 + 0.5,
                        ssthresh: rng.next_below(3) as f64,
                    },
                    1 => ProtoEvent::LossDetected {
                        seq: rng.next_below(3),
                        kind: if rng.chance(0.5) {
                            LossKind::DupAck
                        } else {
                            LossKind::Timeout
                        },
                    },
                    2 => ProtoEvent::Retransmit {
                        seq: rng.next_below(3),
                    },
                    _ => ProtoEvent::InOrder {
                        seq: rng.next_below(3),
                    },
                },
            },
        };
        TraceRecord { t, ev }
    }

    /// `canonical_trace_cmp` must order records exactly as the sharded
    /// merge's original sort key — `(t, causal_rank, SnapWriter encoding
    /// bytes)` — did, for every pair. The comparator exists to avoid
    /// allocating those encodings per record; this pins that it is a
    /// faithful mirror of the little-endian encoded-byte order.
    #[test]
    fn canonical_cmp_mirrors_encoded_byte_order() {
        let mut rng = SimRng::new(0xC0DE_CAFE);
        let recs: Vec<TraceRecord> = (0..600).map(|_| random_record(&mut rng)).collect();
        let keys: Vec<(SimTime, u8, Vec<u8>)> = recs
            .iter()
            .map(|r| {
                let mut w = SnapWriter::new();
                save_trace_record(r, &mut w);
                (r.t, causal_rank(&r.ev), w.into_bytes())
            })
            .collect();
        let mut equal_pairs = 0u32;
        for i in 0..recs.len() {
            for j in 0..recs.len() {
                let want = keys[i].cmp(&keys[j]);
                let got = canonical_trace_cmp(&recs[i], &recs[j]);
                assert_eq!(
                    got, want,
                    "records {i} vs {j}:\n{:?}\n{:?}",
                    recs[i], recs[j]
                );
                if want == Ordering::Equal && i != j {
                    equal_pairs += 1;
                }
            }
        }
        // The small value ranges must have produced real collisions, or
        // the Equal arm was never meaningfully tested.
        assert!(equal_pairs > 0, "no equal pairs generated");
    }
}
