//! Trace → measurement extraction.
//!
//! These functions linearly scan a [`Trace`] and produce the raw materials
//! every paper analysis is built from: queue-length series, cwnd series,
//! drop events, bottleneck departures, deliveries, and windowed
//! utilization.

use crate::epochs::DropEvent;
use crate::series::TimeSeries;
use td_engine::{SimDuration, SimTime};
use td_net::{ChannelId, ConnId, NodeId, Packet, ProtoEvent, Trace, TraceEvent};

/// Buffer-occupancy time series of one channel (waiting + in-service
/// packets, exactly the "packet queue at the switch" the paper plots).
pub fn queue_series(trace: &Trace, ch: ChannelId) -> TimeSeries {
    let mut ts = TimeSeries::new();
    for r in trace.records() {
        match r.ev {
            TraceEvent::Enqueue {
                ch: c, qlen_after, ..
            } if c == ch => {
                ts.push(r.t, qlen_after as f64);
            }
            TraceEvent::TxEnd {
                ch: c, qlen_after, ..
            } if c == ch => {
                ts.push(r.t, qlen_after as f64);
            }
            _ => {}
        }
    }
    ts
}

/// Congestion-window time series of one connection, from the sender's
/// `Cwnd` annotations.
pub fn cwnd_series(trace: &Trace, conn: ConnId) -> TimeSeries {
    let mut ts = TimeSeries::new();
    for r in trace.records() {
        if let TraceEvent::Proto {
            conn: c,
            ev: ProtoEvent::Cwnd { cwnd, .. },
            ..
        } = r.ev
        {
            if c == conn {
                ts.push(r.t, cwnd);
            }
        }
    }
    ts
}

/// All buffer-overflow and fault drops, in time order.
pub fn drop_events(trace: &Trace) -> Vec<DropEvent> {
    trace
        .records()
        .iter()
        .filter_map(|r| match r.ev {
            TraceEvent::Drop {
                ch, pkt, reason, ..
            } => Some(DropEvent {
                t: r.t,
                ch,
                conn: pkt.conn,
                seq: pkt.seq,
                is_data: pkt.is_data(),
                reason,
            }),
            _ => None,
        })
        .collect()
}

/// Fraction of dropped packets that were data packets (the paper's §3.2
/// claim: 99.8 % in the ten-connection run). `None` if nothing dropped.
pub fn data_drop_fraction(trace: &Trace) -> Option<f64> {
    let drops = drop_events(trace);
    if drops.is_empty() {
        return None;
    }
    let data = drops.iter().filter(|d| d.is_data).count();
    Some(data as f64 / drops.len() as f64)
}

/// One packet leaving a channel (finishing serialization).
#[derive(Clone, Copy, Debug)]
pub struct Departure {
    /// When its last bit left.
    pub t: SimTime,
    /// The packet.
    pub pkt: Packet,
}

/// Departures (TxEnd) of a channel, in time order — the sequence whose
/// adjacency structure defines packet clustering.
pub fn departures(trace: &Trace, ch: ChannelId) -> Vec<Departure> {
    trace
        .records()
        .iter()
        .filter_map(|r| match r.ev {
            TraceEvent::TxEnd { ch: c, pkt, .. } if c == ch => Some(Departure { t: r.t, pkt }),
            _ => None,
        })
        .collect()
}

/// Deliveries of packets to an endpoint on `node`, filtered to one
/// connection and (optionally) to ACKs only. Used for ACK-spacing
/// analysis at a data source.
pub fn deliveries(trace: &Trace, node: NodeId, conn: ConnId, acks_only: bool) -> Vec<Departure> {
    trace
        .records()
        .iter()
        .filter_map(|r| match r.ev {
            TraceEvent::Deliver { node: n, pkt }
                if n == node && pkt.conn == conn && (!acks_only || pkt.is_ack()) =>
            {
                Some(Departure { t: r.t, pkt })
            }
            _ => None,
        })
        .collect()
}

/// Fraction of `[t0, t1]` a channel's transmitter was serializing,
/// computed from `TxStart`/`TxEnd` pairs clipped to the window.
pub fn utilization_in(trace: &Trace, ch: ChannelId, t0: SimTime, t1: SimTime) -> f64 {
    assert!(t1 > t0, "empty utilization window");
    let mut busy = SimDuration::ZERO;
    let mut started: Option<SimTime> = None;
    for r in trace.records() {
        match r.ev {
            TraceEvent::TxStart { ch: c, .. } if c == ch => {
                started = Some(r.t);
            }
            TraceEvent::TxEnd { ch: c, .. } if c == ch => {
                // A TxEnd without a seen TxStart means the transmission
                // began before the trace (clipped at t0 below via max).
                let s = started.take().unwrap_or(SimTime::ZERO);
                let lo = s.max(t0);
                let hi = r.t.min(t1);
                if hi > lo {
                    busy += hi.since(lo);
                }
            }
            _ => {}
        }
    }
    // A transmission still in progress at t1.
    if let Some(s) = started {
        let lo = s.max(t0);
        if t1 > lo {
            busy += t1.since(lo);
        }
    }
    busy.as_secs_f64() / t1.since(t0).as_secs_f64()
}

/// Count of data packets delivered to `node` for `conn` in `[t0, t1]` —
/// per-connection goodput measurement.
pub fn delivered_in(trace: &Trace, node: NodeId, conn: ConnId, t0: SimTime, t1: SimTime) -> u64 {
    trace
        .records()
        .iter()
        .filter(|r| {
            r.t >= t0
                && r.t <= t1
                && matches!(
                    r.ev,
                    TraceEvent::Deliver { node: n, pkt }
                        if n == node && pkt.conn == conn && pkt.is_data()
                )
        })
        .count() as u64
}

/// Per-connection goodput as a step series: data packets delivered to
/// `node` for `conn`, counted in consecutive bins of width `bin` over
/// `[t0, t1]`, expressed in packets/second. The paper's out-of-phase mode
/// is a bandwidth see-saw ("during this time the other connection is
/// getting most of the bandwidth", §4.3.1); this series makes it visible.
pub fn goodput_series(
    trace: &Trace,
    node: NodeId,
    conn: ConnId,
    t0: SimTime,
    t1: SimTime,
    bin: SimDuration,
) -> TimeSeries {
    assert!(!bin.is_zero(), "bin width must be positive");
    assert!(t1 > t0, "empty goodput window");
    let nbins = (t1.since(t0).as_nanos()).div_ceil(bin.as_nanos()) as usize;
    let mut counts = vec![0u64; nbins];
    for r in trace.records() {
        if r.t < t0 || r.t >= t1 {
            continue;
        }
        if let TraceEvent::Deliver { node: n, pkt } = r.ev {
            if n == node && pkt.conn == conn && pkt.is_data() {
                let idx = (r.t.since(t0).as_nanos() / bin.as_nanos()) as usize;
                counts[idx.min(nbins - 1)] += 1;
            }
        }
    }
    let mut ts = TimeSeries::new();
    let bin_s = bin.as_secs_f64();
    for (i, &c) in counts.iter().enumerate() {
        ts.push(t0 + bin * i as u64, c as f64 / bin_s);
    }
    ts
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_net::{DropReason, PacketId, PacketKind};

    fn pkt(conn: u32, seq: u64, kind: PacketKind) -> Packet {
        Packet {
            id: PacketId(seq),
            conn: ConnId(conn),
            kind,
            seq,
            size: 500,
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: SimTime::ZERO,
            retx: false,
            ce: false,
            ack: 0,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn queue_series_follows_enqueue_and_txend() {
        let mut tr = Trace::new();
        let ch = ChannelId(0);
        let p = pkt(0, 1, PacketKind::Data);
        tr.push(
            t(0),
            TraceEvent::Enqueue {
                ch,
                pkt: p,
                qlen_after: 1,
            },
        );
        tr.push(
            t(1),
            TraceEvent::Enqueue {
                ch,
                pkt: p,
                qlen_after: 2,
            },
        );
        tr.push(
            t(2),
            TraceEvent::TxEnd {
                ch,
                pkt: p,
                qlen_after: 1,
            },
        );
        tr.push(
            t(3),
            TraceEvent::Enqueue {
                ch: ChannelId(9),
                pkt: p,
                qlen_after: 77,
            },
        );
        let ts = queue_series(&tr, ch);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.value_at(t(1)), Some(2.0));
        assert_eq!(ts.value_at(t(2)), Some(1.0));
        assert_eq!(ts.max_in(t(0), t(10)), Some(2.0));
    }

    #[test]
    fn cwnd_series_filters_by_conn() {
        let mut tr = Trace::new();
        for (ms, conn, cwnd) in [(0u64, 1u32, 1.0), (10, 2, 5.0), (20, 1, 2.0)] {
            tr.push(
                t(ms),
                TraceEvent::Proto {
                    conn: ConnId(conn),
                    node: NodeId(0),
                    ev: ProtoEvent::Cwnd {
                        cwnd,
                        ssthresh: 64.0,
                    },
                },
            );
        }
        let ts = cwnd_series(&tr, ConnId(1));
        assert_eq!(ts.points().len(), 2);
        assert_eq!(ts.value_at(t(25)), Some(2.0));
    }

    #[test]
    fn drop_events_and_data_fraction() {
        let mut tr = Trace::new();
        let ch = ChannelId(0);
        tr.push(
            t(0),
            TraceEvent::Drop {
                ch,
                pkt: pkt(1, 5, PacketKind::Data),
                reason: DropReason::BufferFull,
                qlen: 20,
            },
        );
        tr.push(
            t(1),
            TraceEvent::Drop {
                ch,
                pkt: pkt(2, 9, PacketKind::Ack),
                reason: DropReason::BufferFull,
                qlen: 20,
            },
        );
        tr.push(
            t(2),
            TraceEvent::Drop {
                ch,
                pkt: pkt(1, 6, PacketKind::Data),
                reason: DropReason::Fault,
                qlen: 3,
            },
        );
        let drops = drop_events(&tr);
        assert_eq!(drops.len(), 3);
        assert_eq!(drops[0].conn, ConnId(1));
        assert!(!drops[1].is_data);
        assert_eq!(data_drop_fraction(&tr), Some(2.0 / 3.0));
        assert_eq!(data_drop_fraction(&Trace::new()), None);
    }

    #[test]
    fn utilization_clips_to_window() {
        let mut tr = Trace::new();
        let ch = ChannelId(0);
        let p = pkt(0, 1, PacketKind::Data);
        // Busy [10,30] and [50,70] ms.
        tr.push(t(10), TraceEvent::TxStart { ch, pkt: p });
        tr.push(
            t(30),
            TraceEvent::TxEnd {
                ch,
                pkt: p,
                qlen_after: 0,
            },
        );
        tr.push(t(50), TraceEvent::TxStart { ch, pkt: p });
        tr.push(
            t(70),
            TraceEvent::TxEnd {
                ch,
                pkt: p,
                qlen_after: 0,
            },
        );
        // Whole [0,100]: 40/100.
        assert!((utilization_in(&tr, ch, t(0), t(100)) - 0.4).abs() < 1e-12);
        // Window [20,60]: busy [20,30] + [50,60] = 20/40.
        assert!((utilization_in(&tr, ch, t(20), t(60)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_counts_inflight_transmission() {
        let mut tr = Trace::new();
        let ch = ChannelId(0);
        tr.push(
            t(90),
            TraceEvent::TxStart {
                ch,
                pkt: pkt(0, 1, PacketKind::Data),
            },
        );
        // No TxEnd before window end.
        assert!((utilization_in(&tr, ch, t(0), t(100)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn departures_are_channel_filtered_and_ordered() {
        let mut tr = Trace::new();
        let ch = ChannelId(1);
        for (ms, conn) in [(0u64, 1u32), (80, 1), (160, 2)] {
            tr.push(
                t(ms),
                TraceEvent::TxEnd {
                    ch,
                    pkt: pkt(conn, 1, PacketKind::Data),
                    qlen_after: 0,
                },
            );
        }
        tr.push(
            t(200),
            TraceEvent::TxEnd {
                ch: ChannelId(0),
                pkt: pkt(3, 1, PacketKind::Data),
                qlen_after: 0,
            },
        );
        let d = departures(&tr, ch);
        assert_eq!(d.len(), 3);
        assert_eq!(d[2].pkt.conn, ConnId(2));
    }

    #[test]
    fn deliveries_filter_acks() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            TraceEvent::Deliver {
                node: NodeId(0),
                pkt: pkt(1, 1, PacketKind::Ack),
            },
        );
        tr.push(
            t(1),
            TraceEvent::Deliver {
                node: NodeId(0),
                pkt: pkt(1, 2, PacketKind::Data),
            },
        );
        tr.push(
            t(2),
            TraceEvent::Deliver {
                node: NodeId(1),
                pkt: pkt(1, 3, PacketKind::Ack),
            },
        );
        tr.push(
            t(3),
            TraceEvent::Deliver {
                node: NodeId(0),
                pkt: pkt(2, 4, PacketKind::Ack),
            },
        );
        let acks = deliveries(&tr, NodeId(0), ConnId(1), true);
        assert_eq!(acks.len(), 1);
        let all = deliveries(&tr, NodeId(0), ConnId(1), false);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn delivered_in_counts_window() {
        let mut tr = Trace::new();
        for ms in [0u64, 10, 20, 30] {
            tr.push(
                t(ms),
                TraceEvent::Deliver {
                    node: NodeId(1),
                    pkt: pkt(1, ms, PacketKind::Data),
                },
            );
        }
        assert_eq!(delivered_in(&tr, NodeId(1), ConnId(1), t(5), t(25)), 2);
    }
}

#[cfg(test)]
mod goodput_tests {
    use super::*;
    use td_net::{PacketId, PacketKind};

    fn deliver(tr: &mut Trace, ms: u64, conn: u32) {
        tr.push(
            SimTime::from_millis(ms),
            TraceEvent::Deliver {
                node: NodeId(1),
                pkt: Packet {
                    id: PacketId(ms),
                    conn: ConnId(conn),
                    kind: PacketKind::Data,
                    seq: ms,
                    ack: 0,
                    size: 500,
                    src: NodeId(0),
                    dst: NodeId(1),
                    sent_at: SimTime::ZERO,
                    retx: false,
                    ce: false,
                },
            },
        );
    }

    #[test]
    fn bins_count_deliveries_as_rate() {
        let mut tr = Trace::new();
        // 3 deliveries in [0,1)s, 1 in [1,2)s, 0 in [2,3)s.
        for ms in [100u64, 500, 900, 1500] {
            deliver(&mut tr, ms, 0);
        }
        let ts = goodput_series(
            &tr,
            NodeId(1),
            ConnId(0),
            SimTime::ZERO,
            SimTime::from_secs(3),
            SimDuration::from_secs(1),
        );
        assert_eq!(ts.points().len(), 3);
        assert_eq!(ts.value_at(SimTime::from_millis(500)), Some(3.0));
        assert_eq!(ts.value_at(SimTime::from_millis(1500)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_millis(2500)), Some(0.0));
    }

    #[test]
    fn filters_conn_and_window() {
        let mut tr = Trace::new();
        deliver(&mut tr, 100, 0);
        deliver(&mut tr, 200, 1); // other connection
        deliver(&mut tr, 5000, 0); // outside window
        let ts = goodput_series(
            &tr,
            NodeId(1),
            ConnId(0),
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert_eq!(ts.value_at(SimTime::from_millis(500)), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_rejected() {
        let tr = Trace::new();
        let _ = goodput_series(
            &tr,
            NodeId(1),
            ConnId(0),
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimDuration::ZERO,
        );
    }
}
