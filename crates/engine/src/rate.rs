//! Bandwidth and exact transmission-time arithmetic.

use crate::SimDuration;
use std::fmt;

/// A link bandwidth in bits per second.
///
/// Transmission times are computed exactly in integer arithmetic:
/// `time = ceil(bits * 1e9 / rate)` nanoseconds, using a 128-bit
/// intermediate so no realistic packet size or rate can overflow. For the
/// paper's parameters the division is exact (e.g. 500 bytes at 50 Kbit/s is
/// exactly 80 ms), so rounding never perturbs the reproduced dynamics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rate {
    bits_per_sec: u64,
}

impl Rate {
    /// A rate of `bps` bits per second.
    ///
    /// # Panics
    /// Panics if `bps` is zero — a zero-bandwidth link can never transmit,
    /// and allowing it would turn arithmetic errors into infinite hangs.
    pub fn from_bps(bps: u64) -> Self {
        assert!(bps > 0, "link rate must be positive");
        Rate { bits_per_sec: bps }
    }

    /// A rate of `kbps` kilobits per second (decimal kilo, as in the paper's
    /// "50 Kbps" bottleneck).
    pub fn from_kbps(kbps: u64) -> Self {
        Self::from_bps(kbps * 1_000)
    }

    /// A rate of `mbps` megabits per second.
    pub fn from_mbps(mbps: u64) -> Self {
        Self::from_bps(mbps * 1_000_000)
    }

    /// The raw rate in bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }

    /// Exact time to serialize `bytes` onto a link of this rate, rounded up
    /// to the nearest nanosecond.
    pub fn transmission_time(self, bytes: u32) -> SimDuration {
        let bits = bytes as u128 * 8;
        let nanos = (bits * 1_000_000_000).div_ceil(self.bits_per_sec as u128);
        debug_assert!(
            nanos <= u64::MAX as u128,
            "transmission time overflows u64 ns"
        );
        SimDuration::from_nanos(nanos as u64)
    }

    /// How many bytes this rate moves in `d` (rounded down). Used for
    /// utilization accounting and pacing.
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        let bits = self.bits_per_sec as u128 * d.as_nanos() as u128 / 1_000_000_000;
        (bits / 8) as u64
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.bits_per_sec;
        if bps.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", bps / 1_000_000)
        } else if bps.is_multiple_of(1_000) {
            write!(f, "{}Kbps", bps / 1_000)
        } else {
            write!(f, "{bps}bps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bottleneck_times_are_exact() {
        let bottleneck = Rate::from_kbps(50);
        assert_eq!(
            bottleneck.transmission_time(500),
            SimDuration::from_millis(80)
        );
        assert_eq!(
            bottleneck.transmission_time(50),
            SimDuration::from_millis(8)
        );
        let host = Rate::from_mbps(10);
        assert_eq!(host.transmission_time(500), SimDuration::from_micros(400));
        assert_eq!(host.transmission_time(50), SimDuration::from_micros(40));
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(Rate::from_kbps(50).transmission_time(0), SimDuration::ZERO);
    }

    #[test]
    fn rounds_up_inexact_divisions() {
        // 1 byte at 3 bps: 8/3 s = 2.666...s -> 2666666667 ns.
        let t = Rate::from_bps(3).transmission_time(1);
        assert_eq!(t.as_nanos(), 2_666_666_667);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Rate::from_bps(0);
    }

    #[test]
    fn bytes_in_inverts_transmission_time() {
        let r = Rate::from_kbps(50);
        let t = r.transmission_time(500);
        assert_eq!(r.bytes_in(t), 500);
    }

    #[test]
    fn display() {
        assert_eq!(Rate::from_kbps(50).to_string(), "50Kbps");
        assert_eq!(Rate::from_mbps(10).to_string(), "10Mbps");
        assert_eq!(Rate::from_bps(1234).to_string(), "1234bps");
    }
}
