//! Property tests for the duplex (bidirectional, piggybacking) endpoint:
//! reliability and conservation must hold for arbitrary buffer sizes,
//! delays, window caps, and delayed-ACK settings.

use proptest::prelude::*;
use tahoe_dynamics::engine::{Rate, SimDuration, SimTime};
use tahoe_dynamics::net::{ConnId, DisciplineKind, FaultModel, World};
use tahoe_dynamics::tcp::{DelayedAck, ReceiverConfig, SenderConfig, TcpDuplex};

#[derive(Debug, Clone)]
struct Cfg {
    seed: u64,
    tau_ms: u64,
    buffer: Option<u32>,
    maxwnd: u64,
    delack: bool,
    secs: u64,
}

fn cfg() -> impl Strategy<Value = Cfg> {
    (
        1u64..500,
        1u64..1500,
        prop_oneof![Just(None), (3u32..40).prop_map(Some)],
        2u64..40,
        prop::bool::ANY,
        30u64..90,
    )
        .prop_map(|(seed, tau_ms, buffer, maxwnd, delack, secs)| Cfg {
            seed,
            tau_ms,
            buffer,
            maxwnd,
            delack,
            secs,
        })
}

fn run(
    c: &Cfg,
) -> (
    World,
    tahoe_dynamics::net::EndpointId,
    tahoe_dynamics::net::EndpointId,
) {
    let mut w = World::new(c.seed);
    let a = w.add_host("A", SimDuration::from_micros(100));
    let b = w.add_host("B", SimDuration::from_micros(100));
    for (x, y) in [(a, b), (b, a)] {
        w.add_channel(
            x,
            y,
            Rate::from_kbps(50),
            SimDuration::from_millis(c.tau_ms),
            c.buffer,
            DisciplineKind::DropTail.build(),
            FaultModel::NONE,
        );
    }
    let scfg = SenderConfig {
        maxwnd: c.maxwnd,
        ..SenderConfig::paper()
    };
    let rcfg = ReceiverConfig {
        delayed_ack: c.delack.then(DelayedAck::default),
        ..ReceiverConfig::paper()
    };
    let ea = w.attach(a, b, ConnId(0), TcpDuplex::boxed(scfg, rcfg));
    let eb = w.attach(b, a, ConnId(0), TcpDuplex::boxed(scfg, rcfg));
    w.start_at(ea, SimTime::ZERO);
    w.start_at(eb, SimTime::from_millis(c.seed % 997));
    w.run_until(SimTime::from_secs(c.secs));
    (w, ea, eb)
}

fn duplex(w: &World, ep: tahoe_dynamics::net::EndpointId) -> &TcpDuplex {
    w.endpoint(ep)
        .unwrap()
        .as_any()
        .downcast_ref::<TcpDuplex>()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both directions deliver contiguous, exactly-once streams.
    #[test]
    fn duplex_is_reliable(c in cfg()) {
        let (w, ea, eb) = run(&c);
        for ep in [ea, eb] {
            let d = duplex(&w, ep);
            prop_assert_eq!(d.cumulative_ack(), d.stats().delivered);
        }
    }

    /// Both directions make progress (no deadlock for any combination of
    /// options — the mutual-clocking loop must be live).
    #[test]
    fn duplex_never_deadlocks(c in cfg()) {
        let (w, ea, eb) = run(&c);
        // At 12.5 pkt/s peak, even a badly congested run moves data.
        let floor = c.secs / 4;
        for ep in [ea, eb] {
            let d = duplex(&w, ep);
            prop_assert!(
                d.stats().delivered >= floor,
                "delivered {} in {} s: {:?}",
                d.stats().delivered,
                c.secs,
                c
            );
        }
    }

    /// Ack accounting is exhaustive: every received data packet's ack went
    /// out pure or piggybacked (within the in-flight tail).
    #[test]
    fn duplex_ack_accounting(c in cfg()) {
        let (w, ea, eb) = run(&c);
        for ep in [ea, eb] {
            let d = duplex(&w, ep);
            let s = d.stats();
            let acked_somehow = s.pure_acks_sent + s.piggybacked_acks;
            // Every ack answers an arriving data packet: in-order
            // deliveries plus duplicates from go-back-N (e.g. after a
            // spurious RTO when the queueing RTT outgrows the initial
            // timer) plus out-of-order arrivals. The duplicates are
            // bounded by what the peer retransmitted.
            let peer = duplex(&w, if ep == ea { eb } else { ea }).stats();
            // Plus up to a window of out-of-order segments acked on
            // arrival but still in the reassembly queue at the cutoff.
            prop_assert!(
                acked_somehow <= s.delivered + peer.retransmits + c.maxwnd + 2,
                "{acked_somehow} acks vs {} deliveries + {} peer retx (maxwnd {})",
                s.delivered,
                peer.retransmits,
                c.maxwnd
            );
            prop_assert!(acked_somehow * 3 >= s.delivered, "too few acks: {s:?}");
        }
    }
}
