//! # td-experiments — the paper's evaluation, reproduced
//!
//! One module per figure or in-text claim of Zhang, Shenker & Clark
//! (SIGCOMM '91). Each module exposes a `scenario(..)` builder and a
//! `report(..)` runner returning a [`Report`] of paper-vs-measured rows,
//! ASCII figures, and CSV exports. The `td-repro` binary drives them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod chaos;
pub mod conjecture;
pub mod crosstraffic;
pub mod decbit;
pub mod delayed_ack;
pub mod fig2;
pub mod fig3;
pub mod fig45;
pub mod fig67;
pub mod fig89;
pub mod journal;
pub mod mc;
pub mod modes;
pub mod multihop;
pub mod oneway_util;
pub mod piggyback;
pub mod registry;
pub mod reno;
pub mod report;
pub mod rtt_spread;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod short_flows;
pub mod simcli;
pub mod sweep;

pub use report::{Report, Row};
pub use scenario::{ConnSpec, Run, Scenario, ACK_SERVICE, DATA_SERVICE};

use std::sync::atomic::{AtomicU32, Ordering};

/// Worker-shard count for shard-aware experiments (`--shards N`),
/// defaulting to one shard. A process-wide setting rather than a
/// per-experiment parameter so the registry's uniform
/// `fn(seed, profile)` runner signature — which the resumable-sweep
/// journal format depends on — stays unchanged. Results are
/// byte-identical for every value; only wall-clock changes.
static SHARDS: AtomicU32 = AtomicU32::new(1);

/// Set the shard count used by shard-aware experiments.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn set_shards(n: u32) {
    assert!(n >= 1, "--shards must be at least 1");
    SHARDS.store(n, Ordering::SeqCst);
}

/// The configured shard count (see [`set_shards`]).
pub fn shards() -> u32 {
    SHARDS.load(Ordering::SeqCst)
}

thread_local! {
    /// Per-thread simulated-duration override (see [`override_sim_secs`]).
    /// Thread-local — unlike [`shards`] — because `td-serve` workers run
    /// concurrent requests with different overrides in one process; a
    /// process-global would race.
    static SIM_SECS_OVERRIDE: std::cell::Cell<Option<u64>> =
        const { std::cell::Cell::new(None) };
}

/// Restores the previous sim-secs override when dropped, so a worker
/// that unwinds mid-request cannot leak its override into the next one.
#[derive(Debug)]
pub struct SimSecsOverrideGuard {
    prev: Option<u64>,
}

impl Drop for SimSecsOverrideGuard {
    fn drop(&mut self) {
        SIM_SECS_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Override, for the current thread, the simulated duration every
/// registry entry that uses the standard profile→seconds mapping will
/// run for. This is `td-serve`'s `sim_secs` config override: the
/// daemon's worker arms it for the span of one request. Entries with
/// bespoke duration logic (e.g. the sharded `scale` rungs) ignore it.
pub fn override_sim_secs(secs: u64) -> SimSecsOverrideGuard {
    let prev = SIM_SECS_OVERRIDE.with(|c| c.replace(Some(secs)));
    SimSecsOverrideGuard { prev }
}

/// The current thread's sim-secs override, if armed.
pub fn sim_secs_override() -> Option<u64> {
    SIM_SECS_OVERRIDE.with(std::cell::Cell::get)
}
