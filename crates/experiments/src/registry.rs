//! Experiment registry: every reproduced figure/table, addressable by id.

use crate::report::Report;

/// Run profile: how much simulated time to give each experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Short runs for CI / quick checks (minutes of simulated time).
    Quick,
    /// Paper-scale runs (the durations behind EXPERIMENTS.md).
    Full,
}

/// One registered experiment.
pub struct Entry {
    /// Id used on the `td-repro` command line (`fig2`, `abl-pacing`, …).
    pub id: &'static str,
    /// One-line description.
    pub about: &'static str,
    runner: fn(u64, Profile) -> Report,
}

impl Entry {
    /// Build an ad-hoc entry outside the registry. Used by harness tests
    /// and benches that need a controlled runner (e.g. one that panics on
    /// purpose to exercise the pool's fault isolation) without touching
    /// the presentation-order registry below.
    pub fn new(id: &'static str, about: &'static str, runner: fn(u64, Profile) -> Report) -> Self {
        Entry { id, about, runner }
    }

    /// Execute with the given seed and profile.
    pub fn run(&self, seed: u64, profile: Profile) -> Report {
        (self.runner)(seed, profile)
    }
}

fn secs(profile: Profile, quick: u64, full: u64) -> u64 {
    match profile {
        Profile::Quick => quick,
        Profile::Full => full,
    }
}

/// All experiments, in presentation order.
pub fn registry() -> Vec<Entry> {
    vec![
        Entry {
            id: "fig2",
            about: "One-way baseline: 3 connections, tau = 1 s (Fig. 2)",
            runner: |seed, p| crate::fig2::report(seed, secs(p, 600, 2000)),
        },
        Entry {
            id: "fig3",
            about: "Ten connections two-way, rapid queue fluctuations (Fig. 3)",
            runner: |seed, p| crate::fig3::report(seed, secs(p, 400, 1000)),
        },
        Entry {
            id: "fig45",
            about: "1+1 two-way, small pipe: ACK-compression + out-of-phase (Figs. 4-5)",
            runner: |seed, p| crate::fig45::report(seed, secs(p, 500, 1000)),
        },
        Entry {
            id: "fig67",
            about: "1+1 two-way, large pipe: in-phase mode (Figs. 6-7)",
            runner: |seed, p| crate::fig67::report(seed, secs(p, 800, 2000)),
        },
        Entry {
            id: "fig8",
            about: "Fixed windows 30/25, small pipe (Fig. 8)",
            runner: |seed, p| crate::fig89::report_fig8(seed, secs(p, 120, 400)),
        },
        Entry {
            id: "fig9",
            about: "Fixed windows 30/25, large pipe (Fig. 9)",
            runner: |seed, p| crate::fig89::report_fig9(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "oneway-util",
            about: "One-way utilization vs pipe and buffer (in-text, Sec. 3.1)",
            runner: |seed, p| crate::oneway_util::report(seed, secs(p, 400, 800)),
        },
        Entry {
            id: "conjecture",
            about: "Zero-length-ACK fixed-window conjecture sweep (Sec. 4.3.3)",
            runner: |seed, p| crate::conjecture::report(seed, secs(p, 200, 500)),
        },
        Entry {
            id: "delayed-ack",
            about: "Delayed-ACK option fragments clusters (Sec. 5)",
            runner: |seed, p| crate::delayed_ack::report(seed, secs(p, 400, 1000)),
        },
        Entry {
            id: "multihop",
            about: "Four switches, 50 connections (Sec. 5 / [19])",
            runner: |seed, p| crate::multihop::report(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "scale",
            about: "Cluster chain of Sec. 5 units, 10k+ connections full (sharded)",
            runner: crate::scale::report,
        },
        Entry {
            id: "decbit",
            about: "DECbit AIMD under two-way traffic (Sec. 5 / OSI testbed)",
            runner: |seed, p| crate::decbit::report(seed, secs(p, 400, 1000)),
        },
        Entry {
            id: "piggyback",
            about: "Duplex connection with piggybacked ACKs (Sec. 2.1 third trigger)",
            runner: |seed, p| crate::piggyback::report(seed, secs(p, 400, 1000)),
        },
        Entry {
            id: "modes",
            about: "Synchronization-mode census across start phases (Sec. 4.3.3)",
            runner: |seed, p| crate::modes::report(seed, secs(p, 300, 600)),
        },
        Entry {
            id: "rtt-spread",
            about: "Unequal RTTs break complete clustering (Sec. 5)",
            runner: |seed, p| crate::rtt_spread::report(seed, secs(p, 600, 1000)),
        },
        Entry {
            id: "crosstraffic",
            about: "Poisson cross-traffic vs clustering (Sec. 6 open question)",
            runner: |seed, p| crate::crosstraffic::report(seed, secs(p, 400, 800)),
        },
        Entry {
            id: "short-flows",
            about: "FCT of 100-packet transfers under the fig45 dynamics",
            runner: |seed, p| crate::short_flows::report(seed, secs(p, 8, 20) as usize),
        },
        Entry {
            id: "reno",
            about: "TCP Reno under two-way traffic: structural vs Tahoe-specific findings",
            runner: |seed, p| crate::reno::report(seed, secs(p, 400, 800)),
        },
        Entry {
            id: "abl-pacing",
            about: "Ablation: paced vs nonpaced sender (Sec. 1/6 conjecture)",
            runner: |seed, p| crate::ablations::report_pacing(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "abl-increment",
            about: "Ablation: modified vs original avoidance increment (Sec. 2.1)",
            runner: |seed, p| crate::ablations::report_increment(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "abl-red",
            about: "Ablation: RED breaks drop-tail's loss synchronization",
            runner: |seed, p| crate::ablations::report_red(seed, secs(p, 600, 1500)),
        },
        Entry {
            id: "abl-discipline",
            about: "Ablation: drop-tail vs Random Drop vs Fair Queueing",
            runner: |seed, p| crate::ablations::report_discipline(seed, secs(p, 300, 800)),
        },
        Entry {
            id: "chaos",
            about: "Robustness drill: recovery from scheduled outages and burst loss",
            runner: |seed, p| crate::chaos::report(seed, secs(p, 120, 400)),
        },
    ]
}

/// Entries addressable with `--only` but excluded from `--all`:
/// resource-budget and robustness drills rather than paper claims.
pub fn hidden() -> Vec<Entry> {
    vec![
        Entry {
            id: "scale100k",
            about: "100k-connection rung: 640-cluster chain, trace off, pinned RSS budget",
            runner: crate::scale::report_100k,
        },
        Entry {
            id: "scale1m",
            about: "1M-connection rung: 6400-cluster chain, compressed routes, pinned RSS budget",
            runner: crate::scale::report_1m,
        },
        Entry {
            id: "mc_fig45",
            about: "Bounded model checking: fault placements across one fig45 congestion epoch",
            runner: crate::mc::report,
        },
    ]
}

/// Look up one experiment by id, including hidden entries.
pub fn find(id: &str) -> Option<Entry> {
    registry().into_iter().chain(hidden()).find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<_> = registry().iter().map(|e| e.id).collect();
        ids.extend(hidden().iter().map(|e| e.id));
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 21);
    }

    #[test]
    fn find_works() {
        assert!(find("fig2").is_some());
        assert!(find("nonsense").is_none());
        // Hidden entries resolve by id but stay out of the listing.
        assert!(find("scale100k").is_some());
        assert!(find("scale1m").is_some());
        assert!(find("mc_fig45").is_some());
        assert!(registry()
            .iter()
            .all(|e| e.id != "scale100k" && e.id != "scale1m" && e.id != "mc_fig45"));
    }

    #[test]
    fn quick_profile_runs_an_entry() {
        let rep = find("fig8").unwrap().run(1, Profile::Quick);
        assert_eq!(rep.id, "fig8");
        assert!(!rep.rows.is_empty());
    }
}
