//! The TCP receiver (data sink).
//!
//! Mirrors the BSD 4.3-Tahoe receive path for the paper's workload
//! (one-directional bulk transfer, pre-established connection):
//!
//! * Cumulative ACKs: every ACK carries the highest in-order sequence
//!   number received.
//! * A reassembly queue holds out-of-order segments, so one retransmission
//!   can be acknowledged together with everything buffered behind it.
//! * Out-of-order and duplicate data trigger an *immediate* ACK — these
//!   duplicate ACKs are the sender's fast-retransmit signal.
//! * The delayed-ACK option (paper §2.1/§5): in-order data is not ACKed
//!   until a second segment arrives or a conservative timer fires. The
//!   paper's third trigger — piggy-backing on reverse-direction data —
//!   cannot arise in this workload, where each connection is one-way and
//!   reverse traffic belongs to a *different* connection.

use crate::config::ReceiverConfig;
use std::any::Any;
use std::collections::BTreeSet;
use td_engine::{SnapError, SnapReader, SnapWriter};
use td_net::{Ctx, Endpoint, Packet, PacketKind, ProtoEvent};

const TOKEN_DELACK: u64 = 2;

/// Counters exposed after a run.
#[derive(Clone, Copy, Default, Debug)]
pub struct ReceiverStats {
    /// Data packets delivered in order (including via reassembly).
    pub delivered: u64,
    /// Data packets that arrived out of order.
    pub out_of_order: u64,
    /// Data packets that were duplicates of already-delivered data.
    pub duplicates: u64,
    /// ACK packets transmitted.
    pub acks_sent: u64,
    /// ACKs that were delayed and then coalesced with a later segment's.
    pub acks_coalesced: u64,
}

/// The receiving endpoint of one connection.
pub struct TcpReceiver {
    cfg: ReceiverConfig,
    /// Next in-order sequence number expected (first is 1).
    next_expected: u64,
    /// Out-of-order segments above `next_expected` (reassembly queue).
    reassembly: BTreeSet<u64>,
    /// Delayed-ACK pending flag.
    ack_pending: bool,
    /// A CE-marked data packet arrived since the last ACK went out; the
    /// next ACK echoes the mark (DECbit feedback path).
    ce_pending: bool,
    stats: ReceiverStats,
}

impl TcpReceiver {
    /// A fresh receiver.
    pub fn new(cfg: ReceiverConfig) -> Self {
        TcpReceiver {
            cfg,
            next_expected: 1,
            reassembly: BTreeSet::new(),
            ack_pending: false,
            ce_pending: false,
            stats: ReceiverStats::default(),
        }
    }

    /// A boxed receiver, ready for [`td_net::World::attach`].
    pub fn boxed(cfg: ReceiverConfig) -> Box<dyn Endpoint> {
        Box::new(Self::new(cfg))
    }

    /// Run counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Highest in-order sequence number received so far.
    pub fn cumulative_ack(&self) -> u64 {
        self.next_expected - 1
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_>) {
        self.ack_pending = false;
        self.stats.acks_sent += 1;
        let ce = std::mem::take(&mut self.ce_pending);
        ctx.send_marked(
            PacketKind::Ack,
            self.cumulative_ack(),
            self.cfg.ack_size,
            false,
            ce,
        );
    }
}

impl Endpoint for TcpReceiver {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        debug_assert!(pkt.is_data(), "receiver got a non-data packet");
        self.ce_pending |= pkt.ce;
        let seq = pkt.seq;

        if seq < self.next_expected {
            // Duplicate of delivered data (a go-back-N retransmission).
            // BSD ACKs these immediately even with delayed ACKs on.
            self.stats.duplicates += 1;
            self.send_ack(ctx);
            return;
        }

        if seq > self.next_expected {
            // A hole precedes this segment: buffer it, ACK immediately
            // (the duplicate ACK that drives fast retransmit).
            self.stats.out_of_order += 1;
            self.reassembly.insert(seq);
            self.send_ack(ctx);
            return;
        }

        // In-order: deliver it plus anything contiguous in the reassembly
        // queue.
        self.stats.delivered += 1;
        self.next_expected += 1;
        while self.reassembly.remove(&self.next_expected) {
            self.stats.delivered += 1;
            self.next_expected += 1;
        }
        ctx.emit(ProtoEvent::InOrder {
            seq: self.cumulative_ack(),
        });

        match self.cfg.delayed_ack {
            None => self.send_ack(ctx),
            Some(del) => {
                if self.ack_pending {
                    // Second segment since the last ACK: ACK both now.
                    self.stats.acks_coalesced += 1;
                    self.send_ack(ctx);
                } else {
                    self.ack_pending = true;
                    ctx.set_timer(del.max_delay, TOKEN_DELACK);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        debug_assert_eq!(token, TOKEN_DELACK);
        // The timer is not cancelled when the ACK goes out early; it just
        // finds nothing to do (cheaper than tracking handles, identical
        // behaviour).
        if self.ack_pending {
            self.send_ack(ctx);
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.write_u64(self.next_expected);
        w.write_u64(self.reassembly.len() as u64);
        for seq in &self.reassembly {
            w.write_u64(*seq); // BTreeSet iterates sorted: deterministic
        }
        w.write_bool(self.ack_pending);
        w.write_bool(self.ce_pending);
        w.write_u64(self.stats.delivered);
        w.write_u64(self.stats.out_of_order);
        w.write_u64(self.stats.duplicates);
        w.write_u64(self.stats.acks_sent);
        w.write_u64(self.stats.acks_coalesced);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_expected = r.read_u64()?;
        let n = r.read_u64()?;
        self.reassembly.clear();
        for _ in 0..n {
            self.reassembly.insert(r.read_u64()?);
        }
        self.ack_pending = r.read_bool()?;
        self.ce_pending = r.read_bool()?;
        self.stats.delivered = r.read_u64()?;
        self.stats.out_of_order = r.read_u64()?;
        self.stats.duplicates = r.read_u64()?;
        self.stats.acks_sent = r.read_u64()?;
        self.stats.acks_coalesced = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn progress(&self) -> td_net::EndpointProgress {
        td_net::EndpointProgress {
            // A receiver never knows how much data is coming; it opts out
            // of stall attribution but still describes its state.
            finished: None,
            detail: format!(
                "next_expected={} reassembly={}",
                self.next_expected,
                self.reassembly.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DelayedAck;
    use std::any::Any;
    use td_engine::{Rate, SimDuration, SimTime};
    use td_net::{ConnId, DisciplineKind, FaultModel, NodeId, TraceEvent, World};

    /// Scripted data source: sends a fixed list of (time, seq) data packets.
    struct Script {
        sends: Vec<(SimTime, u64)>,
        acks: Vec<u64>,
    }
    impl Endpoint for Script {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Arm a timer per scheduled send; token = index.
            for (i, (t, _)) in self.sends.iter().enumerate() {
                ctx.set_timer(t.since(SimTime::ZERO), i as u64);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
            assert!(pkt.is_ack());
            self.acks.push(pkt.seq);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            let (_, seq) = self.sends[token as usize];
            ctx.send(PacketKind::Data, seq, 500, false);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Fast symmetric world: negligible delays so ordering is the script's.
    fn run_script(
        sends: Vec<(SimTime, u64)>,
        cfg: ReceiverConfig,
    ) -> (Vec<u64>, ReceiverStats, u64) {
        let mut w = World::new(1);
        let h0 = w.add_host("src", SimDuration::from_nanos(1));
        let h1 = w.add_host("dst", SimDuration::from_nanos(1));
        for (a, b) in [(h0, h1), (h1, h0)] {
            w.add_channel(
                a,
                b,
                Rate::from_mbps(1000),
                SimDuration::from_nanos(1),
                None,
                DisciplineKind::DropTail.build(),
                FaultModel::NONE,
            );
        }
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Script {
                sends,
                acks: vec![],
            }),
        );
        let dst = w.attach(h1, h0, ConnId(0), TcpReceiver::boxed(cfg));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        let acks = w
            .endpoint(src)
            .unwrap()
            .as_any()
            .downcast_ref::<Script>()
            .unwrap()
            .acks
            .clone();
        let rx = w
            .endpoint(dst)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpReceiver>()
            .unwrap();
        let ack_bytes: u64 = w
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.ev {
                TraceEvent::Send {
                    node: NodeId(1),
                    pkt,
                } => Some(pkt.size as u64),
                _ => None,
            })
            .sum();
        (acks, rx.stats(), ack_bytes)
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn in_order_data_is_acked_cumulatively() {
        let (acks, st, _) = run_script(
            vec![(at(1), 1), (at(2), 2), (at(3), 3)],
            ReceiverConfig::paper(),
        );
        assert_eq!(acks, vec![1, 2, 3]);
        assert_eq!(st.delivered, 3);
        assert_eq!(st.acks_sent, 3);
        assert_eq!(st.out_of_order, 0);
    }

    #[test]
    fn hole_generates_duplicate_acks_then_jump() {
        // 1 arrives, 3 and 4 arrive (2 missing), then 2 arrives.
        let (acks, st, _) = run_script(
            vec![(at(1), 1), (at(2), 3), (at(3), 4), (at(4), 2)],
            ReceiverConfig::paper(),
        );
        // ACK 1, dup ACK 1, dup ACK 1, then the jump to 4.
        assert_eq!(acks, vec![1, 1, 1, 4]);
        assert_eq!(st.delivered, 4);
        assert_eq!(st.out_of_order, 2);
    }

    #[test]
    fn duplicate_data_acked_immediately() {
        let (acks, st, _) = run_script(
            vec![(at(1), 1), (at(2), 2), (at(3), 1)],
            ReceiverConfig::paper(),
        );
        assert_eq!(acks, vec![1, 2, 2]);
        assert_eq!(st.duplicates, 1);
        assert_eq!(st.delivered, 2);
    }

    #[test]
    fn delayed_ack_coalesces_pairs() {
        let cfg = ReceiverConfig {
            delayed_ack: Some(DelayedAck {
                max_delay: SimDuration::from_millis(200),
            }),
            ..ReceiverConfig::paper()
        };
        // Four quick segments → two coalesced ACKs (2 and 4).
        let (acks, st, _) = run_script(vec![(at(1), 1), (at(2), 2), (at(3), 3), (at(4), 4)], cfg);
        assert_eq!(acks, vec![2, 4]);
        assert_eq!(st.acks_sent, 2);
        assert_eq!(st.acks_coalesced, 2);
    }

    #[test]
    fn delayed_ack_timer_fires_for_lone_segment() {
        let cfg = ReceiverConfig {
            delayed_ack: Some(DelayedAck {
                max_delay: SimDuration::from_millis(200),
            }),
            ..ReceiverConfig::paper()
        };
        let (acks, st, _) = run_script(vec![(at(1), 1)], cfg);
        assert_eq!(acks, vec![1], "timer must flush the withheld ACK");
        assert_eq!(st.acks_sent, 1);
        assert_eq!(st.acks_coalesced, 0);
    }

    #[test]
    fn delayed_ack_out_of_order_is_immediate() {
        let cfg = ReceiverConfig {
            delayed_ack: Some(DelayedAck {
                max_delay: SimDuration::from_millis(200),
            }),
            ..ReceiverConfig::paper()
        };
        // Segment 2 arrives first: must be ACKed at once despite delack.
        let (acks, _, _) = run_script(vec![(at(1), 2), (at(2), 1)], cfg);
        assert_eq!(acks[0], 0, "immediate dup ACK of nothing-received");
        assert_eq!(*acks.last().unwrap(), 2);
    }

    #[test]
    fn zero_size_acks_send_no_bytes() {
        let (acks, _, ack_bytes) =
            run_script(vec![(at(1), 1), (at(2), 2)], ReceiverConfig::zero_ack());
        assert_eq!(acks, vec![1, 2]);
        assert_eq!(ack_bytes, 0);
    }

    #[test]
    fn reassembly_handles_arbitrary_permutation() {
        // 5,3,1,4,2 → in-order delivery of all five.
        let (acks, st, _) = run_script(
            vec![(at(1), 5), (at(2), 3), (at(3), 1), (at(4), 4), (at(5), 2)],
            ReceiverConfig::paper(),
        );
        assert_eq!(st.delivered, 5);
        assert_eq!(*acks.last().unwrap(), 5);
        assert_eq!(acks, vec![0, 0, 1, 1, 5]);
    }
}
