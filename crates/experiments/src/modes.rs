//! Synchronization-mode census (§4.3.3's "other, less common, modes").
//!
//! The paper's taxonomy — out-of-phase for small pipes, in-phase for large
//! — is qualified with "usually", and §4.3.3 reports modes that do not fit
//! it: in-phase with double drops, alternating single/double drops, and an
//! occasional mode dropping ~10 packets at once. This experiment runs the
//! 1+1 small-pipe configuration across many start phases and tabulates
//! which mode each lands in, quantifying "usually":
//!
//! * the dominant mode must be out-of-phase at the ~0.70 utilization
//!   plateau (Figures 4–5);
//! * the minority modes must still be recognizable (classified in-phase
//!   with higher utilization), not unclassifiable chaos;
//! * the large-pipe configuration must be in-phase across (nearly) all
//!   phases, with no out-of-phase stragglers.

use crate::fig45;
use crate::fig67;
use crate::report::Report;
use crate::sweep::ReplicateSweep;
use td_analysis::sync::{classify_sync, SyncMode};

/// Classify one run's mode.
fn mode_of(run: &crate::scenario::Run) -> (SyncMode, f64, f64) {
    let (m, r) = classify_sync(
        &run.cwnd(run.fwd[0]),
        &run.cwnd(run.rev[0]),
        run.t0,
        run.t1,
        800,
        5,
        0.15,
    );
    let util = (run.util12() + run.util21()) / 2.0;
    (m, r, util)
}

/// Run and evaluate the mode census.
pub fn report(seed0: u64, duration_s: u64) -> Report {
    let seeds: Vec<u64> = (seed0..seed0 + 10).collect();
    let mut rep = Report::new(
        "tbl-modes",
        "Synchronization-mode census across start phases (paper Sec. 4.3.3)",
        &format!(
            "seeds {}..{}, {duration_s} s per run, 1+1 two-way",
            seeds[0],
            seeds.last().unwrap()
        ),
    );

    // Small pipe: out-of-phase should dominate. The ten start phases are
    // independent runs — a ReplicateSweep fans them over idle job slots;
    // each worker classifies its own run (dropping the trace worker-side)
    // and the census is folded in seed order, so the tallies are
    // identical to the old sequential loop at any job count.
    let census = ReplicateSweep::explicit("tbl-modes", seeds.clone());
    let small: Vec<(SyncMode, f64)> = census.run(|seed, _| {
        let run = fig45::scenario(seed, duration_s, 20).run();
        let (m, _r, util) = mode_of(&run);
        (m, util)
    });
    let mut counts = (0usize, 0usize, 0usize); // (out, in, indeterminate)
    let mut out_utils = Vec::new();
    let mut in_utils = Vec::new();
    let mut in_seeds = Vec::new();
    for (&seed, &(m, util)) in seeds.iter().zip(&small) {
        match m {
            SyncMode::OutOfPhase => {
                counts.0 += 1;
                out_utils.push(util);
            }
            SyncMode::InPhase => {
                counts.1 += 1;
                in_utils.push(util);
                in_seeds.push(seed);
            }
            SyncMode::Indeterminate => counts.2 += 1,
        }
    }
    rep.check(
        "small pipe: mode distribution",
        "out-of-phase 'usually'; other modes exist but are minority",
        format!(
            "{} out-of-phase, {} in-phase, {} indeterminate",
            counts.0, counts.1, counts.2
        ),
        counts.0 * 3 >= seeds.len() * 2 && counts.2 == 0,
    );
    if !out_utils.is_empty() {
        let u = td_analysis::mean(&out_utils);
        rep.check(
            "small pipe: out-of-phase mode utilization",
            "~0.70",
            format!("{u:.3} (n = {})", out_utils.len()),
            (0.6..=0.8).contains(&u),
        );
    }
    if !in_utils.is_empty() {
        let u = td_analysis::mean(&in_utils);
        rep.check(
            "small pipe: minority in-phase mode utilization",
            "higher than the out-of-phase plateau",
            format!("{u:.3} (n = {})", in_utils.len()),
            u > td_analysis::mean(&out_utils) + 0.05,
        );
        // The paper's own description of these modes (Sec. 4.3.3): "an
        // in-phase mode in which both connections experience double drops
        // every congestion epoch. Some modes alternate between the single
        // drop and double drop behavior." Verify the drop pattern of the
        // first in-phase seed matches.
        if let Some(&seed) = in_seeds.first() {
            let run = fig45::scenario(seed, duration_s, 20).run();
            let epochs = td_analysis::epochs::detect_epochs(
                &run.drops(),
                td_engine::SimDuration::from_secs(4),
            );
            let both_double = epochs
                .iter()
                .filter(|e| e.losses_by_conn.values().all(|&n| n == 2))
                .count();
            let both_single = epochs
                .iter()
                .filter(|e| e.losses_by_conn.values().all(|&n| n == 1))
                .count();
            rep.check(
                "minority mode drop pattern",
                "double drops per epoch / alternating single-double (Sec. 4.3.3)",
                format!(
                    "{both_double} double-double and {both_single} single-single of {} epochs",
                    epochs.len()
                ),
                both_double > 0 && (both_double + both_single) * 3 >= epochs.len() * 2,
            );
        }
    } else {
        rep.info(
            "small pipe: minority in-phase mode utilization",
            "higher than the out-of-phase plateau",
            "mode not visited by these seeds".into(),
        );
    }

    // Large pipe: in-phase across phases — same sweep discipline.
    let in_phase: usize = census
        .run(|seed, _| {
            let run = fig67::scenario(seed, duration_s * 2).run();
            (mode_of(&run).0 == SyncMode::InPhase) as usize
        })
        .into_iter()
        .sum();
    rep.check(
        "large pipe: in-phase fraction",
        "in-phase for large P (the paper's rule)",
        format!("{in_phase}/{}", seeds.len()),
        in_phase * 10 >= seeds.len() * 8,
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_census_matches_taxonomy() {
        let rep = report(1, 300);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }
}
