//! Shard-count invariance with the real TCP machines.
//!
//! The in-crate `td-net` tests prove the sharded executor deterministic
//! with synthetic endpoints; this suite re-proves it with `TcpSender` /
//! `TcpReceiver` — the endpoints that actually serialize live
//! [`td_net::TimerHandle`]s (the armed RTO), so a mid-flight snapshot
//! exercises the timer-handle ↔ pending-event-index translation that the
//! shard-count-invariant `TDSW` format depends on.

use td_core::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};
use td_engine::{Rate, SimDuration, SimTime};
use td_net::{ConnId, DisciplineKind, FaultModel, ShardedWorld, World};

/// Two-way traffic over a congested trunk: host/switch cluster per side,
/// 20-packet drop-tail queues, paper-style TCP both directions. The small
/// trunk rate forces queue growth, drops, retransmissions, and live RTO
/// timers — the full state surface of the protocol.
fn two_way_trunk(w: &mut World) {
    let h = SimDuration::from_micros(100);
    let a = w.add_host("A", h);
    let sa = w.add_switch("SA");
    let b = w.add_host("B", h);
    let sb = w.add_switch("SB");
    for (x, y) in [(a, sa), (b, sb)] {
        for (src, dst) in [(x, y), (y, x)] {
            w.add_channel(
                src,
                dst,
                Rate::from_kbps(1000),
                SimDuration::from_micros(100),
                Some(20),
                DisciplineKind::DropTail.build(),
                FaultModel::NONE,
            );
        }
    }
    for (src, dst) in [(sa, sb), (sb, sa)] {
        w.add_channel(
            src,
            dst,
            Rate::from_kbps(200),
            SimDuration::from_millis(5),
            Some(20),
            DisciplineKind::DropTail.build(),
            FaultModel::NONE,
        );
    }
    w.compute_routes();
    let s0 = w.attach(a, b, ConnId(0), TcpSender::boxed(SenderConfig::paper()));
    w.attach(b, a, ConnId(0), TcpReceiver::boxed(ReceiverConfig::paper()));
    let s1 = w.attach(b, a, ConnId(1), TcpSender::boxed(SenderConfig::paper()));
    w.attach(a, b, ConnId(1), TcpReceiver::boxed(ReceiverConfig::paper()));
    w.start_at(s0, SimTime::from_millis(1));
    w.start_at(s1, SimTime::from_millis(7));
}

/// `two_way_trunk` with per-direction trunk delays (5 ms vs 50 ms). The
/// cut is asymmetric, so each shard's safe horizon depends on reading the
/// lookahead matrix in the right orientation — its incoming column, not
/// its outgoing row. Regression for the transposed-lookahead bug, which
/// symmetric duplex trunks cannot see.
fn asymmetric_two_way_trunk(w: &mut World) {
    let h = SimDuration::from_micros(100);
    let a = w.add_host("A", h);
    let sa = w.add_switch("SA");
    let b = w.add_host("B", h);
    let sb = w.add_switch("SB");
    for (x, y) in [(a, sa), (b, sb)] {
        for (src, dst) in [(x, y), (y, x)] {
            w.add_channel(
                src,
                dst,
                Rate::from_kbps(1000),
                SimDuration::from_micros(100),
                Some(20),
                DisciplineKind::DropTail.build(),
                FaultModel::NONE,
            );
        }
    }
    for (src, dst, ms) in [(sa, sb, 5), (sb, sa, 50)] {
        w.add_channel(
            src,
            dst,
            Rate::from_kbps(200),
            SimDuration::from_millis(ms),
            Some(20),
            DisciplineKind::DropTail.build(),
            FaultModel::NONE,
        );
    }
    w.compute_routes();
    let s0 = w.attach(a, b, ConnId(0), TcpSender::boxed(SenderConfig::paper()));
    w.attach(b, a, ConnId(0), TcpReceiver::boxed(ReceiverConfig::paper()));
    let s1 = w.attach(b, a, ConnId(1), TcpSender::boxed(SenderConfig::paper()));
    w.attach(a, b, ConnId(1), TcpReceiver::boxed(ReceiverConfig::paper()));
    w.start_at(s0, SimTime::from_millis(1));
    w.start_at(s1, SimTime::from_millis(7));
}

#[test]
fn tcp_asymmetric_trunk_is_shard_invariant() {
    let t_end = SimTime::from_millis(1500);
    let mut base = ShardedWorld::build(92, 1, asymmetric_two_way_trunk);
    base.run_until(t_end);
    let base_snap = base.snapshot();
    assert!(base.audit().delivered() > 100, "workload barely ran");
    for shards in [2, 4] {
        let mut other = ShardedWorld::build(92, shards, asymmetric_two_way_trunk);
        other.run_until(t_end);
        assert_eq!(
            base.trace().records(),
            other.trace().records(),
            "TCP trace differs at {shards} shards over an asymmetric cut"
        );
        assert_eq!(
            base_snap.as_bytes(),
            other.snapshot().as_bytes(),
            "TCP snapshot differs at {shards} shards over an asymmetric cut"
        );
    }
}

#[test]
fn tcp_two_way_traffic_is_shard_invariant() {
    let t_end = SimTime::from_millis(1500);
    let mut base = ShardedWorld::build(91, 1, two_way_trunk);
    base.run_until(t_end);
    let base_snap = base.snapshot();
    assert!(base.audit().delivered() > 100, "workload barely ran");
    assert_eq!(base.audit().total_violations(), 0);
    for shards in [2, 4] {
        let mut other = ShardedWorld::build(91, shards, two_way_trunk);
        other.run_until(t_end);
        assert_eq!(
            base.trace().records(),
            other.trace().records(),
            "TCP trace differs at {shards} shards"
        );
        assert_eq!(
            base_snap.as_bytes(),
            other.snapshot().as_bytes(),
            "TCP snapshot differs at {shards} shards"
        );
    }
}

#[test]
fn tcp_snapshot_resumes_across_shard_counts() {
    // Snapshot mid-flight — with cwnd open, queues loaded, and RTO timers
    // armed — then resume at a different shard count and compare against
    // the uninterrupted run.
    let t_mid = SimTime::from_millis(700);
    let t_end = SimTime::from_millis(1500);
    let mut origin = ShardedWorld::build(91, 2, two_way_trunk);
    origin.run_until(t_mid);
    let mid = origin.snapshot();
    origin.run_until(t_end);
    let straight = origin.snapshot();
    for shards in [1, 4] {
        let mut resumed = ShardedWorld::build(91, shards, two_way_trunk);
        resumed.restore(&mid).expect("mid-flight restore");
        resumed.run_until(t_end);
        assert_eq!(
            straight.as_bytes(),
            resumed.snapshot().as_bytes(),
            "resume at {shards} shards diverged"
        );
    }
}
