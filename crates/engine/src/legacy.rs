//! The pre-slab event queue, kept verbatim as a reference semantics oracle.
//!
//! This is the `BinaryHeap + HashSet` design the engine shipped with before
//! the indexed d-ary heap landed in [`crate::EventQueue`]: cancellation is
//! lazy (a tombstone set consulted on every pop), and retired ids are
//! tracked with a fired-set + watermark. It is **not** used by any
//! simulation — it exists so that:
//!
//! * the differential ordering test (`tests/queue_differential.rs`) can
//!   drive both implementations with an identical schedule/cancel/pop
//!   script and assert identical observable behaviour at every step, and
//! * the engine benchmarks can publish old-vs-new numbers from a single
//!   binary, so the speedup claim in `BENCH_engine.json` is reproducible
//!   with one command rather than a checkout dance.
//!
//! Do not "improve" this module; its value is being frozen.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle to an event scheduled into a [`LegacyEventQueue`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LegacyEventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-(time, seq) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pre-slab deterministic, cancellable discrete-event queue.
///
/// Same observable contract as [`crate::EventQueue`] (total order
/// `(time, seq)`, clock at last pop, panics on scheduling into the past),
/// implemented with lazy cancellation. See the module docs for why it is
/// kept.
pub struct LegacyEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs of pending events that have been cancelled but not yet discarded.
    cancelled: HashSet<u64>,
    /// Fired seqs above `fired_watermark` (events can fire out of seq order).
    fired: HashSet<u64>,
    /// All seqs below this have fired; keeps `fired` small.
    fired_watermark: u64,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    /// Largest live length ever observed (post-schedule).
    peak_len: usize,
}

impl<E> Default for LegacyEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LegacyEventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        LegacyEventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            fired: HashSet::new(),
            fired_watermark: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            peak_len: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped (dispatched) so far.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }

    /// Number of events ever scheduled into this queue.
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Largest number of live pending events ever held at once.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of live (not-yet-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before [`LegacyEventQueue::now`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> LegacyEventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        let live = self.len();
        if live > self.peak_len {
            self.peak_len = live;
        }
        LegacyEventId(seq)
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: crate::SimDuration, event: E) -> LegacyEventId {
        let at = self.now + delay;
        self.schedule_at(at, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending.
    pub fn cancel(&mut self, id: LegacyEventId) -> bool {
        if id.0 >= self.next_seq || self.has_fired(id) {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// True if the id refers to an event that has left the heap (fired, or
    /// cancelled and since lazily discarded).
    pub fn has_fired(&self, id: LegacyEventId) -> bool {
        id.0 < self.fired_watermark || self.fired.contains(&id.0)
    }

    /// Remove and return the earliest live event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                self.note_done(entry.seq);
                continue; // lazily discard cancelled entry
            }
            debug_assert!(entry.at >= self.now, "heap produced an event in the past");
            self.now = entry.at;
            self.popped += 1;
            self.note_done(entry.seq);
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next live event without popping it. `&mut self`
    /// because it discards surfaced tombstones — the wart the slab queue
    /// removed.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                self.note_done(seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Record that `seq` has left the heap so later `cancel` calls on it
    /// report `false`.
    fn note_done(&mut self, seq: u64) {
        self.fired.insert(seq);
        while self.fired.remove(&self.fired_watermark) {
            self.fired_watermark += 1;
        }
    }
}
