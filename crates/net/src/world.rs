//! The simulation world: nodes, channels, endpoints, and the event loop.
//!
//! A [`World`] owns everything. Components never hold references to each
//! other; they interact only by scheduling events, which keeps the
//! borrow-checker story trivial (no `Rc<RefCell>` webs) and the execution
//! order total. Protocol endpoints are `Box<dyn Endpoint>` values attached
//! to hosts; when one must run, it is temporarily moved out of the world so
//! it can receive `&mut self` alongside a [`Ctx`] over the rest of the
//! world. Endpoint callbacks never recurse into other endpoints — all
//! inter-endpoint communication rides packets through the event queue.
//!
//! Hot per-channel and per-host state lives in struct-of-arrays arenas
//! (see [`crate::arena`]): `Copy` configuration columns stay densely
//! packed, and the world borrows one channel as a [`ChannelMut`] view
//! while independently touching its own trace, audit, and queue fields.
//!
//! ## Life of a packet
//!
//! 1. An endpoint calls [`Ctx::send`] → `Send` trace record → the packet is
//!    offered to the host's uplink channel queue.
//! 2. Channel buffer accounting: if the buffer (waiting + in-service) is at
//!    capacity, the discipline picks a victim (`Drop` record); otherwise
//!    `Enqueue`.
//! 3. When the channel's transmitter is free it dequeues the next packet
//!    (`TxStart`) and schedules `TxComplete` one serialization time later.
//! 4. `TxComplete` (`TxEnd` record): the packet leaves the buffer; fault
//!    injection decides whether it survives; if so an `Arrival` at the far
//!    end is scheduled one propagation delay later.
//! 5. `Arrival` at a switch re-enters step 2 on the routed output channel;
//!    at a host it joins the serial processing queue and is handed to the
//!    endpoint (`Deliver` record) after the per-packet processing delay.
//!
//! ## Canonical mode
//!
//! A world built for sharded execution (see [`crate::shard`]) runs in
//! *canonical* mode: simultaneous events are ordered by a content-derived
//! FNV-1a key instead of scheduling order, packet ids are drawn from
//! per-endpoint counters instead of a global one, and queue-discipline
//! randomness comes from each channel's private stream instead of the
//! world's shared one. All three make the observable execution a function
//! of the topology alone, independent of how it is partitioned across
//! shards. Serial worlds (the default) are bit-for-bit unchanged: every
//! event carries key 0 and ties fall back to FIFO scheduling order.

use crate::arena::{ChannelArena, HostArena};
use crate::audit::Audit;
use crate::discipline::{Discipline, Victim};
use crate::fault::{FaultError, FaultKind, FaultModel, FaultOutcome, FaultPlan, Outage};
use crate::packet::{ConnId, NodeId, Packet, PacketId, PacketKind};
use crate::route::RouteTable;
use crate::snapcount;
use crate::trace::{
    DropReason, LossKind, ProtoEvent, Trace, TraceEvent, TraceObserver, TraceRecord,
};
use crate::watchdog::{
    EndpointProgress, RunOutcome, StallKind, StallReport, StuckConn, WatchdogConfig,
};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use td_engine::{
    EventId, EventQueue, Rate, SimDuration, SimRng, SimTime, SnapError, SnapReader, SnapWriter,
};

/// Base label for deriving each channel's private fault RNG stream from
/// the world seed (`derive(FAULT_STREAM ^ channel_id)`).
const FAULT_STREAM: u64 = 0xFA17_57F3_A400_0000;

/// Identifies one simplex channel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub u32);

/// Identifies an attached protocol endpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EndpointId(pub u32);

thread_local! {
    /// When set, [`TimerHandle::save_state`] writes canonical pending-event
    /// indices instead of raw slab coordinates: the map takes a handle's
    /// `(slot, gen)` to its event's index in the globally sorted pending
    /// set of a sharded snapshot. Raw coordinates are shard-layout
    /// artifacts; the canonical index is not.
    static TIMER_SAVE_XLAT: RefCell<Option<HashMap<(u32, u64), u64>>> =
        const { RefCell::new(None) };
    /// The reverse map for restore: canonical pending-event index → the
    /// `(slot, gen)` the event received when it was re-scheduled into the
    /// restoring shard's queue.
    static TIMER_LOAD_XLAT: RefCell<Option<HashMap<u64, (u32, u64)>>> =
        const { RefCell::new(None) };
}

/// Install (or clear) the canonical-snapshot save translation for this
/// thread. Scoped strictly around endpoint `save_state` calls.
pub(crate) fn set_timer_save_xlat(map: Option<HashMap<(u32, u64), u64>>) {
    TIMER_SAVE_XLAT.with(|c| *c.borrow_mut() = map);
}

/// Install (or clear) the canonical-snapshot load translation for this
/// thread. Scoped strictly around endpoint `load_state` calls.
pub(crate) fn set_timer_load_xlat(map: Option<HashMap<u64, (u32, u64)>>) {
    TIMER_LOAD_XLAT.with(|c| *c.borrow_mut() = map);
}

/// Handle to a pending endpoint timer, used to cancel it.
#[derive(Clone, Copy, Debug)]
pub struct TimerHandle(EventId);

impl TimerHandle {
    /// A handle that is stale by construction (out of any slab's range):
    /// `cancel` on it reports "already fired", exactly like a handle whose
    /// slot generation has moved on. Canonical snapshots use it for saved
    /// handles whose timer is no longer pending.
    fn stale() -> TimerHandle {
        TimerHandle(EventId::from_raw(u32::MAX, u64::MAX))
    }

    /// Serialize the handle (snapshot support for endpoints holding armed
    /// timers). In the default (serial) snapshot the raw slab coordinates
    /// go out verbatim — the queue round-trips its slab cell-for-cell, so
    /// a live handle stays live and a stale one stays stale. Inside a
    /// canonical sharded snapshot a thread-local translation rewrites the
    /// handle to its event's canonical pending index (or a stale marker),
    /// making the bytes independent of shard layout.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let (slot, gen) = self.0.into_raw();
        let xlat =
            TIMER_SAVE_XLAT.with(|c| c.borrow().as_ref().map(|m| m.get(&(slot, gen)).copied()));
        match xlat {
            // No translation installed: raw slab coordinates.
            None => {
                w.write_u32(slot);
                w.write_u64(gen);
            }
            // Canonical: live handle → (pending index, 0).
            Some(Some(idx)) => {
                w.write_u32(idx as u32);
                w.write_u64(0);
            }
            // Canonical: handle to a fired/cancelled timer → stale marker.
            Some(None) => {
                w.write_u32(u32::MAX);
                w.write_u64(u64::MAX);
            }
        }
    }

    /// Deserialize a handle written by [`TimerHandle::save_state`],
    /// applying the reverse translation when a canonical restore is in
    /// progress on this thread.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<TimerHandle, SnapError> {
        let slot = r.read_u32()?;
        let gen = r.read_u64()?;
        let translated = TIMER_LOAD_XLAT.with(|c| {
            c.borrow().as_ref().map(|m| {
                if slot == u32::MAX && gen == u64::MAX {
                    TimerHandle::stale()
                } else {
                    match m.get(&u64::from(slot)) {
                        Some(&(s, g)) => TimerHandle(EventId::from_raw(s, g)),
                        None => TimerHandle::stale(),
                    }
                }
            })
        });
        Ok(translated.unwrap_or(TimerHandle(EventId::from_raw(slot, gen))))
    }
}

/// Online per-channel counters, maintained regardless of trace recording.
#[derive(Clone, Copy, Default, Debug)]
pub struct ChannelStats {
    /// Total time the transmitter spent serializing packets.
    pub busy: SimDuration,
    /// Packets fully serialized.
    pub tx_packets: u64,
    /// Bytes fully serialized.
    pub tx_bytes: u64,
    /// Packets discarded at the buffer (any reason).
    pub drops: u64,
    /// Packets accepted into the buffer.
    pub enqueued: u64,
}

/// A protocol endpoint: the transport-layer state machine living on a host.
///
/// `td-core` implements TCP senders and receivers against this trait. The
/// contract: an endpoint may only interact with the world through the
/// [`Ctx`] it is handed, and every callback runs to completion before any
/// other event fires. Endpoints are `Send` so a sharded run can move each
/// shard's world onto its worker thread; they still never run concurrently
/// with anything that shares their state.
pub trait Endpoint: Send {
    /// Called once, at the endpoint's scheduled start time.
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// A packet addressed to this endpoint's connection was delivered
    /// (after host processing delay).
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// A timer set via [`Ctx::set_timer`] expired. `token` is the value
    /// given at arming time; endpoints use it to distinguish timer kinds.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// Downcast support so experiments can extract protocol state
    /// (e.g. final statistics) after a run.
    fn as_any(&self) -> &dyn Any;

    /// Self-reported progress for stall attribution (see
    /// [`crate::World::run_until_quiescent`]). The default — `finished:
    /// None` — opts the endpoint out: an infinite source or a pure
    /// receiver has no defined notion of "done".
    fn progress(&self) -> EndpointProgress {
        EndpointProgress::default()
    }

    /// Serialize the endpoint's mutable protocol state (snapshot
    /// support). [`crate::World::snapshot`] wraps each endpoint in a
    /// length-prefixed section, so `save_state` and `load_state` must
    /// consume symmetrically — any asymmetry fails loudly at the
    /// endpoint's own boundary. The default writes nothing, which is
    /// correct only for stateless endpoints; real protocols override
    /// both hooks.
    fn save_state(&self, w: &mut SnapWriter) {
        let _ = w;
    }

    /// Restore state written by [`Endpoint::save_state`] onto a freshly
    /// built endpoint of the same configuration.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Ok(())
    }
}

enum NodeKind {
    Host {
        uplink: Option<ChannelId>,
        endpoints: HashMap<ConnId, EndpointId>,
    },
    Switch {
        /// Compressed next-hop table (see [`crate::route`]): sorted
        /// destination-id runs plus an optional default route, replacing
        /// the O(hosts) dense map that dominated memory at scale.
        table: RouteTable,
    },
}

struct Node {
    name: String,
    kind: NodeKind,
}

struct EpMeta {
    host: NodeId,
    peer: NodeId,
    conn: ConnId,
}

#[derive(Debug)]
pub(crate) enum Event {
    TxComplete(ChannelId),
    Arrival {
        ch: ChannelId,
        pkt: Packet,
    },
    HostProcess(NodeId),
    Timer {
        ep: EndpointId,
        token: u64,
    },
    Start(EndpointId),
    /// A scheduled link outage ends: restart the transmitter if work is
    /// queued. Also keeps the event queue non-empty for the whole outage,
    /// so a down link is never mistaken for quiescence.
    LinkUp(ChannelId),
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(FNV_PRIME)
}

/// Content-derived ordering key for canonical mode: a function of *what*
/// the event is (kind, component ids, packet identity), never of when or
/// where it was scheduled. Two distinct events simultaneous at the same
/// instant get distinct keys (up to FNV collisions); the one same-key case
/// — a fault-duplicated packet's two identical `Arrival`s — commutes, so
/// the residual FIFO tie-break is unobservable.
fn canonical_key(ev: &Event) -> u64 {
    let h = FNV_OFFSET;
    match ev {
        Event::TxComplete(ch) => fnv(fnv(h, 0), u64::from(ch.0)),
        Event::Arrival { ch, pkt } => fnv(fnv(fnv(h, 1), u64::from(ch.0)), pkt.id.0),
        Event::HostProcess(node) => fnv(fnv(h, 2), u64::from(node.0)),
        Event::Timer { ep, token } => fnv(fnv(fnv(h, 3), u64::from(ep.0)), *token),
        Event::Start(ep) => fnv(fnv(h, 4), u64::from(ep.0)),
        Event::LinkUp(ch) => fnv(fnv(h, 5), u64::from(ch.0)),
    }
}

pub(crate) fn save_event(ev: &Event, w: &mut SnapWriter) {
    match ev {
        Event::TxComplete(ch) => {
            w.write_u8(0);
            w.write_u32(ch.0);
        }
        Event::Arrival { ch, pkt } => {
            w.write_u8(1);
            w.write_u32(ch.0);
            pkt.save_state(w);
        }
        Event::HostProcess(node) => {
            w.write_u8(2);
            w.write_u32(node.0);
        }
        Event::Timer { ep, token } => {
            w.write_u8(3);
            w.write_u32(ep.0);
            w.write_u64(*token);
        }
        Event::Start(ep) => {
            w.write_u8(4);
            w.write_u32(ep.0);
        }
        Event::LinkUp(ch) => {
            w.write_u8(5);
            w.write_u32(ch.0);
        }
    }
}

pub(crate) fn load_event(r: &mut SnapReader<'_>) -> Result<Event, SnapError> {
    Ok(match r.read_u8()? {
        0 => Event::TxComplete(ChannelId(r.read_u32()?)),
        1 => Event::Arrival {
            ch: ChannelId(r.read_u32()?),
            pkt: Packet::load_state(r)?,
        },
        2 => Event::HostProcess(NodeId(r.read_u32()?)),
        3 => Event::Timer {
            ep: EndpointId(r.read_u32()?),
            token: r.read_u64()?,
        },
        4 => Event::Start(EndpointId(r.read_u32()?)),
        5 => Event::LinkUp(ChannelId(r.read_u32()?)),
        t => return Err(SnapError::Corrupt(format!("unknown event tag {t}"))),
    })
}

pub(crate) fn save_trace_record(rec: &TraceRecord, w: &mut SnapWriter) {
    w.write_time(rec.t);
    match &rec.ev {
        TraceEvent::Send { node, pkt } => {
            w.write_u8(0);
            w.write_u32(node.0);
            pkt.save_state(w);
        }
        TraceEvent::Enqueue {
            ch,
            pkt,
            qlen_after,
        } => {
            w.write_u8(1);
            w.write_u32(ch.0);
            pkt.save_state(w);
            w.write_u32(*qlen_after);
        }
        TraceEvent::Drop {
            ch,
            pkt,
            reason,
            qlen,
        } => {
            w.write_u8(2);
            w.write_u32(ch.0);
            pkt.save_state(w);
            w.write_u8(match reason {
                DropReason::BufferFull => 0,
                DropReason::Fault => 1,
                DropReason::EarlyDrop => 2,
                DropReason::LinkDown => 3,
            });
            w.write_u32(*qlen);
        }
        TraceEvent::TxStart { ch, pkt } => {
            w.write_u8(3);
            w.write_u32(ch.0);
            pkt.save_state(w);
        }
        TraceEvent::TxEnd {
            ch,
            pkt,
            qlen_after,
        } => {
            w.write_u8(4);
            w.write_u32(ch.0);
            pkt.save_state(w);
            w.write_u32(*qlen_after);
        }
        TraceEvent::Deliver { node, pkt } => {
            w.write_u8(5);
            w.write_u32(node.0);
            pkt.save_state(w);
        }
        TraceEvent::Proto { conn, node, ev } => {
            w.write_u8(6);
            w.write_u32(conn.0);
            w.write_u32(node.0);
            match ev {
                ProtoEvent::Cwnd { cwnd, ssthresh } => {
                    w.write_u8(0);
                    w.write_f64(*cwnd);
                    w.write_f64(*ssthresh);
                }
                ProtoEvent::LossDetected { seq, kind } => {
                    w.write_u8(1);
                    w.write_u64(*seq);
                    w.write_u8(match kind {
                        LossKind::DupAck => 0,
                        LossKind::Timeout => 1,
                    });
                }
                ProtoEvent::Retransmit { seq } => {
                    w.write_u8(2);
                    w.write_u64(*seq);
                }
                ProtoEvent::InOrder { seq } => {
                    w.write_u8(3);
                    w.write_u64(*seq);
                }
            }
        }
    }
}

pub(crate) fn load_trace_record(r: &mut SnapReader<'_>) -> Result<TraceRecord, SnapError> {
    let t = r.read_time()?;
    let ev = match r.read_u8()? {
        0 => TraceEvent::Send {
            node: NodeId(r.read_u32()?),
            pkt: Packet::load_state(r)?,
        },
        1 => TraceEvent::Enqueue {
            ch: ChannelId(r.read_u32()?),
            pkt: Packet::load_state(r)?,
            qlen_after: r.read_u32()?,
        },
        2 => TraceEvent::Drop {
            ch: ChannelId(r.read_u32()?),
            pkt: Packet::load_state(r)?,
            reason: match r.read_u8()? {
                0 => DropReason::BufferFull,
                1 => DropReason::Fault,
                2 => DropReason::EarlyDrop,
                3 => DropReason::LinkDown,
                k => return Err(SnapError::Corrupt(format!("unknown drop reason tag {k}"))),
            },
            qlen: r.read_u32()?,
        },
        3 => TraceEvent::TxStart {
            ch: ChannelId(r.read_u32()?),
            pkt: Packet::load_state(r)?,
        },
        4 => TraceEvent::TxEnd {
            ch: ChannelId(r.read_u32()?),
            pkt: Packet::load_state(r)?,
            qlen_after: r.read_u32()?,
        },
        5 => TraceEvent::Deliver {
            node: NodeId(r.read_u32()?),
            pkt: Packet::load_state(r)?,
        },
        6 => TraceEvent::Proto {
            conn: ConnId(r.read_u32()?),
            node: NodeId(r.read_u32()?),
            ev: match r.read_u8()? {
                0 => ProtoEvent::Cwnd {
                    cwnd: r.read_f64()?,
                    ssthresh: r.read_f64()?,
                },
                1 => ProtoEvent::LossDetected {
                    seq: r.read_u64()?,
                    kind: match r.read_u8()? {
                        0 => LossKind::DupAck,
                        1 => LossKind::Timeout,
                        k => return Err(SnapError::Corrupt(format!("unknown loss kind tag {k}"))),
                    },
                },
                2 => ProtoEvent::Retransmit { seq: r.read_u64()? },
                3 => ProtoEvent::InOrder { seq: r.read_u64()? },
                k => return Err(SnapError::Corrupt(format!("unknown proto event tag {k}"))),
            },
        },
        k => return Err(SnapError::Corrupt(format!("unknown trace event tag {k}"))),
    };
    Ok(TraceRecord { t, ev })
}

/// A versioned, self-contained capture of a [`World`]'s mutable state,
/// produced by [`World::snapshot`] and consumed by [`World::restore`].
///
/// The format is a flat little-endian byte stream behind a 4-byte magic
/// and a `u32` version; readers refuse unknown versions rather than
/// guessing. Structural configuration (topology, rates, capacities, fault
/// *plans*, endpoint parameters) is **not** captured — a snapshot is
/// applied onto a world freshly built from the same `(config, seed)`
/// pair, and [`World::restore`] cross-checks seed and component counts to
/// catch mismatched pairings early.
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// File/stream magic: "TDSN".
    pub const MAGIC: &'static [u8; 4] = b"TDSN";
    /// Current format version. Version 2 added the canonical-mode flag,
    /// per-endpoint packet-id counters, and per-event ordering keys
    /// inside the queue section. Version 3 added the model-checking
    /// fault overlay (injected outages + forced-drop counters) to each
    /// channel row, so restoring a branch snapshot reconstructs the
    /// branch's decisions without replaying them.
    pub const VERSION: u32 = 3;

    /// The raw snapshot bytes (header included).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Adopt raw bytes, validating the header and the structural
    /// fingerprint's basic sanity (the payload is validated lazily by
    /// [`World::restore`]). Declared component counts are bounded by the
    /// byte length — every component costs at least one payload byte — so
    /// corrupt counts fail here as a structured error instead of asking
    /// the restore path to allocate for them.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(&bytes);
        let version = r.expect_header(Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        let _seed = r.read_u64()?;
        let n_nodes = r.read_u32()? as u64;
        let n_channels = r.read_u32()? as u64;
        let n_endpoints = r.read_u32()? as u64;
        let declared = n_nodes + n_channels + n_endpoints;
        if declared > r.remaining() as u64 {
            return Err(SnapError::Corrupt(format!(
                "snapshot declares {declared} components but only {} payload byte(s) remain",
                r.remaining()
            )));
        }
        Ok(Snapshot { bytes })
    }

    /// Write the snapshot to `path` atomically (temp file in the same
    /// directory, then rename), so a crash mid-write never leaves a
    /// truncated snapshot under the final name.
    pub fn write_to_file(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &self.bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Read and header-validate a snapshot file.
    pub fn read_from_file(path: &Path) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Snapshot::from_bytes(bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// The simulation: topology, endpoints, clock, trace.
pub struct World {
    queue: EventQueue<Event>,
    nodes: Vec<Node>,
    hosts: HostArena,
    channels: ChannelArena,
    endpoints: Vec<Option<Box<dyn Endpoint>>>,
    ep_meta: Vec<EpMeta>,
    trace: Trace,
    rng: SimRng,
    seed: u64,
    audit: Audit,
    next_packet_id: u64,
    /// Canonical (shard-invariant) execution mode; see the module docs.
    /// Set before construction, never toggled afterwards.
    canonical: bool,
    /// Canonical-mode packet-id counters, one per endpoint.
    ep_packet_ctr: Vec<u64>,
    /// Sharded runs: `remote_node[n]` marks nodes owned by another shard.
    /// Empty (the default) means every node is local.
    remote_node: Vec<bool>,
    /// Sharded runs: cross-shard deliveries buffered for the executor,
    /// as `(arrival time, channel, packet)`.
    outbox: Vec<(SimTime, ChannelId, Packet)>,
    /// Streaming observers fed at every trace-emission site, **even when
    /// trace recording is disabled** — the trace-free analysis path.
    /// Not part of snapshots: observers are analysis state, not
    /// simulation state.
    observers: Vec<Box<dyn TraceObserver>>,
}

impl World {
    /// An empty world with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        World {
            queue: EventQueue::new(),
            nodes: Vec::new(),
            hosts: HostArena::new(),
            channels: ChannelArena::new(),
            endpoints: Vec::new(),
            ep_meta: Vec::new(),
            trace: Trace::new(),
            rng: SimRng::new(seed),
            seed,
            audit: Audit::default(),
            next_packet_id: 0,
            canonical: false,
            ep_packet_ctr: Vec::new(),
            remote_node: Vec::new(),
            outbox: Vec::new(),
            observers: Vec::new(),
        }
    }

    /// Record one trace event: feed every registered observer, then append
    /// to the trace (a no-op there when recording is disabled). The single
    /// funnel for all emission sites, so observers see exactly the record
    /// stream the trace would hold, in emission order.
    #[inline]
    fn record(&mut self, t: SimTime, ev: TraceEvent) {
        for obs in &mut self.observers {
            obs.on_record(t, &ev);
        }
        self.trace.push(t, ev);
    }

    /// Register a streaming observer. Observers are fed at every
    /// trace-emission site even when trace recording is disabled, which is
    /// what makes trace-free analysis possible; they ride along for the
    /// rest of the run (or until [`World::take_observers`]).
    pub fn add_observer(&mut self, obs: Box<dyn TraceObserver>) {
        self.observers.push(obs);
    }

    /// Remove and return all registered observers, in registration order.
    /// Call after the run to finalize streaming analyses (downcast via
    /// [`TraceObserver::into_any`]).
    pub fn take_observers(&mut self) -> Vec<Box<dyn TraceObserver>> {
        std::mem::take(&mut self.observers)
    }

    // -- construction -------------------------------------------------------

    /// Add a host with the given per-packet receive processing delay
    /// (0.1 ms in the paper).
    pub fn add_host(&mut self, name: &str, proc_delay: SimDuration) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.to_owned(),
            kind: NodeKind::Host {
                uplink: None,
                endpoints: HashMap::new(),
            },
        });
        self.hosts.push_host(proc_delay);
        id
    }

    /// Add a switch (zero forwarding delay; routes filled by
    /// [`World::compute_routes`] or [`World::set_route`]).
    pub fn add_switch(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.to_owned(),
            kind: NodeKind::Switch {
                table: RouteTable::new(),
            },
        });
        self.hosts.push_switch();
        id
    }

    /// Add one simplex channel `src → dst`. `capacity` bounds buffer
    /// occupancy in packets (`None` = unbounded, the infinite buffers of
    /// the fixed-window runs).
    #[allow(clippy::too_many_arguments)]
    pub fn add_channel(
        &mut self,
        src: NodeId,
        dst: NodeId,
        rate: Rate,
        delay: SimDuration,
        capacity: Option<u32>,
        discipline: Box<dyn Discipline>,
        fault: FaultModel,
    ) -> ChannelId {
        assert!(
            capacity.is_none_or(|c| c >= 1),
            "a channel needs at least one buffer slot to transmit"
        );
        let id = ChannelId(self.channels.len() as u32);
        let rng = SimRng::new(self.seed).derive(FAULT_STREAM ^ u64::from(id.0));
        self.channels.push(
            src,
            dst,
            rate,
            delay,
            capacity,
            discipline,
            FaultPlan::from(fault),
            rng,
        );
        if let NodeKind::Host { uplink, .. } = &mut self.nodes[src.0 as usize].kind {
            assert!(
                uplink.is_none(),
                "host {} already has an uplink; hosts are single-homed",
                self.nodes[src.0 as usize].name
            );
            *uplink = Some(id);
        }
        id
    }

    /// Install a full fault plan on a channel, replacing whatever was
    /// configured at [`World::add_channel`] time. Validates the plan and
    /// schedules a `LinkUp` wake-up for each finite outage end, so queued
    /// packets resume transmission the instant the link heals (and a
    /// mid-outage world is never mistaken for a drained one). Call before
    /// running; outages whose `down` is already in the past are rejected
    /// by the event queue's not-in-past assertion.
    pub fn set_fault_plan(&mut self, ch: ChannelId, plan: FaultPlan) -> Result<(), FaultError> {
        plan.validate()?;
        for outage in &plan.outages {
            if outage.up < SimTime::MAX {
                self.schedule_event(outage.up, Event::LinkUp(ch));
            }
        }
        self.channels.set_fault(ch.0 as usize, plan);
        Ok(())
    }

    /// Dynamically inject a link outage `[down, up)` on top of whatever
    /// static [`FaultPlan`] the channel carries. This is the model
    /// checker's branch primitive: unlike `set_fault_plan` it may be
    /// called mid-run (between events), the injected windows live in a
    /// separate overlay that the snapshot codec captures per channel (so
    /// restoring a branch snapshot reconstructs its decisions), and
    /// overlapping injections are benign — the link is down under the
    /// union of all windows. A `LinkUp` wake-up is scheduled at `up`.
    ///
    /// Semantic difference from static plans: packets whose arrival was
    /// already scheduled before the injection are not retroactively cut;
    /// only transmissions finishing after the call see the outage.
    pub fn inject_outage(&mut self, ch: ChannelId, down: SimTime, up: SimTime) {
        assert!(down < up, "inject_outage: empty window [{down:?}, {up:?})");
        if up < SimTime::MAX {
            self.schedule_event(up, Event::LinkUp(ch));
        }
        self.channels
            .injected_outages_mut(ch.0 as usize)
            .push(Outage { down, up });
    }

    /// Force the next `n` transmissions completing on `ch` to be dropped
    /// (the model checker's per-packet drop choice). Deterministic and
    /// RNG-free: a forced drop consumes no randomness, so the channel's
    /// private stream stays aligned with the undropped sibling branch up
    /// to the decision point. The counter is part of the snapshot's v3
    /// channel row, so branch snapshots carry pending forced drops.
    pub fn force_drops(&mut self, ch: ChannelId, n: u32) {
        let ci = ch.0 as usize;
        let cur = self.channels.forced_drops(ci);
        self.channels.set_forced_drops(ci, cur + n);
    }

    /// Enable DECbit-style congestion marking on a channel: packets whose
    /// acceptance pushes buffer occupancy above `threshold` get their CE
    /// bit set (see [`crate::Packet::ce`]).
    pub fn set_mark_threshold(&mut self, ch: ChannelId, threshold: Option<u32>) {
        self.channels.set_mark_threshold(ch.0 as usize, threshold);
    }

    /// Install a static route: packets for destination host `dst` arriving
    /// at switch `sw` leave on channel `ch`. The channel must originate at
    /// `sw`: a route onto another node's link would silently teleport
    /// packets and surface only as baffling conservation noise, so it is
    /// rejected at install time.
    pub fn set_route(&mut self, sw: NodeId, dst: NodeId, ch: ChannelId) {
        let src = self.channels.src(ch.0 as usize);
        assert!(
            src == sw,
            "set_route: channel {} leaves node {} ({}), not switch {} ({}) — \
             a switch can only route onto its own outgoing channels",
            ch.0,
            src.0,
            self.nodes[src.0 as usize].name,
            sw.0,
            self.nodes[sw.0 as usize].name,
        );
        match &mut self.nodes[sw.0 as usize].kind {
            NodeKind::Switch { table } => table.insert(dst, ch),
            NodeKind::Host { .. } => panic!("set_route on a host"),
        }
    }

    /// Ascending node ids of every host.
    fn host_ids(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&n| self.hosts.is_host(n as usize))
            .collect()
    }

    /// Compute shortest-path routes from every switch to every host by BFS
    /// (hop count metric; ties broken by channel id for determinism),
    /// replacing whatever routes the switches held. Runs are appended
    /// directly from the per-destination BFS — destinations arrive in
    /// ascending id order, so consecutive hosts sharing a next-hop extend
    /// the previous run in O(1) and the dense (switch × host) map is never
    /// materialized. Afterwards each fully-covering switch elides its
    /// majority channel into a default route (see [`crate::route`]).
    pub fn compute_routes(&mut self) {
        let host_ids = self.host_ids();
        for node in &mut self.nodes {
            if let NodeKind::Switch { table } = &mut node.kind {
                table.clear();
            }
        }
        // Incoming-channel adjacency, built once: rescanning every channel
        // per BFS frontier node is quadratic and dominates route setup on
        // multi-thousand-node chains. Per-node lists hold channel ids in
        // ascending order, preserving the id-order tie-break exactly.
        let n = self.nodes.len();
        let mut incoming: Vec<Vec<(NodeId, ChannelId)>> = vec![Vec::new(); n];
        for ci in 0..self.channels.len() {
            let (cs, cd) = (self.channels.src(ci), self.channels.dst(ci));
            incoming[cd.0 as usize].push((cs, ChannelId(ci as u32)));
        }
        // BFS scratch shared across destinations: epoch-stamped visited
        // marks make the per-destination reset O(1) instead of O(nodes),
        // which matters when both factors are in the tens of thousands.
        let mut seen = vec![0u32; n];
        let mut via = vec![ChannelId(0); n];
        let mut frontier = VecDeque::new();
        let mut prev_host: Option<u32> = None;
        for (epoch, &dst) in (1u32..).zip(&host_ids) {
            seen[dst as usize] = epoch;
            frontier.push_back(NodeId(dst));
            while let Some(u) = frontier.pop_front() {
                // Channels in id order → deterministic tie-breaking.
                for &(cs, ch) in &incoming[u.0 as usize] {
                    if seen[cs.0 as usize] != epoch {
                        seen[cs.0 as usize] = epoch;
                        via[cs.0 as usize] = ch;
                        frontier.push_back(cs);
                    }
                }
            }
            for (ni, node) in self.nodes.iter_mut().enumerate() {
                if let NodeKind::Switch { table } = &mut node.kind {
                    if seen[ni] == epoch {
                        table.extend(prev_host, NodeId(dst), via[ni]);
                    }
                }
            }
            prev_host = Some(dst);
        }
        for node in &mut self.nodes {
            if let NodeKind::Switch { table } = &mut node.kind {
                table.elide_default(&host_ids);
                table.shrink();
            }
        }
    }

    /// Every (switch, destination host) pair with no installed route, as
    /// `(switch, host)` node-id pairs in ascending order. Empty when the
    /// routing tables are complete.
    pub fn missing_routes(&self) -> Vec<(NodeId, NodeId)> {
        let host_ids = self.host_ids();
        let mut missing = Vec::new();
        for (ni, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Switch { table } = &node.kind {
                // Complete tables (the common case) are skipped by a run
                // count, not a per-host probe.
                if table.covered_hosts(&host_ids) == host_ids.len() {
                    continue;
                }
                for h in table.missing_hosts(&host_ids) {
                    missing.push((NodeId(ni as u32), NodeId(h)));
                }
            }
        }
        missing
    }

    /// Post-[`World::compute_routes`] reachability validation: panics
    /// listing **every** (switch, destination) pair that has no route, so
    /// a partitioned or mis-wired topology fails loudly at build time
    /// instead of mid-run at the first undeliverable packet. Builders
    /// whose topologies are fully connected by construction call this;
    /// deliberately partial worlds (one-way cuts) simply don't.
    pub fn validate_routes(&self) {
        let missing = self.missing_routes();
        if missing.is_empty() {
            return;
        }
        let mut msg = format!("{} unreachable (switch, destination) pairs:", missing.len());
        for (sw, dst) in &missing {
            msg.push_str(&format!(
                "\n  switch {} ({}) has no route to host {} ({})",
                sw.0, self.nodes[sw.0 as usize].name, dst.0, self.nodes[dst.0 as usize].name
            ));
        }
        panic!("{msg}");
    }

    /// Next-hop channel installed at switch `sw` for destination `dst`
    /// (`None` for a host node or a missing route). Inspection surface
    /// for route-equivalence tests and diagnostics.
    pub fn route_lookup(&self, sw: NodeId, dst: NodeId) -> Option<ChannelId> {
        match &self.nodes[sw.0 as usize].kind {
            NodeKind::Switch { table } => table.lookup(dst),
            NodeKind::Host { .. } => None,
        }
    }

    /// Heap bytes held by all switch routing tables (the compressed
    /// representation actually resident).
    pub fn route_table_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Switch { table } => table.heap_bytes() as u64,
                NodeKind::Host { .. } => 0,
            })
            .sum()
    }

    /// Bytes the legacy dense representation — one `(NodeId, ChannelId)`
    /// entry per resolved (switch, host) route — would need for the same
    /// tables, at 8 bytes per entry. This is the *floor* of any dense
    /// map (a real `HashMap` adds control bytes and load-factor slack),
    /// so compression ratios reported against it are conservative.
    pub fn dense_route_bytes(&self) -> u64 {
        let host_ids = self.host_ids();
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Switch { table } => table.covered_hosts(&host_ids) as u64 * 8,
                NodeKind::Host { .. } => 0,
            })
            .sum()
    }

    /// Attach a protocol endpoint to `host`, speaking connection `conn`
    /// with the endpoint on `peer`. Returns its id; schedule it with
    /// [`World::start_at`].
    pub fn attach(
        &mut self,
        host: NodeId,
        peer: NodeId,
        conn: ConnId,
        ep: Box<dyn Endpoint>,
    ) -> EndpointId {
        let id = EndpointId(self.endpoints.len() as u32);
        match &mut self.nodes[host.0 as usize].kind {
            NodeKind::Host { endpoints, .. } => {
                let prev = endpoints.insert(conn, id);
                assert!(
                    prev.is_none(),
                    "host {} already has an endpoint for {conn:?}",
                    self.nodes[host.0 as usize].name
                );
            }
            NodeKind::Switch { .. } => panic!("attach endpoint to a switch"),
        }
        self.endpoints.push(Some(ep));
        self.ep_meta.push(EpMeta { host, peer, conn });
        self.ep_packet_ctr.push(0);
        id
    }

    /// Schedule an endpoint's `on_start` at absolute time `t`.
    pub fn start_at(&mut self, ep: EndpointId, t: SimTime) {
        self.schedule_event(t, Event::Start(ep));
    }

    /// Schedule an event, deriving its canonical ordering key when the
    /// world runs in canonical mode (serial worlds use key 0 throughout,
    /// which degrades ties to FIFO order — the legacy behavior, bit for
    /// bit).
    fn schedule_event(&mut self, at: SimTime, ev: Event) -> EventId {
        let key = if self.canonical {
            canonical_key(&ev)
        } else {
            0
        };
        self.queue.schedule_keyed(at, key, ev)
    }

    // -- running ------------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Run until no event at or before `t_end` remains. Events scheduled
    /// exactly at `t_end` do fire.
    pub fn run_until(&mut self, t_end: SimTime) {
        // Single bounded pop per iteration: the old peek-then-pop pair
        // (and its "peeked event exists" coupling) predates true
        // cancellation, when peeking had to mutate to discard tombstones.
        while let Some((t, ev)) = self.queue.pop_at_or_before(t_end) {
            self.dispatch(t, ev);
        }
    }

    /// Run until the event queue drains entirely.
    pub fn run_to_completion(&mut self) {
        while let Some((t, ev)) = self.queue.pop() {
            self.dispatch(t, ev);
        }
        let in_network = self.packets_in_network();
        self.audit.on_quiescent(self.now(), in_network);
    }

    /// Run until no event at or before `t_end` remains, under a watchdog
    /// that distinguishes the three ways a run can fail to make progress
    /// (see [`crate::StallKind`]). Returns how the run ended; a stalled
    /// run stops at the verdict instead of hanging.
    pub fn run_until_quiescent(&mut self, t_end: SimTime, cfg: &WatchdogConfig) -> RunOutcome {
        let stop_at = cfg
            .max_events
            .map(|m| self.queue.dispatched().saturating_add(m));
        let mut last_progress_t = self.now();
        let mut last_delivered = self.audit.delivered();
        loop {
            if stop_at.is_some_and(|s| self.queue.dispatched() >= s) {
                let note = format!(
                    "event budget exhausted with {} event(s) pending",
                    self.queue.len()
                );
                return RunOutcome::Stalled(self.stall_report(StallKind::BudgetExhausted, note));
            }
            match self.queue.pop_at_or_before(t_end) {
                Some((t, ev)) => {
                    self.dispatch(t, ev);
                    let delivered = self.audit.delivered();
                    if delivered != last_delivered {
                        last_delivered = delivered;
                        last_progress_t = t;
                    } else if t.saturating_since(last_progress_t) > cfg.progress_window {
                        // No delivery for a full window. Only a livelock if
                        // someone still has work to do; an idle tail (all
                        // endpoints finished, stray timers draining) is fine.
                        let stuck = self.stuck_endpoints();
                        if stuck.is_empty() {
                            last_progress_t = t;
                        } else {
                            let note = format!(
                                "no delivery since t={:.6}s (window {:.3}s)",
                                last_progress_t.as_secs_f64(),
                                cfg.progress_window.as_secs_f64()
                            );
                            let mut report = self.stall_report(StallKind::Livelock, note);
                            report.stuck = stuck;
                            self.write_post_mortem(cfg, &mut report);
                            return RunOutcome::Stalled(report);
                        }
                    }
                }
                None => {
                    if !self.queue.is_empty() {
                        // Events remain beyond t_end: the normal end of a
                        // fixed-duration run.
                        return RunOutcome::TimeBound;
                    }
                    let in_network = self.packets_in_network();
                    self.audit.on_quiescent(self.now(), in_network);
                    let stuck = self.stuck_endpoints();
                    if stuck.is_empty() {
                        return RunOutcome::Quiescent;
                    }
                    let note = format!("event queue empty, {} endpoint(s) unfinished", stuck.len());
                    let mut report = self.stall_report(StallKind::Deadlock, note);
                    report.stuck = stuck;
                    self.write_post_mortem(cfg, &mut report);
                    return RunOutcome::Stalled(report);
                }
            }
        }
    }

    /// Packets currently buffered inside the network: channel queues,
    /// in-service slots, and host processing queues. (In-flight `Arrival`
    /// events are not counted — they are accounted by the event queue, and
    /// this is only read when it has drained.)
    fn packets_in_network(&self) -> u64 {
        let channel_pkts: u64 = (0..self.channels.len())
            .map(|ci| u64::from(self.channels.occupancy(ci)))
            .sum();
        channel_pkts + self.hosts.queued_packets()
    }

    /// Endpoints that self-report unfinished work, with their state
    /// summaries (see [`Endpoint::progress`]).
    fn stuck_endpoints(&self) -> Vec<StuckConn> {
        self.endpoints
            .iter()
            .zip(&self.ep_meta)
            .filter_map(|(ep, meta)| {
                let p = ep.as_ref()?.progress();
                if p.finished == Some(false) {
                    Some(StuckConn {
                        conn: meta.conn.0,
                        host: meta.host,
                        detail: p.detail,
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    fn stall_report(&self, kind: StallKind, note: String) -> StallReport {
        StallReport {
            kind,
            at: self.now(),
            events_dispatched: self.queue.dispatched(),
            note,
            stuck: Vec::new(),
            post_mortem: None,
        }
    }

    /// Dump a post-mortem snapshot of this (stalled) world into the
    /// watchdog's configured directory, recording the path in the report.
    /// The filename carries the stall kind and *simulation* time, so
    /// repeated deterministic runs overwrite one file instead of
    /// accumulating wall-clock-named copies. I/O failure is swallowed:
    /// a post-mortem must never turn a diagnosed stall into a panic.
    fn write_post_mortem(&self, cfg: &WatchdogConfig, report: &mut StallReport) {
        let Some(dir) = &cfg.post_mortem_dir else {
            return;
        };
        let kind = match report.kind {
            StallKind::Deadlock => "deadlock",
            StallKind::Livelock => "livelock",
            StallKind::BudgetExhausted => "budget",
        };
        let path = dir.join(format!(
            "postmortem-{kind}-t{}.tdsnap",
            report.at.as_nanos()
        ));
        if std::fs::create_dir_all(dir).is_ok() && self.snapshot().write_to_file(&path).is_ok() {
            report.post_mortem = Some(path);
        }
    }

    /// Like [`World::run_until`], but stop after at most `max_events`
    /// dispatches — a guard against runaway scenarios (e.g. a
    /// zero-duration timer loop in a buggy endpoint). Returns `true` if
    /// the time bound was reached, `false` if the budget ran out first.
    pub fn run_until_bounded(&mut self, t_end: SimTime, max_events: u64) -> bool {
        let stop_at = self.queue.dispatched().saturating_add(max_events);
        while self.queue.dispatched() < stop_at {
            match self.queue.pop_at_or_before(t_end) {
                Some((t, ev)) => self.dispatch(t, ev),
                None => return true,
            }
        }
        false
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.queue.dispatched()
    }

    /// Total events ever scheduled.
    pub fn events_scheduled(&self) -> u64 {
        self.queue.scheduled()
    }

    /// Largest pending-event set held at any point of the run.
    pub fn peak_queue_depth(&self) -> usize {
        self.queue.peak_len()
    }

    // -- inspection ---------------------------------------------------------

    /// The run's invariant auditor (counters and recorded violations).
    pub fn audit(&self) -> &Audit {
        &self.audit
    }

    /// The seed this world was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Register a connection's cwnd upper bound (its sender's `maxwnd`)
    /// with the auditor, enabling the `cwnd ≤ maxwnd` check.
    pub fn set_window_bound(&mut self, conn: ConnId, maxwnd: f64) {
        self.audit.set_window_bound(conn, maxwnd);
    }

    /// The run's trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (enable/disable/clear).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Pre-allocate trace storage for `records` further records, so a long
    /// run appends without reallocation. Scenario builders size this from
    /// engine telemetry calibrations (see `td-experiments`); callers with
    /// a measured run can pass a prior run's `trace().len()` directly.
    pub fn reserve_trace(&mut self, records: usize) {
        self.trace.reserve(records);
    }

    /// Online counters for a channel.
    pub fn channel_stats(&self, ch: ChannelId) -> ChannelStats {
        self.channels.stats(ch.0 as usize)
    }

    /// Current buffer occupancy of a channel (waiting + in service).
    pub fn channel_occupancy(&self, ch: ChannelId) -> u32 {
        self.channels.occupancy(ch.0 as usize)
    }

    /// Fraction of `[SimTime::ZERO, now]` the channel's transmitter was
    /// busy. (For windowed utilization use `td-analysis` over the trace.)
    pub fn utilization(&self, ch: ChannelId) -> f64 {
        let now = self.now();
        if now == SimTime::ZERO {
            return 0.0;
        }
        let ci = ch.0 as usize;
        let mut busy = self.channels.stats(ci).busy;
        // Count the in-progress transmission up to `now`.
        if let Some((_, started)) = self.channels.in_service(ci) {
            busy += now.saturating_since(*started);
        }
        busy.as_secs_f64() / now.as_secs_f64()
    }

    // -- snapshot / restore -------------------------------------------------

    /// Capture every piece of mutable simulation state: the event queue
    /// (slab, generations, pending timers — cell for cell), the clock,
    /// all RNG streams, per-channel occupancy and fault progress, host
    /// processing queues, every endpoint's protocol state, the trace, and
    /// the auditor. Restoring onto a world freshly built from the same
    /// `(config, seed)` and running to the end is byte-identical to never
    /// having stopped (see [`World::restore`]).
    ///
    /// Must be called between events — i.e. from outside the event loop,
    /// never from inside an endpoint callback.
    pub fn snapshot(&self) -> Snapshot {
        let mut w = SnapWriter::with_header(Snapshot::MAGIC, Snapshot::VERSION);
        self.write_state(&mut w);
        snapcount::on_snapshot();
        Snapshot {
            bytes: w.into_bytes(),
        }
    }

    /// Stream the full snapshot encoding into `w`.
    fn write_state(&self, w: &mut SnapWriter) {
        // Structural fingerprint, cross-checked by `restore`.
        w.write_u64(self.seed);
        w.write_u32(self.nodes.len() as u32);
        w.write_u32(self.channels.len() as u32);
        w.write_u32(self.endpoints.len() as u32);
        // Engine state: pending events (with the clock inside), the shared
        // stream, and the packet-id counters.
        self.queue.save_state(w, save_event);
        w.write_rng(&self.rng);
        w.write_u64(self.next_packet_id);
        w.write_bool(self.canonical);
        for &ctr in &self.ep_packet_ctr {
            w.write_u64(ctr);
        }
        // Trace.
        w.write_bool(self.trace.is_enabled());
        let records = self.trace.records();
        w.write_u64(records.len() as u64);
        for rec in records {
            save_trace_record(rec, w);
        }
        // Auditor.
        self.audit.save_state(w);
        // Per-host receive-path state (switches carry none).
        for ni in 0..self.nodes.len() {
            if self.hosts.is_host(ni) {
                self.save_host_row(ni, w);
            }
        }
        // Per-channel mutable state. The discipline gets its own section
        // so a save/load asymmetry in one implementation fails at its own
        // boundary.
        for ci in 0..self.channels.len() {
            self.save_channel_row(ci, w);
        }
        // Endpoints, one section each (empty for a detached slot, which
        // can only be observed if snapshot were called mid-dispatch — the
        // symmetric read keeps even that case consistent).
        for i in 0..self.endpoints.len() {
            self.save_endpoint_row(i, w);
        }
    }

    /// A 64-bit FNV-1a hash of the world's *canonical* state encoding,
    /// streamed through a hashing [`SnapWriter`] so no snapshot buffer is
    /// ever materialized. Two worlds with equal hashes (collisions aside)
    /// evolve identically under identical future inputs; the model
    /// checker uses this for visited-state deduplication.
    ///
    /// The canonical encoding differs from the snapshot encoding by
    /// excluding state that is pure *observation* — it records what
    /// happened but never feeds back into behavior, so keeping it would
    /// only split states that are behaviorally one:
    ///
    /// * the trace (flag and records);
    /// * event-queue bookkeeping (slab layout, sequence/pop/peak
    ///   counters) — pending events are encoded in canonical pop order
    ///   instead, which captures everything dispatch can see, including
    ///   FIFO tie-breaking, and events referenced by live handles still
    ///   pin their [`EventId`]s through the endpoint sections that hold
    ///   those handles;
    /// * per-channel throughput counters ([`ChannelStats`]);
    /// * the audit's absolute injected/delivered/dropped totals — their
    ///   *balance* (packets in the network) is behavioral and is hashed;
    ///   the recorded-violation list is reporting, not state;
    /// * injected model-checking outages that have fully expired (their
    ///   window can no longer cover or cut anything).
    ///
    /// The hash still covers the codec header, so a snapshot version bump
    /// automatically invalidates any persisted dedup set.
    pub fn state_hash(&self) -> u64 {
        let mut w = SnapWriter::hashing_with_header(Snapshot::MAGIC, Snapshot::VERSION);
        w.write_u64(self.seed);
        w.write_u32(self.nodes.len() as u32);
        w.write_u32(self.channels.len() as u32);
        w.write_u32(self.endpoints.len() as u32);
        let now = self.now();
        w.write_time(now);
        let pending = self.queue.pending_entries();
        w.write_u64(pending.len() as u64);
        for (at, key, _id, ev) in pending {
            w.write_time(at);
            w.write_u64(key);
            save_event(ev, &mut w);
        }
        w.write_rng(&self.rng);
        w.write_u64(self.next_packet_id);
        w.write_bool(self.canonical);
        for &ctr in &self.ep_packet_ctr {
            w.write_u64(ctr);
        }
        self.audit.write_canonical(&mut w);
        for ni in 0..self.nodes.len() {
            if self.hosts.is_host(ni) {
                self.save_host_row(ni, &mut w);
            }
        }
        for ci in 0..self.channels.len() {
            // The behavioral subset of `save_channel_row`: in-service
            // slot, burst phase, private RNG, discipline, and the live
            // part of the mc overlay — no throughput counters.
            match self.channels.in_service(ci) {
                Some((pkt, started)) => {
                    w.write_bool(true);
                    pkt.save_state(&mut w);
                    w.write_time(*started);
                }
                None => w.write_bool(false),
            }
            w.write_bool(
                self.channels
                    .fault(ci)
                    .burst
                    .as_ref()
                    .is_some_and(|b| b.in_bad()),
            );
            w.write_rng(self.channels.rng(ci));
            let mut dw = SnapWriter::new();
            self.channels.discipline(ci).save_state(&mut dw);
            w.write_section(dw);
            let live: Vec<&Outage> = self
                .channels
                .injected_outages(ci)
                .iter()
                .filter(|o| o.up > now)
                .collect();
            w.write_u64(live.len() as u64);
            for o in live {
                w.write_time(o.down);
                w.write_time(o.up);
            }
            w.write_u32(self.channels.forced_drops(ci));
        }
        for i in 0..self.endpoints.len() {
            self.save_endpoint_row(i, &mut w);
        }
        w.finish_hash()
    }

    /// Apply a [`Snapshot`] onto this world, which must have been freshly
    /// built from the same `(config, seed)` pair as the world that was
    /// captured. The seed and component counts are cross-checked; queue,
    /// clock, RNG streams, channel and host occupancy, endpoint state,
    /// trace, and auditor are all replaced wholesale. After a successful
    /// restore, continuing the run is byte-identical (trace, report,
    /// golden hash) to the uninterrupted original.
    ///
    /// On error the world is left in an unspecified half-restored state
    /// and must be discarded; nothing outside `self` is touched. Note the
    /// watchdog's livelock progress window restarts at the restore point
    /// — the window's loop-local bookkeeping is intentionally not part of
    /// the world (a resumed run gets a fresh grace period, never a
    /// spurious verdict).
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapError> {
        let mut r = SnapReader::new(snap.as_bytes());
        let version = r.expect_header(Snapshot::MAGIC)?;
        if version != Snapshot::VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        let seed = r.read_u64()?;
        if seed != self.seed {
            return Err(SnapError::Mismatch(format!(
                "snapshot was taken with seed {seed}, this world uses {}",
                self.seed
            )));
        }
        for (what, got, want) in [
            ("nodes", r.read_u32()?, self.nodes.len() as u32),
            ("channels", r.read_u32()?, self.channels.len() as u32),
            ("endpoints", r.read_u32()?, self.endpoints.len() as u32),
        ] {
            if got != want {
                return Err(SnapError::Mismatch(format!(
                    "snapshot has {got} {what}, this world has {want}"
                )));
            }
        }
        // The queue is replaced wholesale — it carries the clock and any
        // pending `LinkUp` wake-ups the builder already scheduled, so
        // nothing is double-scheduled.
        self.queue = EventQueue::load_state(&mut r, load_event)?;
        self.rng = r.read_rng()?;
        self.next_packet_id = r.read_u64()?;
        let canonical = r.read_bool()?;
        if canonical != self.canonical {
            return Err(SnapError::Mismatch(format!(
                "snapshot was taken in {} mode, this world is in {} mode",
                if canonical { "canonical" } else { "serial" },
                if self.canonical {
                    "canonical"
                } else {
                    "serial"
                },
            )));
        }
        for ctr in &mut self.ep_packet_ctr {
            *ctr = r.read_u64()?;
        }
        let enabled = r.read_bool()?;
        let n_rec = r.read_u64()?;
        let mut records = Vec::with_capacity((n_rec as usize).min(r.remaining()));
        for _ in 0..n_rec {
            records.push(load_trace_record(&mut r)?);
        }
        self.trace.set_enabled(enabled);
        self.trace.set_records(records);
        self.audit.load_state(&mut r)?;
        for ni in 0..self.nodes.len() {
            if self.hosts.is_host(ni) {
                self.load_host_row(ni, &mut r)?;
            }
        }
        for ci in 0..self.channels.len() {
            self.load_channel_row(ci, &mut r)?;
        }
        for i in 0..self.endpoints.len() {
            self.load_endpoint_row(i, &mut r)?;
        }
        r.finish()?;
        snapcount::on_restore();
        Ok(())
    }

    /// Serialize one host's receive-path state (processing flag + queue).
    pub(crate) fn save_host_row(&self, ni: usize, w: &mut SnapWriter) {
        w.write_bool(self.hosts.proc_busy(ni));
        let q = self.hosts.proc_queue(ni);
        w.write_u64(q.len() as u64);
        for p in q {
            p.save_state(w);
        }
    }

    /// Restore one host's receive-path state.
    pub(crate) fn load_host_row(
        &mut self,
        ni: usize,
        r: &mut SnapReader<'_>,
    ) -> Result<(), SnapError> {
        let busy = r.read_bool()?;
        self.hosts.set_proc_busy(ni, busy);
        let n = r.read_u64()?;
        let q = self.hosts.proc_queue_mut(ni);
        q.clear();
        for _ in 0..n {
            q.push_back(Packet::load_state(r)?);
        }
        Ok(())
    }

    /// Serialize one channel's mutable state (in-service slot, burst-loss
    /// phase, private RNG, counters, and the discipline's own section).
    pub(crate) fn save_channel_row(&self, ci: usize, w: &mut SnapWriter) {
        match self.channels.in_service(ci) {
            Some((pkt, started)) => {
                w.write_bool(true);
                pkt.save_state(w);
                w.write_time(*started);
            }
            None => w.write_bool(false),
        }
        w.write_bool(
            self.channels
                .fault(ci)
                .burst
                .as_ref()
                .is_some_and(|b| b.in_bad()),
        );
        w.write_rng(self.channels.rng(ci));
        let stats = self.channels.stats(ci);
        w.write_dur(stats.busy);
        w.write_u64(stats.tx_packets);
        w.write_u64(stats.tx_bytes);
        w.write_u64(stats.drops);
        w.write_u64(stats.enqueued);
        let mut dw = SnapWriter::new();
        self.channels.discipline(ci).save_state(&mut dw);
        w.write_section(dw);
        // v3: model-checking fault overlay. Always empty outside mc runs,
        // so ordinary snapshots cost two fixed-size fields per channel.
        let inj = self.channels.injected_outages(ci);
        w.write_u64(inj.len() as u64);
        for o in inj {
            w.write_time(o.down);
            w.write_time(o.up);
        }
        w.write_u32(self.channels.forced_drops(ci));
    }

    /// Restore one channel's mutable state.
    pub(crate) fn load_channel_row(
        &mut self,
        ci: usize,
        r: &mut SnapReader<'_>,
    ) -> Result<(), SnapError> {
        let in_service = if r.read_bool()? {
            let pkt = Packet::load_state(r)?;
            let started = r.read_time()?;
            Some((pkt, started))
        } else {
            None
        };
        self.channels.set_in_service(ci, in_service);
        let in_bad = r.read_bool()?;
        match &mut self.channels.fault_mut(ci).burst {
            Some(b) => b.set_in_bad(in_bad),
            None if in_bad => {
                return Err(SnapError::Mismatch(
                    "snapshot carries burst-loss state for a channel without a \
                     burst process"
                        .into(),
                ))
            }
            None => {}
        }
        self.channels.set_rng(ci, r.read_rng()?);
        let stats = self.channels.stats_mut(ci);
        stats.busy = r.read_dur()?;
        stats.tx_packets = r.read_u64()?;
        stats.tx_bytes = r.read_u64()?;
        stats.drops = r.read_u64()?;
        stats.enqueued = r.read_u64()?;
        r.read_section(|r| self.channels.discipline_mut(ci).load_state(r))?;
        let n_inj = r.read_u64()?;
        let mut inj = Vec::with_capacity((n_inj as usize).min(r.remaining()));
        for _ in 0..n_inj {
            let down = r.read_time()?;
            let up = r.read_time()?;
            inj.push(Outage { down, up });
        }
        self.channels.set_injected_outages(ci, inj);
        let forced = r.read_u32()?;
        self.channels.set_forced_drops(ci, forced);
        Ok(())
    }

    /// Serialize one endpoint as a length-prefixed section.
    pub(crate) fn save_endpoint_row(&self, i: usize, w: &mut SnapWriter) {
        let mut ew = SnapWriter::new();
        if let Some(ep) = &self.endpoints[i] {
            ep.save_state(&mut ew);
        }
        w.write_section(ew);
    }

    /// Restore one endpoint from its length-prefixed section.
    pub(crate) fn load_endpoint_row(
        &mut self,
        i: usize,
        r: &mut SnapReader<'_>,
    ) -> Result<(), SnapError> {
        let ep = &mut self.endpoints[i];
        r.read_section(|r| match ep {
            Some(ep) => ep.load_state(r),
            None => Ok(()),
        })
    }

    /// The endpoint object, for downcasting to its concrete type after a
    /// run (`None` if the id is out of range).
    pub fn endpoint(&self, ep: EndpointId) -> Option<&dyn Endpoint> {
        self.endpoints.get(ep.0 as usize).and_then(|e| e.as_deref())
    }

    /// Node name (diagnostics).
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.nodes[n.0 as usize].name
    }

    /// Ids of all channels, in creation order.
    pub fn channel_ids(&self) -> Vec<ChannelId> {
        (0..self.channels.len() as u32).map(ChannelId).collect()
    }

    /// Endpoints of a channel as `(src, dst)`.
    pub fn channel_nodes(&self, ch: ChannelId) -> (NodeId, NodeId) {
        (
            self.channels.src(ch.0 as usize),
            self.channels.dst(ch.0 as usize),
        )
    }

    /// Propagation delay of a channel.
    pub fn channel_delay(&self, ch: ChannelId) -> SimDuration {
        self.channels.delay(ch.0 as usize)
    }

    // -- shard support (crate-internal; see `crate::shard`) -----------------

    /// Switch this world into canonical (shard-invariant) execution mode.
    /// Must precede all scheduling: events scheduled beforehand would
    /// carry key 0 and order differently from a canonically keyed rebuild.
    pub(crate) fn set_canonical(&mut self) {
        assert!(
            self.queue.is_empty() && self.queue.dispatched() == 0,
            "canonical mode must be set before anything is scheduled"
        );
        self.canonical = true;
    }

    /// Number of nodes added so far; node ids are dense in
    /// `0..node_count()`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `n` is a switch (as opposed to a host). Together with
    /// [`World::node_count`], [`World::channel_ids`] and
    /// [`World::route_lookup`] this lets external tests rebuild a
    /// reference routing table and cross-check the compressed one.
    pub fn is_switch(&self, n: NodeId) -> bool {
        matches!(self.nodes[n.0 as usize].kind, NodeKind::Switch { .. })
    }

    pub(crate) fn channel_count(&self) -> usize {
        self.channels.len()
    }

    pub(crate) fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// FNV-1a digest of the built configuration: per-node kind, name and
    /// processing delay; per-channel src/dst/rate/delay/capacity/mark
    /// threshold, discipline kind and fault plan; switch routing tables;
    /// per-endpoint (host, peer, conn); and the initial pending-event
    /// population. [`crate::ShardedWorld::build`] compares this across
    /// shard replicas to reject builders that vary wiring, delays, routes
    /// or start times while keeping the component counts equal. Mutable
    /// run state is excluded, and discipline *parameters* (e.g. RED
    /// thresholds) are not visible through the trait, so a builder varying
    /// only those still slips through.
    pub(crate) fn structure_digest(&self) -> u64 {
        fn fold_bytes(mut h: u64, b: &[u8]) -> u64 {
            h = fnv(h, b.len() as u64);
            for &x in b {
                h = fnv(h, u64::from(x));
            }
            h
        }
        fn fold_opt_u32(h: u64, v: Option<u32>) -> u64 {
            match v {
                None => fnv(h, u64::MAX),
                Some(x) => fnv(fnv(h, 1), u64::from(x)),
            }
        }
        let mut h = FNV_OFFSET;
        // Routing tables are hashed through their *semantic* form — the
        // canonical host segments — so two replicas whose tables resolve
        // identically over every host cross-check equal regardless of run
        // decomposition or default-route elision.
        let host_ids = self.host_ids();
        for (ni, node) in self.nodes.iter().enumerate() {
            h = fnv(h, self.hosts.is_host(ni) as u64);
            h = fnv(h, self.hosts.proc_delay(ni).as_nanos());
            h = fold_bytes(h, node.name.as_bytes());
            if let NodeKind::Switch { table } = &node.kind {
                for (first, last, c) in table.canonical_host_segments(&host_ids) {
                    h = fnv(fnv(fnv(h, u64::from(first)), u64::from(last)), u64::from(c));
                }
            }
        }
        for ci in 0..self.channels.len() {
            h = fnv(h, u64::from(self.channels.src(ci).0));
            h = fnv(h, u64::from(self.channels.dst(ci).0));
            h = fnv(h, self.channels.rate(ci).bits_per_sec());
            h = fnv(h, self.channels.delay(ci).as_nanos());
            h = fold_opt_u32(h, self.channels.capacity(ci));
            h = fold_opt_u32(h, self.channels.mark_threshold(ci));
            h = fold_bytes(h, self.channels.discipline(ci).name().as_bytes());
            let fp = self.channels.fault(ci);
            h = fnv(h, fp.model.drop_prob.to_bits());
            h = fnv(h, fp.model.corrupt_prob.to_bits());
            h = fnv(h, fp.dup_prob.to_bits());
            h = match &fp.burst {
                None => fnv(h, 0),
                Some(b) => fnv(
                    fnv(fnv(fnv(h, 1), b.p_enter.to_bits()), b.p_exit.to_bits()),
                    b.loss_bad.to_bits(),
                ),
            };
            h = match &fp.jitter {
                None => fnv(h, 0),
                Some(j) => fnv(fnv(fnv(h, 1), j.prob.to_bits()), j.max_extra.as_nanos()),
            };
            h = fnv(h, fp.outages.len() as u64);
            for o in &fp.outages {
                h = fnv(fnv(h, o.down.as_nanos()), o.up.as_nanos());
            }
        }
        for meta in &self.ep_meta {
            h = fnv(h, u64::from(meta.host.0));
            h = fnv(h, u64::from(meta.peer.0));
            h = fnv(h, u64::from(meta.conn.0));
        }
        for (at, key, _, blob) in self.pending_event_blobs() {
            h = fnv(fnv(h, at.as_nanos()), key);
            h = fold_bytes(h, &blob);
        }
        h
    }

    pub(crate) fn is_host_node(&self, ni: usize) -> bool {
        self.hosts.is_host(ni)
    }

    pub(crate) fn ep_host(&self, i: usize) -> NodeId {
        self.ep_meta[i].host
    }

    pub(crate) fn ep_packet_ctr(&self, i: usize) -> u64 {
        self.ep_packet_ctr[i]
    }

    pub(crate) fn set_ep_packet_ctr(&mut self, i: usize, v: u64) {
        self.ep_packet_ctr[i] = v;
    }

    /// Mark the nodes owned by other shards. Deliveries whose destination
    /// is remote divert to the outbox instead of the local queue, and the
    /// auditor switches to distributed mode (per-shard conservation is
    /// meaningless once packets cross shard borders; the executor checks
    /// the merged counters instead).
    pub(crate) fn set_remote_nodes(&mut self, remote: Vec<bool>) {
        assert_eq!(remote.len(), self.nodes.len());
        self.remote_node = remote;
        self.audit.set_distributed();
    }

    /// The shard that must execute `ev`: the shard owning the node whose
    /// state the event mutates first.
    pub(crate) fn event_shard(&self, node_shard: &[u32], ev: &Event) -> u32 {
        let node = match ev {
            // Transmitter-side events live with the channel, i.e. its src.
            Event::TxComplete(ch) | Event::LinkUp(ch) => self.channels.src(ch.0 as usize),
            Event::Arrival { ch, .. } => self.channels.dst(ch.0 as usize),
            Event::HostProcess(node) => *node,
            Event::Timer { ep, .. } | Event::Start(ep) => self.ep_meta[ep.0 as usize].host,
        };
        node_shard[node.0 as usize]
    }

    /// Drain every pending event and re-schedule only those this shard
    /// owns. Each shard builds the *full* world so global ids align, then
    /// keeps its slice of the initial event population.
    pub(crate) fn retain_owned_events(&mut self, node_shard: &[u32], my_shard: u32) {
        for (at, key, ev) in self.queue.drain_pending() {
            if self.event_shard(node_shard, &ev) == my_shard {
                self.queue.schedule_keyed(at, key, ev);
            }
        }
    }

    /// Drop every pending event (sharded restore wipes the freshly built
    /// initial population before re-scheduling the snapshot's event set).
    pub(crate) fn clear_pending(&mut self) {
        let _ = self.queue.drain_pending();
    }

    /// Dispatch every event strictly before `bound` (the shard's current
    /// safe horizon).
    pub(crate) fn run_before(&mut self, bound: SimTime) {
        while self.queue.peek_time().is_some_and(|t| t < bound) {
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.dispatch(t, ev);
        }
    }

    /// Earliest pending local event, if any.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Take the buffered cross-shard deliveries.
    pub(crate) fn take_outbox(&mut self) -> Vec<(SimTime, ChannelId, Packet)> {
        std::mem::take(&mut self.outbox)
    }

    /// Accept a delivery exported by another shard (the arrival side of a
    /// cut channel). `at` is never in this shard's past: the sender's
    /// horizon protocol guarantees `at ≥ lb_sender + delay ≥ now`.
    pub(crate) fn inject_arrival(&mut self, at: SimTime, ch: ChannelId, pkt: Packet) {
        self.schedule_event(at, Event::Arrival { ch, pkt });
    }

    /// Advance the clock to `t` (idle shard catching up to the run's end
    /// time so every shard agrees on `now`).
    pub(crate) fn advance_clock(&mut self, t: SimTime) {
        self.queue.advance_clock(t);
    }

    /// The pending event set in canonical pop order, each event encoded to
    /// bytes: `(at, key, queue id, bytes)`. The queue id correlates
    /// entries with timer handles held by endpoints.
    pub(crate) fn pending_event_blobs(&self) -> Vec<(SimTime, u64, EventId, Vec<u8>)> {
        self.queue
            .pending_entries()
            .into_iter()
            .map(|(at, key, id, ev)| {
                let mut w = SnapWriter::new();
                save_event(ev, &mut w);
                (at, key, id, w.into_bytes())
            })
            .collect()
    }

    /// Re-schedule a pending event captured by
    /// [`World::pending_event_blobs`] (canonical restore path). Returns
    /// the new queue id so timer handles can be re-linked.
    pub(crate) fn schedule_event_blob(
        &mut self,
        at: SimTime,
        bytes: &[u8],
    ) -> Result<EventId, SnapError> {
        let mut r = SnapReader::new(bytes);
        let ev = load_event(&mut r)?;
        r.finish()?;
        Ok(self.schedule_event(at, ev))
    }

    // -- internals ----------------------------------------------------------

    fn dispatch(&mut self, t: SimTime, ev: Event) {
        // Wall-clock budget poll for request-serving workers; a no-op
        // unless the current thread armed a deadline (see `deadline`).
        crate::deadline::tick(t, self.queue.dispatched());
        match ev {
            Event::TxComplete(ch) => self.tx_complete(t, ch),
            Event::Arrival { ch, pkt } => self.arrival(t, ch, pkt),
            Event::HostProcess(node) => self.host_process(t, node),
            Event::Timer { ep, token } => self.with_endpoint(ep, |e, ctx| e.on_timer(ctx, token)),
            Event::Start(ep) => self.with_endpoint(ep, |e, ctx| e.on_start(ctx)),
            Event::LinkUp(ch) => self.maybe_start_tx(t, ch),
        }
    }

    /// Offer a packet to a channel's buffer, applying capacity + discipline.
    fn offer(&mut self, t: SimTime, ch_id: ChannelId, mut pkt: Packet) {
        let canonical = self.canonical;
        let ch = self.channels.get_mut(ch_id.0 as usize);
        let occupancy = ch.occupancy();
        let capacity = ch.capacity;
        // Canonical mode keeps queue-discipline randomness on the
        // channel's private stream: the draw sequence then depends only on
        // the traffic through this channel, not on how events from other
        // shards interleave with it. Serial mode keeps the legacy shared
        // stream, preserving historical traces bit for bit.
        let rng: &mut SimRng = if canonical { ch.rng } else { &mut self.rng };
        // Active queue management (RED) may discard before the buffer is
        // physically full.
        if !ch.discipline.admit(&pkt, occupancy, rng) {
            ch.stats.drops += 1;
            self.audit.on_drop();
            self.record(
                t,
                TraceEvent::Drop {
                    ch: ch_id,
                    pkt,
                    reason: DropReason::EarlyDrop,
                    qlen: occupancy,
                },
            );
            return;
        }
        // DECbit marking: decided on the occupancy the packet would create.
        if ch.mark_threshold.is_some_and(|k| occupancy + 1 > k) {
            pkt.ce = true;
        }
        if capacity.is_some_and(|cap| occupancy >= cap) {
            match ch.discipline.select_victim(&pkt, rng) {
                Victim::Arriving => {
                    ch.stats.drops += 1;
                    self.audit.on_drop();
                    self.record(
                        t,
                        TraceEvent::Drop {
                            ch: ch_id,
                            pkt,
                            reason: DropReason::BufferFull,
                            qlen: occupancy,
                        },
                    );
                    return;
                }
                Victim::Queued(victim) => {
                    ch.stats.drops += 1;
                    ch.discipline.enqueue(pkt);
                    ch.stats.enqueued += 1;
                    self.audit.on_drop();
                    self.audit.on_enqueue(t, ch_id, occupancy, capacity);
                    self.record(
                        t,
                        TraceEvent::Drop {
                            ch: ch_id,
                            pkt: victim,
                            reason: DropReason::BufferFull,
                            qlen: occupancy,
                        },
                    );
                    self.record(
                        t,
                        TraceEvent::Enqueue {
                            ch: ch_id,
                            pkt,
                            qlen_after: occupancy,
                        },
                    );
                }
            }
        } else {
            ch.discipline.enqueue(pkt);
            ch.stats.enqueued += 1;
            self.audit.on_enqueue(t, ch_id, occupancy + 1, capacity);
            self.record(
                t,
                TraceEvent::Enqueue {
                    ch: ch_id,
                    pkt,
                    qlen_after: occupancy + 1,
                },
            );
        }
        self.maybe_start_tx(t, ch_id);
    }

    fn maybe_start_tx(&mut self, t: SimTime, ch_id: ChannelId) {
        let started = {
            let ch = self.channels.get_mut(ch_id.0 as usize);
            // A downed link (static plan or injected overlay) refuses new
            // transmissions; the LinkUp event scheduled by `set_fault_plan`
            // / `inject_outage` restarts it.
            if ch.in_service.is_some() || ch.link_down(t) {
                None
            } else if let Some(pkt) = ch.discipline.dequeue() {
                *ch.in_service = Some((pkt, t));
                Some((pkt, ch.rate.transmission_time(pkt.size)))
            } else {
                None
            }
        };
        if let Some((pkt, tx_time)) = started {
            self.record(t, TraceEvent::TxStart { ch: ch_id, pkt });
            self.schedule_event(t + tx_time, Event::TxComplete(ch_id));
        }
    }

    fn tx_complete(&mut self, t: SimTime, ch_id: ChannelId) {
        let (pkt, qlen_after, delay, outcome) = {
            let ch = self.channels.get_mut(ch_id.0 as usize);
            let (pkt, started) = ch.in_service.take().expect("TxComplete without tx");
            ch.stats.busy += t.since(started);
            ch.stats.tx_packets += 1;
            ch.stats.tx_bytes += pkt.size as u64;
            let qlen_after = ch.occupancy();
            // A pending forced drop (model-checker branch decision) wins
            // outright and consumes no randomness — the channel's private
            // stream stays aligned with the sibling branch that delivered.
            let outcome = if *ch.forced_drops > 0 {
                *ch.forced_drops -= 1;
                FaultOutcome::Dropped(FaultKind::Dropped)
            } else {
                // Fault decisions draw only from the channel's private
                // stream, never from the world's shared RNG.
                let mut outcome = ch.fault.decide(t, ch.delay, &mut *ch.rng);
                // An injected outage cuts surviving transmissions the same
                // way a static outage window does.
                if let FaultOutcome::Deliver { extra_delay, .. } = outcome {
                    let arrival = t + ch.delay + extra_delay;
                    if ch.injected_outages.iter().any(|o| o.cuts(t, arrival)) {
                        outcome = FaultOutcome::Dropped(FaultKind::LinkDown);
                    }
                }
                outcome
            };
            (pkt, qlen_after, ch.delay, outcome)
        };
        self.record(
            t,
            TraceEvent::TxEnd {
                ch: ch_id,
                pkt,
                qlen_after,
            },
        );
        match outcome {
            FaultOutcome::Dropped(kind) => {
                self.audit.on_drop();
                let reason = match kind {
                    FaultKind::LinkDown => DropReason::LinkDown,
                    FaultKind::Dropped | FaultKind::Corrupted => DropReason::Fault,
                };
                self.record(
                    t,
                    TraceEvent::Drop {
                        ch: ch_id,
                        pkt,
                        reason,
                        qlen: qlen_after,
                    },
                );
            }
            FaultOutcome::Deliver {
                extra_delay,
                duplicate,
            } => {
                let arrival = t + delay + extra_delay;
                self.deliver_or_export(arrival, ch_id, pkt);
                if duplicate {
                    // The copy is a new packet from the network's point of
                    // view: conservation counts it as injected.
                    self.audit.on_inject();
                    self.deliver_or_export(arrival, ch_id, pkt);
                }
            }
        }
        self.maybe_start_tx(t, ch_id);
    }

    /// Route a surviving transmission to its arrival: the local queue, or
    /// — when the channel's destination belongs to another shard — the
    /// outbox for the executor to forward.
    fn deliver_or_export(&mut self, arrival: SimTime, ch_id: ChannelId, pkt: Packet) {
        let dst = self.channels.dst(ch_id.0 as usize);
        if self
            .remote_node
            .get(dst.0 as usize)
            .copied()
            .unwrap_or(false)
        {
            self.outbox.push((arrival, ch_id, pkt));
        } else {
            self.schedule_event(arrival, Event::Arrival { ch: ch_id, pkt });
        }
    }

    fn arrival(&mut self, t: SimTime, ch_id: ChannelId, pkt: Packet) {
        let node_id = self.channels.dst(ch_id.0 as usize);
        let ni = node_id.0 as usize;
        if self.hosts.is_host(ni) {
            debug_assert_eq!(pkt.dst, node_id, "packet delivered to wrong host");
            self.hosts.proc_queue_mut(ni).push_back(pkt);
            if !self.hosts.proc_busy(ni) {
                self.hosts.set_proc_busy(ni, true);
                let d = self.hosts.proc_delay(ni);
                self.schedule_event(t + d, Event::HostProcess(node_id));
            }
        } else {
            let out = match &self.nodes[ni].kind {
                NodeKind::Switch { table } => table.lookup(pkt.dst),
                NodeKind::Host { .. } => unreachable!("host row disagrees with node kind"),
            };
            match out {
                Some(out) => self.offer(t, out, pkt),
                None => panic!(
                    "switch {} has no route to node {}",
                    self.nodes[ni].name, pkt.dst.0
                ),
            }
        }
    }

    fn host_process(&mut self, t: SimTime, node_id: NodeId) {
        let ni = node_id.0 as usize;
        let pkt = self
            .hosts
            .proc_queue_mut(ni)
            .pop_front()
            .expect("HostProcess with empty queue");
        if self.hosts.proc_queue(ni).is_empty() {
            self.hosts.set_proc_busy(ni, false);
        } else {
            let due = t + self.hosts.proc_delay(ni);
            self.schedule_event(due, Event::HostProcess(node_id));
        }
        self.audit.on_deliver(t);
        self.record(t, TraceEvent::Deliver { node: node_id, pkt });
        let ep = match &self.nodes[ni].kind {
            NodeKind::Host { endpoints, .. } => *endpoints.get(&pkt.conn).unwrap_or_else(|| {
                panic!(
                    "host {} has no endpoint for {:?}",
                    self.nodes[ni].name, pkt.conn
                )
            }),
            NodeKind::Switch { .. } => unreachable!(),
        };
        self.with_endpoint(ep, |e, ctx| e.on_packet(ctx, pkt));
    }

    /// Temporarily remove the endpoint so it can be called with `&mut self`
    /// alongside a mutable context over the rest of the world.
    fn with_endpoint<F>(&mut self, ep: EndpointId, f: F)
    where
        F: FnOnce(&mut dyn Endpoint, &mut Ctx<'_>),
    {
        let mut boxed = self.endpoints[ep.0 as usize]
            .take()
            .expect("endpoint re-entered");
        {
            let mut ctx = Ctx { world: self, ep };
            f(boxed.as_mut(), &mut ctx);
        }
        self.endpoints[ep.0 as usize] = Some(boxed);
    }
}

/// The world as seen from inside an endpoint callback.
///
/// Everything an endpoint may do — learn the time, send packets, arm and
/// cancel timers, draw randomness, annotate the trace — goes through this
/// context, so a transport implementation is testable against a scripted
/// world and cannot reach into another endpoint's state.
pub struct Ctx<'a> {
    world: &'a mut World,
    ep: EndpointId,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.queue.now()
    }

    /// This endpoint's connection.
    pub fn conn(&self) -> ConnId {
        self.world.ep_meta[self.ep.0 as usize].conn
    }

    /// The host this endpoint lives on.
    pub fn host(&self) -> NodeId {
        self.world.ep_meta[self.ep.0 as usize].host
    }

    /// The host of the connection's other endpoint.
    pub fn peer(&self) -> NodeId {
        self.world.ep_meta[self.ep.0 as usize].peer
    }

    /// Build and transmit a packet to the peer. Returns its id.
    /// The CE bit starts clear; receivers echoing congestion marks use
    /// [`Ctx::send_marked`].
    pub fn send(&mut self, kind: PacketKind, seq: u64, size: u32, retx: bool) -> PacketId {
        self.send_marked(kind, seq, size, retx, false)
    }

    /// Like [`Ctx::send`], with an explicit initial CE bit (used by DECbit
    /// receivers to echo congestion marks back to the sender).
    pub fn send_marked(
        &mut self,
        kind: PacketKind,
        seq: u64,
        size: u32,
        retx: bool,
        ce: bool,
    ) -> PacketId {
        self.send_full(kind, seq, 0, size, retx, ce)
    }

    /// Fully explicit send: data packets on duplex connections carry a
    /// piggybacked cumulative `ack`.
    pub fn send_full(
        &mut self,
        kind: PacketKind,
        seq: u64,
        ack: u64,
        size: u32,
        retx: bool,
        ce: bool,
    ) -> PacketId {
        let t = self.now();
        let meta = &self.world.ep_meta[self.ep.0 as usize];
        // Canonical mode draws ids from the endpoint's own counter: the
        // id then names (endpoint, nth send), the same on any sharding.
        // A serial world keeps the legacy global counter.
        let id = if self.world.canonical {
            let ctr = &mut self.world.ep_packet_ctr[self.ep.0 as usize];
            let id = PacketId(((u64::from(self.ep.0) + 1) << 40) | *ctr);
            *ctr += 1;
            id
        } else {
            let id = PacketId(self.world.next_packet_id);
            self.world.next_packet_id += 1;
            id
        };
        let pkt = Packet {
            id,
            conn: meta.conn,
            kind,
            seq,
            ack,
            size,
            src: meta.host,
            dst: meta.peer,
            sent_at: t,
            retx,
            ce,
        };
        let host = meta.host;
        self.world.audit.on_inject();
        if pkt.is_ack() {
            // Cumulative ACKs ride the seq field (pure ACKs) — audited for
            // monotonicity.
            self.world.audit.on_ack_send(t, pkt.conn, host, pkt.seq);
        }
        let uplink = match &self.world.nodes[host.0 as usize].kind {
            NodeKind::Host { uplink, .. } => uplink.unwrap_or_else(|| {
                panic!(
                    "host {} has no uplink channel",
                    self.world.nodes[host.0 as usize].name
                )
            }),
            NodeKind::Switch { .. } => unreachable!("endpoints live on hosts"),
        };
        self.world.record(t, TraceEvent::Send { node: host, pkt });
        self.world.offer(t, uplink, pkt);
        id
    }

    /// Arm a timer that calls [`Endpoint::on_timer`] with `token` after
    /// `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerHandle {
        let at = self.world.queue.now() + delay;
        let id = self
            .world
            .schedule_event(at, Event::Timer { ep: self.ep, token });
        TimerHandle(id)
    }

    /// Cancel a timer. Returns `true` if it had not yet fired.
    pub fn cancel_timer(&mut self, h: TimerHandle) -> bool {
        self.world.queue.cancel(h.0)
    }

    /// Record a protocol annotation in the trace.
    pub fn emit(&mut self, ev: ProtoEvent) {
        let meta = &self.world.ep_meta[self.ep.0 as usize];
        let (conn, node) = (meta.conn, meta.host);
        let t = self.now();
        if let ProtoEvent::Cwnd { cwnd, ssthresh } = ev {
            self.world.audit.on_cwnd(t, conn, cwnd, ssthresh);
        }
        self.world.record(t, TraceEvent::Proto { conn, node, ev });
    }

    /// Deterministic randomness (shared world stream). Not
    /// shard-invariant: an endpoint drawing from the shared stream makes
    /// its run depend on global event interleaving, so sharded workloads
    /// must use endpoints that never call this (the TCP machines don't).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.world.rng
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::DropTail;

    /// Sends `n` data packets back-to-back at start; counts ACKs received.
    pub(super) struct Blaster {
        pub(super) n: u64,
        pub(super) acks_seen: u64,
        pub(super) data_size: u32,
    }

    impl Endpoint for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for seq in 1..=self.n {
                ctx.send(PacketKind::Data, seq, self.data_size, false);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
            assert!(pkt.is_ack());
            self.acks_seen += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// ACKs every data packet.
    pub(super) struct Acker {
        pub(super) data_seen: u64,
    }

    impl Endpoint for Acker {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            assert!(pkt.is_data());
            self.data_seen += 1;
            ctx.send(PacketKind::Ack, pkt.seq, 50, false);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Two hosts, one duplex link: H0 <-> H1, no switches.
    pub(super) fn direct_world(
        rate: Rate,
        delay: SimDuration,
        capacity: Option<u32>,
    ) -> (World, NodeId, NodeId, ChannelId, ChannelId) {
        let mut w = World::new(7);
        let h0 = w.add_host("H0", SimDuration::from_micros(100));
        let h1 = w.add_host("H1", SimDuration::from_micros(100));
        let c01 = w.add_channel(
            h0,
            h1,
            rate,
            delay,
            capacity,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        let c10 = w.add_channel(
            h1,
            h0,
            rate,
            delay,
            capacity,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        (w, h0, h1, c01, c10)
    }

    #[test]
    fn single_packet_end_to_end_latency() {
        // 500 B at 50 Kbps = 80 ms tx; 10 ms prop; 0.1 ms host processing.
        let (mut w, h0, h1, _c01, _c10) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), None);
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 1,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let _snk = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        // Data delivered at 80 ms + 10 ms + 0.1 ms = 90.1 ms; ACK (50 B = 8 ms)
        // back at 90.1 + 8 + 10 + 0.1 = 108.2 ms. Final event is ACK delivery.
        assert_eq!(w.now(), SimTime::from_micros(108_200));
        let blaster = w
            .endpoint(src)
            .unwrap()
            .as_any()
            .downcast_ref::<Blaster>()
            .unwrap();
        assert_eq!(blaster.acks_seen, 1);
    }

    #[test]
    fn burst_serializes_back_to_back() {
        let (mut w, h0, h1, c01, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), None);
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 5,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let _snk = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        let st = w.channel_stats(c01);
        assert_eq!(st.tx_packets, 5);
        assert_eq!(st.tx_bytes, 2500);
        // Five 80 ms transmissions back to back.
        assert_eq!(st.busy, SimDuration::from_millis(400));
        assert_eq!(st.drops, 0);
    }

    #[test]
    fn full_buffer_drop_tail_drops_arrivals() {
        // Capacity 3 (waiting + in service); burst of 10 → 7 dropped.
        let (mut w, h0, h1, c01, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), Some(3));
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 10,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let snk = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        let st = w.channel_stats(c01);
        assert_eq!(st.drops, 7);
        assert_eq!(st.tx_packets, 3);
        let acker = w
            .endpoint(snk)
            .unwrap()
            .as_any()
            .downcast_ref::<Acker>()
            .unwrap();
        assert_eq!(acker.data_seen, 3);
        // Dropped seqs are the tail of the burst: 4..=10 (first 3 accepted).
        let dropped: Vec<u64> = w
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.ev {
                TraceEvent::Drop { pkt, .. } => Some(pkt.seq),
                _ => None,
            })
            .collect();
        assert_eq!(dropped, vec![4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let (mut w, h0, h1, c01, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), Some(4));
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 20,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let _ = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        for r in w.trace().records() {
            if let TraceEvent::Enqueue { ch, qlen_after, .. } = r.ev {
                if ch == c01 {
                    assert!(qlen_after <= 4, "occupancy {qlen_after} exceeded capacity");
                }
            }
        }
    }

    #[test]
    fn dumbbell_routing_delivers_through_switches() {
        // H0 - S0 - S1 - H1.
        let mut w = World::new(1);
        let h0 = w.add_host("H0", SimDuration::from_micros(100));
        let h1 = w.add_host("H1", SimDuration::from_micros(100));
        let s0 = w.add_switch("S0");
        let s1 = w.add_switch("S1");
        let fast = Rate::from_mbps(10);
        let slow = Rate::from_kbps(50);
        let us = SimDuration::from_micros(100);
        let ms10 = SimDuration::from_millis(10);
        for (a, b, r, d) in [
            (h0, s0, fast, us),
            (s0, h0, fast, us),
            (s0, s1, slow, ms10),
            (s1, s0, slow, ms10),
            (s1, h1, fast, us),
            (h1, s1, fast, us),
        ] {
            w.add_channel(
                a,
                b,
                r,
                d,
                None,
                Box::new(DropTail::new()),
                FaultModel::NONE,
            );
        }
        w.compute_routes();
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 3,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let snk = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        let acker = w
            .endpoint(snk)
            .unwrap()
            .as_any()
            .downcast_ref::<Acker>()
            .unwrap();
        assert_eq!(acker.data_seen, 3);
        let blaster = w
            .endpoint(src)
            .unwrap()
            .as_any()
            .downcast_ref::<Blaster>()
            .unwrap();
        assert_eq!(blaster.acks_seen, 3);
    }

    /// A manual route must leave on one of the switch's own outgoing
    /// channels; wiring it onto another node's link is rejected at
    /// install time, not discovered as conservation noise mid-run.
    #[test]
    #[should_panic(expected = "a switch can only route onto its own outgoing channels")]
    fn set_route_rejects_foreign_channel() {
        let mut w = World::new(1);
        let h0 = w.add_host("H0", SimDuration::from_micros(100));
        let h1 = w.add_host("H1", SimDuration::from_micros(100));
        let s0 = w.add_switch("S0");
        let s1 = w.add_switch("S1");
        let spec = (
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None::<u32>,
        );
        for (a, b) in [(h0, s0), (s0, s1), (s1, h1)] {
            w.add_channel(
                a,
                b,
                spec.0,
                spec.1,
                spec.2,
                Box::new(DropTail::new()),
                FaultModel::NONE,
            );
        }
        // Channel 2 leaves s1, not s0.
        w.set_route(s0, h1, ChannelId(2));
    }

    /// `validate_routes` must list *every* unreachable (switch,
    /// destination) pair at build time, not just the first.
    #[test]
    fn validate_routes_reports_all_missing_pairs() {
        // Switch s has channels to a only; b and c are send-only hosts
        // (their uplinks exist, the return channels don't).
        let mut w = World::new(1);
        let a = w.add_host("A", SimDuration::from_micros(100));
        let b = w.add_host("B", SimDuration::from_micros(100));
        let c = w.add_host("C", SimDuration::from_micros(100));
        let s = w.add_switch("S");
        let link = |w: &mut World, x, y| {
            w.add_channel(
                x,
                y,
                Rate::from_kbps(50),
                SimDuration::from_millis(10),
                None,
                Box::new(DropTail::new()),
                FaultModel::NONE,
            )
        };
        link(&mut w, a, s);
        link(&mut w, s, a);
        link(&mut w, b, s);
        link(&mut w, c, s);
        w.compute_routes();
        let missing = w.missing_routes();
        assert_eq!(missing, vec![(s, b), (s, c)]);
        let msg = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w.validate_routes()))
            .expect_err("incomplete routes must fail validation");
        let msg = msg.downcast_ref::<String>().unwrap();
        assert!(msg.contains("2 unreachable"), "{msg}");
        assert!(
            msg.contains("host 1 (B)") && msg.contains("host 2 (C)"),
            "{msg}"
        );
    }

    /// Complete tables validate silently, and lookups agree with what
    /// the BFS installed.
    #[test]
    fn validate_routes_accepts_complete_tables() {
        let mut w = World::new(1);
        let h0 = w.add_host("H0", SimDuration::from_micros(100));
        let h1 = w.add_host("H1", SimDuration::from_micros(100));
        let s0 = w.add_switch("S0");
        let link = |w: &mut World, x, y| {
            w.add_channel(
                x,
                y,
                Rate::from_kbps(50),
                SimDuration::from_millis(10),
                None,
                Box::new(DropTail::new()),
                FaultModel::NONE,
            )
        };
        link(&mut w, h0, s0);
        let s0h0 = link(&mut w, s0, h0);
        link(&mut w, h1, s0);
        let s0h1 = link(&mut w, s0, h1);
        w.compute_routes();
        w.validate_routes();
        assert!(w.missing_routes().is_empty());
        assert_eq!(w.route_lookup(s0, h0), Some(s0h0));
        assert_eq!(w.route_lookup(s0, h1), Some(s0h1));
        assert!(w.route_table_bytes() < w.dense_route_bytes() || w.route_table_bytes() == 0);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let (mut w, h0, h1, _, _) =
                direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), Some(5));
            let _ = seed; // direct_world fixes the seed; vary workload only
            let src = w.attach(
                h0,
                h1,
                ConnId(0),
                Box::new(Blaster {
                    n: 12,
                    acks_seen: 0,
                    data_size: 500,
                }),
            );
            let _ = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
            w.start_at(src, SimTime::ZERO);
            w.run_to_completion();
            (w.now(), w.events_dispatched(), w.trace().len())
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn host_processing_is_serial() {
        // Two packets arrive (nearly) simultaneously; deliveries must be
        // spaced by the processing delay.
        let (mut w, h0, h1, _, _) = direct_world(Rate::from_mbps(10), SimDuration::ZERO, None);
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 2,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let _ = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        let delivers: Vec<SimTime> = w
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.ev {
                TraceEvent::Deliver { node, pkt } if node == h1 && pkt.is_data() => Some(r.t),
                _ => None,
            })
            .collect();
        assert_eq!(delivers.len(), 2);
        // Arrivals at 400 us and 800 us (tx times); processing 100 us each →
        // deliveries at 500 us and 900 us (second arrival waits for nothing:
        // it arrives at 800, processing starts then, done 900).
        assert_eq!(delivers[0], SimTime::from_micros(500));
        assert_eq!(delivers[1], SimTime::from_micros(900));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerBox {
            fired: Vec<u64>,
        }
        impl Endpoint for TimerBox {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 1);
                let dead = ctx.set_timer(SimDuration::from_secs(2), 2);
                ctx.set_timer(SimDuration::from_secs(3), 3);
                assert!(ctx.cancel_timer(dead));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let (mut w, h0, h1, _, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), None);
        let ep = w.attach(h0, h1, ConnId(0), Box::new(TimerBox { fired: vec![] }));
        w.start_at(ep, SimTime::ZERO);
        w.run_to_completion();
        let tb = w
            .endpoint(ep)
            .unwrap()
            .as_any()
            .downcast_ref::<TimerBox>()
            .unwrap();
        assert_eq!(tb.fired, vec![1, 3]);
    }

    #[test]
    fn fault_injection_drops_everything_at_p1() {
        let mut w = World::new(3);
        let h0 = w.add_host("H0", SimDuration::from_micros(100));
        let h1 = w.add_host("H1", SimDuration::from_micros(100));
        w.add_channel(
            h0,
            h1,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
            Box::new(DropTail::new()),
            FaultModel::lossy(1.0),
        );
        w.add_channel(
            h1,
            h0,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 5,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let snk = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        let acker = w
            .endpoint(snk)
            .unwrap()
            .as_any()
            .downcast_ref::<Acker>()
            .unwrap();
        assert_eq!(acker.data_seen, 0, "perfectly lossy channel delivered data");
        let faults = w
            .trace()
            .records()
            .iter()
            .filter(|r| {
                matches!(
                    r.ev,
                    TraceEvent::Drop {
                        reason: DropReason::Fault,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(faults, 5);
    }

    #[test]
    fn utilization_of_saturated_channel_is_one() {
        let (mut w, h0, h1, c01, _) = direct_world(Rate::from_kbps(50), SimDuration::ZERO, None);
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 10,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let _ = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_until(SimTime::from_millis(800)); // exactly 10 * 80 ms
        let u = w.utilization(c01);
        assert!(u > 0.99, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut w = World::new(1);
        let h0 = w.add_host("H0", SimDuration::from_micros(100));
        let h1 = w.add_host("H1", SimDuration::from_micros(100));
        let s0 = w.add_switch("S0");
        w.add_channel(
            h0,
            s0,
            Rate::from_mbps(10),
            SimDuration::from_micros(100),
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        // no route installed on s0, no channel to h1
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 1,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
    }

    #[test]
    fn zero_size_packets_serialize_instantly() {
        let (mut w, h0, h1, c01, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), None);
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 3,
                acks_seen: 0,
                data_size: 0,
            }),
        );
        let _ = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        assert_eq!(w.channel_stats(c01).busy, SimDuration::ZERO);
        assert_eq!(w.channel_stats(c01).tx_packets, 3);
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::discipline::DropTail;

    /// An endpoint that reschedules itself forever with zero delay.
    struct Spinner;
    impl Endpoint for Spinner {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn bounded_run_stops_a_spinner() {
        let mut w = World::new(1);
        let h0 = w.add_host("a", SimDuration::ZERO);
        let h1 = w.add_host("b", SimDuration::ZERO);
        w.add_channel(
            h0,
            h1,
            Rate::from_kbps(50),
            SimDuration::ZERO,
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        let ep = w.attach(h0, h1, ConnId(0), Box::new(Spinner));
        w.start_at(ep, SimTime::ZERO);
        let finished = w.run_until_bounded(SimTime::from_secs(1), 10_000);
        assert!(!finished, "spinner must exhaust the budget");
        assert!(w.events_dispatched() >= 10_000);
        assert!(w.events_dispatched() < 10_100, "stops promptly");
    }

    #[test]
    fn budget_exhausted_mid_outage_reports_budget_not_deadlock() {
        // The forward link is down from t=0 to t=10s; the pending LinkUp
        // event keeps the queue non-empty, so running out of event budget
        // mid-outage must be reported as "budget exhausted" — the run was
        // cut short, nothing is provably stuck.
        let mut w = World::new(1);
        let h0 = w.add_host("a", SimDuration::ZERO);
        let h1 = w.add_host("b", SimDuration::from_micros(100));
        let c01 = w.add_channel(
            h0,
            h1,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        w.add_channel(
            h1,
            h0,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        w.set_fault_plan(
            c01,
            FaultPlan::with_outages(vec![crate::fault::Outage {
                down: SimTime::ZERO,
                up: SimTime::from_secs(10),
            }]),
        )
        .unwrap();
        let spinner = w.attach(h0, h1, ConnId(0), Box::new(Spinner));
        w.start_at(spinner, SimTime::ZERO);
        let cfg = WatchdogConfig {
            max_events: Some(100),
            ..WatchdogConfig::default()
        };
        let outcome = w.run_until_quiescent(SimTime::from_secs(20), &cfg);
        let report = outcome.stall().expect("budget must be exhausted");
        assert_eq!(report.kind, StallKind::BudgetExhausted);
        assert!(
            report.render().contains("budget exhausted"),
            "{}",
            report.render()
        );
        assert!(w.now() < SimTime::from_secs(10), "verdict lands mid-outage");
    }

    #[test]
    fn bounded_run_reaches_time_bound_normally() {
        let mut w = World::new(1);
        let h0 = w.add_host("a", SimDuration::ZERO);
        let h1 = w.add_host("b", SimDuration::ZERO);
        w.add_channel(
            h0,
            h1,
            Rate::from_kbps(50),
            SimDuration::ZERO,
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        let finished = w.run_until_bounded(SimTime::from_secs(1), 10);
        assert!(finished, "empty world reaches the bound trivially");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::tests::{direct_world, Acker, Blaster};
    use super::*;
    use crate::discipline::{DropTail, RandomDrop};
    use crate::fault::Outage;
    use crate::trace::TraceRecord;

    /// 50 Kbps, 500 B data → 80 ms serialization, 10 ms propagation,
    /// 0.1 ms host processing.
    fn outage_world(outages: Vec<Outage>) -> (World, EndpointId, EndpointId, ChannelId) {
        let (mut w, h0, h1, c01, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), None);
        w.set_fault_plan(c01, FaultPlan::with_outages(outages))
            .unwrap();
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 5,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let snk = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        (w, src, snk, c01)
    }

    #[test]
    fn outage_cuts_in_flight_refuses_new_and_recovers() {
        // Packet 1: tx 0–80 ms, would arrive 90 ms. Outage [85 ms, 300 ms):
        // cut in flight. Packet 2: tx 80–160 ms, finishes into a down link:
        // dropped. Packets 3–5 wait for LinkUp at 300 ms, then flow.
        let (mut w, _src, snk, c01) = outage_world(vec![Outage {
            down: SimTime::from_millis(85),
            up: SimTime::from_millis(300),
        }]);
        w.run_to_completion();
        let acker = w
            .endpoint(snk)
            .unwrap()
            .as_any()
            .downcast_ref::<Acker>()
            .unwrap();
        assert_eq!(acker.data_seen, 3, "packets 3-5 survive the outage");
        let link_down_drops: Vec<u64> = w
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.ev {
                TraceEvent::Drop {
                    reason: DropReason::LinkDown,
                    pkt,
                    ..
                } => Some(pkt.seq),
                _ => None,
            })
            .collect();
        assert_eq!(link_down_drops, vec![1, 2]);
        // No transmission starts while the link is down.
        for r in w.trace().records() {
            if let TraceEvent::TxStart { ch, .. } = r.ev {
                if ch == c01 {
                    assert!(
                        r.t < SimTime::from_millis(160) || r.t >= SimTime::from_millis(300),
                        "TxStart at {:?} during the outage",
                        r.t
                    );
                }
            }
        }
        // First post-outage delivery: tx 300-380 ms + 10 ms + 0.1 ms.
        let first_recovered = w
            .trace()
            .records()
            .iter()
            .find_map(|r| match r.ev {
                TraceEvent::Deliver { pkt, .. } if pkt.is_data() => Some(r.t),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_recovered, SimTime::from_micros(390_100));
        assert_eq!(w.audit().total_violations(), 0);
    }

    #[test]
    fn outage_only_plan_run_is_byte_identical_to_manual_schedule() {
        // Outages draw no randomness: two identical runs produce identical
        // traces even though the plan is active.
        let run = || {
            let (mut w, _, _, _) = outage_world(vec![Outage {
                down: SimTime::from_millis(85),
                up: SimTime::from_millis(300),
            }]);
            w.run_to_completion();
            w.trace().records().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn duplication_delivers_copies_and_conserves() {
        let (mut w, h0, h1, c01, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), None);
        let plan = FaultPlan {
            dup_prob: 1.0,
            ..FaultPlan::NONE
        };
        w.set_fault_plan(c01, plan).unwrap();
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 3,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let snk = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        let acker = w
            .endpoint(snk)
            .unwrap()
            .as_any()
            .downcast_ref::<Acker>()
            .unwrap();
        assert_eq!(acker.data_seen, 6, "every data packet arrives twice");
        // 3 sends + 3 duplicates + 6 ACKs injected; all delivered.
        assert_eq!(w.audit().injected(), 12);
        assert_eq!(w.audit().delivered(), 12);
        assert_eq!(w.audit().total_violations(), 0);
    }

    #[test]
    fn reorder_jitter_is_bounded() {
        let (mut w, h0, h1, c01, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), None);
        let max_extra = SimDuration::from_millis(5);
        let plan = FaultPlan {
            jitter: Some(crate::fault::ReorderJitter {
                prob: 1.0,
                max_extra,
            }),
            ..FaultPlan::NONE
        };
        w.set_fault_plan(c01, plan).unwrap();
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 10,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let _ = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        w.run_to_completion();
        // Serialization (80 ms) dwarfs the jitter bound (5 ms), so each
        // delivery is its own packet's: t = tx_end + 10 ms prop + jitter
        // + 0.1 ms processing.
        let base = SimDuration::from_millis(10) + SimDuration::from_micros(100);
        let mut saw_nonzero = false;
        let mut n = 0u64;
        for r in w.trace().records() {
            if let TraceEvent::Deliver { pkt, .. } = r.ev {
                if pkt.is_data() {
                    n += 1;
                    let tx_end = SimTime::ZERO + SimDuration::from_millis(80) * n;
                    let extra = r.t.since(tx_end + base);
                    assert!(extra < max_extra, "jitter {extra:?} out of bounds");
                    saw_nonzero |= !extra.is_zero();
                }
            }
        }
        assert_eq!(n, 10);
        assert!(saw_nonzero, "jitter at prob 1.0 must actually delay");
        assert_eq!(w.audit().total_violations(), 0);
    }

    /// Connection id tagged on every trace record that carries one.
    fn record_conn(ev: &TraceEvent) -> Option<ConnId> {
        match ev {
            TraceEvent::Send { pkt, .. }
            | TraceEvent::Enqueue { pkt, .. }
            | TraceEvent::Drop { pkt, .. }
            | TraceEvent::TxStart { pkt, .. }
            | TraceEvent::TxEnd { pkt, .. }
            | TraceEvent::Deliver { pkt, .. } => Some(pkt.conn),
            TraceEvent::Proto { conn, .. } => Some(*conn),
        }
    }

    /// Counts deliveries without responding, so the faulty path injects no
    /// packets of its own and the global packet-id sequence stays fixed.
    struct Sink {
        seen: u64,
    }
    impl Endpoint for Sink {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.seen += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Two disjoint host pairs in one world. Pair A (conn 0) takes the
    /// fault plan under test; pair B (conn 1) runs a Random Drop queue
    /// that draws victims from the *shared* world RNG. If fault draws
    /// leaked onto the shared stream, B's victim choices would shift.
    fn two_pair_trace(plan: FaultPlan) -> (Vec<TraceRecord>, usize) {
        let mut w = World::new(11);
        let rate = Rate::from_kbps(50);
        let delay = SimDuration::from_millis(10);
        let proc = SimDuration::from_micros(100);
        let a0 = w.add_host("A0", proc);
        let a1 = w.add_host("A1", proc);
        let b0 = w.add_host("B0", proc);
        let b1 = w.add_host("B1", proc);
        let ca = w.add_channel(
            a0,
            a1,
            rate,
            delay,
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        w.add_channel(
            a1,
            a0,
            rate,
            delay,
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        w.add_channel(
            b0,
            b1,
            rate,
            delay,
            Some(2),
            Box::new(RandomDrop::new()),
            FaultModel::NONE,
        );
        w.add_channel(
            b1,
            b0,
            rate,
            delay,
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        w.set_fault_plan(ca, plan).unwrap();
        let sa = w.attach(
            a0,
            a1,
            ConnId(0),
            Box::new(Blaster {
                n: 8,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let _ = w.attach(a1, a0, ConnId(0), Box::new(Sink { seen: 0 }));
        let sb = w.attach(
            b0,
            b1,
            ConnId(1),
            Box::new(Blaster {
                n: 8,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let _ = w.attach(b1, b0, ConnId(1), Box::new(Acker { data_seen: 0 }));
        w.start_at(sa, SimTime::ZERO);
        w.start_at(sb, SimTime::ZERO);
        w.run_to_completion();
        let b_records: Vec<TraceRecord> = w
            .trace()
            .records()
            .iter()
            .filter(|r| record_conn(&r.ev) == Some(ConnId(1)))
            .copied()
            .collect();
        let a_fault_drops = w
            .trace()
            .records()
            .iter()
            .filter(|r| {
                matches!(
                    r.ev,
                    TraceEvent::Drop {
                        reason: DropReason::Fault,
                        ..
                    }
                ) && record_conn(&r.ev) == Some(ConnId(0))
            })
            .count();
        (b_records, a_fault_drops)
    }

    #[test]
    fn faults_on_one_channel_leave_other_paths_byte_identical() {
        let (clean_b, clean_drops) = two_pair_trace(FaultPlan::NONE);
        let lossy = FaultPlan::from(FaultModel::lossy(0.5));
        let (faulty_b, faulty_drops) = two_pair_trace(lossy);
        assert_eq!(clean_drops, 0);
        assert!(faulty_drops > 0, "the lossy plan must actually drop");
        assert_eq!(
            clean_b, faulty_b,
            "path B's packet trace shifted when path A became lossy"
        );
    }

    #[test]
    fn set_fault_plan_rejects_invalid_plans() {
        let (mut w, _, _, c01, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), None);
        let bad = FaultPlan {
            dup_prob: 1.5,
            ..FaultPlan::NONE
        };
        assert!(w.set_fault_plan(c01, bad).is_err());
        // Built as a struct literal: `with_outages` itself panics on
        // malformed schedules, and here we want the fallible path.
        let overlapping = FaultPlan {
            outages: vec![
                Outage {
                    down: SimTime::from_secs(1),
                    up: SimTime::from_secs(5),
                },
                Outage {
                    down: SimTime::from_secs(3),
                    up: SimTime::from_secs(7),
                },
            ],
            ..FaultPlan::NONE
        };
        assert!(w.set_fault_plan(c01, overlapping).is_err());
    }
}

#[cfg(test)]
mod mc_primitive_tests {
    use super::tests::{direct_world, Acker, Blaster};
    use super::*;
    use crate::trace::TraceEvent;

    /// Five 500 B packets over a clean 50 Kbps / 10 ms link.
    fn blaster_world() -> (World, EndpointId, ChannelId) {
        let (mut w, h0, h1, c01, _) =
            direct_world(Rate::from_kbps(50), SimDuration::from_millis(10), None);
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 5,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let snk = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        (w, snk, c01)
    }

    fn data_seen(w: &World, snk: EndpointId) -> u64 {
        w.endpoint(snk)
            .unwrap()
            .as_any()
            .downcast_ref::<Acker>()
            .unwrap()
            .data_seen
    }

    #[test]
    fn state_hash_is_trace_invariant_and_state_sensitive() {
        let (mut a, _, _) = blaster_world();
        let (mut b, _, _) = blaster_world();
        b.trace_mut().set_enabled(false);
        a.run_until(SimTime::from_millis(100));
        b.run_until(SimTime::from_millis(100));
        assert_ne!(
            a.snapshot().as_bytes(),
            b.snapshot().as_bytes(),
            "the snapshots must differ (one carries a trace)"
        );
        assert_eq!(
            a.state_hash(),
            b.state_hash(),
            "the hash must not see the trace"
        );
        let before = a.state_hash();
        a.run_until(SimTime::from_millis(200));
        assert_ne!(before, a.state_hash(), "advancing state must move the hash");
    }

    #[test]
    fn injected_outage_matches_static_outage_semantics() {
        // Same window as `outage_cuts_in_flight_refuses_new_and_recovers`,
        // but injected dynamically before the run instead of installed as
        // a static plan: packets 1 (cut in flight) and 2 (finishes into
        // the downed link) die, packets 3-5 flow after LinkUp at 300 ms.
        let (mut w, snk, c01) = blaster_world();
        w.inject_outage(c01, SimTime::from_millis(85), SimTime::from_millis(300));
        w.run_to_completion();
        assert_eq!(data_seen(&w, snk), 3, "packets 3-5 survive the outage");
        let link_down_drops: Vec<u64> = w
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.ev {
                TraceEvent::Drop {
                    reason: DropReason::LinkDown,
                    pkt,
                    ..
                } => Some(pkt.seq),
                _ => None,
            })
            .collect();
        assert_eq!(link_down_drops, vec![1, 2]);
        for r in w.trace().records() {
            if let TraceEvent::TxStart { ch, .. } = r.ev {
                if ch == c01 {
                    assert!(
                        r.t < SimTime::from_millis(160) || r.t >= SimTime::from_millis(300),
                        "TxStart at {:?} during the injected outage",
                        r.t
                    );
                }
            }
        }
        assert_eq!(w.audit().total_violations(), 0);
    }

    #[test]
    fn forced_drops_consume_exactly_n_and_no_randomness() {
        let (mut clean, clean_snk, _) = blaster_world();
        clean.run_to_completion();
        let (mut w, snk, c01) = blaster_world();
        w.force_drops(c01, 2);
        w.run_to_completion();
        assert_eq!(data_seen(&w, snk), 3, "exactly two packets forced down");
        let fault_drops: Vec<u64> = w
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.ev {
                TraceEvent::Drop {
                    reason: DropReason::Fault,
                    pkt,
                    ..
                } => Some(pkt.seq),
                _ => None,
            })
            .collect();
        assert_eq!(fault_drops, vec![1, 2], "the *next* two transmissions die");
        // RNG-free: both worlds end with identical shared and channel
        // streams (the forced path never draws).
        assert_eq!(data_seen(&clean, clean_snk), 5);
        assert_eq!(clean.rng, w.rng);
        assert_eq!(
            clean.channels.rng(c01.0 as usize),
            w.channels.rng(c01.0 as usize)
        );
        assert_eq!(w.audit().total_violations(), 0);
    }

    #[test]
    fn snapshot_v3_roundtrips_the_mc_overlay() {
        let (mut w, _, c01) = blaster_world();
        w.inject_outage(c01, SimTime::from_millis(85), SimTime::from_millis(300));
        w.force_drops(c01, 1);
        w.run_until(SimTime::from_millis(50));
        let snap = w.snapshot();
        let (mut twin, twin_snk, _) = blaster_world();
        twin.restore(&snap).unwrap();
        assert_eq!(twin.snapshot().as_bytes(), snap.as_bytes());
        assert_eq!(twin.state_hash(), w.state_hash());
        // The restored overlay keeps acting: continue both runs and the
        // futures agree byte for byte.
        w.run_to_completion();
        twin.run_to_completion();
        assert_eq!(w.trace().records(), twin.trace().records());
        // Forced drop (packet 1 at 80 ms) plus outage cuts leave only the
        // post-recovery packets.
        assert_eq!(data_seen(&twin, twin_snk), 3);
    }
}

#[cfg(test)]
mod watchdog_tests {
    use super::tests::{Acker, Blaster};
    use super::*;
    use crate::discipline::DropTail;

    /// Claims to have pending work but never schedules anything.
    struct Inert;
    impl Endpoint for Inert {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn progress(&self) -> EndpointProgress {
            EndpointProgress {
                finished: Some(false),
                detail: "rto unarmed, 3 packets unacked".to_owned(),
            }
        }
    }

    /// Re-arms a timer forever without ever sending: busy but stuck.
    struct TimerChurn;
    impl Endpoint for TimerChurn {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn progress(&self) -> EndpointProgress {
            EndpointProgress {
                finished: Some(false),
                detail: "retransmitting into the void".to_owned(),
            }
        }
    }

    fn two_host_world() -> (World, NodeId, NodeId) {
        let mut w = World::new(5);
        let h0 = w.add_host("H0", SimDuration::from_micros(100));
        let h1 = w.add_host("H1", SimDuration::from_micros(100));
        for (a, b) in [(h0, h1), (h1, h0)] {
            w.add_channel(
                a,
                b,
                Rate::from_kbps(50),
                SimDuration::from_millis(10),
                None,
                Box::new(DropTail::new()),
                FaultModel::NONE,
            );
        }
        (w, h0, h1)
    }

    #[test]
    fn clean_run_is_quiescent() {
        let (mut w, h0, h1) = two_host_world();
        let src = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Blaster {
                n: 3,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let _ = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        w.start_at(src, SimTime::ZERO);
        let outcome = w.run_until_quiescent(SimTime::from_secs(10), &WatchdogConfig::default());
        assert!(matches!(outcome, RunOutcome::Quiescent));
        assert_eq!(w.audit().total_violations(), 0);
    }

    #[test]
    fn drained_queue_with_unfinished_endpoint_is_deadlock() {
        let (mut w, h0, h1) = two_host_world();
        let ep = w.attach(h0, h1, ConnId(0), Box::new(Inert));
        w.start_at(ep, SimTime::ZERO);
        let outcome = w.run_until_quiescent(SimTime::from_secs(10), &WatchdogConfig::default());
        let report = outcome.stall().expect("must stall");
        assert_eq!(report.kind, StallKind::Deadlock);
        assert_eq!(report.stuck.len(), 1);
        assert_eq!(report.stuck[0].conn, 0);
        assert_eq!(report.stuck[0].host, h0);
        assert!(report.render().contains("node0"), "{}", report.render());
        assert!(
            report.render().contains("rto unarmed"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn eventful_run_without_goodput_is_livelock() {
        let (mut w, h0, h1) = two_host_world();
        let ep = w.attach(h0, h1, ConnId(0), Box::new(TimerChurn));
        w.start_at(ep, SimTime::ZERO);
        let cfg = WatchdogConfig {
            progress_window: SimDuration::from_secs(5),
            ..WatchdogConfig::default()
        };
        let outcome = w.run_until_quiescent(SimTime::from_secs(1000), &cfg);
        let report = outcome.stall().expect("must stall");
        assert_eq!(report.kind, StallKind::Livelock);
        assert!(
            w.now() < SimTime::from_secs(10),
            "verdict promptly after one window, not at t_end"
        );
        assert_eq!(report.stuck[0].detail, "retransmitting into the void");
    }

    #[test]
    fn events_past_bound_report_time_bound() {
        let (mut w, h0, h1) = two_host_world();
        let ep = w.attach(h0, h1, ConnId(0), Box::new(TimerChurn));
        w.start_at(ep, SimTime::ZERO);
        let outcome = w.run_until_quiescent(SimTime::from_secs(3), &WatchdogConfig::default());
        assert!(matches!(outcome, RunOutcome::TimeBound));
    }

    /// A deadlock verdict with a configured post-mortem directory dumps a
    /// restorable snapshot of the stalled world and names it in the
    /// report.
    #[test]
    fn stall_verdict_writes_post_mortem_snapshot() {
        let build = || {
            let (mut w, h0, h1) = two_host_world();
            let ep = w.attach(h0, h1, ConnId(0), Box::new(Inert));
            w.start_at(ep, SimTime::ZERO);
            w
        };
        let dir = std::env::temp_dir().join(format!("td-postmortem-test-{}", std::process::id()));
        let cfg = WatchdogConfig {
            post_mortem_dir: Some(dir.clone()),
            ..WatchdogConfig::default()
        };
        let mut w = build();
        let outcome = w.run_until_quiescent(SimTime::from_secs(10), &cfg);
        let report = outcome.stall().expect("Inert must deadlock");
        assert_eq!(report.kind, StallKind::Deadlock);
        let path = report.post_mortem.clone().expect("post-mortem written");
        assert!(path.starts_with(&dir));
        assert!(report.render().contains("post-mortem snapshot"));
        let snap = Snapshot::read_from_file(&path).expect("snapshot file readable");
        let mut fresh = build();
        fresh
            .restore(&snap)
            .expect("post-mortem restores onto a twin");
        assert_eq!(fresh.now(), w.now());
        assert_eq!(fresh.events_dispatched(), w.events_dispatched());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::tests::{Acker, Blaster};
    use super::*;
    use crate::discipline::{DropTail, Red};
    use crate::fault::GilbertElliott;

    /// Sends one data packet per timer tick; carries a live [`TimerHandle`]
    /// across snapshots, exercising the endpoint save/load hooks.
    struct Ticker {
        interval: SimDuration,
        remaining: u64,
        acks: u64,
        pending: Option<TimerHandle>,
    }

    impl Endpoint for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.pending = Some(ctx.set_timer(self.interval, 1));
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
            if pkt.is_ack() {
                self.acks += 1;
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            assert_eq!(token, 1);
            self.pending = None;
            if self.remaining == 0 {
                return;
            }
            ctx.send(PacketKind::Data, self.remaining, 500, false);
            self.remaining -= 1;
            if self.remaining > 0 {
                self.pending = Some(ctx.set_timer(self.interval, 1));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn save_state(&self, w: &mut SnapWriter) {
            w.write_u64(self.remaining);
            w.write_u64(self.acks);
            match &self.pending {
                Some(h) => {
                    w.write_bool(true);
                    h.save_state(w);
                }
                None => w.write_bool(false),
            }
        }
        fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.remaining = r.read_u64()?;
            self.acks = r.read_u64()?;
            self.pending = if r.read_bool()? {
                Some(TimerHandle::load_state(r)?)
            } else {
                None
            };
            Ok(())
        }
    }

    /// A world exercising every snapshotted subsystem at once: RED's
    /// average-queue estimator and the shared RNG (early drops), a
    /// capacity-limited buffer (overflow drops), a Gilbert–Elliott burst
    /// process on the reverse channel (private fault RNG + Markov state),
    /// pending timers, and two endpoints' worth of protocol state.
    fn busy_world(seed: u64) -> World {
        let mut w = World::new(seed);
        let h0 = w.add_host("H0", SimDuration::from_micros(100));
        let h1 = w.add_host("H1", SimDuration::from_micros(100));
        let _fwd = w.add_channel(
            h0,
            h1,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            Some(5),
            Box::new(Red::default()),
            FaultModel::NONE,
        );
        let rev = w.add_channel(
            h1,
            h0,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
            Box::new(DropTail::new()),
            FaultModel::NONE,
        );
        w.set_fault_plan(
            rev,
            FaultPlan::with_burst(GilbertElliott::new(0.2, 0.5, 0.8).unwrap()),
        )
        .unwrap();
        let ticker = w.attach(
            h0,
            h1,
            ConnId(0),
            Box::new(Ticker {
                interval: SimDuration::from_millis(50),
                remaining: 30,
                acks: 0,
                pending: None,
            }),
        );
        let blaster = w.attach(
            h0,
            h1,
            ConnId(1),
            Box::new(Blaster {
                n: 30,
                acks_seen: 0,
                data_size: 500,
            }),
        );
        let ack0 = w.attach(h1, h0, ConnId(0), Box::new(Acker { data_seen: 0 }));
        let ack1 = w.attach(h1, h0, ConnId(1), Box::new(Acker { data_seen: 0 }));
        for ep in [ticker, blaster, ack0, ack1] {
            w.start_at(ep, SimTime::ZERO);
        }
        w
    }

    const T_MID: SimTime = SimTime::from_secs(2);
    const T_END: SimTime = SimTime::from_secs(120);

    #[test]
    fn restored_run_is_identical_to_uninterrupted() {
        // Reference: run straight through.
        let mut a = busy_world(42);
        a.run_until(T_MID);
        let t_snap = a.now();
        let snap = a.snapshot();
        a.run_until(T_END);

        // Restore onto a freshly built world and continue.
        let mut b = busy_world(42);
        b.restore(&snap).unwrap();
        assert_eq!(b.now(), t_snap, "clock must resume at the capture point");
        b.run_until(T_END);

        assert_eq!(a.now(), b.now());
        assert_eq!(a.events_dispatched(), b.events_dispatched());
        assert_eq!(a.trace().records(), b.trace().records(), "trace diverged");
        assert_eq!(a.audit().injected(), b.audit().injected());
        assert_eq!(a.audit().delivered(), b.audit().delivered());
        assert_eq!(a.audit().dropped(), b.audit().dropped());
        assert_eq!(a.audit().total_violations(), b.audit().total_violations());
        for ch in [ChannelId(0), ChannelId(1)] {
            let (sa, sb) = (a.channel_stats(ch), b.channel_stats(ch));
            assert_eq!(sa.tx_packets, sb.tx_packets);
            assert_eq!(sa.tx_bytes, sb.tx_bytes);
            assert_eq!(sa.drops, sb.drops);
            assert_eq!(sa.enqueued, sb.enqueued);
            assert_eq!(sa.busy, sb.busy);
        }
        // Final protocol state matches too.
        let ta = a.endpoint(EndpointId(0)).unwrap().as_any();
        let tb = b.endpoint(EndpointId(0)).unwrap().as_any();
        let (ta, tb) = (
            ta.downcast_ref::<Ticker>().unwrap(),
            tb.downcast_ref::<Ticker>().unwrap(),
        );
        assert_eq!(ta.acks, tb.acks);
        assert_eq!(ta.remaining, tb.remaining);
    }

    #[test]
    fn snapshot_of_restored_world_is_byte_identical() {
        let mut a = busy_world(9);
        a.run_until(T_MID);
        let snap = a.snapshot();
        let mut b = busy_world(9);
        b.restore(&snap).unwrap();
        assert_eq!(
            snap.as_bytes(),
            b.snapshot().as_bytes(),
            "restore must reproduce every captured field exactly"
        );
    }

    #[test]
    fn restore_rejects_mismatched_world() {
        let mut a = busy_world(1);
        a.run_until(T_MID);
        let snap = a.snapshot();
        // Wrong seed.
        let err = busy_world(2).restore(&snap).unwrap_err();
        assert!(matches!(err, SnapError::Mismatch(_)), "got {err:?}");
        // Wrong topology (extra host).
        let mut w = busy_world(1);
        w.add_host("extra", SimDuration::ZERO);
        let err = w.restore(&snap).unwrap_err();
        assert!(matches!(err, SnapError::Mismatch(_)), "got {err:?}");
    }

    #[test]
    fn snapshot_header_is_validated() {
        let mut a = busy_world(3);
        a.run_until(T_MID);
        let bytes = a.snapshot().bytes;
        assert!(matches!(
            Snapshot::from_bytes(b"XXXX0000rest".to_vec()),
            Err(SnapError::BadMagic)
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(wrong_version),
            Err(SnapError::UnsupportedVersion(99))
        ));
        // Truncation anywhere in the payload surfaces as an error, never
        // a half-restored world that silently diverges.
        let truncated = Snapshot::from_bytes(bytes[..bytes.len() / 2].to_vec()).unwrap();
        assert!(busy_world(3).restore(&truncated).is_err());
    }

    #[test]
    fn snapshot_files_roundtrip_atomically() {
        let dir = std::env::temp_dir().join(format!("td-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.tdsnap");
        let mut a = busy_world(7);
        a.run_until(T_MID);
        let snap = a.snapshot();
        snap.write_to_file(&path).unwrap();
        let back = Snapshot::read_from_file(&path).unwrap();
        assert_eq!(snap.as_bytes(), back.as_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
