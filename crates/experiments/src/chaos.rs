//! Chaos drill: Tahoe under scheduled link faults (robustness, not a
//! paper figure).
//!
//! The paper's runs are fault-free; this experiment stresses the same
//! 1+1 two-way small-pipe configuration with the fault subsystem and
//! proves the congestion-control machinery *recovers* rather than
//! deadlocks:
//!
//! * scheduled mid-run outages of increasing length on the forward
//!   bottleneck (the ACK channel of the reverse connection), measuring
//!   the time from link-up to the first forward data delivery;
//! * Gilbert–Elliott burst loss at two severities, measuring
//!   retransmission cost while goodput continues;
//! * every replicate runs under the watchdog and the invariant auditor:
//!   a deadlock, livelock, or conservation violation fails the
//!   experiment with a structured report instead of a hang or panic.

use crate::report::Report;
use crate::scenario::{ConnSpec, Scenario};
use crate::sweep::ReplicateSweep;
use td_engine::{SimDuration, SimTime};
use td_net::{FaultPlan, GilbertElliott, Outage, TraceEvent, WatchdogConfig};

/// One fault configuration under test.
#[derive(Clone, Copy, Debug)]
enum Cell {
    /// A single outage of this many seconds on the forward bottleneck.
    Outage(u64),
    /// Burst loss on the forward bottleneck.
    Burst {
        /// Cell label for rows/metrics.
        label: &'static str,
        /// P(good → bad) per packet.
        p_enter: f64,
        /// P(bad → good) per packet.
        p_exit: f64,
        /// Loss probability in the bad state.
        loss_bad: f64,
    },
}

impl Cell {
    fn label(&self) -> String {
        match self {
            Cell::Outage(secs) => format!("outage_{secs}s"),
            Cell::Burst { label, .. } => format!("burst_{label}"),
        }
    }
}

/// What one replicate observed.
struct CellResult {
    label: String,
    /// Link-up → first forward data delivery (outage cells only).
    recovery_s: Option<f64>,
    retransmits: u64,
    timeouts: u64,
    /// Forward connection's highest cumulative ACK at the end.
    acked: u64,
    violations: u64,
    /// Rendered stall report, if the watchdog tripped.
    stall: Option<String>,
}

/// The base scenario every cell perturbs: the Figure 4–5 configuration.
fn base(seed: u64, duration_s: u64) -> Scenario {
    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    sc.seed = seed;
    sc.duration = SimDuration::from_secs(duration_s);
    sc.warmup = SimDuration::from_secs(duration_s / 6);
    sc.watchdog = Some(WatchdogConfig::default());
    sc
}

/// Run one cell and measure its recovery.
fn run_cell(seed: u64, cell: Cell, duration_s: u64) -> CellResult {
    let mut sc = base(seed, duration_s);
    let down = SimTime::from_secs(duration_s / 3);
    let up = match cell {
        Cell::Outage(secs) => {
            let up = down + SimDuration::from_secs(secs);
            sc.fault_fwd = FaultPlan::with_outages(vec![Outage { down, up }]);
            Some(up)
        }
        Cell::Burst {
            p_enter,
            p_exit,
            loss_bad,
            ..
        } => {
            let ge = GilbertElliott::new(p_enter, p_exit, loss_bad)
                .expect("chaos burst parameters are valid probabilities");
            sc.fault_fwd = FaultPlan::with_burst(ge);
            None
        }
    };
    let run = sc.run();
    let recovery_s = up.and_then(|up| {
        run.world
            .trace()
            .records()
            .iter()
            .find(|r| {
                r.t >= up
                    && matches!(
                        r.ev,
                        TraceEvent::Deliver { node, pkt }
                            if node == run.host2 && pkt.conn == run.fwd[0] && pkt.is_data()
                    )
            })
            .map(|r| r.t.since(up).as_secs_f64())
    });
    let stats = run.sender(run.fwd[0]).stats();
    CellResult {
        label: cell.label(),
        recovery_s,
        retransmits: stats.retransmits,
        timeouts: stats.timeouts,
        acked: stats.acked,
        violations: run.world.audit().total_violations(),
        stall: run
            .outcome
            .as_ref()
            .and_then(|o| o.stall())
            .map(|s| s.render()),
    }
}

/// Run and evaluate the chaos drill.
pub fn report(seed0: u64, duration_s: u64) -> Report {
    let cells = [
        Cell::Outage(2),
        Cell::Outage(8),
        Cell::Outage(20),
        Cell::Burst {
            label: "mild",
            p_enter: 0.02,
            p_exit: 0.30,
            loss_bad: 0.60,
        },
        Cell::Burst {
            label: "harsh",
            p_enter: 0.05,
            p_exit: 0.20,
            loss_bad: 0.90,
        },
    ];
    let mut rep = Report::new(
        "chaos",
        "Tahoe recovery under scheduled outages and burst loss",
        &format!(
            "1+1 two-way, tau = 10 ms, B = 20, {duration_s} s per cell, \
             outage at t = {} s on the forward bottleneck",
            duration_s / 3
        ),
    );

    // One replicate per fault cell, fanned over idle job slots with
    // per-cell derived seeds so adding a cell never reshuffles the others.
    let sweep = ReplicateSweep::derived("chaos", seed0, cells.len());
    let results: Vec<CellResult> = sweep.run(|seed, i| run_cell(seed, cells[i], duration_s));

    let mut all_recover = true;
    let mut all_clean = true;
    let mut no_stall = true;
    for r in &results {
        if let Some(rec) = r.recovery_s {
            rep.info(
                &format!("{}: recovery after link-up", r.label),
                "bounded by the RTO backoff in force",
                format!(
                    "{rec:.1} s ({} retx, {} timeouts)",
                    r.retransmits, r.timeouts
                ),
            );
            rep.metric(&format!("{}_recovery_s", r.label), rec);
        } else if r.label.starts_with("outage") {
            all_recover = false;
            rep.info(
                &format!("{}: recovery after link-up", r.label),
                "bounded by the RTO backoff in force",
                "never recovered".into(),
            );
        } else {
            rep.info(
                &format!("{}: goodput under burst loss", r.label),
                "connection keeps acknowledging new data",
                format!(
                    "{} pkts acked ({} retx, {} timeouts)",
                    r.acked, r.retransmits, r.timeouts
                ),
            );
            // A fault-free run acks thousands; demand real forward
            // progress, not just survival of the opening handshake.
            if r.acked < 100 {
                all_recover = false;
            }
        }
        rep.metric(&format!("{}_retransmits", r.label), r.retransmits as f64);
        rep.metric(&format!("{}_acked", r.label), r.acked as f64);
        if r.violations > 0 {
            all_clean = false;
            rep.diagnostic(format!("{}: {} audit violation(s)", r.label, r.violations));
        }
        if let Some(stall) = &r.stall {
            no_stall = false;
            rep.diagnostic(format!("{}: {stall}", r.label));
        }
    }
    rep.check(
        "recovery",
        "every replicate resumes forward delivery after the fault",
        if all_recover {
            "all replicates recovered".into()
        } else {
            "at least one replicate never recovered".into()
        },
        all_recover,
    );
    rep.check(
        "invariants",
        "zero audit violations across all replicates",
        format!(
            "{} total",
            results.iter().map(|r| r.violations).sum::<u64>()
        ),
        all_clean,
    );
    rep.check(
        "stalls",
        "no deadlock or livelock verdicts",
        if no_stall {
            "none".into()
        } else {
            "watchdog tripped (see diagnostics)".into()
        },
        no_stall,
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_drill_recovers_cleanly() {
        let rep = report(1, 120);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
        // Every outage cell must have produced a recovery-time metric.
        for cell in ["outage_2s", "outage_8s", "outage_20s"] {
            assert!(
                rep.metrics
                    .iter()
                    .any(|(name, _)| name == &format!("{cell}_recovery_s")),
                "missing recovery metric for {cell}"
            );
        }
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn chaos_drill_is_deterministic() {
        let a = report(7, 60);
        let b = report(7, 60);
        let fmt = |r: &Report| format!("{r}\n{:?}\n{:?}", r.metrics, r.diagnostics);
        assert_eq!(fmt(&a), fmt(&b));
    }
}
