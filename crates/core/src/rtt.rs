//! Round-trip-time estimation and retransmission timeout.
//!
//! Jacobson/Karels mean/deviation estimation as in BSD 4.3-Tahoe:
//!
//! ```text
//! err    = sample − srtt
//! srtt  += err / 8
//! rttvar += (|err| − rttvar) / 4
//! RTO    = srtt + 4·rttvar      (clamped, rounded up to clock ticks)
//! ```
//!
//! computed in integer nanoseconds (no flops). The BSD implementation
//! sampled RTTs against a 500 ms clock; we sample exactly but round the
//! resulting RTO up to the configured granularity, reproducing the coarse
//! timeout behaviour that makes Tahoe retransmissions land "after some
//! essentially random interval" (paper §3.1) without also reproducing
//! BSD's measurement quantization (which the paper's simulator, working in
//! continuous time, did not have).
//!
//! Karn's rule is enforced by the caller ([`crate::TcpSender`]): samples
//! are only taken for segments transmitted exactly once. Exponential
//! backoff doubles the RTO per consecutive timeout, saturating at the
//! configured maximum.

use crate::config::RtoConfig;
use td_engine::SimDuration;

/// RTT estimator plus backoff state.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    cfg: RtoConfig,
    /// Smoothed RTT in ns; `None` until the first sample.
    srtt: Option<u64>,
    /// Mean deviation in ns.
    rttvar: u64,
    /// Consecutive-timeout count (backoff exponent).
    backoff: u32,
}

impl RttEstimator {
    /// A fresh estimator.
    pub fn new(cfg: RtoConfig) -> Self {
        RttEstimator {
            cfg,
            srtt: None,
            rttvar: 0,
            backoff: 0,
        }
    }

    /// Incorporate one RTT measurement (also clears timeout backoff, as a
    /// valid sample means the network is acking again).
    pub fn sample(&mut self, rtt: SimDuration) {
        let m = rtt.as_nanos();
        match self.srtt {
            None => {
                // First sample: srtt = m, rttvar = m/2 (RFC 6298 / BSD).
                self.srtt = Some(m);
                self.rttvar = m / 2;
            }
            Some(srtt) => {
                let err = m as i128 - srtt as i128;
                let new_srtt = (srtt as i128 + err / 8).max(0) as u64;
                let abs_err = err.unsigned_abs() as u64;
                // rttvar += (|err| - rttvar) / 4, in signed arithmetic.
                let dv = abs_err as i128 - self.rttvar as i128;
                self.rttvar = (self.rttvar as i128 + dv / 4).max(0) as u64;
                self.srtt = Some(new_srtt);
            }
        }
        self.backoff = 0;
    }

    /// Current smoothed RTT (`None` before any sample).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_nanos)
    }

    /// Note a retransmission timeout: doubles subsequent RTOs.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(12); // 2^12 ≫ max/min ratio
    }

    /// Clear backoff without a sample (e.g. on fast retransmit).
    pub fn reset_backoff(&mut self) {
        self.backoff = 0;
    }

    /// Current backoff exponent.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Serialize the estimator's mutable state (the config is structural).
    pub fn save_state(&self, w: &mut td_engine::SnapWriter) {
        match self.srtt {
            Some(srtt) => {
                w.write_bool(true);
                w.write_u64(srtt);
            }
            None => w.write_bool(false),
        }
        w.write_u64(self.rttvar);
        w.write_u32(self.backoff);
    }

    /// Restore state written by [`RttEstimator::save_state`].
    pub fn load_state(
        &mut self,
        r: &mut td_engine::SnapReader<'_>,
    ) -> Result<(), td_engine::SnapError> {
        self.srtt = if r.read_bool()? {
            Some(r.read_u64()?)
        } else {
            None
        };
        self.rttvar = r.read_u64()?;
        self.backoff = r.read_u32()?;
        Ok(())
    }

    /// The retransmission timeout to arm now: estimator output (or the
    /// initial RTO), backed off, clamped to `[min, max]`, then rounded up
    /// to the clock granularity.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.cfg.initial,
            Some(srtt) => SimDuration::from_nanos(srtt.saturating_add(4 * self.rttvar)),
        };
        let backed = base.saturating_mul(1u64 << self.backoff);
        let clamped = backed.max(self.cfg.min).min(self.cfg.max);
        round_up(clamped, self.cfg.granularity)
    }
}

fn round_up(d: SimDuration, g: SimDuration) -> SimDuration {
    if g.is_zero() {
        return d;
    }
    let rem = d % g;
    if rem.is_zero() {
        d
    } else {
        // Saturating: with max ≈ SimDuration::MAX (an "unclamped" config)
        // and full backoff, d can sit within one granule of the
        // representable ceiling, where plain addition would overflow.
        d.saturating_add(g - rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fine_cfg() -> RtoConfig {
        RtoConfig {
            granularity: SimDuration::from_nanos(1),
            initial: SimDuration::from_secs(3),
            min: SimDuration::from_millis(1),
            max: SimDuration::from_secs(64),
        }
    }

    #[test]
    fn initial_rto_used_before_samples() {
        let e = RttEstimator::new(RtoConfig::default());
        assert_eq!(e.rto(), SimDuration::from_secs(3));
        assert!(e.srtt().is_none());
    }

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut e = RttEstimator::new(fine_cfg());
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = srtt + 4·(srtt/2) = 3·srtt = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn constant_rtt_converges_to_it() {
        let mut e = RttEstimator::new(fine_cfg());
        for _ in 0..200 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap();
        assert_eq!(srtt, SimDuration::from_millis(80));
        // Deviation decays toward zero → RTO approaches srtt (min-clamped).
        assert!(e.rto() <= SimDuration::from_millis(81), "rto = {}", e.rto());
    }

    #[test]
    fn variance_widens_rto() {
        let mut e = RttEstimator::new(fine_cfg());
        for i in 0..100 {
            let rtt = if i % 2 == 0 { 50 } else { 150 };
            e.sample(SimDuration::from_millis(rtt));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            e.rto() > srtt + SimDuration::from_millis(50),
            "jitter must inflate RTO: rto={} srtt={srtt}",
            e.rto()
        );
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut e = RttEstimator::new(fine_cfg());
        e.sample(SimDuration::from_millis(100)); // RTO 300 ms
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(600));
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::from_millis(1200));
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(64), "saturates at max");
    }

    #[test]
    fn sample_clears_backoff() {
        let mut e = RttEstimator::new(fine_cfg());
        e.sample(SimDuration::from_millis(100));
        e.on_timeout();
        e.on_timeout();
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.backoff(), 0);
        // Second identical sample decays rttvar: 50 → 37.5 ms, so
        // RTO = 100 + 4·37.5 = 250 ms (no backoff multiplier left).
        assert_eq!(e.rto(), SimDuration::from_millis(250));
    }

    #[test]
    fn reset_backoff_without_sample() {
        let mut e = RttEstimator::new(fine_cfg());
        e.on_timeout();
        assert_eq!(e.backoff(), 1);
        e.reset_backoff();
        assert_eq!(e.backoff(), 0);
    }

    #[test]
    fn granularity_rounds_up() {
        let mut e = RttEstimator::new(RtoConfig {
            granularity: SimDuration::from_millis(500),
            min: SimDuration::from_millis(1),
            ..RtoConfig::default()
        });
        e.sample(SimDuration::from_millis(80)); // raw RTO 240 ms
        assert_eq!(e.rto(), SimDuration::from_millis(500));
        e.sample(SimDuration::from_millis(80));
        assert_eq!(e.rto() % SimDuration::from_millis(500), SimDuration::ZERO);
    }

    /// An RTO that is already an exact multiple of the clock granularity
    /// must be returned as-is — rounding it up a further tick would add
    /// a systematic 500 ms to every coarse-clock timeout.
    #[test]
    fn exact_granularity_multiple_does_not_round_up() {
        let mut e = RttEstimator::new(RtoConfig {
            granularity: SimDuration::from_millis(500),
            min: SimDuration::from_millis(1),
            ..RtoConfig::default()
        });
        // First sample m: RTO = m + 4·(m/2) = 3·m. Pick m = 500 ms so the
        // raw RTO is exactly 1500 ms = 3 ticks.
        e.sample(SimDuration::from_millis(500));
        assert_eq!(e.rto(), SimDuration::from_millis(1500));
        // And one nanosecond over a tick boundary rounds to the next tick.
        let f = RttEstimator::new(RtoConfig {
            granularity: SimDuration::from_millis(500),
            min: SimDuration::from_nanos(1),
            initial: SimDuration::from_nanos(1_500_000_001),
            ..RtoConfig::default()
        });
        assert_eq!(f.rto(), SimDuration::from_millis(2000));
    }

    /// Backoff saturates at 2^12; even with an enormous estimator output
    /// the shifted product must saturate rather than wrap, and rounding
    /// the clamped result to the clock must not overflow either —
    /// `max = SimDuration::MAX` ("effectively unclamped") puts the RTO
    /// within one granule of the representable ceiling.
    #[test]
    fn saturated_backoff_cannot_overflow_the_clamp() {
        let mut e = RttEstimator::new(RtoConfig {
            granularity: SimDuration::from_millis(500),
            min: SimDuration::from_millis(1),
            max: SimDuration::MAX,
            ..RtoConfig::default()
        });
        // srtt + 4·rttvar = 3 × (u64::MAX / 8) — within u64, but any
        // backoff shift would overflow without saturating arithmetic.
        e.sample(SimDuration::from_nanos(u64::MAX / 8));
        for _ in 0..64 {
            e.on_timeout();
        }
        assert_eq!(e.backoff(), 12, "backoff exponent must cap at 2^12");
        let rto = e.rto();
        assert_eq!(
            rto,
            SimDuration::MAX,
            "saturated RTO must pin to the ceiling, got {rto}"
        );
        // A sane max keeps the clamp exact even under full backoff.
        let mut e = RttEstimator::new(RtoConfig {
            granularity: SimDuration::from_millis(500),
            min: SimDuration::from_millis(1),
            max: SimDuration::from_secs(64),
            ..RtoConfig::default()
        });
        e.sample(SimDuration::from_secs(1_000_000));
        for _ in 0..100 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(64));
    }

    #[test]
    fn rto_respects_min() {
        let mut e = RttEstimator::new(RtoConfig {
            granularity: SimDuration::from_nanos(1),
            min: SimDuration::from_secs(1),
            ..RtoConfig::default()
        });
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(1));
        }
        assert_eq!(e.rto(), SimDuration::from_secs(1));
    }
}
