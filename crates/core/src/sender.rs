//! The TCP sender.
//!
//! Implements the BSD 4.3-Tahoe transmission machinery the paper studies
//! (§2.1), against the [`td_net::Endpoint`] interface:
//!
//! * **Window-limited transmission** of an infinite bulk stream: send while
//!   `snd_nxt − snd_una < wnd`, where `wnd = ⌊min(cwnd, maxwnd)⌋` comes
//!   from the pluggable [`CongestionControl`]. Without pacing, every
//!   permission to send is exercised immediately — the "nonpaced" property
//!   whose consequences (packet clustering → ACK-compression) the paper
//!   dissects.
//! * **Loss detection** (paper footnote 4) by duplicate ACKs — BSD's
//!   `t_dupacks == tcprexmtthresh` (exactly-equals, so one fast retransmit
//!   per dup-ACK run) — and by retransmission timeout.
//! * **Go-back-N recovery**: on either loss signal, `snd_nxt` is pulled
//!   back to `snd_una` and transmission resumes under the post-loss window
//!   (1 packet for Tahoe). Receivers keep out-of-order data, so the
//!   cumulative ACK typically jumps over everything already buffered.
//! * **Karn's rule**: one segment is timed at a time and the measurement is
//!   abandoned whenever recovery retransmits.
//!
//! The sender emits [`ProtoEvent`] annotations (cwnd samples on every
//! change, loss detections, retransmissions) so `td-analysis` can
//! reconstruct the paper's Figure 2/5/7 cwnd plots and loss chronologies.

use crate::cc::CongestionControl;
use crate::config::SenderConfig;
use crate::rtt::RttEstimator;
use std::any::Any;
use td_engine::{SimTime, SnapError, SnapReader, SnapWriter};
use td_net::{Ctx, Endpoint, LossKind, Packet, PacketKind, ProtoEvent, TimerHandle};

const TOKEN_RTO: u64 = 1;
const TOKEN_PACE: u64 = 3;

/// Counters exposed after a run.
#[derive(Clone, Copy, Default, Debug)]
pub struct SenderStats {
    /// Data transmissions, including retransmissions.
    pub packets_sent: u64,
    /// First transmissions of new sequence numbers.
    pub new_data_sent: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// Highest cumulatively acknowledged sequence number.
    pub acked: u64,
    /// Duplicate ACKs received.
    pub dupacks: u64,
    /// Losses detected via the duplicate-ACK threshold.
    pub fast_retransmits: u64,
    /// Losses detected via timer expiry.
    pub timeouts: u64,
}

/// The sending endpoint of one connection.
pub struct TcpSender {
    cfg: SenderConfig,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    /// Lowest unacknowledged sequence number (first is 1).
    snd_una: u64,
    /// Next sequence number to transmit (pulled back on loss).
    snd_nxt: u64,
    /// One past the highest sequence number ever transmitted.
    snd_max: u64,
    /// Consecutive duplicate-ACK count.
    dupacks: u32,
    /// RTO timer, if armed.
    rto_armed: Option<td_net::TimerHandle>,
    /// Segment being timed for RTT: (sequence, send time).
    timing: Option<(u64, SimTime)>,
    /// Pacing: earliest time the next data packet may leave.
    pace_due: SimTime,
    /// Pacing timer armed.
    pace_armed: bool,
    /// When the final packet of a finite transfer was acknowledged.
    finished_at: Option<SimTime>,
    stats: SenderStats,
}

impl TcpSender {
    /// A fresh sender (nothing sent, `snd_una = snd_nxt = 1`).
    pub fn new(cfg: SenderConfig) -> Self {
        TcpSender {
            cc: cfg.cc.build(cfg.maxwnd),
            rtt: RttEstimator::new(cfg.rto),
            cfg,
            snd_una: 1,
            snd_nxt: 1,
            snd_max: 1,
            dupacks: 0,
            rto_armed: None,
            timing: None,
            pace_due: SimTime::ZERO,
            pace_armed: false,
            finished_at: None,
            stats: SenderStats::default(),
        }
    }

    /// A boxed sender, ready for [`td_net::World::attach`].
    pub fn boxed(cfg: SenderConfig) -> Box<dyn Endpoint> {
        Box::new(Self::new(cfg))
    }

    /// Run counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Real-valued congestion window (for inspection).
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Usable window in packets.
    pub fn window(&self) -> u64 {
        self.cc.window().min(self.cfg.maxwnd)
    }

    /// Packets in flight (`snd_nxt − snd_una`).
    pub fn outstanding(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// The RTT estimator (for inspection).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// For finite transfers ([`SenderConfig::data_limit`]): when the last
    /// packet was cumulatively acknowledged. `None` while in progress or
    /// for infinite streams.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    fn emit_cwnd(&mut self, ctx: &mut Ctx<'_>) {
        let (cwnd, ssthresh) = (self.cc.cwnd(), self.cc.ssthresh());
        ctx.emit(ProtoEvent::Cwnd { cwnd, ssthresh });
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(h) = self.rto_armed.take() {
            ctx.cancel_timer(h);
        }
        self.rto_armed = Some(ctx.set_timer(self.rtt.rto(), TOKEN_RTO));
    }

    fn cancel_rto(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(h) = self.rto_armed.take() {
            ctx.cancel_timer(h);
        }
    }

    /// Transmit as much as the window (and the pacer) allows.
    fn try_send(&mut self, ctx: &mut Ctx<'_>) {
        let wnd = self.window();
        let highest = self.cfg.data_limit.unwrap_or(u64::MAX);
        while self.snd_nxt - self.snd_una < wnd && self.snd_nxt <= highest {
            if let Some(interval) = self.cfg.pacing {
                let now = ctx.now();
                if now < self.pace_due {
                    if !self.pace_armed {
                        self.pace_armed = true;
                        ctx.set_timer(self.pace_due.since(now), TOKEN_PACE);
                    }
                    return;
                }
                self.pace_due = now + interval;
            }
            let seq = self.snd_nxt;
            let retx = seq < self.snd_max;
            ctx.send(PacketKind::Data, seq, self.cfg.data_size, retx);
            self.stats.packets_sent += 1;
            if retx {
                self.stats.retransmits += 1;
                ctx.emit(ProtoEvent::Retransmit { seq });
            } else {
                self.stats.new_data_sent += 1;
                if self.timing.is_none() {
                    self.timing = Some((seq, ctx.now()));
                }
            }
            self.snd_nxt += 1;
            self.snd_max = self.snd_max.max(self.snd_nxt);
            if self.rto_armed.is_none() {
                self.arm_rto(ctx);
            }
        }
    }

    /// Window reduction + retransmission on a detected loss.
    ///
    /// The two detection paths recover differently, as in BSD:
    ///
    /// * **Duplicate ACKs** (fast retransmit): resend exactly the first
    ///   unacknowledged segment and leave `snd_nxt` where it is — the BSD
    ///   code saves `onxt`, retransmits one segment, and restores. The
    ///   receiver has buffered the rest of the window, so the next
    ///   cumulative ACK jumps past it; re-sending it here would generate
    ///   duplicate-data ACKs that masquerade as fresh dup-ACK runs and set
    ///   off spurious retransmissions.
    /// * **Timeout**: genuine go-back-N — `snd_nxt = snd_una` and resume
    ///   under the collapsed window (everything in flight is presumed
    ///   gone).
    fn on_loss_detected(&mut self, ctx: &mut Ctx<'_>, kind: LossKind) {
        ctx.emit(ProtoEvent::LossDetected {
            seq: self.snd_una,
            kind,
        });
        self.cc.on_loss(kind);
        self.emit_cwnd(ctx);
        // Karn: the timed segment is about to be retransmitted.
        self.timing = None;
        match kind {
            LossKind::DupAck => self.retransmit_first_unacked(ctx),
            LossKind::Timeout => {
                self.snd_nxt = self.snd_una;
                self.try_send(ctx);
            }
        }
        self.arm_rto(ctx);
    }

    /// Resend `snd_una` once (the fast-retransmit action). Bypasses the
    /// pacer: the retransmission replaces a packet that already left.
    fn retransmit_first_unacked(&mut self, ctx: &mut Ctx<'_>) {
        let seq = self.snd_una;
        ctx.send(PacketKind::Data, seq, self.cfg.data_size, true);
        self.stats.packets_sent += 1;
        self.stats.retransmits += 1;
        ctx.emit(ProtoEvent::Retransmit { seq });
    }
}

impl Endpoint for TcpSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.emit_cwnd(ctx);
        self.try_send(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        debug_assert!(pkt.is_ack(), "sender got a non-ACK packet");
        let ack = pkt.seq; // highest in-order seq received by the peer
        debug_assert!(ack < self.snd_max, "ACK beyond anything sent");

        if ack + 1 > self.snd_una {
            // New data acknowledged.
            if self.dupacks >= self.cfg.dupack_threshold {
                self.cc.on_recovery_ack(); // Reno deflation; no-op elsewhere
            }
            self.dupacks = 0;
            self.snd_una = ack + 1;
            self.stats.acked = self.stats.acked.max(ack);
            if let Some((seq, sent_at)) = self.timing {
                if ack >= seq {
                    self.rtt.sample(ctx.now().since(sent_at));
                    self.timing = None;
                }
            }
            self.cc.on_ack_marked(pkt.ce);
            self.emit_cwnd(ctx);
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            if self.snd_max > self.snd_una {
                self.arm_rto(ctx); // restart for the remaining flight
            } else {
                self.cancel_rto(ctx);
            }
            if let Some(limit) = self.cfg.data_limit {
                if self.snd_una > limit && self.finished_at.is_none() {
                    // Transfer complete: everything acknowledged.
                    self.finished_at = Some(ctx.now());
                    self.cancel_rto(ctx);
                }
            }
            self.try_send(ctx);
        } else if ack + 1 == self.snd_una && self.snd_max > self.snd_una {
            // Duplicate ACK while data is outstanding.
            self.stats.dupacks += 1;
            self.dupacks += 1;
            self.cc.on_dupack();
            if self.dupacks == self.cfg.dupack_threshold {
                self.stats.fast_retransmits += 1;
                self.on_loss_detected(ctx, LossKind::DupAck);
            } else if self.dupacks > self.cfg.dupack_threshold {
                // Reno: window inflation may have opened room.
                self.try_send(ctx);
            }
        }
        // Older ACKs carry no information for this workload; ignore.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_RTO => {
                self.rto_armed = None;
                if self.snd_max <= self.snd_una {
                    return; // everything acked; stale timer
                }
                self.stats.timeouts += 1;
                self.rtt.on_timeout();
                self.dupacks = 0;
                self.on_loss_detected(ctx, LossKind::Timeout);
            }
            TOKEN_PACE => {
                self.pace_armed = false;
                self.try_send(ctx);
            }
            other => unreachable!("unknown sender timer token {other}"),
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.cc.save_state(w);
        self.rtt.save_state(w);
        w.write_u64(self.snd_una);
        w.write_u64(self.snd_nxt);
        w.write_u64(self.snd_max);
        w.write_u32(self.dupacks);
        w.write_bool(self.rto_armed.is_some());
        if let Some(h) = &self.rto_armed {
            h.save_state(w);
        }
        w.write_bool(self.timing.is_some());
        if let Some((seq, at)) = self.timing {
            w.write_u64(seq);
            w.write_time(at);
        }
        w.write_time(self.pace_due);
        w.write_bool(self.pace_armed);
        w.write_bool(self.finished_at.is_some());
        if let Some(t) = self.finished_at {
            w.write_time(t);
        }
        w.write_u64(self.stats.packets_sent);
        w.write_u64(self.stats.new_data_sent);
        w.write_u64(self.stats.retransmits);
        w.write_u64(self.stats.acked);
        w.write_u64(self.stats.dupacks);
        w.write_u64(self.stats.fast_retransmits);
        w.write_u64(self.stats.timeouts);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cc.load_state(r)?;
        self.rtt.load_state(r)?;
        self.snd_una = r.read_u64()?;
        self.snd_nxt = r.read_u64()?;
        self.snd_max = r.read_u64()?;
        self.dupacks = r.read_u32()?;
        self.rto_armed = if r.read_bool()? {
            Some(TimerHandle::load_state(r)?)
        } else {
            None
        };
        self.timing = if r.read_bool()? {
            Some((r.read_u64()?, r.read_time()?))
        } else {
            None
        };
        self.pace_due = r.read_time()?;
        self.pace_armed = r.read_bool()?;
        self.finished_at = if r.read_bool()? {
            Some(r.read_time()?)
        } else {
            None
        };
        self.stats.packets_sent = r.read_u64()?;
        self.stats.new_data_sent = r.read_u64()?;
        self.stats.retransmits = r.read_u64()?;
        self.stats.acked = r.read_u64()?;
        self.stats.dupacks = r.read_u64()?;
        self.stats.fast_retransmits = r.read_u64()?;
        self.stats.timeouts = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn progress(&self) -> td_net::EndpointProgress {
        td_net::EndpointProgress {
            // Infinite sources have no notion of "done" and opt out of
            // stall attribution; finite transfers are done once everything
            // is acknowledged.
            finished: self.cfg.data_limit.map(|_| self.finished_at.is_some()),
            detail: format!(
                "snd_una={} snd_nxt={} snd_max={} cwnd={:.2} rto {} ({:.3}s)",
                self.snd_una,
                self.snd_nxt,
                self.snd_max,
                self.cc.cwnd(),
                if self.rto_armed.is_some() {
                    "armed"
                } else {
                    "unarmed"
                },
                self.rtt.rto().as_secs_f64(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{CcKind, IncrementRule};
    use crate::config::{ReceiverConfig, RtoConfig};
    use crate::receiver::TcpReceiver;
    use td_engine::{Rate, SimDuration};
    use td_net::{ConnId, DisciplineKind, FaultModel, NodeId, TraceEvent, World};

    /// Two hosts, direct duplex link; returns (world, sender-ep, receiver-ep).
    fn tcp_world(
        scfg: SenderConfig,
        rcfg: ReceiverConfig,
        rate: Rate,
        delay: SimDuration,
        capacity: Option<u32>,
    ) -> (World, td_net::EndpointId, td_net::EndpointId) {
        let mut w = World::new(42);
        let h0 = w.add_host("src", SimDuration::from_micros(100));
        let h1 = w.add_host("dst", SimDuration::from_micros(100));
        w.add_channel(
            h0,
            h1,
            rate,
            delay,
            capacity,
            DisciplineKind::DropTail.build(),
            FaultModel::NONE,
        );
        w.add_channel(
            h1,
            h0,
            rate,
            delay,
            None,
            DisciplineKind::DropTail.build(),
            FaultModel::NONE,
        );
        let s = w.attach(h0, h1, ConnId(0), TcpSender::boxed(scfg));
        let r = w.attach(h1, h0, ConnId(0), TcpReceiver::boxed(rcfg));
        w.start_at(s, SimTime::ZERO);
        (w, s, r)
    }

    fn sender_stats(w: &World, ep: td_net::EndpointId) -> SenderStats {
        w.endpoint(ep)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpSender>()
            .unwrap()
            .stats()
    }

    fn fine_rto() -> RtoConfig {
        RtoConfig {
            granularity: SimDuration::from_nanos(1),
            initial: SimDuration::from_secs(3),
            min: SimDuration::from_millis(100),
            max: SimDuration::from_secs(64),
        }
    }

    #[test]
    fn slow_start_opens_exponentially() {
        // Plenty of bandwidth and buffer: no losses; after k RTTs the
        // window should have grown 2^k-ish. Run 2 s on a 100 ms RTT path.
        let scfg = SenderConfig {
            rto: fine_rto(),
            ..SenderConfig::paper()
        };
        let (mut w, s, _r) = tcp_world(
            scfg,
            ReceiverConfig::paper(),
            Rate::from_mbps(10),
            SimDuration::from_millis(50),
            None,
        );
        w.run_until(SimTime::from_secs(1));
        let tx = sender_stats(&w, s);
        assert!(tx.new_data_sent > 100, "sent {}", tx.new_data_sent);
        assert_eq!(tx.retransmits, 0);
        assert_eq!(tx.timeouts, 0);
        let snd = w
            .endpoint(s)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpSender>()
            .unwrap();
        assert!(snd.cwnd() > 100.0, "cwnd {}", snd.cwnd());
    }

    #[test]
    fn first_transmission_is_one_packet() {
        let (mut w, _s, _r) = tcp_world(
            SenderConfig::paper(),
            ReceiverConfig::paper(),
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            Some(20),
        );
        w.run_until(SimTime::from_millis(1));
        let sends = w
            .trace()
            .records()
            .iter()
            .filter(|r| matches!(r.ev, TraceEvent::Send { node, pkt } if node == NodeId(0) && pkt.is_data()))
            .count();
        assert_eq!(sends, 1, "Tahoe starts with cwnd = 1");
    }

    #[test]
    fn fixed_window_dumps_whole_window_at_start() {
        let (mut w, _s, _r) = tcp_world(
            SenderConfig::fixed_window(30),
            ReceiverConfig::paper(),
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
        );
        w.run_until(SimTime::from_millis(1));
        let sends = w
            .trace()
            .records()
            .iter()
            .filter(|r| matches!(r.ev, TraceEvent::Send { node, pkt } if node == NodeId(0) && pkt.is_data()))
            .count();
        assert_eq!(sends, 30);
    }

    #[test]
    fn drop_triggers_fast_retransmit_and_recovery() {
        // Small buffer on a slow link: slow start overshoots, drops happen,
        // fast retransmit recovers, transfer keeps making progress.
        let scfg = SenderConfig {
            rto: fine_rto(),
            ..SenderConfig::paper()
        };
        let (mut w, s, r) = tcp_world(
            scfg,
            ReceiverConfig::paper(),
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            Some(5),
        );
        w.run_until(SimTime::from_secs(120));
        let tx = sender_stats(&w, s);
        assert!(tx.fast_retransmits > 0, "no fast retransmit in 120 s");
        assert!(tx.retransmits > 0);
        let rx = w
            .endpoint(r)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpReceiver>()
            .unwrap();
        // 50 Kbps moves 12.5 pkt/s peak; require sustained progress.
        assert!(
            rx.stats().delivered > 1000,
            "delivered only {}",
            rx.stats().delivered
        );
        // Reliability: delivered must be contiguous (cumulative point).
        assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
    }

    #[test]
    fn total_blackout_recovers_via_timeout() {
        // A 100 %-lossy forward channel for a while would stall forever in
        // a lab; here we emulate a burst drop with a 1-packet buffer and
        // verify the timeout path fires and retransmits.
        let scfg = SenderConfig {
            rto: fine_rto(),
            ..SenderConfig::paper()
        };
        let mut w = World::new(9);
        let h0 = w.add_host("src", SimDuration::from_micros(100));
        let h1 = w.add_host("dst", SimDuration::from_micros(100));
        w.add_channel(
            h0,
            h1,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
            DisciplineKind::DropTail.build(),
            FaultModel::lossy(1.0), // nothing gets through
        );
        w.add_channel(
            h1,
            h0,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
            DisciplineKind::DropTail.build(),
            FaultModel::NONE,
        );
        let s = w.attach(h0, h1, ConnId(0), TcpSender::boxed(scfg));
        let _r = w.attach(
            h1,
            h0,
            ConnId(0),
            TcpReceiver::boxed(ReceiverConfig::paper()),
        );
        w.start_at(s, SimTime::ZERO);
        w.run_until(SimTime::from_secs(30));
        let tx = sender_stats(&w, s);
        assert!(tx.timeouts >= 2, "timeouts: {}", tx.timeouts);
        assert!(tx.retransmits >= 2);
        assert_eq!(tx.fast_retransmits, 0, "no ACKs → no dupacks");
    }

    #[test]
    fn rto_backoff_spaces_out_retransmissions() {
        let scfg = SenderConfig {
            rto: RtoConfig {
                granularity: SimDuration::from_nanos(1),
                initial: SimDuration::from_secs(1),
                min: SimDuration::from_millis(500),
                max: SimDuration::from_secs(64),
            },
            ..SenderConfig::paper()
        };
        let mut w = World::new(9);
        let h0 = w.add_host("src", SimDuration::from_micros(100));
        let h1 = w.add_host("dst", SimDuration::from_micros(100));
        w.add_channel(
            h0,
            h1,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
            DisciplineKind::DropTail.build(),
            FaultModel::lossy(1.0),
        );
        w.add_channel(
            h1,
            h0,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            None,
            DisciplineKind::DropTail.build(),
            FaultModel::NONE,
        );
        let s = w.attach(h0, h1, ConnId(0), TcpSender::boxed(scfg));
        let _ = w.attach(
            h1,
            h0,
            ConnId(0),
            TcpReceiver::boxed(ReceiverConfig::paper()),
        );
        w.start_at(s, SimTime::ZERO);
        w.run_until(SimTime::from_secs(40));
        // Retransmission times: ~1, 3, 7, 15, 31 s (doubling gaps).
        let times: Vec<f64> = w
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.ev {
                TraceEvent::Send { pkt, .. } if pkt.is_data() && pkt.retx => {
                    Some(r.t.as_secs_f64())
                }
                _ => None,
            })
            .collect();
        assert!(times.len() >= 4, "retx times: {times:?}");
        let gap1 = times[1] - times[0];
        let gap2 = times[2] - times[1];
        let gap3 = times[3] - times[2];
        assert!(gap2 > gap1 * 1.8, "gaps: {gap1} {gap2} {gap3}");
        assert!(gap3 > gap2 * 1.8, "gaps: {gap1} {gap2} {gap3}");
    }

    #[test]
    fn pacing_spaces_transmissions() {
        let scfg = SenderConfig {
            cc: CcKind::FixedWindow { wnd: 10 },
            pacing: Some(SimDuration::from_millis(80)),
            rto: fine_rto(),
            ..SenderConfig::paper()
        };
        let (mut w, _s, _r) = tcp_world(
            scfg,
            ReceiverConfig::paper(),
            Rate::from_mbps(10),
            SimDuration::from_millis(1),
            None,
        );
        w.run_until(SimTime::from_millis(900));
        let sends: Vec<SimTime> = w
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.ev {
                TraceEvent::Send { node, pkt } if node == NodeId(0) && pkt.is_data() => Some(r.t),
                _ => None,
            })
            .collect();
        assert!(sends.len() >= 10);
        for pair in sends.windows(2) {
            let gap = pair[1].since(pair[0]);
            assert!(
                gap >= SimDuration::from_millis(80),
                "paced sends too close: {gap}"
            );
        }
    }

    #[test]
    fn karn_rule_no_sample_from_retransmissions() {
        // Force a retransmission and check srtt is never polluted by the
        // (short) retransmit RTT. With a blackout then recovery the only
        // valid samples come from untouched segments.
        let scfg = SenderConfig {
            rto: fine_rto(),
            ..SenderConfig::paper()
        };
        let (mut w, s, _r) = tcp_world(
            scfg,
            ReceiverConfig::paper(),
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            Some(3),
        );
        w.run_until(SimTime::from_secs(60));
        let snd = w
            .endpoint(s)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpSender>()
            .unwrap();
        // The path RTT is ≥ 100 ms (two 80 ms serializations dominate);
        // a retransmission-ambiguity sample could look like ~1 RTT too
        // high/low. We only assert an estimate exists and is plausible.
        let srtt = snd.rtt().srtt().expect("must have sampled");
        assert!(srtt >= SimDuration::from_millis(100), "srtt {srtt}");
        assert!(tx_progress(&w, s) > 100);
    }

    fn tx_progress(w: &World, s: td_net::EndpointId) -> u64 {
        sender_stats(w, s).acked
    }

    #[test]
    fn reno_survives_the_same_gauntlet() {
        let scfg = SenderConfig {
            cc: CcKind::Reno,
            rto: fine_rto(),
            ..SenderConfig::paper()
        };
        let (mut w, s, r) = tcp_world(
            scfg,
            ReceiverConfig::paper(),
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            Some(5),
        );
        w.run_until(SimTime::from_secs(120));
        let rx = w
            .endpoint(r)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpReceiver>()
            .unwrap();
        assert!(
            rx.stats().delivered > 1000,
            "delivered {}",
            rx.stats().delivered
        );
        assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
        assert!(sender_stats(&w, s).fast_retransmits > 0);
    }

    #[test]
    fn original_increment_rule_also_functions() {
        let scfg = SenderConfig {
            cc: CcKind::Tahoe {
                rule: IncrementRule::Original,
            },
            rto: fine_rto(),
            ..SenderConfig::paper()
        };
        let (mut w, _s, r) = tcp_world(
            scfg,
            ReceiverConfig::paper(),
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            Some(5),
        );
        w.run_until(SimTime::from_secs(60));
        let rx = w
            .endpoint(r)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpReceiver>()
            .unwrap();
        assert!(rx.stats().delivered > 500);
    }

    #[test]
    fn go_back_n_pullback_never_leaves_gap_unrepaired() {
        // Long adversarial run with a tiny buffer: the cumulative ack at
        // the receiver must track delivered data exactly (reliability).
        let scfg = SenderConfig {
            rto: fine_rto(),
            ..SenderConfig::paper()
        };
        let (mut w, s, r) = tcp_world(
            scfg,
            ReceiverConfig::paper(),
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            Some(2),
        );
        w.run_until(SimTime::from_secs(200));
        let rx = w
            .endpoint(r)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpReceiver>()
            .unwrap();
        let snd = w
            .endpoint(s)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpSender>()
            .unwrap();
        assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
        assert!(snd.outstanding() <= snd.window());
        assert!(rx.stats().delivered > 1500);
    }
}

#[cfg(test)]
mod finite_tests {
    use super::*;
    use crate::config::ReceiverConfig;
    use crate::receiver::TcpReceiver;
    use td_engine::{Rate, SimDuration};
    use td_net::{ConnId, DisciplineKind, FaultModel, World};

    fn finite_world(limit: u64, capacity: Option<u32>) -> (World, td_net::EndpointId) {
        let mut w = World::new(3);
        let a = w.add_host("a", SimDuration::from_micros(100));
        let b = w.add_host("b", SimDuration::from_micros(100));
        for (x, y) in [(a, b), (b, a)] {
            w.add_channel(
                x,
                y,
                Rate::from_kbps(50),
                SimDuration::from_millis(10),
                capacity,
                DisciplineKind::DropTail.build(),
                FaultModel::NONE,
            );
        }
        let cfg = SenderConfig {
            data_limit: Some(limit),
            ..SenderConfig::paper()
        };
        let s = w.attach(a, b, ConnId(0), TcpSender::boxed(cfg));
        w.attach(b, a, ConnId(0), TcpReceiver::boxed(ReceiverConfig::paper()));
        w.start_at(s, SimTime::ZERO);
        (w, s)
    }

    #[test]
    fn finite_transfer_completes_and_queue_drains() {
        let (mut w, s) = finite_world(50, None);
        // The event queue must drain on its own: no timers may linger.
        w.run_to_completion();
        let snd = w
            .endpoint(s)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpSender>()
            .unwrap();
        let done = snd.finished_at().expect("transfer must finish");
        assert_eq!(snd.stats().acked, 50);
        assert_eq!(snd.stats().new_data_sent, 50);
        // 50 packets at 80 ms ≈ 4 s, plus slow-start ramp.
        assert!(
            done > SimTime::from_secs(4) && done < SimTime::from_secs(10),
            "done at {done}"
        );
    }

    #[test]
    fn finite_transfer_survives_losses() {
        let (mut w, s) = finite_world(80, Some(4));
        w.run_until(SimTime::from_secs(120));
        let snd = w
            .endpoint(s)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpSender>()
            .unwrap();
        assert!(snd.finished_at().is_some(), "transfer stalled");
        assert_eq!(snd.stats().acked, 80);
        assert!(snd.stats().retransmits > 0, "the 4-packet buffer must drop");
    }

    #[test]
    fn no_data_beyond_the_limit_is_sent() {
        let (mut w, _s) = finite_world(10, None);
        w.run_to_completion();
        let max_seq = w
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.ev {
                td_net::TraceEvent::Send { pkt, .. } if pkt.is_data() => Some(pkt.seq),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_seq, 10);
    }
}
