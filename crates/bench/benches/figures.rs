//! One bench per reproduced figure/table.
//!
//! Each bench does two jobs:
//!
//! 1. **Regenerate the artifact**: before timing, it runs the experiment's
//!    quick-profile report once and prints the paper-vs-measured rows, so
//!    `cargo bench` re-derives every figure and table of the paper.
//! 2. **Time the kernel**: the measured body is a scaled-down scenario run
//!    (tens of simulated seconds), giving a stable simulator-throughput
//!    number per configuration.

use std::hint::black_box;
use td_bench::Harness;
use td_engine::SimDuration;
use td_experiments::registry::{find, Profile};
use td_experiments::{conjecture, decbit, fig2, fig3, fig45, fig67, fig89, multihop, oneway_util};

fn print_report_once(id: &str) {
    let rep = find(id).expect("registered").run(1, Profile::Quick);
    println!("\n{rep}");
    assert!(rep.all_ok(), "{id} out of band: {:?}", rep.failures());
}

fn bench_one(c: &mut Harness, id: &str, mut kernel: impl FnMut() -> u64) {
    print_report_once(id);
    c.bench_function(&format!("repro/{id}"), |b| {
        b.iter(|| black_box(kernel()));
    });
}

fn figures(c: &mut Harness) {
    bench_one(c, "fig2", || {
        let mut sc = fig2::scenario(1, 120);
        sc.duration = SimDuration::from_secs(120);
        sc.warmup = SimDuration::from_secs(20);
        sc.run().world.events_dispatched()
    });
    bench_one(c, "fig3", || {
        fig3::scenario(1, 60, 30).run().world.events_dispatched()
    });
    bench_one(c, "fig45", || {
        fig45::scenario(1, 60, 20).run().world.events_dispatched()
    });
    bench_one(c, "fig67", || {
        fig67::scenario(1, 120).run().world.events_dispatched()
    });
    bench_one(c, "fig8", || {
        fig89::scenario(1, 40, SimDuration::from_millis(10), 30, 25)
            .run()
            .world
            .events_dispatched()
    });
    bench_one(c, "fig9", || {
        fig89::scenario(1, 60, SimDuration::from_secs(1), 30, 25)
            .run()
            .world
            .events_dispatched()
    });
    bench_one(c, "oneway-util", || {
        oneway_util::scenario(1, 60, SimDuration::from_secs(1), 20)
            .run()
            .world
            .events_dispatched()
    });
    bench_one(c, "conjecture", || {
        conjecture::scenario(1, 40, SimDuration::from_millis(10), 30, 25)
            .run()
            .world
            .events_dispatched()
    });
    bench_one(c, "delayed-ack", || {
        td_experiments::delayed_ack::scenario(1, 60, 8, true)
            .run()
            .world
            .events_dispatched()
    });
    bench_one(c, "multihop", || {
        let (chain, _, _) = multihop::run_chain(1, 30);
        chain.world.events_dispatched()
    });
    bench_one(c, "decbit", || {
        decbit::scenario(1, 60, 1, 1)
            .run()
            .world
            .events_dispatched()
    });
    // piggyback and modes reports are regenerated (their kernels reuse the
    // dumbbell scenarios already timed above).
    print_report_once("piggyback");
    print_report_once("modes");
}

fn main() {
    let mut c = Harness::new();
    figures(&mut c);
    c.finish();
}
