//! Differential test: the slab-backed 4-ary [`EventQueue`] must be
//! observably indistinguishable from the pre-slab binary-heap queue
//! ([`td_engine::legacy::LegacyEventQueue`]) under any interleaving of
//! schedules, cancels, and pops.
//!
//! One `SimRng`-generated script (≥100k ops) drives both implementations
//! in lockstep. After every operation the test asserts identical `len()`,
//! `dispatched()`, `peak_len()`, `scheduled()`, `now()` and `peek_time()`;
//! every pop must yield the identical `(time, payload)`; and every cancel
//! must return the identical verdict. Because the payload is the op index,
//! agreement on pop payloads proves the *total order* matches — including
//! the tie-break by schedule sequence that all experiment reproducibility
//! rests on.

use td_engine::legacy::{LegacyEventId, LegacyEventQueue};
use td_engine::{EventId, EventQueue, SimDuration, SimRng};

/// Handles for the same logical event in both queues.
#[derive(Clone, Copy)]
struct Pair {
    new: EventId,
    old: LegacyEventId,
}

fn lockstep(seed: u64, ops: u64, time_jitter: u64) {
    let mut nq: EventQueue<u64> = EventQueue::new();
    let mut oq: LegacyEventQueue<u64> = LegacyEventQueue::new();
    // Events believed pending (may contain already-fired ids; both queues
    // must agree on rejecting those cancels too).
    let mut handles: Vec<Pair> = Vec::new();
    let mut rng = SimRng::new(seed);
    let mut pops = 0u64;
    let mut cancels_accepted = 0u64;
    for step in 0..ops {
        match rng.next_below(8) {
            // Schedule at a jittered future instant; small jitter ranges
            // force heavy (time) ties so the seq tie-break is exercised.
            0..=2 => {
                let at = nq.now() + SimDuration::from_nanos(rng.next_below(time_jitter));
                handles.push(Pair {
                    new: nq.schedule_at(at, step),
                    old: oq.schedule_at(at, step),
                });
            }
            // Same, via the relative-time API.
            3 => {
                let d = SimDuration::from_nanos(rng.next_below(time_jitter));
                handles.push(Pair {
                    new: nq.schedule_in(d, step),
                    old: oq.schedule_in(d, step),
                });
            }
            // Cancel a (possibly stale) handle — verdicts must match.
            4..=5 if !handles.is_empty() => {
                let k = rng.next_below(handles.len() as u64) as usize;
                let h = handles[k];
                let verdict = nq.cancel(h.new);
                assert_eq!(
                    verdict,
                    oq.cancel(h.old),
                    "cancel verdicts diverged at step {step}"
                );
                if verdict {
                    cancels_accepted += 1;
                    handles.swap_remove(k);
                }
            }
            // Pop — the heart of the test: identical (time, payload).
            _ => {
                let got = nq.pop();
                assert_eq!(got, oq.pop(), "pop diverged at step {step}");
                if got.is_some() {
                    pops += 1;
                }
            }
        }
        assert_eq!(nq.len(), oq.len(), "len diverged at step {step}");
        assert_eq!(nq.now(), oq.now(), "clock diverged at step {step}");
        assert_eq!(
            nq.dispatched(),
            oq.dispatched(),
            "dispatched diverged at step {step}"
        );
        assert_eq!(
            nq.scheduled(),
            oq.scheduled(),
            "scheduled diverged at step {step}"
        );
        assert_eq!(
            nq.peak_len(),
            oq.peak_len(),
            "peak_len diverged at step {step}"
        );
        assert_eq!(
            nq.peek_time(),
            oq.peek_time(),
            "peek_time diverged at step {step}"
        );
    }
    // Drain both to the end: the full residual order must agree too.
    loop {
        let got = nq.pop();
        assert_eq!(got, oq.pop(), "drain diverged");
        if got.is_none() {
            break;
        }
        pops += 1;
    }
    assert_eq!(nq.dispatched(), oq.dispatched());
    assert_eq!(pops + cancels_accepted, nq.scheduled(), "events leaked");
    // Sanity: the script actually exercised the interesting paths.
    assert!(pops > ops / 10, "script popped too little to be meaningful");
    assert!(cancels_accepted > ops / 20, "script barely cancelled");
}

#[test]
fn new_queue_matches_legacy_on_100k_op_script() {
    // Dense time ties (jitter 50 ns): the seq tie-break does the ordering.
    lockstep(0xD1FF, 100_000, 50);
}

#[test]
fn new_queue_matches_legacy_on_sparse_times() {
    // Sparse times: ordering dominated by the time key, deep heaps.
    lockstep(0x5EED, 60_000, 1_000_000);
}

#[test]
fn new_queue_matches_legacy_across_seeds() {
    for seed in 1..=8u64 {
        lockstep(seed, 15_000, 200);
    }
}
