//! Synchronization-mode phase diagram (paper §4.3).
//!
//! Sweeps the bottleneck propagation delay (pipe size P) and buffer size B
//! for the 1+1 two-way TCP scenario and classifies each cell as in-phase
//! or out-of-phase from the cwnd cross-correlation, reproducing the
//! paper's rule of thumb:
//!
//! > "for a fixed buffer size, the synchronization is in-phase for large P
//! >  and out-of-phase for small P. Similarly, for a fixed pipe size, the
//! >  synchronization is usually in-phase for small buffers and
//! >  out-of-phase for large buffers."
//!
//! ```sh
//! cargo run --release --example sync_modes
//! ```

use tahoe_dynamics::analysis::sync::{classify_sync, SyncMode};
use tahoe_dynamics::engine::SimDuration;
use tahoe_dynamics::experiments::{ConnSpec, Scenario};

fn main() {
    let taus_ms = [10u64, 100, 300, 1000];
    let buffers = [10u32, 20, 40, 80];

    println!("1+1 two-way TCP Tahoe: synchronization mode by pipe size and buffer\n");
    println!("  P = pipe size in packets (mu * tau / packet size); cells show the");
    println!("  cwnd correlation r: negative = out-of-phase, positive = in-phase.\n");

    print!("{:>10} |", "");
    for &b in &buffers {
        print!(" {:^16} |", format!("B = {b}"));
    }
    println!();
    println!("{}", "-".repeat(10 + 1 + buffers.len() * 19));

    for &tau in &taus_ms {
        let pipe = 50_000.0 * (tau as f64 / 1000.0) / (500.0 * 8.0);
        print!("{:>10} |", format!("P = {pipe:.2}"));
        for &buffer in &buffers {
            let mut sc = Scenario::paper(SimDuration::from_millis(tau), Some(buffer))
                .with_fwd(1, ConnSpec::paper())
                .with_rev(1, ConnSpec::paper());
            // Longer cycles at bigger buffers/pipes need longer windows.
            let dur = 400 + 4 * buffer as u64 + tau;
            sc.duration = SimDuration::from_secs(dur);
            sc.warmup = SimDuration::from_secs(dur / 5);
            let run = sc.run();
            let (mode, r) = classify_sync(
                &run.cwnd(run.fwd[0]),
                &run.cwnd(run.rev[0]),
                run.t0,
                run.t1,
                600,
                5,
                0.15,
            );
            let label = match mode {
                SyncMode::InPhase => format!("in-phase  {r:+.2}"),
                SyncMode::OutOfPhase => format!("OUT-phase {r:+.2}"),
                SyncMode::Indeterminate => format!("mixed     {r:+.2}"),
            };
            print!(" {label:^16} |");
        }
        println!();
    }

    println!();
    println!("paper's criterion (zero-size-ACK conjecture, Sec. 4.3.3): out-of-phase");
    println!("when the window gap at congestion exceeds 2P — small pipes and big");
    println!("buffers push toward out-of-phase, large pipes toward in-phase.");
}
