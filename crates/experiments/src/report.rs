//! Uniform experiment reports.
//!
//! Every reproduced figure/table yields a [`Report`]: a list of
//! paper-value-vs-measured rows, the ASCII figures, and the CSV data
//! behind them. The `td-repro` binary prints reports; EXPERIMENTS.md is
//! generated from them; integration tests assert on the rows.

use std::fmt;

/// One metric comparison.
#[derive(Clone, Debug)]
pub struct Row {
    /// Metric name.
    pub metric: String,
    /// What the paper reports (free text: "≈ 70 %", "out-of-phase", …).
    pub paper: String,
    /// What we measured.
    pub measured: String,
    /// Whether the measured value is inside the acceptance band
    /// (`None` for informational rows).
    pub ok: Option<bool>,
}

/// A reproduced experiment.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Experiment id (`fig2`, `tbl-conjecture`, …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Configuration summary.
    pub config: String,
    /// Metric rows.
    pub rows: Vec<Row>,
    /// Rendered ASCII figures.
    pub plots: Vec<String>,
    /// `(file name, contents)` CSV exports.
    pub csvs: Vec<(String, String)>,
    /// `(file name, bytes)` binary exports (pcap captures).
    pub blobs: Vec<(String, Vec<u8>)>,
    /// Named scalar measurements (recovery times, retransmit counts, …)
    /// surfaced machine-readably through `timings.json`.
    pub metrics: Vec<(String, f64)>,
    /// Structured diagnostics (stall reports, audit summaries) surfaced
    /// through `timings.json` instead of panicking mid-run.
    pub diagnostics: Vec<String>,
}

impl Report {
    /// A new empty report.
    pub fn new(id: &str, title: &str, config: &str) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            config: config.to_owned(),
            ..Self::default()
        }
    }

    /// Add a checked row.
    pub fn check(&mut self, metric: &str, paper: &str, measured: String, ok: bool) {
        self.rows.push(Row {
            metric: metric.to_owned(),
            paper: paper.to_owned(),
            measured,
            ok: Some(ok),
        });
    }

    /// Add an informational row (no pass/fail).
    pub fn info(&mut self, metric: &str, paper: &str, measured: String) {
        self.rows.push(Row {
            metric: metric.to_owned(),
            paper: paper.to_owned(),
            measured,
            ok: None,
        });
    }

    /// Record a named scalar measurement.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_owned(), value));
    }

    /// Record a structured diagnostic line.
    pub fn diagnostic(&mut self, msg: String) {
        self.diagnostics.push(msg);
    }

    /// True if every checked row passed.
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(|r| r.ok != Some(false))
    }

    /// Names of failed checks.
    pub fn failures(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.ok == Some(false))
            .map(|r| r.metric.as_str())
            .collect()
    }

    /// The rows as a markdown table (used by EXPERIMENTS.md generation).
    pub fn markdown_table(&self) -> String {
        let mut out = String::from("| metric | paper | measured | ok |\n|---|---|---|---|\n");
        for r in &self.rows {
            let ok = match r.ok {
                Some(true) => "✓",
                Some(false) => "✗",
                None => "–",
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                r.metric, r.paper, r.measured, ok
            ));
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {}", self.id, self.title)?;
        writeln!(f, "    {}", self.config)?;
        let w = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let pw = self
            .rows
            .iter()
            .map(|r| r.paper.len())
            .max()
            .unwrap_or(0)
            .max(5);
        writeln!(f, "    {:w$}  {:pw$}  measured", "metric", "paper")?;
        for r in &self.rows {
            let ok = match r.ok {
                Some(true) => " ✓",
                Some(false) => " ✗ MISMATCH",
                None => "",
            };
            writeln!(
                f,
                "    {:w$}  {:pw$}  {}{}",
                r.metric, r.paper, r.measured, ok
            )?;
        }
        for p in &self.plots {
            writeln!(f, "\n{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("figX", "a title", "cfg");
        r.check("utilization", "~0.70", "0.68".into(), true);
        r.check("sync mode", "out-of-phase", "in-phase".into(), false);
        r.info("events", "-", "12345".into());
        r
    }

    #[test]
    fn pass_fail_accounting() {
        let r = sample();
        assert!(!r.all_ok());
        assert_eq!(r.failures(), vec!["sync mode"]);
        let mut ok = sample();
        ok.rows[1].ok = Some(true);
        assert!(ok.all_ok());
    }

    #[test]
    fn display_contains_everything() {
        let s = sample().to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("utilization"));
        assert!(s.contains("MISMATCH"));
        assert!(s.contains("12345"));
    }

    #[test]
    fn markdown_table_shape() {
        let md = sample().markdown_table();
        assert_eq!(md.lines().count(), 2 + 3);
        assert!(md.contains("| utilization | ~0.70 | 0.68 | ✓ |"));
        assert!(md.contains("| events | - | 12345 | – |"));
    }

    #[test]
    fn info_rows_never_fail() {
        let mut r = Report::new("x", "t", "c");
        r.info("a", "b", "c".into());
        assert!(r.all_ok());
        assert!(r.failures().is_empty());
    }
}
