//! Simulator-core microbenchmarks: event queue, RNG, and the end-to-end
//! event-processing rate of a saturated dumbbell.

use std::hint::black_box;
use td_bench::Harness;
use td_engine::{EventQueue, SimDuration, SimRng, SimTime};
use td_experiments::{ConnSpec, Scenario};

fn event_queue(c: &mut Harness) {
    c.bench_function("engine/event-queue push-pop 10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Interleaved schedule pattern exercising heap churn.
            for i in 0..10_000u64 {
                let t = SimTime::from_nanos((i * 2_654_435_761) % 1_000_000_000);
                q.schedule_at(t.max(q.now()), i);
                if i % 3 == 0 {
                    black_box(q.pop());
                }
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });

    c.bench_function("engine/event-queue cancel-heavy 10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = (0..10_000u64)
                .map(|i| q.schedule_at(SimTime::from_nanos(i), i))
                .collect();
            // Cancel half (the TCP retransmit-timer pattern).
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
}

fn rng(c: &mut Harness) {
    c.bench_function("engine/rng next_u64 x1k", |b| {
        let mut r = SimRng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(r.next_u64());
            }
            black_box(acc)
        });
    });
    c.bench_function("engine/rng next_below x1k", |b| {
        let mut r = SimRng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc += r.next_below(12345);
            }
            black_box(acc)
        });
    });
}

fn end_to_end(c: &mut Harness) {
    // Events per second of wall time on a busy two-way scenario — the
    // number that determines how long paper-scale runs take.
    for trace_on in [true, false] {
        let label = if trace_on { "trace on" } else { "trace off" };
        c.bench_function(
            &format!("engine/dumbbell 60-sim-seconds 5+5 ({label})"),
            |b| {
                b.iter(|| {
                    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(30))
                        .with_fwd(5, ConnSpec::paper())
                        .with_rev(5, ConnSpec::paper());
                    sc.duration = SimDuration::from_secs(60);
                    sc.warmup = SimDuration::from_secs(10);
                    sc.record_trace = trace_on;
                    black_box(sc.run().world.events_dispatched())
                });
            },
        );
    }
}

fn main() {
    let mut c = Harness::new();
    event_queue(&mut c);
    rng(&mut c);
    end_to_end(&mut c);
    c.finish();
}
