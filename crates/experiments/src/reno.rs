//! TCP Reno under two-way traffic — the nonpaced conjecture against the
//! algorithm's own successor.
//!
//! The paper studies 4.3-Tahoe and cites Jacobson's Tahoe→Reno evolution
//! \[7\]. Reno's fast recovery removes exactly the behaviour that shapes
//! the out-of-phase mode's asymmetry — the collapse to `cwnd = 1` with
//! `ssthresh = 2` after a double drop — so it is the natural probe of
//! which findings are Tahoe-specific and which are structural:
//!
//! * **structural** (predicted by the paper's conjecture, §1/§6):
//!   clustering and ACK-compression persist — Reno is still a nonpaced
//!   window algorithm;
//! * **Tahoe-specific**: the deep utilization plateau softens — fast
//!   recovery halves the window instead of collapsing it, so the loser of
//!   a congestion epoch recovers quickly and the bottleneck idles less.

use crate::report::Report;
use crate::scenario::{ConnSpec, Scenario, DATA_SERVICE};
use td_analysis::{ack_spacing, deliveries};
use td_core::{CcKind, ReceiverConfig, SenderConfig};
use td_engine::SimDuration;

fn scenario_with(seed: u64, duration_s: u64, cc: CcKind) -> Scenario {
    let spec = ConnSpec {
        sender: SenderConfig {
            cc,
            ..SenderConfig::paper()
        },
        receiver: ReceiverConfig::paper(),
    };
    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, spec)
        .with_rev(1, spec);
    sc.seed = seed;
    sc.duration = SimDuration::from_secs(duration_s);
    sc.warmup = SimDuration::from_secs(duration_s / 5);
    sc
}

/// Run and evaluate the Reno comparison.
pub fn report(seed: u64, duration_s: u64) -> Report {
    let mut rep = Report::new(
        "tbl-reno",
        "TCP Reno (fast recovery) under two-way traffic",
        &format!("seed {seed}, {duration_s} s per cell, 1+1, tau = 0.01 s, B = 20"),
    );

    let tahoe = scenario_with(seed, duration_s, CcKind::default()).run();
    let reno = scenario_with(seed, duration_s, CcKind::Reno).run();

    let measure = |run: &crate::scenario::Run| {
        let acks: Vec<_> = deliveries(run.world.trace(), run.host1, run.fwd[0], true)
            .into_iter()
            .filter(|d| d.t >= run.t0 && d.t <= run.t1)
            .collect();
        let sp = ack_spacing(&acks, DATA_SERVICE);
        (
            (run.util12() + run.util21()) / 2.0,
            sp.map(|s| s.compressed_fraction).unwrap_or(0.0),
            run.clustering12_all().unwrap_or(0.0),
        )
    };
    let (ut, ct, kt) = measure(&tahoe);
    let (ur, cr, kr) = measure(&reno);

    rep.check(
        "structural: clustering persists under Reno",
        "any nonpaced window algorithm clusters (Sec. 5)",
        format!("{kr:.2} (Tahoe {kt:.2})"),
        kr > 0.7,
    );
    rep.check(
        "structural: ACK-compression persists under Reno",
        "compression follows from clustering, not the loss response",
        format!("{:.0} % (Tahoe {:.0} %)", cr * 100.0, ct * 100.0),
        cr > 0.2,
    );
    rep.check(
        "Tahoe-specific: the deep utilization plateau softens",
        "fast recovery avoids the cwnd = 1 / ssthresh = 2 collapse",
        format!("mean utilization {ur:.3} vs Tahoe {ut:.3}"),
        ur > ut + 0.03,
    );
    // Loss accounting: Reno recovers from the epoch's drops without the
    // Tahoe timeout cascade.
    let timeouts = |run: &crate::scenario::Run| -> u64 {
        run.conns()
            .iter()
            .map(|&c| run.sender(c).stats().timeouts)
            .sum()
    };
    rep.info(
        "timeouts over the run (Tahoe vs Reno)",
        "fast recovery substitutes for most timeouts",
        format!("{} vs {}", timeouts(&tahoe), timeouts(&reno)),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_comparison_reproduces() {
        let rep = report(1, 400);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }
}
