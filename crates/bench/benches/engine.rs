//! Simulator-core microbenchmarks: event queue (slab vs. the pre-change
//! legacy queue), RNG, and the end-to-end event-processing rate of a
//! saturated dumbbell.
//!
//! Besides the human-readable table, the run emits a machine-readable
//! `BENCH_engine.json` (override the path with `TD_BENCH_JSON`; note that
//! `cargo bench` runs this binary with its cwd at the *package* root,
//! `crates/bench/`, so pass an absolute path to land elsewhere) so the
//! repository accumulates a perf trajectory; CI uploads it as an
//! artifact. The `legacy` variants run the frozen pre-slab queue from
//! `td_engine::legacy` in the same binary, so every report carries its
//! own old-vs-new comparison.

use std::hint::black_box;
use td_bench::Harness;
use td_engine::legacy::LegacyEventQueue;
use td_engine::{EventQueue, SimDuration, SimRng, SimTime};
use td_experiments::{ConnSpec, Scenario};

/// Interleaved schedule/pop churn — the queue's steady-state gait.
fn event_queue_churn(c: &mut Harness) {
    c.bench_function("engine/event-queue push-pop 10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                let t = SimTime::from_nanos((i * 2_654_435_761) % 1_000_000_000);
                q.schedule_at(t.max(q.now()), i);
                if i % 3 == 0 {
                    black_box(q.pop());
                }
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
    c.bench_function("engine/event-queue push-pop 10k (legacy)", |b| {
        b.iter(|| {
            let mut q = LegacyEventQueue::new();
            for i in 0..10_000u64 {
                let t = SimTime::from_nanos((i * 2_654_435_761) % 1_000_000_000);
                q.schedule_at(t.max(q.now()), i);
                if i % 3 == 0 {
                    black_box(q.pop());
                }
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
}

/// Bulk schedule, cancel half, drain — the shape of a mass timer sweep.
fn event_queue_cancel_heavy(c: &mut Harness) {
    c.bench_function("engine/event-queue cancel-heavy 10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = (0..10_000u64)
                .map(|i| q.schedule_at(SimTime::from_nanos(i), i))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
    c.bench_function("engine/event-queue cancel-heavy 10k (legacy)", |b| {
        b.iter(|| {
            let mut q = LegacyEventQueue::new();
            let ids: Vec<_> = (0..10_000u64)
                .map(|i| q.schedule_at(SimTime::from_nanos(i), i))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
}

/// The TCP retransmit-timer pattern: a working set of armed timers where
/// almost every timer is cancelled (ACKed) and re-armed before it can
/// expire — the workload that dominates timer-heavy two-way runs.
fn event_queue_timer_churn(c: &mut Harness) {
    const TIMERS: usize = 256;
    const ROUNDS: u64 = 10_000;
    c.bench_function("engine/event-queue timer-churn 256x10k", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut armed: Vec<_> = (0..TIMERS as u64)
                .map(|i| q.schedule_at(SimTime::from_millis(100 + i), i))
                .collect();
            for r in 0..ROUNDS {
                // An ACK arrives: cancel one armed timer, re-arm it later.
                let k = rng.next_below(TIMERS as u64) as usize;
                q.cancel(armed[k]);
                armed[k] = q.schedule_in(SimDuration::from_millis(100), r);
                // Occasionally the clock advances over a due event.
                if r % 64 == 0 {
                    if let Some((_, tag)) = q.pop() {
                        black_box(tag);
                    }
                }
            }
            black_box(q.len())
        });
    });
    c.bench_function("engine/event-queue timer-churn 256x10k (legacy)", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut q = LegacyEventQueue::new();
            let mut armed: Vec<_> = (0..TIMERS as u64)
                .map(|i| q.schedule_at(SimTime::from_millis(100 + i), i))
                .collect();
            for r in 0..ROUNDS {
                let k = rng.next_below(TIMERS as u64) as usize;
                q.cancel(armed[k]);
                armed[k] = q.schedule_in(SimDuration::from_millis(100), r);
                if r % 64 == 0 {
                    if let Some((_, tag)) = q.pop() {
                        black_box(tag);
                    }
                }
            }
            black_box(q.len())
        });
    });
}

fn rng(c: &mut Harness) {
    c.bench_function("engine/rng next_u64 x1k", |b| {
        let mut r = SimRng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(r.next_u64());
            }
            black_box(acc)
        });
    });
    c.bench_function("engine/rng next_below x1k", |b| {
        let mut r = SimRng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc += r.next_below(12345);
            }
            black_box(acc)
        });
    });
}

fn end_to_end(c: &mut Harness) {
    // Events per second of wall time on a busy two-way scenario — the
    // number that determines how long paper-scale runs take.
    for trace_on in [true, false] {
        let label = if trace_on { "trace on" } else { "trace off" };
        c.bench_function(
            &format!("engine/dumbbell 60-sim-seconds 5+5 ({label})"),
            |b| {
                b.iter(|| {
                    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(30))
                        .with_fwd(5, ConnSpec::paper())
                        .with_rev(5, ConnSpec::paper());
                    sc.duration = SimDuration::from_secs(60);
                    sc.warmup = SimDuration::from_secs(10);
                    sc.record_trace = trace_on;
                    black_box(sc.run().world.events_dispatched())
                });
            },
        );
    }
}

fn main() {
    let mut c = Harness::new();
    event_queue_churn(&mut c);
    event_queue_cancel_heavy(&mut c);
    event_queue_timer_churn(&mut c);
    rng(&mut c);
    end_to_end(&mut c);
    let json_path = std::env::var("TD_BENCH_JSON").unwrap_or_else(|_| "BENCH_engine.json".into());
    if let Err(e) = c.write_json(std::path::Path::new(&json_path)) {
        eprintln!("could not write {json_path}: {e}");
    }
    c.finish();
}
