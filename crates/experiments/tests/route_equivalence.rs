//! Route-equivalence property test: the compressed run-length routing
//! tables must resolve exactly the same next-hop as a reference dense
//! map built by an independent BFS over the public topology surface —
//! for every (switch, host) pair, on every topology family the repo
//! ships (dumbbell, chain, star, scale cluster chains).
//!
//! The regression pins that make this a safe refactor live elsewhere
//! and are unchanged by the compression work: the golden output hash
//! (`runner_determinism.rs`), the serial-vs-sharded report diff
//! (`scale::tests::quick_report_is_shard_invariant` and the CI
//! determinism job), and the TDSW snapshot round-trip
//! (`snapshot_roundtrip.rs`).

use std::collections::HashMap;

use td_engine::SimDuration;
use td_experiments::scale::{build_chain, ScaleParams};
use td_net::{ChannelId, LinkSpec, NodeId, World};

/// Reference next-hop map: per-destination BFS from scratch over the
/// public channel list, dense `(switch, host) → channel` entries. Same
/// tie-break contract as `World::compute_routes` (hop count, then
/// ascending channel id), but none of its code or data structures.
fn reference_routes(w: &World) -> HashMap<(NodeId, NodeId), ChannelId> {
    let n = w.node_count();
    let mut incoming: Vec<Vec<(NodeId, ChannelId)>> = vec![Vec::new(); n];
    for ch in w.channel_ids() {
        let (src, dst) = w.channel_nodes(ch);
        incoming[dst.0 as usize].push((src, ch));
    }
    for adj in &mut incoming {
        adj.sort_by_key(|&(_, ch)| ch.0);
    }
    let mut routes = HashMap::new();
    for h in 0..n as u32 {
        let dst = NodeId(h);
        if w.is_switch(dst) {
            continue;
        }
        let mut seen = vec![false; n];
        let mut via = vec![ChannelId(0); n];
        let mut frontier = std::collections::VecDeque::new();
        seen[h as usize] = true;
        frontier.push_back(dst);
        while let Some(u) = frontier.pop_front() {
            for &(src, ch) in &incoming[u.0 as usize] {
                if !seen[src.0 as usize] {
                    seen[src.0 as usize] = true;
                    via[src.0 as usize] = ch;
                    frontier.push_back(src);
                }
            }
        }
        for s in 0..n as u32 {
            let sw = NodeId(s);
            if w.is_switch(sw) && seen[s as usize] {
                routes.insert((sw, dst), via[s as usize]);
            }
        }
    }
    routes
}

/// Every (switch, host) pair must resolve identically through the
/// compressed table and the reference map — including pairs the
/// reference says are unreachable (both sides `None`).
fn assert_equivalent(w: &World, label: &str) {
    let reference = reference_routes(w);
    let mut pairs = 0u64;
    for s in 0..w.node_count() as u32 {
        let sw = NodeId(s);
        if !w.is_switch(sw) {
            continue;
        }
        for h in 0..w.node_count() as u32 {
            let host = NodeId(h);
            if w.is_switch(host) {
                continue;
            }
            pairs += 1;
            assert_eq!(
                w.route_lookup(sw, host),
                reference.get(&(sw, host)).copied(),
                "{label}: next-hop mismatch at switch {} ({}) → host {} ({})",
                sw.0,
                w.node_name(sw),
                host.0,
                w.node_name(host),
            );
        }
    }
    assert!(pairs > 0, "{label}: no (switch, host) pairs checked");
}

#[test]
fn dumbbell_matches_reference() {
    let d = td_net::dumbbell(
        1,
        LinkSpec::paper_bottleneck(SimDuration::from_millis(10), Some(20)),
        LinkSpec::paper_host_link(),
        SimDuration::from_micros(100),
    );
    assert_equivalent(&d.world, "dumbbell");
}

#[test]
fn chains_match_reference() {
    for n_switches in [2, 4, 9] {
        let c = td_net::chain(
            1,
            n_switches,
            LinkSpec::paper_bottleneck(SimDuration::from_millis(10), Some(30)),
            LinkSpec::paper_host_link(),
            SimDuration::from_micros(100),
        );
        assert_equivalent(&c.world, &format!("chain-{n_switches}"));
    }
}

#[test]
fn star_matches_reference() {
    let mut w = World::new(1);
    let hub = w.add_switch("hub");
    for i in 0..6 {
        let h = w.add_host(&format!("h{i}"), SimDuration::from_micros(10));
        LinkSpec::paper_host_link().add_between(&mut w, h, hub);
    }
    w.compute_routes();
    w.validate_routes();
    assert_equivalent(&w, "star");
}

#[test]
fn scale_cluster_chain_matches_reference() {
    for clusters in [1, 2, 5] {
        let p = ScaleParams {
            clusters,
            conns_per_cluster: 2,
            inter_conns: 2,
            duration_s: 1,
            trace: false,
        };
        let mut w = World::new(9);
        build_chain(&mut w, 9, &p);
        assert_equivalent(&w, &format!("scale-{clusters}-clusters"));
    }
}
