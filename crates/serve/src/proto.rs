//! Wire protocol: line-delimited flat JSON requests and responses.
//!
//! One request per line, one response line per request. The request
//! grammar is deliberately a *flat* JSON object — string, unsigned
//! integer, and boolean values only; nesting is rejected — so the
//! parser is a page of obvious code with structured errors instead of a
//! JSON dependency (the workspace is zero-dep by charter). Responses
//! are built with the same hand-rolled `format!` + escape style the
//! experiment runner uses for `timings.json`.
//!
//! ```text
//! {"op":"simulate","experiment":"fig8","seed":1,"profile":"quick",
//!  "deadline_ms":30000,"priority":7,"sim_secs":60}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Unknown `simulate` keys must be valid config-override keys
//! ([`td_experiments::registry::OVERRIDE_KEYS`]); anything else is a
//! `bad_request`. Override order on the wire does not matter — the
//! canonical config hash sorts them.

use td_experiments::registry::{validate_override, Profile};

/// Priority ceiling (inclusive). `0` is first to shed, `9` last.
pub const MAX_PRIORITY: u64 = 9;

/// Default priority for requests that don't set one.
pub const DEFAULT_PRIORITY: u8 = 5;

/// A parsed `simulate` request.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulateReq {
    /// Registry experiment id.
    pub experiment: String,
    /// Master seed for the cell.
    pub seed: u64,
    /// Run profile.
    pub profile: Profile,
    /// Wall-clock budget for the cell, if any.
    pub deadline_ms: Option<u64>,
    /// Shed priority, `0..=9`; higher survives longer under overload.
    pub priority: u8,
    /// Validated config overrides, as they appeared on the wire.
    pub overrides: Vec<(String, u64)>,
}

/// One request line, parsed.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Compute (or serve from the store) one simulation cell.
    Simulate(SimulateReq),
    /// Report the daemon's counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin a graceful drain and exit 0.
    Shutdown,
}

/// A scalar value in a flat JSON object.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Str(String),
    UInt(u64),
    Bool(bool),
}

/// Parse one flat JSON object line into key/value pairs.
///
/// Accepts exactly: `{ "key" : value , ... }` where value is a string,
/// a non-negative integer, `true`, or `false`. Rejects nesting, null,
/// floats, negatives, and duplicate keys — all with a message naming
/// the offense, because a `bad_request` the client can't act on is a
/// robustness hole of its own.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.char_indices().peekable();
    let mut pairs: Vec<(String, Value)> = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while chars.next_if(|&(_, c)| c.is_ascii_whitespace()).is_some() {}
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            Some((i, c)) => return Err(format!("expected '\"' at byte {i}, found {c:?}")),
            None => return Err("unterminated input, expected string".into()),
        }
        let mut s = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(s),
                Some((i, '\\')) => match chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, '/')) => s.push('/'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 't')) => s.push('\t'),
                    Some((_, 'r')) => s.push('\r'),
                    Some((_, 'u')) => {
                        let mut code = String::new();
                        for _ in 0..4 {
                            match chars.next() {
                                Some((_, c)) if c.is_ascii_hexdigit() => code.push(c),
                                _ => return Err(format!("bad \\u escape at byte {i}")),
                            }
                        }
                        let n = u32::from_str_radix(&code, 16).expect("hex checked");
                        match char::from_u32(n) {
                            Some(c) => s.push(c),
                            None => return Err(format!("bad \\u escape at byte {i}")),
                        }
                    }
                    other => {
                        return Err(format!(
                            "unsupported escape at byte {i}: {:?}",
                            other.map(|(_, c)| c)
                        ))
                    }
                },
                Some((_, c)) => s.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        other => {
            return Err(format!(
                "request must be a JSON object, found {:?}",
                other.map(|(_, c)| c)
            ))
        }
    }
    skip_ws(&mut chars);
    if chars.next_if(|&(_, c)| c == '}').is_some() {
        skip_ws(&mut chars);
        if let Some((i, c)) = chars.next() {
            return Err(format!("trailing garbage at byte {i}: {c:?}"));
        }
        return Ok(pairs);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            other => {
                return Err(format!(
                    "expected ':' after key {key:?}, found {:?}",
                    other.map(|(_, c)| c)
                ))
            }
        }
        skip_ws(&mut chars);
        let value = match chars.peek().copied() {
            Some((_, '"')) => Value::Str(parse_string(&mut chars)?),
            Some((_, c)) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while let Some((_, d)) = chars.next_if(|&(_, c)| c.is_ascii_digit()) {
                    digits.push(d);
                }
                if chars
                    .peek()
                    .is_some_and(|&(_, c)| c == '.' || c == 'e' || c == 'E')
                {
                    return Err(format!("key {key:?}: floats are not accepted"));
                }
                Value::UInt(
                    digits
                        .parse()
                        .map_err(|_| format!("key {key:?}: integer out of range"))?,
                )
            }
            Some((_, 't')) | Some((_, 'f')) => {
                let mut word = String::new();
                while let Some((_, c)) = chars.next_if(|&(_, c)| c.is_ascii_alphabetic()) {
                    word.push(c);
                }
                match word.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    other => return Err(format!("key {key:?}: bad literal {other:?}")),
                }
            }
            Some((_, '-')) => return Err(format!("key {key:?}: negative values not accepted")),
            Some((_, '{')) | Some((_, '[')) => {
                return Err(format!("key {key:?}: nested values not accepted"))
            }
            other => {
                return Err(format!(
                    "key {key:?}: expected a value, found {:?}",
                    other.map(|(_, c)| c)
                ))
            }
        };
        pairs.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            other => {
                return Err(format!(
                    "expected ',' or '}}', found {:?}",
                    other.map(|(_, c)| c)
                ))
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((i, c)) = chars.next() {
        return Err(format!("trailing garbage at byte {i}: {c:?}"));
    }
    Ok(pairs)
}

/// Parse one request line. `Err` is a human-readable reason the caller
/// wraps into a `bad_request` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let pairs = parse_flat_object(line)?;
    let op = pairs
        .iter()
        .find(|(k, _)| k == "op")
        .ok_or_else(|| "missing \"op\" field".to_owned())?;
    let op = match &op.1 {
        Value::Str(s) => s.as_str(),
        _ => return Err("\"op\" must be a string".into()),
    };
    match op {
        "stats" | "ping" | "shutdown" => {
            if pairs.len() != 1 {
                return Err(format!("op {op:?} takes no other fields"));
            }
            Ok(match op {
                "stats" => Request::Stats,
                "ping" => Request::Ping,
                _ => Request::Shutdown,
            })
        }
        "simulate" => {
            let mut experiment = None;
            let mut seed = 1u64;
            let mut profile = Profile::Quick;
            let mut deadline_ms = None;
            let mut priority = DEFAULT_PRIORITY;
            let mut overrides = Vec::new();
            for (key, value) in &pairs {
                match (key.as_str(), value) {
                    ("op", _) => {}
                    ("experiment", Value::Str(s)) => experiment = Some(s.clone()),
                    ("experiment", _) => return Err("\"experiment\" must be a string".into()),
                    ("seed", Value::UInt(n)) => seed = *n,
                    ("seed", _) => return Err("\"seed\" must be an unsigned integer".into()),
                    ("profile", Value::Str(s)) => {
                        profile = match s.as_str() {
                            "quick" => Profile::Quick,
                            "full" => Profile::Full,
                            other => return Err(format!("bad profile {other:?} (quick|full)")),
                        }
                    }
                    ("profile", _) => return Err("\"profile\" must be a string".into()),
                    ("deadline_ms", Value::UInt(n)) => {
                        if *n == 0 {
                            return Err("\"deadline_ms\" must be positive".into());
                        }
                        deadline_ms = Some(*n);
                    }
                    ("deadline_ms", _) => {
                        return Err("\"deadline_ms\" must be an unsigned integer".into())
                    }
                    ("priority", Value::UInt(n)) => {
                        if *n > MAX_PRIORITY {
                            return Err(format!("\"priority\" must be 0..={MAX_PRIORITY}"));
                        }
                        priority = *n as u8;
                    }
                    ("priority", _) => {
                        return Err("\"priority\" must be an unsigned integer".into())
                    }
                    (other, Value::UInt(n)) => {
                        validate_override(other, *n)?;
                        overrides.push((other.to_owned(), *n));
                    }
                    (other, _) => {
                        return Err(format!(
                            "key {other:?} is neither a request field nor an \
                             integer config override"
                        ))
                    }
                }
            }
            let experiment =
                experiment.ok_or_else(|| "simulate requires \"experiment\"".to_owned())?;
            Ok(Request::Simulate(SimulateReq {
                experiment,
                seed,
                profile,
                deadline_ms,
                priority,
                overrides,
            }))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Escape a string for inclusion in a JSON response line.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The wire name of a profile.
pub fn profile_name(p: Profile) -> &'static str {
    match p {
        Profile::Quick => "quick",
        Profile::Full => "full",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_simulate_surface() {
        let req = parse_request(
            r#"{"op":"simulate","experiment":"fig8","seed":42,"profile":"full",
               "deadline_ms":30000,"priority":7,"sim_secs":60}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Simulate(SimulateReq {
                experiment: "fig8".into(),
                seed: 42,
                profile: Profile::Full,
                deadline_ms: Some(30_000),
                priority: 7,
                overrides: vec![("sim_secs".into(), 60)],
            })
        );
    }

    #[test]
    fn defaults_are_applied() {
        let req = parse_request(r#"{"op":"simulate","experiment":"fig2"}"#).unwrap();
        match req {
            Request::Simulate(s) => {
                assert_eq!(s.seed, 1);
                assert_eq!(s.profile, Profile::Quick);
                assert_eq!(s.deadline_ms, None);
                assert_eq!(s.priority, DEFAULT_PRIORITY);
                assert!(s.overrides.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#" { "op" : "shutdown" } "#).unwrap(),
            Request::Shutdown
        );
        assert!(parse_request(r#"{"op":"stats","extra":1}"#).is_err());
    }

    #[test]
    fn structured_rejections() {
        for (line, needle) in [
            ("", "JSON object"),
            ("[1,2]", "JSON object"),
            (r#"{"op":"simulate"}"#, "requires \"experiment\""),
            (r#"{"op":"nope"}"#, "unknown op"),
            (r#"{"experiment":"fig8"}"#, "missing \"op\""),
            (
                r#"{"op":"simulate","experiment":"fig8","seed":-1}"#,
                "negative",
            ),
            (
                r#"{"op":"simulate","experiment":"fig8","seed":1.5}"#,
                "float",
            ),
            (
                r#"{"op":"simulate","experiment":"fig8","priority":10}"#,
                "priority",
            ),
            (
                r#"{"op":"simulate","experiment":"fig8","shards":2}"#,
                "unknown override key",
            ),
            (
                r#"{"op":"simulate","experiment":"fig8","sim_secs":0}"#,
                "sim_secs",
            ),
            (
                r#"{"op":"simulate","experiment":"fig8","nested":{"a":1}}"#,
                "nested",
            ),
            (r#"{"op":"ping"} extra"#, "trailing garbage"),
            (r#"{"op":"ping","op":"ping"}"#, "duplicate key"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let line = format!(
            r#"{{"op":"simulate","experiment":"{}"}}"#,
            json_escape(nasty)
        );
        match parse_request(&line).unwrap() {
            Request::Simulate(s) => assert_eq!(s.experiment, nasty),
            other => panic!("{other:?}"),
        }
    }
}
