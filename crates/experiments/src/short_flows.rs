//! Short transfers under two-way traffic — what ACK-compression costs a
//! user.
//!
//! The paper characterizes steady-state dynamics; the practical casualty
//! is the *finite* transfer that has to live inside them. We measure
//! flow-completion time (FCT) of 100-packet transfers crossing the
//! paper's bottleneck:
//!
//! * **quiet network**: FCT is governed by slow start plus 100 service
//!   times (~9 s at 12.5 packets/s);
//! * **reverse bulk transfer running** (the fig45 configuration): the
//!   short flow's ACKs get compressed behind the bulk flow's data, its
//!   losses come in the double-drop pattern, and completion times stretch
//!   and spread.
//!
//! Beyond the paper's plots, but entirely composed of its mechanisms.

use crate::report::Report;
use td_analysis::mean;
use td_analysis::stats::quantile;
use td_core::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};
use td_engine::{SimDuration, SimTime};
use td_net::{dumbbell, ConnId, LinkSpec};

const FLOW_PACKETS: u64 = 100;

/// FCTs of `n_flows` sequential 100-packet transfers, optionally sharing
/// the network with a reverse-direction bulk connection.
fn run_flows(seed: u64, n_flows: usize, with_reverse_bulk: bool) -> Vec<f64> {
    let spec = LinkSpec::paper_bottleneck(SimDuration::from_millis(10), Some(20));
    let mut d = dumbbell(
        seed,
        spec,
        LinkSpec::paper_host_link(),
        SimDuration::from_micros(100),
    );
    let mut next_conn = 0u32;
    if with_reverse_bulk {
        let bulk = d.world.attach(
            d.host2,
            d.host1,
            ConnId(next_conn),
            TcpSender::boxed(SenderConfig::paper()),
        );
        d.world.attach(
            d.host1,
            d.host2,
            ConnId(next_conn),
            TcpReceiver::boxed(ReceiverConfig::paper()),
        );
        d.world.start_at(bulk, SimTime::ZERO);
        next_conn += 1;
    }
    // One short flow every 120 s — ample for each to finish first.
    let gap = SimDuration::from_secs(120);
    let mut senders = Vec::new();
    for i in 0..n_flows {
        let conn = ConnId(next_conn);
        next_conn += 1;
        let cfg = SenderConfig {
            data_limit: Some(FLOW_PACKETS),
            ..SenderConfig::paper()
        };
        let s = d
            .world
            .attach(d.host1, d.host2, conn, TcpSender::boxed(cfg));
        d.world.attach(
            d.host2,
            d.host1,
            conn,
            TcpReceiver::boxed(ReceiverConfig::paper()),
        );
        let start = SimTime::from_secs(20) + gap * i as u64;
        d.world.start_at(s, start);
        senders.push((s, start));
    }
    d.world
        .run_until(SimTime::from_secs(20) + gap * n_flows as u64);
    senders
        .iter()
        .filter_map(|&(ep, start)| {
            d.world
                .endpoint(ep)
                .unwrap()
                .as_any()
                .downcast_ref::<TcpSender>()
                .unwrap()
                .finished_at()
                .map(|t| t.since(start).as_secs_f64())
        })
        .collect()
}

/// Run and evaluate the short-flow FCT comparison.
pub fn report(seed: u64, n_flows: usize) -> Report {
    let mut rep = Report::new(
        "tbl-short-flows",
        "Flow-completion time of 100-packet transfers (cost of the fig45 dynamics)",
        &format!("seed {seed}, {n_flows} flows per cell, tau = 0.01 s, B = 20"),
    );

    let quiet = run_flows(seed, n_flows, false);
    let busy = run_flows(seed, n_flows, true);

    rep.check(
        "all flows complete",
        "reliability under both conditions",
        format!(
            "{} / {} quiet, {} / {} busy",
            quiet.len(),
            n_flows,
            busy.len(),
            n_flows
        ),
        quiet.len() == n_flows && busy.len() == n_flows,
    );

    let (mq, mb) = (mean(&quiet), mean(&busy));
    rep.check(
        "mean FCT, quiet network",
        "~9-12 s (slow start + 100 service times)",
        format!("{mq:.1} s"),
        (8.0..=16.0).contains(&mq),
    );
    rep.check(
        "mean FCT with a reverse bulk transfer",
        "stretched by ACK-compression and double-drop recoveries",
        format!("{mb:.1} s ({:.1}x the quiet time)", mb / mq),
        mb > mq * 1.3,
    );
    let (p90q, p90b) = (
        quantile(&quiet, 0.9).unwrap_or(f64::NAN),
        quantile(&busy, 0.9).unwrap_or(f64::NAN),
    );
    rep.check(
        "p90 FCT quiet -> busy",
        "the tail suffers at least as much as the mean",
        format!("{p90q:.1} s -> {p90b:.1} s"),
        p90b > p90q * 1.3,
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_flows_reproduce() {
        let rep = report(1, 8);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }
}
