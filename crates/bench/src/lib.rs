//! Criterion benchmark crate (bench targets under `benches/`).
