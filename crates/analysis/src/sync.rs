//! Synchronization-mode classification (§4.3).
//!
//! Two-way traffic exhibits two modes: *in-phase* (both windows/queues rise
//! and fall together — Figures 6–7) and *out-of-phase* (one rises while the
//! other falls — Figures 4–5 and the ten-connection run of Figure 3). We
//! classify by the Pearson correlation of the two series resampled onto a
//! common grid: strongly positive → in-phase, strongly negative →
//! out-of-phase.
//!
//! The low-frequency oscillation the modes describe rides under the
//! high-frequency ACK-compression square waves, so correlation is computed
//! on series smoothed with a moving-average window of a few plateau widths.

use crate::series::TimeSeries;
use crate::stats::pearson;
use td_engine::SimTime;

/// The classified relationship between two oscillating series.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncMode {
    /// Rising and falling together (correlation ≥ +threshold).
    InPhase,
    /// One rising while the other falls (correlation ≤ −threshold).
    OutOfPhase,
    /// No clear relationship.
    Indeterminate,
}

/// Classify the synchronization of two series over `[t0, t1]`.
///
/// `samples` is the resampling grid size (a few hundred is plenty);
/// `smooth` is the moving-average half-width in samples used to suppress
/// the ACK-compression square waves; `threshold` is the |r| needed to call
/// a phase (0.2 is a sensible default — the modes in the paper are far
/// more extreme).
pub fn classify_sync(
    a: &TimeSeries,
    b: &TimeSeries,
    t0: SimTime,
    t1: SimTime,
    samples: usize,
    smooth: usize,
    threshold: f64,
) -> (SyncMode, f64) {
    let xa = smooth_ma(&a.resample(t0, t1, samples), smooth);
    let xb = smooth_ma(&b.resample(t0, t1, samples), smooth);
    match pearson(&xa, &xb) {
        Some(r) if r >= threshold => (SyncMode::InPhase, r),
        Some(r) if r <= -threshold => (SyncMode::OutOfPhase, r),
        Some(r) => (SyncMode::Indeterminate, r),
        None => (SyncMode::Indeterminate, 0.0),
    }
}

/// Centered moving average with half-width `k` (window `2k+1`, clipped at
/// the edges). `k = 0` returns the input unchanged.
pub fn smooth_ma(xs: &[f64], k: usize) -> Vec<f64> {
    if k == 0 || xs.is_empty() {
        return xs.to_vec();
    }
    (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(k);
            let hi = (i + k + 1).min(xs.len());
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_engine::SimDuration;

    /// Triangle wave with given period and phase offset, as a TimeSeries.
    fn triangle(period_s: u64, phase_frac: f64, dur_s: u64) -> TimeSeries {
        let mut ts = TimeSeries::new();
        let steps_per_period = 40u64;
        let dt = SimDuration::from_millis(period_s * 1000 / steps_per_period);
        let n = dur_s * steps_per_period / period_s;
        for i in 0..n {
            let phase = (i as f64 / steps_per_period as f64 + phase_frac).fract();
            let v = if phase < 0.5 {
                phase * 2.0
            } else {
                2.0 - phase * 2.0
            };
            ts.push(SimTime::ZERO + dt * i, v);
        }
        ts
    }

    #[test]
    fn identical_waves_are_in_phase() {
        let a = triangle(30, 0.0, 300);
        let b = triangle(30, 0.0, 300);
        let (mode, r) = classify_sync(&a, &b, SimTime::ZERO, SimTime::from_secs(300), 400, 0, 0.2);
        assert_eq!(mode, SyncMode::InPhase);
        assert!(r > 0.95);
    }

    #[test]
    fn half_period_offset_is_out_of_phase() {
        let a = triangle(30, 0.0, 300);
        let b = triangle(30, 0.5, 300);
        let (mode, r) = classify_sync(&a, &b, SimTime::ZERO, SimTime::from_secs(300), 400, 0, 0.2);
        assert_eq!(mode, SyncMode::OutOfPhase);
        assert!(r < -0.95, "r = {r}");
    }

    #[test]
    fn quarter_offset_is_indeterminate() {
        let a = triangle(30, 0.0, 300);
        let b = triangle(30, 0.25, 300);
        let (mode, r) = classify_sync(&a, &b, SimTime::ZERO, SimTime::from_secs(300), 400, 0, 0.5);
        assert_eq!(mode, SyncMode::Indeterminate, "r = {r}");
    }

    #[test]
    fn smoothing_suppresses_square_wave_noise() {
        // In-phase triangles with huge alternating spikes added to one.
        let a = triangle(30, 0.0, 300);
        let mut noisy_pts = Vec::new();
        for (i, &(t, v)) in triangle(30, 0.0, 300).points().iter().enumerate() {
            let spike = if i % 2 == 0 { 3.0 } else { -3.0 };
            noisy_pts.push((t, v + spike));
        }
        let b = TimeSeries::from_points(noisy_pts);
        let (_raw_mode, raw_r) =
            classify_sync(&a, &b, SimTime::ZERO, SimTime::from_secs(300), 400, 0, 0.2);
        let (mode, r) = classify_sync(&a, &b, SimTime::ZERO, SimTime::from_secs(300), 400, 8, 0.2);
        assert_eq!(mode, SyncMode::InPhase);
        assert!(r > raw_r, "smoothing must raise correlation: {raw_r} → {r}");
    }

    #[test]
    fn empty_series_is_indeterminate() {
        let a = TimeSeries::new();
        let b = triangle(30, 0.0, 300);
        let (mode, r) = classify_sync(&a, &b, SimTime::ZERO, SimTime::from_secs(300), 100, 0, 0.2);
        assert_eq!(mode, SyncMode::Indeterminate);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn moving_average_basics() {
        assert_eq!(smooth_ma(&[1.0, 2.0, 3.0], 0), vec![1.0, 2.0, 3.0]);
        let sm = smooth_ma(&[0.0, 10.0, 0.0, 10.0, 0.0], 1);
        assert_eq!(sm[2], 20.0 / 3.0);
        assert_eq!(sm[0], 5.0, "edge uses clipped window");
        assert!(smooth_ma(&[], 3).is_empty());
    }
}
