//! Figures 6 & 7 — two-way traffic, large pipe: in-phase mode (§4.1,
//! §4.3.2).
//!
//! One connection per direction, τ = 1 s (pipe P = 12.5 packets), buffer
//! 20. The paper's observations this run must reproduce:
//!
//! * the connections synchronize **in phase**: queue lengths and cwnd
//!   values rise and fall together (the contrast with Figures 4–5);
//! * in each congestion epoch **each** connection loses a single packet
//!   (loss-synchronization, drops close together in time);
//! * utilization ≈ 60 % (versus 90 % one-way at the same pipe size), with
//!   repeating idle periods while the compressed ACKs are in the pipe;
//! * there are times when **both** lines are idle simultaneously — unlike
//!   the small-pipe case where only one line idles at a time;
//! * ACK-compression square waves present here too.

use crate::report::Report;
use crate::scenario::{ConnSpec, Scenario, DATA_SERVICE};
use td_analysis::epochs::{detect_epochs, loss_synchronization, mean_drops_per_epoch};
use td_analysis::plot::Plot;
use td_analysis::sync::{classify_sync, SyncMode};
use td_analysis::{compression, csv};
use td_engine::{SimDuration, SimTime};

/// Scenario: 1+1 connections, τ = 1 s, B = 20.
pub fn scenario(seed: u64, duration_s: u64) -> Scenario {
    let mut sc = Scenario::paper(SimDuration::from_secs(1), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    sc.seed = seed;
    sc.duration = SimDuration::from_secs(duration_s);
    sc.warmup = SimDuration::from_secs(duration_s / 5);
    sc
}

/// Fraction of the window during which *both* queues are empty and both
/// lines idle (paper: nonzero for the large-pipe case). Takes the
/// already-extracted queue series so the (batched) trace scan happens
/// once per report, not once per question.
fn both_idle_fraction(
    q1: &td_analysis::TimeSeries,
    q2: &td_analysis::TimeSeries,
    t0: SimTime,
    t1: SimTime,
) -> f64 {
    // Sample both queue series on a fine grid and measure simultaneous
    // emptiness; combined with the in-service flag via utilization the
    // queue series alone is the right signal (occupancy includes the
    // packet being serialized).
    let n = 4000;
    let a = q1.resample(t0, t1, n);
    let b = q2.resample(t0, t1, n);
    let both = a
        .iter()
        .zip(&b)
        .filter(|&(&x, &y)| x == 0.0 && y == 0.0)
        .count();
    both as f64 / n as f64
}

/// Run and evaluate the Figures 6–7 reproduction.
pub fn report(seed: u64, duration_s: u64) -> Report {
    let run = scenario(seed, duration_s).run();
    let mut rep = Report::new(
        "fig67",
        "Two-way traffic: 1+1 connections, tau = 1 s, B = 20 (paper Figs. 6-7)",
        &format!(
            "seed {seed}, {duration_s} s simulated, measured after {}",
            run.t0
        ),
    );
    let (c1, c2) = (run.fwd[0], run.rev[0]);
    // One batched (parallel) trace scan feeds every series question below.
    let (q1, q2, cw1, cw2) = run.queues_and_cwnds(c1, c2);

    let (u12, u21) = (run.util12(), run.util21());
    rep.check(
        "utilization",
        "~0.60 (vs ~0.90 one-way at this pipe size)",
        format!("{u12:.3} / {u21:.3}"),
        (0.45..=0.75).contains(&u12) && (0.45..=0.75).contains(&u21),
    );

    // In-phase window synchronization.
    let (mode, r) = classify_sync(&cw1, &cw2, run.t0, run.t1, 800, 5, 0.15);
    rep.check(
        "window synchronization",
        "in-phase (rise and fall together)",
        format!("{mode:?} (r = {r:.2})"),
        mode == SyncMode::InPhase,
    );

    // Each connection loses one packet per epoch.
    let epochs = detect_epochs(&run.drops(), SimDuration::from_secs(15));
    let dpe = mean_drops_per_epoch(&epochs);
    rep.check(
        "drops per congestion epoch",
        "2 (one per connection)",
        format!("{dpe:.2} over {} epochs", epochs.len()),
        (1.5..=3.0).contains(&dpe) && epochs.len() >= 4,
    );
    let sync_frac = loss_synchronization(&epochs, &[c1, c2]);
    rep.check(
        "loss synchronization",
        "both connections lose in the same epoch",
        format!("{:.0} % of epochs", sync_frac * 100.0),
        sync_frac >= 0.6,
    );

    // Both lines simultaneously idle at times.
    let idle_both = both_idle_fraction(&q1, &q2, run.t0, run.t1);
    rep.check(
        "both lines idle simultaneously",
        "> 0 (unlike the small-pipe case)",
        format!("{:.1} % of the time", idle_both * 100.0),
        idle_both > 0.02,
    );

    // ACK-compression square waves.
    let fl = compression::queue_fluctuation(&q1, run.t0, run.t1, DATA_SERVICE);
    rep.check(
        "max queue fall within one data service time",
        "square waves present",
        format!("{fl:.0} packets"),
        fl >= 4.0,
    );

    let ack_drops = run.drops().iter().filter(|d| !d.is_data).count();
    rep.check("ACK drops", "0", format!("{ack_drops}"), ack_drops == 0);

    // Figures 6 and 7 (paper shows 540–640 s: a 100 s window).
    let w0 = run.t0;
    let w1 = (run.t0 + SimDuration::from_secs(100)).min(run.t1);
    let drop_times: Vec<SimTime> = run.drops().iter().map(|d| d.t).collect();
    rep.plots.push(
        Plot::new(
            "Fig 6 (top): queue at switch 1   [* = drop]",
            w0,
            w1,
            100,
            10,
        )
        .y_max(22.0)
        .series(&q1, '#')
        .marks(&drop_times, '*')
        .render(),
    );
    rep.plots.push(
        Plot::new(
            "Fig 6 (bottom): queue at switch 2   [* = drop]",
            w0,
            w1,
            100,
            10,
        )
        .y_max(22.0)
        .series(&q2, '#')
        .marks(&drop_times, '*')
        .render(),
    );
    rep.plots.push(
        Plot::new(
            "Fig 7: cwnd of TCP-1 ('1') and TCP-2 ('2') — in-phase",
            w0,
            w1,
            100,
            12,
        )
        .series(&cw1, '1')
        .series(&cw2, '2')
        .render(),
    );
    let qsvg =
        td_analysis::SvgPlot::new("Fig 6: bottleneck queues (in-phase mode)", w0, w1, 900, 360)
            .y_max(22.0)
            .series("queue 1", "#1f77b4", &q1)
            .series("queue 2", "#ff7f0e", &q2)
            .marks(&drop_times)
            .render();
    rep.blobs
        .push(("fig6_queues.svg".into(), qsvg.into_bytes()));
    let wsvg = td_analysis::SvgPlot::new("Fig 7: in-phase cwnd", w0, w1, 900, 360)
        .series("TCP-1", "#1f77b4", &cw1)
        .series("TCP-2", "#ff7f0e", &cw2)
        .render();
    rep.blobs.push(("fig7_cwnd.svg".into(), wsvg.into_bytes()));

    rep.csvs
        .push(("fig6_queue1.csv".into(), csv::series_csv("qlen", &q1)));
    rep.csvs
        .push(("fig6_queue2.csv".into(), csv::series_csv("qlen", &q2)));
    rep.csvs
        .push(("fig7_cwnd1.csv".into(), csv::series_csv("cwnd", &cw1)));
    rep.csvs
        .push(("fig7_cwnd2.csv".into(), csv::series_csv("cwnd", &cw2)));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig67_reproduces() {
        let rep = report(1, 800);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }
}
