//! Compressed per-switch routing tables.
//!
//! The dense representation — one `HashMap<NodeId, ChannelId>` entry per
//! (switch, host) pair — is O(switches × hosts) and dominates the memory
//! footprint of large chains: at 640 clusters the next-hop maps rival the
//! simulation state itself, and at 6400 clusters they alone blow the
//! budget. This module replaces it with a sorted run-length table:
//!
//! * **Runs.** Destinations with consecutive node ids that share a
//!   next-hop channel collapse into one `(start ..= end) → channel` run.
//!   Topology builders allocate host ids in walk order, so a switch in a
//!   chain sees exactly "everything to my left", "my local hosts",
//!   "everything to my right" — a handful of runs regardless of scale.
//!   Lookup is a binary search over the runs.
//! * **Default-route elision.** When a switch routes to *every* host
//!   (the common, validated case), the channel covering the most hosts —
//!   the trunk direction — becomes the switch's default route and its
//!   runs are dropped; only local exceptions stay materialized. Elision
//!   is applied only on full coverage, so a lookup on a table without a
//!   default still distinguishes "no route" (→ dispatch panic) from a
//!   routed destination, exactly like the dense map did.
//!
//! A run may span node ids that are not hosts (switch ids interleave with
//! host ids in every builder); that is sound because packets are only
//! ever destined to hosts, and [`RouteTable::extend`] widens a run across
//! a gap only when no *host* id in the gap was skipped. The semantic
//! content of a table — what [`crate::World::structure_digest`] must
//! hash — is therefore its resolution over host ids only, exposed as
//! [`RouteTable::canonical_host_segments`].

use crate::packet::NodeId;
use crate::world::ChannelId;

/// One maximal range of destination ids sharing a next-hop channel.
/// Bounds are inclusive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Run {
    pub start: u32,
    pub end: u32,
    pub ch: ChannelId,
}

/// A compressed next-hop table: sorted disjoint runs plus an optional
/// default channel covering every id no run claims.
#[derive(Default, Debug)]
pub(crate) struct RouteTable {
    runs: Vec<Run>,
    default: Option<ChannelId>,
}

impl RouteTable {
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Next-hop channel for `dst`: binary search over the runs, falling
    /// back to the default route. `None` means "no route" and makes the
    /// dispatch site panic, as the dense map's missing entry did.
    #[inline]
    pub fn lookup(&self, dst: NodeId) -> Option<ChannelId> {
        let i = self.runs.partition_point(|r| r.end < dst.0);
        match self.runs.get(i) {
            Some(r) if r.start <= dst.0 => Some(r.ch),
            _ => self.default,
        }
    }

    /// Append `(dst → ch)` during an ascending-destination build
    /// ([`crate::World::compute_routes`]): extends the last run when this
    /// switch also routed the immediately preceding host (`prev_host`)
    /// over the same channel — which guarantees no host id in the widened
    /// gap was skipped — and starts a new run otherwise.
    pub fn extend(&mut self, prev_host: Option<u32>, dst: NodeId, ch: ChannelId) {
        if let Some(last) = self.runs.last_mut() {
            debug_assert!(last.end < dst.0, "extend requires ascending destinations");
            if last.ch == ch && Some(last.end) == prev_host {
                last.end = dst.0;
                return;
            }
        }
        self.runs.push(Run {
            start: dst.0,
            end: dst.0,
            ch,
        });
    }

    /// Install a single route, preserving the run invariants: overwrites
    /// inside an existing run split it, neighbors with the same channel
    /// merge. This is the [`crate::World::set_route`] path — manual
    /// wiring of small worlds, never the bulk builder.
    pub fn insert(&mut self, dst: NodeId, ch: ChannelId) {
        let d = dst.0;
        let i = self.runs.partition_point(|r| r.end < d);
        match self.runs.get(i).copied() {
            Some(r) if r.start <= d => {
                // Inside an existing run: split around the overwrite.
                if r.ch == ch {
                    return;
                }
                let mut repl = Vec::with_capacity(3);
                if r.start < d {
                    repl.push(Run {
                        start: r.start,
                        end: d - 1,
                        ch: r.ch,
                    });
                }
                repl.push(Run {
                    start: d,
                    end: d,
                    ch,
                });
                if d < r.end {
                    repl.push(Run {
                        start: d + 1,
                        end: r.end,
                        ch: r.ch,
                    });
                }
                self.runs.splice(i..=i, repl);
            }
            _ => self.runs.insert(
                i,
                Run {
                    start: d,
                    end: d,
                    ch,
                },
            ),
        }
        self.coalesce();
    }

    /// Merge touching same-channel runs back into maximal form. O(runs),
    /// which is fine on the manual [`RouteTable::insert`] path; the bulk
    /// builder produces maximal runs directly.
    fn coalesce(&mut self) {
        let mut w = 0;
        for i in 1..self.runs.len() {
            let r = self.runs[i];
            let last = &mut self.runs[w];
            if last.ch == r.ch && u64::from(last.end) + 1 == u64::from(r.start) {
                last.end = r.end;
            } else {
                w += 1;
                self.runs[w] = r;
            }
        }
        self.runs.truncate(w + 1);
    }

    /// Drop every run, keeping the allocation for a rebuild.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.default = None;
    }

    /// Number of hosts this table resolves a route for. `host_ids` is the
    /// ascending list of all host node ids in the world.
    pub fn covered_hosts(&self, host_ids: &[u32]) -> usize {
        if self.default.is_some() {
            return host_ids.len();
        }
        self.runs
            .iter()
            .map(|r| {
                host_ids.partition_point(|&h| h <= r.end)
                    - host_ids.partition_point(|&h| h < r.start)
            })
            .sum()
    }

    /// Host ids (from the ascending `host_ids` list) this table has *no*
    /// route for.
    pub fn missing_hosts(&self, host_ids: &[u32]) -> Vec<u32> {
        host_ids
            .iter()
            .copied()
            .filter(|&h| self.lookup(NodeId(h)).is_none())
            .collect()
    }

    /// Default-route elision: when the table covers every host, replace
    /// the runs of the channel reaching the most hosts (ties broken by
    /// smaller channel id, for determinism) with a single default. Only
    /// applied on full coverage — a partial table keeps returning `None`
    /// for its unreachable hosts instead of silently misrouting them —
    /// and a no-op if the table already has a default.
    pub fn elide_default(&mut self, host_ids: &[u32]) {
        if self.default.is_some() || self.runs.is_empty() {
            return;
        }
        let mut per_ch: Vec<(u32, usize)> = Vec::new(); // (channel id, hosts)
        let mut total = 0usize;
        for r in &self.runs {
            let hosts = host_ids.partition_point(|&h| h <= r.end)
                - host_ids.partition_point(|&h| h < r.start);
            total += hosts;
            match per_ch.iter_mut().find(|(c, _)| *c == r.ch.0) {
                Some((_, n)) => *n += hosts,
                None => per_ch.push((r.ch.0, hosts)),
            }
        }
        if total < host_ids.len() {
            return;
        }
        let (best, _) = per_ch
            .into_iter()
            .max_by_key(|&(c, n)| (n, std::cmp::Reverse(c)))
            .expect("non-empty runs");
        self.default = Some(ChannelId(best));
        self.runs.retain(|r| r.ch.0 != best);
        self.runs.shrink_to_fit();
    }

    /// Release surplus capacity after a bulk build.
    pub fn shrink(&mut self) {
        self.runs.shrink_to_fit();
    }

    /// Heap bytes held by this table.
    pub fn heap_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<Run>()
    }

    /// The table's semantic content: maximal segments of *host* ids with
    /// a common resolved next-hop, as `(first_host, last_host, channel)`.
    /// Two tables that resolve identically over every host — whatever
    /// their run decomposition, default elision, or behavior on switch
    /// ids — produce identical segments, which is what makes this the
    /// right input for the structure digest's replica cross-check.
    pub fn canonical_host_segments(&self, host_ids: &[u32]) -> Vec<(u32, u32, u32)> {
        // Effective (start, end, ch) coverage in id space: runs, with
        // gaps filled by the default route when one exists.
        let mut cover: Vec<(u32, u32, ChannelId)> = Vec::new();
        let mut pos: u64 = 0;
        for r in &self.runs {
            if let Some(d) = self.default {
                if pos < u64::from(r.start) {
                    cover.push((pos as u32, r.start - 1, d));
                }
            }
            cover.push((r.start, r.end, r.ch));
            pos = u64::from(r.end) + 1;
        }
        if let Some(d) = self.default {
            if pos <= u64::from(u32::MAX) {
                cover.push((pos as u32, u32::MAX, d));
            }
        }
        // Clip each span to the hosts it contains, then merge adjacent
        // (in host order) segments sharing a channel.
        let mut out: Vec<(u32, u32, u32)> = Vec::new();
        let mut prev_host_idx: Option<usize> = None;
        for (start, end, ch) in cover {
            let lo = host_ids.partition_point(|&h| h < start);
            let hi = host_ids.partition_point(|&h| h <= end);
            if lo == hi {
                continue;
            }
            match out.last_mut() {
                Some(last) if last.2 == ch.0 && prev_host_idx == Some(lo) => {
                    last.1 = host_ids[hi - 1];
                }
                _ => out.push((host_ids[lo], host_ids[hi - 1], ch.0)),
            }
            prev_host_idx = Some(hi);
        }
        out
    }

    #[cfg(test)]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    #[cfg(test)]
    pub fn default_route(&self) -> Option<ChannelId> {
        self.default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(c: u32) -> ChannelId {
        ChannelId(c)
    }

    #[test]
    fn insert_splits_and_merges() {
        let mut t = RouteTable::new();
        t.insert(NodeId(5), ch(1));
        t.insert(NodeId(6), ch(1));
        t.insert(NodeId(4), ch(1));
        assert_eq!(t.run_count(), 1, "adjacent same-channel inserts merge");
        t.insert(NodeId(5), ch(2));
        assert_eq!(t.run_count(), 3, "overwrite splits the run");
        assert_eq!(t.lookup(NodeId(4)), Some(ch(1)));
        assert_eq!(t.lookup(NodeId(5)), Some(ch(2)));
        assert_eq!(t.lookup(NodeId(6)), Some(ch(1)));
        assert_eq!(t.lookup(NodeId(7)), None);
        t.insert(NodeId(5), ch(2));
        assert_eq!(t.run_count(), 3, "idempotent re-insert");
        // Bridge the split back together.
        t.insert(NodeId(5), ch(1));
        assert_eq!(t.run_count(), 1, "same-channel overwrite re-merges");
    }

    #[test]
    fn extend_bridges_only_hostless_gaps() {
        let mut t = RouteTable::new();
        // Hosts 1, 3, 7; host 5 skipped for this switch.
        t.extend(None, NodeId(1), ch(9));
        t.extend(Some(1), NodeId(3), ch(9));
        assert_eq!(t.run_count(), 1, "gap id 2 holds no skipped host");
        t.extend(Some(5), NodeId(7), ch(9));
        assert_eq!(t.run_count(), 2, "host 5 was skipped: no bridge");
        assert_eq!(t.lookup(NodeId(2)), Some(ch(9)), "non-host id inside run");
        assert_eq!(t.lookup(NodeId(5)), None);
    }

    #[test]
    fn elision_requires_full_coverage() {
        let hosts = [1, 3, 5];
        let mut partial = RouteTable::new();
        partial.insert(NodeId(1), ch(1));
        partial.insert(NodeId(3), ch(1));
        partial.elide_default(&hosts);
        assert_eq!(partial.default_route(), None, "host 5 unreachable");
        assert_eq!(partial.lookup(NodeId(5)), None);

        let mut full = RouteTable::new();
        full.insert(NodeId(1), ch(1));
        full.insert(NodeId(3), ch(1));
        full.insert(NodeId(5), ch(2));
        full.elide_default(&hosts);
        assert_eq!(full.default_route(), Some(ch(1)), "majority channel wins");
        assert_eq!(full.run_count(), 1, "only the exception stays");
        assert_eq!(full.lookup(NodeId(1)), Some(ch(1)));
        assert_eq!(full.lookup(NodeId(3)), Some(ch(1)));
        assert_eq!(full.lookup(NodeId(5)), Some(ch(2)));
    }

    #[test]
    fn canonical_segments_ignore_representation() {
        let hosts = [1, 3, 5, 7];
        // Dense inserts, no default.
        let mut a = RouteTable::new();
        for h in [1, 3] {
            a.insert(NodeId(h), ch(1));
        }
        for h in [5, 7] {
            a.insert(NodeId(h), ch(2));
        }
        // Run-built then elided.
        let mut b = RouteTable::new();
        b.extend(None, NodeId(1), ch(1));
        b.extend(Some(1), NodeId(3), ch(1));
        b.extend(Some(3), NodeId(5), ch(2));
        b.extend(Some(5), NodeId(7), ch(2));
        b.elide_default(&hosts);
        assert_ne!(a.default_route(), b.default_route());
        assert_eq!(
            a.canonical_host_segments(&hosts),
            b.canonical_host_segments(&hosts),
            "same resolution, same semantics"
        );
        assert_eq!(
            a.canonical_host_segments(&hosts),
            vec![(1, 3, 1), (5, 7, 2)]
        );
    }

    #[test]
    fn covered_and_missing_hosts() {
        let hosts = [2, 4, 6];
        let mut t = RouteTable::new();
        t.insert(NodeId(2), ch(0));
        t.insert(NodeId(6), ch(0));
        assert_eq!(t.covered_hosts(&hosts), 2);
        assert_eq!(t.missing_hosts(&hosts), vec![4]);
    }
}
