//! Parallel experiment harness.
//!
//! `td-repro` used to execute registry entries strictly sequentially; this
//! module runs them across a scoped-thread worker pool (`--jobs N`) while
//! preserving the property the whole repository is built on: **bit-identical
//! results from a seed**. Three ingredients make that safe:
//!
//! 1. Every experiment owns its own `World` (and therefore its own
//!    `EventQueue` and `SimRng`) — there is no shared mutable simulation
//!    state between registry entries.
//! 2. Each experiment's seed is a pure function of
//!    `(master_seed, experiment_id, replicate)` — the master seed itself
//!    for the canonical replicate 0, [`derive_seed`] for the rest — never
//!    of thread scheduling, pool size, or completion order. `--jobs 1`
//!    and `--jobs 32` therefore produce byte-identical reports.
//! 3. Results are collected by task index, not completion order, so
//!    downstream output is ordered like the registry regardless of which
//!    worker finishes first.
//!
//! Parallelism is **two-level**: `--jobs` is one global budget
//! ([`crate::sweep::JobBudget`]). Each worker here owns one slot while it
//! executes experiments; whatever is left over — fewer tasks than jobs, or
//! workers that ran out of tasks and retired — stays available, and
//! in-experiment replicate sweeps ([`crate::sweep`]) borrow those idle
//! slots to run their replicates concurrently. The split is
//! work-stealing-free: slots move only through the budget's two atomics,
//! never tasks between queues, and granting a sweep more or fewer slots
//! can only change the wall clock, never a byte of output.
//!
//! The pool is also fault-isolated: every task runs under
//! [`std::panic::catch_unwind`], so one panicking scenario becomes one
//! failed [`ExperimentResult`] (panic message preserved in
//! `timings.json`) instead of a poisoned batch.
//!
//! Finally, the pool is the observability hook: each task is metered with
//! wall-clock time and the engine's per-thread [`td_engine::telemetry`]
//! counters (events scheduled/dispatched, peak pending-event depth), and
//! the whole run can be serialized as a `timings.json` report — the
//! trajectory file the benchmarking roadmap hangs off.

use crate::journal::{Journal, JournalCell};
use crate::registry::{Entry, Profile};
use crate::report::Report;
use crate::sweep;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;
use td_analysis::RunningStats;
use td_net::snapcount::{self, SnapCounters};

/// Derive the seed for one `(experiment, replicate)` cell from the run's
/// master seed.
///
/// The experiment id and the replicate index are folded with FNV-1a and
/// mixed with the master seed through a SplitMix64 finalizer, so every
/// `(master_seed, id, replicate)` triple gets an independent,
/// platform-stable seed. Changing the pool size, the registry order, the
/// set of experiments run, or the replicate count cannot perturb any
/// other cell's stream.
///
/// Replicate 0 deliberately does *not* go through this derivation (see
/// [`run_batch`]): the canonical report must match a direct
/// `entry.run(master_seed, profile)` call — several experiments reproduce
/// seed-sensitive phenomena (e.g. the fig45 synchronization bands) that
/// the paper demonstrates at the canonical seed. Derivation decorrelates
/// the *additional* replicates, which would otherwise all rerun the same
/// stream. In-experiment sweeps reuse the same discipline via
/// [`crate::sweep::ReplicateSweep::derived`].
pub fn derive_seed(master_seed: u64, experiment_id: &str, replicate: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment_id.bytes().chain(replicate.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finalizer over the combined words.
    let mut z = master_seed
        .rotate_left(32)
        .wrapping_add(h)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the pool should execute a batch.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// The global job budget: worker threads here plus borrowed slots for
    /// in-experiment replicate sweeps (clamped to at least 1).
    pub jobs: usize,
    /// Run profile handed to every entry.
    pub profile: Profile,
    /// Master seed. Replicate 0 receives it verbatim; replicate `r > 0`
    /// runs with `derive_seed(master_seed, id, r)`.
    pub master_seed: u64,
    /// Replicates per experiment. Replicate 0 is the canonical run whose
    /// report is printed; all replicates contribute pass/fail counts.
    pub replicates: u64,
    /// Emit a live per-completion progress line on stderr.
    pub progress: bool,
    /// Cooperative interrupt flag (SIGINT/SIGTERM). When it reads
    /// `true`, workers finish their in-flight task — so every completed
    /// cell still lands in the journal — but claim no new ones, and the
    /// batch reports [`BatchResult::interrupted`].
    pub interrupt: Option<&'static AtomicBool>,
}

impl RunnerConfig {
    /// Default config: all available cores, quick profile, seed 1.
    pub fn new() -> Self {
        RunnerConfig {
            jobs: default_jobs(),
            profile: Profile::Quick,
            master_seed: 1,
            replicates: 1,
            progress: false,
            interrupt: None,
        }
    }
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Wall-clock and engine counters for one executed experiment.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Wall-clock seconds spent inside the experiment runner.
    pub wall_s: f64,
    /// Events scheduled across every queue the experiment built.
    pub events_scheduled: u64,
    /// Events dispatched across every queue the experiment built.
    pub events_dispatched: u64,
    /// Largest pending-event set any of its queues ever held.
    pub peak_queue_depth: usize,
    /// Peak-RSS high-water mark (`VmHWM`, KiB) sampled when the cell
    /// finished. The watermark is reset (see [`reset_peak_rss`]) before
    /// each cell, so on supporting kernels this is a genuine *per-cell*
    /// peak; where the reset is unavailable
    /// [`Timing::peak_rss_is_process_max`] is set and the value degrades
    /// to the process-lifetime maximum (every cell finishing after the
    /// largest-footprint one inherits its peak). Workers running in
    /// parallel share one watermark either way, so per-cell readings are
    /// exact at `--jobs 1` and upper bounds otherwise. 0 where
    /// `/proc/self/status` is unavailable.
    pub peak_rss_kib: u64,
    /// True when the pre-cell watermark reset failed (non-Linux, or a
    /// kernel without `CONFIG_PROC_PAGE_MONITOR`): `peak_rss_kib` is
    /// then the process-lifetime high-water mark, not this cell's.
    pub peak_rss_is_process_max: bool,
}

/// The process's peak resident-set size in KiB: `VmHWM` from
/// `/proc/self/status` on Linux, 0 elsewhere.
pub fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Reset the kernel's peak-RSS watermark to the *current* RSS by writing
/// `5` to `/proc/self/clear_refs`, so the next [`peak_rss_kib`] reading
/// measures only what happened after this call. Returns `false` where
/// the kernel doesn't support it (the watermark then stays a
/// process-lifetime maximum and callers must flag the reading as such).
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// One executed (experiment, replicate) cell.
pub struct ExperimentResult {
    /// Registry id.
    pub id: &'static str,
    /// Replicate index (0-based).
    pub replicate: u64,
    /// The seed the experiment actually ran with.
    pub seed: u64,
    /// The experiment's report. For a panicked task this is a synthetic
    /// report whose single failing row carries the panic message, so it
    /// counts against `all_ok` like any other mismatch.
    pub report: Report,
    /// The panic message, if the experiment panicked instead of
    /// completing (also serialized into `timings.json`).
    pub panic: Option<String>,
    /// Observability counters.
    pub timing: Timing,
    /// Invariant-auditor tally for this task: every violation any world
    /// recorded while the task ran (helper-thread deltas merged in by the
    /// sweeps), surfaced through `timings.json`.
    pub audit: td_net::audit::Tally,
    /// Snapshot/restore activity while the task ran (watchdog
    /// post-mortems included), surfaced through `timings.json`.
    pub snap: SnapCounters,
    /// Model-checking exploration counters for this task (states
    /// visited/deduped/pruned, max depth, counterexamples), surfaced
    /// through `timings.json`'s per-row and batch-level `mc` blocks.
    pub mc: td_net::mc::tally::McTally,
    /// True if this cell was replayed from a results journal instead of
    /// executed (`--resume`).
    pub replayed: bool,
}

/// A completed batch: per-task results in deterministic (registry ×
/// replicate) order, plus batch-level metadata for `timings.json`.
pub struct BatchResult {
    /// Results ordered by `(entry index, replicate)`.
    pub results: Vec<ExperimentResult>,
    /// Job budget used (workers + sweep slots).
    pub jobs: usize,
    /// Profile used.
    pub profile: Profile,
    /// Master seed of replicate 0.
    pub master_seed: u64,
    /// Wall-clock seconds for the whole batch.
    pub total_wall_s: f64,
    /// True if a cooperative interrupt (SIGINT/SIGTERM) stopped the
    /// batch before every task ran; `results` then holds only the
    /// completed cells.
    pub interrupted: bool,
    /// Cells replayed from the results journal instead of executed
    /// (`--resume`).
    pub journal_replayed: u64,
}

impl BatchResult {
    /// Results of replicate 0, in registry order (the printable reports).
    pub fn primary(&self) -> impl Iterator<Item = &ExperimentResult> {
        self.results.iter().filter(|r| r.replicate == 0)
    }

    /// `(passes, replicates)` for one experiment id.
    pub fn pass_count(&self, id: &str) -> (u64, u64) {
        let mut passes = 0;
        let mut total = 0;
        for r in self.results.iter().filter(|r| r.id == id) {
            total += 1;
            if r.report.all_ok() {
                passes += 1;
            }
        }
        (passes, total)
    }

    /// True if every checked row of every replicate passed (a panicked
    /// task is a failed row, so it makes this false without having
    /// aborted the batch).
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.report.all_ok())
    }

    /// Tasks that panicked, as `(id, replicate, message)`.
    pub fn panics(&self) -> Vec<(&'static str, u64, &str)> {
        self.results
            .iter()
            .filter_map(|r| r.panic.as_deref().map(|m| (r.id, r.replicate, m)))
            .collect()
    }

    /// Per-experiment wall-clock summary across its replicates, in
    /// registry order: `(id, stats)`. Replicate timings are folded in
    /// replicate order with the mergeable [`RunningStats`], the same
    /// deterministic reduction the sweeps use.
    pub fn wall_s_by_id(&self) -> Vec<(&'static str, RunningStats)> {
        let mut out: Vec<(&'static str, RunningStats)> = Vec::new();
        for r in &self.results {
            match out.last_mut() {
                Some((id, stats)) if *id == r.id => {
                    *stats = stats.merge(&RunningStats::from_slice(&[r.timing.wall_s]));
                }
                _ => out.push((r.id, RunningStats::from_slice(&[r.timing.wall_s]))),
            }
        }
        out
    }

    /// Serialize the batch as a `timings.json` document.
    pub fn timings_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"master_seed\": {},\n", self.master_seed));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"profile\": \"{}\",\n",
            match self.profile {
                Profile::Quick => "quick",
                Profile::Full => "full",
            }
        ));
        out.push_str(&format!("  \"total_wall_s\": {:.6},\n", self.total_wall_s));
        let events: u64 = self
            .results
            .iter()
            .map(|r| r.timing.events_dispatched)
            .sum();
        out.push_str(&format!("  \"total_events_dispatched\": {events},\n"));
        out.push_str(&format!("  \"panicked\": {},\n", self.panics().len()));
        let audit_total: u64 = self.results.iter().map(|r| r.audit.total).sum();
        out.push_str(&format!("  \"audit_violations\": {audit_total},\n"));
        out.push_str(&format!("  \"interrupted\": {},\n", self.interrupted));
        out.push_str(&format!(
            "  \"journal_replayed\": {},\n",
            self.journal_replayed
        ));
        let snap_taken: u64 = self.results.iter().map(|r| r.snap.taken).sum();
        let snap_restored: u64 = self.results.iter().map(|r| r.snap.restored).sum();
        out.push_str(&format!("  \"snapshots_taken\": {snap_taken},\n"));
        out.push_str(&format!("  \"snapshots_restored\": {snap_restored},\n"));
        // Batch-level model-checking block: exploration counters summed
        // across every cell (depth as the maximum), so CI can pin the
        // whole batch's coverage with one lookup.
        let mc_visited: u64 = self.results.iter().map(|r| r.mc.states_visited).sum();
        let mc_deduped: u64 = self.results.iter().map(|r| r.mc.states_deduped).sum();
        let mc_pruned: u64 = self.results.iter().map(|r| r.mc.states_pruned).sum();
        let mc_depth: u64 = self
            .results
            .iter()
            .map(|r| r.mc.max_depth)
            .max()
            .unwrap_or(0);
        let mc_cex: u64 = self.results.iter().map(|r| r.mc.counterexamples).sum();
        out.push_str(&format!(
            "  \"mc\": {{\"states_visited\": {mc_visited}, \"states_deduped\": {mc_deduped}, \
             \"states_pruned\": {mc_pruned}, \"max_depth\": {mc_depth}, \
             \"counterexamples\": {mc_cex}}},\n"
        ));
        out.push_str("  \"experiments\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let t = &r.timing;
            let panic = match &r.panic {
                Some(msg) => format!("\"{}\"", json_escape(msg)),
                None => "null".into(),
            };
            let audit = json_string_array(&r.audit.reports);
            let diagnostics = json_string_array(&r.report.diagnostics);
            let metrics = r
                .report
                .metrics
                .iter()
                .map(|(name, value)| format!("\"{}\": {value}", json_escape(name)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"replicate\": {}, \"seed\": {}, \"ok\": {}, \
                 \"panic\": {panic}, \
                 \"wall_s\": {:.6}, \"events_scheduled\": {}, \"events_dispatched\": {}, \
                 \"peak_queue_depth\": {}, \"peak_rss_kib\": {}, \
                 \"peak_rss_is_process_max\": {}, \
                 \"audit_violations\": {}, \"audit\": {audit}, \
                 \"snapshots_taken\": {}, \"snapshots_restored\": {}, \
                 \"mc\": {{\"states_visited\": {}, \"states_deduped\": {}, \
                 \"states_pruned\": {}, \"max_depth\": {}, \"counterexamples\": {}}}, \
                 \"replayed\": {}, \
                 \"metrics\": {{{metrics}}}, \"diagnostics\": {diagnostics}}}{}\n",
                r.id,
                r.replicate,
                r.seed,
                r.report.all_ok(),
                t.wall_s,
                t.events_scheduled,
                t.events_dispatched,
                t.peak_queue_depth,
                t.peak_rss_kib,
                t.peak_rss_is_process_max,
                r.audit.total,
                r.snap.taken,
                r.snap.restored,
                r.mc.states_visited,
                r.mc.states_deduped,
                r.mc.states_pruned,
                r.mc.max_depth,
                r.mc.counterexamples,
                r.replayed,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"wall_s_by_id\": [\n");
        let by_id = self.wall_s_by_id();
        for (i, (id, s)) in by_id.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{id}\", \"replicates\": {}, \"mean_s\": {:.6}, \
                 \"min_s\": {:.6}, \"max_s\": {:.6}}}{}\n",
                s.count(),
                s.mean(),
                s.min().unwrap_or(0.0),
                s.max().unwrap_or(0.0),
                if i + 1 == by_id.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Render a slice of strings as a JSON array literal.
fn json_string_array(items: &[String]) -> String {
    let body = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{body}]")
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The synthetic report of a panicked task: one failing row carrying the
/// panic message, so every downstream consumer (`all_ok`, pass counts,
/// exit codes, summaries) treats the panic as a mismatch instead of
/// needing a special case.
fn panic_report(entry: &Entry, seed: u64, msg: &str) -> Report {
    let mut rep = Report::new(
        entry.id,
        entry.about,
        &format!("seed {seed} — experiment PANICKED before producing a report"),
    );
    rep.check(
        "experiment completed without panicking",
        "runs to completion",
        format!("panicked: {msg}"),
        false,
    );
    rep
}

/// Execute `entries × replicates` on a scoped-thread worker pool.
///
/// Tasks are claimed from a shared counter; results land in their task's
/// slot, so the returned order (and every report in it) is independent of
/// scheduling. Worker threads run experiments to completion — an
/// experiment is never split across threads (its replicate sweeps may
/// *borrow* idle job slots, but each sweep item is metered and merged
/// back deterministically), which is what lets the engine's thread-local
/// telemetry meter it.
///
/// Fault isolation: each task runs under `catch_unwind`. A panicking
/// experiment yields a failed [`ExperimentResult`] (message in
/// [`ExperimentResult::panic`] and `timings.json`) and the rest of the
/// batch keeps running; `run_batch` itself always returns a full
/// `BatchResult` with one entry per task.
pub fn run_batch(entries: &[Entry], cfg: &RunnerConfig) -> BatchResult {
    run_batch_resumable(entries, cfg, None, Vec::new())
}

/// [`run_batch`] with crash resilience: completed cells are appended to
/// `journal` the moment they finish (fsynced, before the slot is even
/// published), and `completed` cells replayed from a previous journal
/// are pre-filled instead of re-executed.
///
/// Replayed cells are trusted only if they map onto this batch: their id
/// must name one of `entries`, their replicate must be in range, and
/// their seed must equal what this batch would derive — anything else
/// (stale journal, edited file) is ignored and the cell simply reruns.
/// Because every cell's seed is a pure function of `(master_seed, id,
/// replicate)`, a resumed batch's reports are byte-identical to an
/// uninterrupted run's.
pub fn run_batch_resumable(
    entries: &[Entry],
    cfg: &RunnerConfig,
    journal: Option<&Mutex<Journal>>,
    completed: Vec<JournalCell>,
) -> BatchResult {
    let replicates = cfg.replicates.max(1);
    let n_tasks = entries.len() * replicates as usize;
    let budget = cfg.jobs.max(1);
    let workers = budget.min(n_tasks.max(1));
    let started = Instant::now();

    // Two-level split: the whole `--jobs` budget goes into the shared
    // pool, then each worker checks one slot out for as long as it lives.
    // The surplus (jobs > tasks) is immediately borrowable by replicate
    // sweeps inside the experiments; each worker's own slot returns to
    // the pool when it retires, so late-finishing experiments' sweeps
    // inherit the idle capacity.
    sweep::budget().configure(budget);
    let owned = sweep::budget().acquire_up_to(workers);

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<OnceLock<ExperimentResult>> = (0..n_tasks).map(|_| OnceLock::new()).collect();

    // Pre-fill slots with journal-replayed cells. Ids are re-interned
    // against the entry list (the journal stores owned strings); a cell
    // that doesn't match this batch's layout or seed derivation is
    // dropped and its task reruns.
    let mut journal_replayed: u64 = 0;
    for cell in completed {
        let Some(pos) = entries.iter().position(|e| e.id == cell.id) else {
            continue;
        };
        if cell.replicate >= replicates {
            continue;
        }
        let want_seed = if cell.replicate == 0 {
            cfg.master_seed
        } else {
            derive_seed(cfg.master_seed, entries[pos].id, cell.replicate)
        };
        if cell.seed != want_seed {
            continue;
        }
        let task = pos * replicates as usize + cell.replicate as usize;
        let result = ExperimentResult {
            id: entries[pos].id,
            replicate: cell.replicate,
            seed: cell.seed,
            report: cell.report,
            panic: cell.panic,
            timing: cell.timing,
            audit: cell.audit,
            snap: SnapCounters::default(),
            mc: td_net::mc::tally::McTally::default(),
            replayed: true,
        };
        if slots[task].set(result).is_ok() {
            journal_replayed += 1;
        }
    }

    let interrupted = || {
        cfg.interrupt
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                loop {
                    // Cooperative interrupt: finish nothing new once the
                    // flag is up; in-flight tasks already past this check
                    // run to completion and reach the journal.
                    if interrupted() {
                        break;
                    }
                    let task = next.fetch_add(1, Ordering::Relaxed);
                    if task >= n_tasks {
                        break;
                    }
                    // Replayed from the journal: nothing to run.
                    if slots[task].get().is_some() {
                        continue;
                    }
                    // Task layout: entry-major, replicate-minor.
                    let entry = &entries[task / replicates as usize];
                    let replicate = (task % replicates as usize) as u64;
                    // Replicate 0 is the canonical run: same seed, same report
                    // as a direct sequential `entry.run(master_seed, profile)`.
                    // Extra replicates get decorrelated derived seeds.
                    let seed = if replicate == 0 {
                        cfg.master_seed
                    } else {
                        derive_seed(cfg.master_seed, entry.id, replicate)
                    };

                    td_engine::telemetry::reset();
                    td_net::audit::reset_thread();
                    snapcount::reset_thread();
                    td_net::mc::tally::reset_thread();
                    let rss_reset = reset_peak_rss();
                    let t0 = Instant::now();
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| entry.run(seed, cfg.profile)));
                    let wall_s = t0.elapsed().as_secs_f64();
                    let telem = td_engine::telemetry::snapshot();
                    let audit = td_net::audit::take_thread();
                    let snap = snapcount::take_thread();
                    let mc = td_net::mc::tally::take_thread();
                    let (report, panic) = match outcome {
                        Ok(report) => (report, None),
                        Err(payload) => {
                            let msg = panic_message(payload);
                            (panic_report(entry, seed, &msg), Some(msg))
                        }
                    };

                    let result = ExperimentResult {
                        id: entry.id,
                        replicate,
                        seed,
                        report,
                        panic,
                        timing: Timing {
                            wall_s,
                            events_scheduled: telem.events_scheduled,
                            events_dispatched: telem.events_dispatched,
                            peak_queue_depth: telem.peak_queue_depth,
                            peak_rss_kib: peak_rss_kib(),
                            peak_rss_is_process_max: !rss_reset,
                        },
                        audit,
                        snap,
                        mc,
                        replayed: false,
                    };
                    // Journal before publishing the slot: after `append`
                    // returns, the cell is durable (fsynced). A journal
                    // I/O error is reported but doesn't fail the run —
                    // the cell just isn't resumable.
                    if let Some(j) = journal {
                        let outcome = j.lock().unwrap().append(&result);
                        if let Err(e) = outcome {
                            eprintln!(
                                "warning: journal append failed for {} replicate {}: {e}",
                                result.id, result.replicate
                            );
                        }
                    }
                    if cfg.progress {
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        let status = if result.panic.is_some() {
                            "PANIC"
                        } else if result.report.all_ok() {
                            "ok"
                        } else {
                            "MISMATCH"
                        };
                        eprintln!(
                            "[{finished}/{n_tasks}] {} (seed {seed}): {status} in {:.1}s, {} events, peak queue {}",
                            entry.id, wall_s, telem.events_dispatched, telem.peak_queue_depth
                        );
                    }
                    let stored = slots[task].set(result).is_ok();
                    debug_assert!(stored, "task {task} claimed twice");
                }
                // Retired: hand this worker's slot to in-flight sweeps.
                sweep::budget().release(1);
            });
        }
    });
    // Workers released their own slots as they retired; `owned` tracks
    // what this function checked out, and the clamp in `release` keeps
    // the arithmetic honest even if a concurrent batch reconfigured the
    // pool mid-run.
    sweep::budget().release(owned.saturating_sub(workers));

    // An interrupted batch leaves unclaimed slots empty; only completed
    // cells are returned, still in deterministic task order.
    let results: Vec<ExperimentResult> = slots.into_iter().filter_map(|s| s.into_inner()).collect();
    let interrupted = interrupted() || results.len() < n_tasks;
    BatchResult {
        results,
        jobs: budget,
        profile: cfg.profile,
        master_seed: cfg.master_seed,
        total_wall_s: started.elapsed().as_secs_f64(),
        interrupted,
        journal_replayed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::find;

    #[test]
    fn derive_seed_is_stable_and_separating() {
        assert_eq!(derive_seed(1, "fig2", 1), derive_seed(1, "fig2", 1));
        assert_ne!(derive_seed(1, "fig2", 1), derive_seed(2, "fig2", 1));
        assert_ne!(derive_seed(1, "fig2", 1), derive_seed(1, "fig3", 1));
        assert_ne!(derive_seed(1, "fig2", 1), derive_seed(1, "fig2", 2));
        // Id, master, and replicate must not be interchangeable by
        // concatenation-style collisions: nearby cells stay distinct.
        let mut seen = std::collections::HashSet::new();
        for master in 0..20u64 {
            for id in ["fig2", "fig3", "fig45", "modes"] {
                for replicate in 1..4u64 {
                    assert!(seen.insert(derive_seed(master, id, replicate)), "collision");
                }
            }
        }
    }

    #[test]
    fn batch_results_are_registry_ordered() {
        let entries = vec![find("short-flows").unwrap(), find("fig8").unwrap()];
        let cfg = RunnerConfig {
            jobs: 2,
            replicates: 2,
            ..RunnerConfig::new()
        };
        let batch = run_batch(&entries, &cfg);
        let order: Vec<_> = batch.results.iter().map(|r| (r.id, r.replicate)).collect();
        assert_eq!(
            order,
            vec![
                ("short-flows", 0),
                ("short-flows", 1),
                ("fig8", 0),
                ("fig8", 1)
            ]
        );
        assert_eq!(batch.primary().count(), 2);
        let (passes, total) = batch.pass_count("fig8");
        assert_eq!(total, 2);
        assert!(passes <= 2);
        // Replicate timing aggregates fold in registry order.
        let by_id = batch.wall_s_by_id();
        assert_eq!(by_id.len(), 2);
        assert_eq!(by_id[0].0, "short-flows");
        assert_eq!(by_id[0].1.count(), 2);
        assert_eq!(by_id[1].0, "fig8");
    }

    #[test]
    fn timings_json_is_well_formed() {
        let entries = vec![find("short-flows").unwrap()];
        let batch = run_batch(
            &entries,
            &RunnerConfig {
                jobs: 1,
                ..RunnerConfig::new()
            },
        );
        let json = batch.timings_json();
        for key in [
            "\"master_seed\"",
            "\"jobs\"",
            "\"profile\": \"quick\"",
            "\"total_wall_s\"",
            "\"panicked\": 0",
            "\"experiments\"",
            "\"id\": \"short-flows\"",
            "\"panic\": null",
            "\"events_dispatched\"",
            "\"peak_queue_depth\"",
            "\"wall_s_by_id\"",
            "\"mean_s\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Counters must be live, not zero: the experiment really ran.
        let r = &batch.results[0];
        assert!(r.timing.events_dispatched > 0);
        assert!(r.timing.peak_queue_depth > 0);
        assert!(r.timing.events_scheduled >= r.timing.events_dispatched);
        assert!(json.matches("{\"id\"").count() == 1 || json.contains("{\"id\": "));
    }

    /// The pre-cell watermark reset makes `peak_rss_kib` per-cell: a
    /// small cell running after a large one must record its own (much
    /// lower) peak, not inherit the large cell's. On kernels without
    /// `clear_refs` support the flag marks the reading process-max and
    /// the drop can't be asserted.
    #[test]
    fn peak_rss_is_per_cell_after_reset() {
        fn touch(mib: usize) -> u64 {
            // One big allocation, touched page by page so it is resident;
            // sized past the malloc mmap threshold so dropping it really
            // returns the pages to the kernel.
            let mut buf = vec![0u8; mib << 20];
            for i in (0..buf.len()).step_by(4096) {
                buf[i] = 1;
            }
            u64::from(buf[buf.len() / 2])
        }
        let entries = vec![
            Entry::new("rss-large", "allocates 128 MiB (test fixture)", |_, _| {
                let live = touch(128);
                Report::new("rss-large", "large", &format!("touched {live}"))
            }),
            Entry::new("rss-small", "allocates 1 MiB (test fixture)", |_, _| {
                let live = touch(1);
                Report::new("rss-small", "small", &format!("touched {live}"))
            }),
        ];
        // jobs = 1: one worker, strictly large-then-small, one watermark.
        let batch = run_batch(
            &entries,
            &RunnerConfig {
                jobs: 1,
                ..RunnerConfig::new()
            },
        );
        let large = &batch.results[0].timing;
        let small = &batch.results[1].timing;
        if large.peak_rss_is_process_max || small.peak_rss_is_process_max {
            eprintln!("kernel lacks clear_refs peak-RSS reset; skipping drop assertion");
            return;
        }
        assert!(
            large.peak_rss_kib >= 128 * 1024,
            "large cell peak {} KiB below its own allocation",
            large.peak_rss_kib
        );
        assert!(
            small.peak_rss_kib + 64 * 1024 <= large.peak_rss_kib,
            "small cell ({} KiB) inherited the large cell's watermark ({} KiB)",
            small.peak_rss_kib,
            large.peak_rss_kib
        );
    }

    #[test]
    fn panicking_task_fails_without_aborting_the_batch() {
        let entries = vec![
            find("short-flows").unwrap(),
            Entry::new(
                "panic-probe",
                "deliberately panics (test fixture)",
                |seed, _| panic!("injected failure at seed {seed}"),
            ),
            find("fig8").unwrap(),
        ];
        let batch = run_batch(
            &entries,
            &RunnerConfig {
                jobs: 2,
                master_seed: 7,
                ..RunnerConfig::new()
            },
        );
        assert_eq!(batch.results.len(), 3, "all tasks produced results");
        let probe = &batch.results[1];
        assert_eq!(probe.id, "panic-probe");
        assert!(!probe.report.all_ok(), "panic counts as failure");
        assert_eq!(probe.panic.as_deref(), Some("injected failure at seed 7"));
        assert!(batch.results[0].report.all_ok() && batch.results[0].panic.is_none());
        assert!(batch.results[2].report.all_ok() && batch.results[2].panic.is_none());
        assert!(!batch.all_ok());
        assert_eq!(
            batch.panics(),
            vec![("panic-probe", 0, "injected failure at seed 7")]
        );
        // The panic message survives into timings.json, escaped.
        let json = batch.timings_json();
        assert!(json.contains("\"panicked\": 1"));
        assert!(json.contains("\"panic\": \"injected failure at seed 7\""));
    }

    #[test]
    fn preset_interrupt_flag_stops_before_any_work() {
        static FLAG: AtomicBool = AtomicBool::new(true);
        let entries = vec![find("short-flows").unwrap()];
        let cfg = RunnerConfig {
            jobs: 1,
            interrupt: Some(&FLAG),
            ..RunnerConfig::new()
        };
        let batch = run_batch(&entries, &cfg);
        assert!(batch.interrupted);
        assert!(batch.results.is_empty(), "no task should have been claimed");
        assert!(batch.timings_json().contains("\"interrupted\": true"));
    }

    #[test]
    fn journal_replay_prefills_cells_byte_identically() {
        use crate::journal::{Journal, JournalHeader};
        let dir = std::env::temp_dir().join(format!(
            "td-runner-replay-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let entries = vec![find("short-flows").unwrap(), find("fig8").unwrap()];
        let cfg = RunnerConfig {
            jobs: 2,
            master_seed: 7,
            replicates: 2,
            ..RunnerConfig::new()
        };
        let header = JournalHeader {
            master_seed: cfg.master_seed,
            profile: cfg.profile,
            replicates: cfg.replicates,
            ids: entries.iter().map(|e| e.id.to_owned()).collect(),
        };
        let journal = Mutex::new(Journal::create(&dir, &header).unwrap());
        let first = run_batch_resumable(&entries, &cfg, Some(&journal), Vec::new());
        drop(journal);
        assert!(!first.interrupted);
        assert_eq!(first.journal_replayed, 0);

        let (got_header, cells) = Journal::load(&dir).unwrap();
        assert_eq!(got_header, header);
        assert_eq!(cells.len(), 4, "every cell journaled");

        // Replaying the complete journal re-runs nothing and reproduces
        // every report byte-for-byte.
        let second = run_batch_resumable(&entries, &cfg, None, cells);
        assert_eq!(second.journal_replayed, 4);
        assert!(second.results.iter().all(|r| r.replayed));
        assert_eq!(first.results.len(), second.results.len());
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!((a.id, a.replicate, a.seed), (b.id, b.replicate, b.seed));
            assert_eq!(a.report.to_string(), b.report.to_string());
            assert_eq!(a.report.csvs, b.report.csvs);
            assert_eq!(a.report.blobs, b.report.blobs);
            assert!(!a.replayed);
        }
        assert!(second.timings_json().contains("\"journal_replayed\": 4"));

        // A stale cell (wrong seed) is ignored, not trusted.
        let (_, mut cells) = Journal::load(&dir).unwrap();
        cells[0].seed ^= 1;
        let third = run_batch_resumable(&entries, &cfg, None, cells);
        assert_eq!(third.journal_replayed, 3);
        assert_eq!(third.results.len(), 4, "dropped cell re-ran");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(
            json_escape("say \"hi\"\\\n\tdone\u{1}"),
            "say \\\"hi\\\"\\\\\\n\\tdone\\u0001"
        );
    }
}
