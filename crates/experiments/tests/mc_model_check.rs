//! Model-checking acceptance, end to end: the bounded fig45 exploration
//! is exhaustive-within-budget, violation-free, and byte-deterministic
//! (counters pinned); a seeded violation produces counterexample
//! artifacts whose replay — through the library and through the
//! `td-repro mc --replay` CLI — reproduces the identical violation
//! record; and `td-repro --list` exposes the full registry.

use std::path::Path;
use std::process::Command;
use td_experiments::mc::{explore_fig45, replay_fig45, McParams};
use td_experiments::registry::{find, Profile};
use td_net::mc::McSchedule;

/// Pinned coverage of the quick-profile exploration at seed 1. These are
/// a pure function of `(seed, McParams::quick)` — a drift means the
/// explorer, the scenario, or the state hash changed behaviour and must
/// be investigated, not re-pinned blindly. CI re-checks the same numbers
/// from `timings.json`'s `mc` block.
const PIN_VISITED: u64 = 44;
const PIN_DEDUPED: u64 = 0;
const PIN_PRUNED: u64 = 96;

#[test]
fn quick_exploration_is_clean_and_pinned() {
    let run = explore_fig45(&McParams::quick(1));
    assert!(
        run.stats.counterexamples.is_empty(),
        "clean scenario produced counterexamples: {:?}",
        run.stats.counterexamples
    );
    assert_eq!(run.stats.states_visited, PIN_VISITED);
    assert_eq!(run.stats.states_deduped, PIN_DEDUPED);
    assert_eq!(run.stats.states_pruned, PIN_PRUNED);
    assert_eq!(run.stats.max_depth, 1);
}

#[test]
fn registry_entry_reports_pinned_metrics() {
    let rep = find("mc_fig45").unwrap().run(1, Profile::Quick);
    assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    let metric = |k: &str| {
        rep.metrics
            .iter()
            .find(|(n, _)| n.as_str() == k)
            .unwrap_or_else(|| panic!("metric {k} missing"))
            .1
    };
    assert_eq!(metric("mc_states_visited") as u64, PIN_VISITED);
    assert_eq!(metric("mc_states_deduped") as u64, PIN_DEDUPED);
    assert_eq!(metric("mc_states_pruned") as u64, PIN_PRUNED);
    assert_eq!(metric("mc_counterexamples") as u64, 0);
}

#[test]
fn seeded_counterexamples_replay_to_identical_records() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("mc-cex");
    let _ = std::fs::remove_dir_all(&dir);
    let mut p = McParams::quick(1);
    p.seeded_violation = true;
    p.artifact_dir = Some(dir.clone());
    let run = explore_fig45(&p);
    assert!(
        !run.stats.counterexamples.is_empty(),
        "seeded violation found no counterexamples"
    );
    for (i, cex) in run.stats.counterexamples.iter().enumerate() {
        let sched = McSchedule::read_from_file(&dir.join(format!("cex-{i}.tdmc"))).unwrap();
        assert_eq!(
            sched, cex.schedule,
            "artifact differs from in-memory schedule"
        );
        assert!(sched.seeded_violation, "prelude requirement not recorded");
        let out = replay_fig45(&sched);
        assert!(!cex.violations.is_empty());
        assert_eq!(out.violations, cex.violations, "replay diverged (cex {i})");
        assert_eq!(out.stall, cex.stall);
    }
    // The pre-violation snapshot artifact is a loadable snapshot.
    let snap = td_net::Snapshot::read_from_file(&dir.join("cex-0.tdsnap"));
    assert!(snap.is_ok(), "pre-violation snapshot unreadable");
}

#[test]
fn list_flag_prints_full_registry_and_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_td-repro"))
        .arg("--list")
        .output()
        .unwrap();
    assert!(out.status.success(), "--list must exit 0");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for e in td_experiments::registry::registry() {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(e.id))
            .unwrap_or_else(|| panic!("--list misses {}", e.id));
        assert!(line.contains(e.about), "title missing for {}", e.id);
        assert!(!line.contains("hidden"), "{} wrongly flagged hidden", e.id);
    }
    for e in td_experiments::registry::hidden() {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(e.id))
            .unwrap_or_else(|| panic!("--list misses hidden {}", e.id));
        assert!(line.contains("hidden"), "{} not flagged hidden", e.id);
    }
}

/// The CLI acceptance loop: `mc --seed-violation` writes artifacts and
/// exits 0 (expectation met); `mc --replay` on the first schedule
/// reproduces exactly the violation lines the exploration printed for
/// that counterexample.
#[test]
fn cli_seeded_explore_then_replay_round_trips() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("mc-cli");
    let _ = std::fs::remove_dir_all(&dir);
    let bin = env!("CARGO_BIN_EXE_td-repro");

    let explore = Command::new(bin)
        .args(["mc", "--seed-violation", "--artifacts"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        explore.status.success(),
        "seeded explore failed: {}",
        String::from_utf8_lossy(&explore.stderr)
    );
    let explore_out = String::from_utf8(explore.stdout).unwrap();
    assert!(explore_out.contains("counterexample 0:"));

    // The violation lines the exploration attributed to counterexample 0.
    let mut expected = Vec::new();
    let mut in_cex0 = false;
    for line in explore_out.lines() {
        if line.starts_with("counterexample 0:") {
            in_cex0 = true;
            continue;
        }
        if in_cex0 {
            if let Some(v) = line.trim_start().strip_prefix("violation: ") {
                expected.push(v.to_owned());
            } else if !line.starts_with(' ') {
                break;
            }
        }
    }
    assert!(!expected.is_empty(), "no violations printed for cex 0");

    let replay = Command::new(bin)
        .args(["mc", "--replay"])
        .arg(dir.join("cex-0.tdmc"))
        .output()
        .unwrap();
    assert!(
        replay.status.success(),
        "replay failed to reproduce: {}",
        String::from_utf8_lossy(&replay.stderr)
    );
    let replay_out = String::from_utf8(replay.stdout).unwrap();
    let got: Vec<String> = replay_out
        .lines()
        .filter_map(|l| l.strip_prefix("violation: ").map(str::to_owned))
        .collect();
    assert_eq!(got, expected, "replay record differs from exploration's");
    assert!(replay_out.contains("reproduced"));
}
