//! ACK-compression metrics (§4.2).
//!
//! With one-way traffic, ACKs arrive at the source spaced by at least one
//! data-packet service time on the bottleneck — they are a reliable clock.
//! With two-way traffic, a *cluster* of ACKs crossing a nonempty queue
//! leaves it spaced by the **ACK** service time instead (10× smaller in the
//! paper), and the burst of data sent in response slams the queue: the
//! square waves of Figures 4/6/8/9.
//!
//! Two measurements quantify this:
//!
//! * [`ack_spacing`] — the distribution of ACK inter-arrival times at the
//!   data source. The *compressed fraction* is the share of gaps strictly
//!   smaller than the bottleneck data service time; ≈ 0 for one-way
//!   traffic, large for clustered two-way traffic.
//! * [`queue_fluctuation`] — the largest queue-length fall within one data
//!   service time (via [`TimeSeries::max_drop_within`]): ≤ 1 packet for
//!   smooth one-way queues, the ACK-cluster size for square waves.

use crate::extract::Departure;
use crate::series::TimeSeries;
use crate::stats::{median, quantile};
use td_engine::{SimDuration, SimTime};

/// Summary of ACK inter-arrival gaps at a source.
#[derive(Clone, Copy, Debug)]
pub struct AckSpacing {
    /// Number of gaps measured.
    pub gaps: usize,
    /// Fraction of gaps smaller than the reference (data service) time.
    pub compressed_fraction: f64,
    /// Median gap, seconds.
    pub median_gap_s: f64,
    /// 10th-percentile gap, seconds — deep compression shows up here.
    pub p10_gap_s: f64,
}

/// Measure ACK spacing from the delivery instants of ACKs at the source
/// host (`deliveries(..., acks_only = true)`), against a reference spacing
/// `data_service` (80 ms in the paper). `None` with fewer than two ACKs.
pub fn ack_spacing(acks: &[Departure], data_service: SimDuration) -> Option<AckSpacing> {
    if acks.len() < 2 {
        return None;
    }
    let gaps: Vec<f64> = acks
        .windows(2)
        .map(|w| w[1].t.since(w[0].t).as_secs_f64())
        .collect();
    let reference = data_service.as_secs_f64();
    let compressed = gaps.iter().filter(|&&g| g < reference).count();
    Some(AckSpacing {
        gaps: gaps.len(),
        compressed_fraction: compressed as f64 / gaps.len() as f64,
        median_gap_s: median(&gaps).expect("nonempty"),
        p10_gap_s: quantile(&gaps, 0.10).expect("nonempty"),
    })
}

/// Largest queue-length fall within one `data_service` interval over
/// `[t0, t1]` — the paper's "rapid fluctuations in the queue length ...
/// on a time scale smaller than that of a single data packet transmission
/// time".
pub fn queue_fluctuation(
    queue: &TimeSeries,
    t0: SimTime,
    t1: SimTime,
    data_service: SimDuration,
) -> f64 {
    queue.max_drop_within(t0, t1, data_service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_net::{ConnId, NodeId, Packet, PacketId, PacketKind};

    fn ack_at(ms: u64) -> Departure {
        Departure {
            t: SimTime::from_millis(ms),
            pkt: Packet {
                id: PacketId(ms),
                conn: ConnId(1),
                kind: PacketKind::Ack,
                seq: ms,
                size: 50,
                src: NodeId(1),
                dst: NodeId(0),
                sent_at: SimTime::ZERO,
                retx: false,
                ce: false,
                ack: 0,
            },
        }
    }

    const SVC: SimDuration = SimDuration::from_millis(80);

    #[test]
    fn one_way_spacing_is_uncompressed() {
        // ACKs every 80 ms: no gap is *below* the service time.
        let acks: Vec<_> = (0..50).map(|i| ack_at(i * 80)).collect();
        let s = ack_spacing(&acks, SVC).unwrap();
        assert_eq!(s.compressed_fraction, 0.0);
        assert_eq!(s.median_gap_s, 0.080);
        assert_eq!(s.gaps, 49);
    }

    #[test]
    fn compressed_cluster_is_detected() {
        // A cluster of ACKs 8 ms apart (the ACK service time), then a long
        // idle gap, repeated.
        let mut acks = Vec::new();
        let mut t = 0;
        for _ in 0..10 {
            for _ in 0..10 {
                acks.push(ack_at(t));
                t += 8;
            }
            t += 1000;
        }
        let s = ack_spacing(&acks, SVC).unwrap();
        assert!(s.compressed_fraction > 0.85, "{}", s.compressed_fraction);
        assert_eq!(s.p10_gap_s, 0.008);
    }

    #[test]
    fn too_few_acks() {
        assert!(ack_spacing(&[], SVC).is_none());
        assert!(ack_spacing(&[ack_at(0)], SVC).is_none());
    }

    #[test]
    fn fluctuation_of_smooth_queue_is_small() {
        // Queue alternating q ↔ q+1 every 40 ms (the one-way pattern).
        let mut ts = TimeSeries::new();
        for i in 0..100u64 {
            ts.push(SimTime::from_millis(i * 40), 5.0 + (i % 2) as f64);
        }
        let f = queue_fluctuation(&ts, SimTime::ZERO, SimTime::from_secs(4), SVC);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn fluctuation_of_square_wave_is_cluster_sized() {
        // Queue jumps 20 → 5 instantly (ACK cluster passing), then rebuilds.
        let mut ts = TimeSeries::new();
        for i in 0..10u64 {
            let base = SimTime::from_secs(i * 2);
            ts.push(base, 20.0);
            ts.push(base + SimDuration::from_millis(10), 5.0);
        }
        let f = queue_fluctuation(&ts, SimTime::ZERO, SimTime::from_secs(30), SVC);
        assert_eq!(f, 15.0);
    }
}
