//! Crash-resilient results journal for resumable sweeps.
//!
//! A sweep that dies three hours in — OOM kill, power cut, Ctrl-C —
//! should not cost three hours. `td-repro --out DIR` therefore keeps an
//! **append-only journal** (`journal.tdj`) in the output directory: one
//! fsynced line per completed `(experiment, replicate)` cell, written the
//! moment the cell finishes. `td-repro --resume DIR` replays the journal,
//! pre-fills every completed cell, re-derives the remaining seeds with
//! the same [`crate::runner::derive_seed`] discipline, and runs only what
//! is missing — producing output byte-identical to the uninterrupted
//! sweep, because seeds are a pure function of `(master_seed, id,
//! replicate)` and never of which cells happened to survive the crash.
//!
//! # Format
//!
//! Line-oriented so a torn write can only damage the final line:
//!
//! ```text
//! <hex(payload)> <fnv1a64(payload) as 16 hex digits>\n
//! ```
//!
//! The payload is a [`SnapWriter`] byte string (same little-endian
//! conventions as the simulator snapshot format, magic `TDJL`,
//! version-checked on read). The first line is the **header record**
//! (tag 0): master seed, profile, replicate count, and the exact
//! experiment id list, so `--resume` needs no flags beyond the
//! directory. Every following line is a **cell record** (tag 1): id,
//! replicate, seed, panic message, timing, audit tally, and the complete
//! serialized [`Report`] (rows, plots, CSVs, blobs, metrics,
//! diagnostics) — enough to reprint the report and rewrite every output
//! file without re-running the experiment.
//!
//! Each line is flushed with `File::sync_data` before the runner marks
//! the cell complete, so a journal line is a durable promise. On load, a
//! truncated or checksum-damaged **trailing** line is tolerated (the
//! crash interrupted that write; the cell simply reruns); nothing after
//! the damage is trusted.

use crate::registry::Profile;
use crate::report::{Report, Row};
use crate::runner::{ExperimentResult, Timing};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use td_engine::{SnapError, SnapReader, SnapWriter};
use td_net::audit::Tally;

/// File name of the journal inside an output directory.
pub const JOURNAL_FILE: &str = "journal.tdj";

/// Magic prefix of every journal record payload.
const MAGIC: &[u8; 4] = b"TDJL";
/// Journal format version. Readers refuse anything newer; older cells
/// still decode: v1 (pre-`peak_rss_kib`) defaults the field to 0, and
/// v1/v2 (pre-`peak_rss_is_process_max`, when the watermark was never
/// reset between cells) default the flag to `true` — which is exactly
/// what their recorded values were.
const VERSION: u32 = 3;

const TAG_HEADER: u8 = 0;
const TAG_CELL: u8 = 1;

/// Crash-injection hook for the kill-and-resume integration test: when
/// `TD_REPRO_KILL_AFTER_CELLS=N` is set, the process aborts immediately
/// after the N-th journal append — after the line is durable, before the
/// runner can do anything else — simulating a crash at the worst moment.
static APPENDS: AtomicU64 = AtomicU64::new(0);

fn kill_hook_after_append() {
    static LIMIT: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    let limit = LIMIT.get_or_init(|| {
        std::env::var("TD_REPRO_KILL_AFTER_CELLS")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    if let Some(n) = limit {
        if APPENDS.fetch_add(1, Ordering::SeqCst) + 1 >= *n {
            eprintln!("TD_REPRO_KILL_AFTER_CELLS={n}: simulating crash");
            std::process::abort();
        }
    }
}

/// The batch configuration recorded in the journal's first line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Master seed of the sweep.
    pub master_seed: u64,
    /// Profile every entry ran with.
    pub profile: Profile,
    /// Replicates per experiment.
    pub replicates: u64,
    /// Experiment ids, in the exact order the sweep executes them.
    pub ids: Vec<String>,
}

/// One replayed `(experiment, replicate)` cell.
///
/// The owned-`String` twin of [`ExperimentResult`]: the journal cannot
/// hand back `&'static str` ids, so the runner re-interns them against
/// the registry when it pre-fills slots.
#[derive(Clone, Debug)]
pub struct JournalCell {
    /// Registry id.
    pub id: String,
    /// Replicate index.
    pub replicate: u64,
    /// Seed the cell ran with.
    pub seed: u64,
    /// The cell's full report.
    pub report: Report,
    /// Panic message, if the cell panicked.
    pub panic: Option<String>,
    /// Observability counters.
    pub timing: Timing,
    /// Invariant-auditor tally.
    pub audit: Tally,
}

/// Why a checked journal line failed to decode.
///
/// Produced by [`decode_checked_line`]; [`Journal::load`] folds the
/// variant into its error message so an operator sees *what* is wrong
/// with the damaged line, not just that something is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineDamage {
    /// Structural damage: the line is not
    /// `hex(payload) + space + 16-hex checksum`.
    Format(String),
    /// The line parsed but the recorded checksum disagrees with the
    /// checksum computed over the decoded payload.
    Checksum {
        /// Checksum recorded at the end of the line.
        recorded: u64,
        /// Checksum computed from the line's payload bytes.
        computed: u64,
    },
}

impl std::fmt::Display for LineDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineDamage::Format(why) => write!(f, "malformed line ({why})"),
            LineDamage::Checksum { recorded, computed } => write!(
                f,
                "checksum mismatch (expected {computed:016x} from the payload, \
                 found {recorded:016x} on the line)"
            ),
        }
    }
}

/// What [`Journal::load_salvage`] did to a damaged journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SalvageReport {
    /// Intact cells kept (excludes the header line).
    pub kept_cells: usize,
    /// Lines dropped at and after the first damaged line.
    pub dropped_lines: usize,
    /// Byte offset the journal file was truncated to, if damage was
    /// found (`None` means the journal was fully intact).
    pub truncated_at_byte: Option<u64>,
}

/// An append-only, fsynced results journal.
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
}

impl Journal {
    /// Path of the journal file for an output directory.
    pub fn file_path(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    /// Start a fresh journal in `dir` (creating the directory), writing
    /// the fsynced header line.
    pub fn create(dir: &Path, header: &JournalHeader) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = Self::file_path(dir);
        let file = std::fs::File::create(&path)?;
        let mut j = Journal { file, path };
        j.write_line(&encode_header(header))?;
        Ok(j)
    }

    /// Reopen an existing journal for appending (resume path).
    pub fn open_append(dir: &Path) -> io::Result<Journal> {
        let path = Self::file_path(dir);
        let file = std::fs::OpenOptions::new().append(true).open(&path)?;
        Ok(Journal { file, path })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one completed cell, fsynced before returning. After this
    /// returns, a crash cannot lose the cell.
    pub fn append(&mut self, result: &ExperimentResult) -> io::Result<()> {
        self.write_line(&encode_cell(result))?;
        kill_hook_after_append();
        Ok(())
    }

    fn write_line(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut line = encode_checked_line(payload);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// Load the journal from `dir`: the header plus every intact cell.
    ///
    /// A damaged or truncated trailing line is tolerated (the crash tore
    /// it; its cell reruns); a damaged line *followed by intact lines*
    /// is corruption, not truncation, and is an error naming the line
    /// number, byte offset, and (for checksum damage) the expected vs
    /// found checksum, with a pointer at `--salvage`.
    pub fn load(dir: &Path) -> io::Result<(JournalHeader, Vec<JournalCell>)> {
        let path = Self::file_path(dir);
        let mut text = String::new();
        std::fs::File::open(&path)?.read_to_string(&mut text)?;
        let corrupt =
            |msg: String| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {msg}"));

        // (payload, 0-based line number, byte offset of line start)
        let mut payloads: Vec<(Vec<u8>, usize, u64)> = Vec::new();
        let mut damaged: Option<(usize, u64, LineDamage)> = None;
        let mut offset = 0u64;
        for (lineno, line) in text.lines().enumerate() {
            match decode_checked_line(line) {
                Ok(payload) => {
                    if let Some((bad_line, bad_offset, why)) = &damaged {
                        return Err(corrupt(format!(
                            "corruption at line {}, byte offset {bad_offset}: {why}; \
                             later lines are intact, so this is mid-file damage, not \
                             crash truncation — rerun with `--resume --salvage` to \
                             truncate there and recompute the dropped cells",
                            bad_line + 1
                        )));
                    }
                    payloads.push((payload, lineno, offset));
                }
                Err(why) => {
                    if damaged.is_none() {
                        damaged = Some((lineno, offset, why));
                    }
                }
            }
            offset += line.len() as u64 + 1;
        }
        // `text.lines()` drops a torn final fragment without a newline —
        // and a torn line *with* its newline fails the decode above.
        // Either way only the tail may be missing.

        let mut it = payloads.into_iter();
        let (header_bytes, _, _) = it
            .next()
            .ok_or_else(|| corrupt("journal has no intact header line".into()))?;
        let header =
            decode_header(&header_bytes).map_err(|e| corrupt(format!("bad header: {e}")))?;
        let mut cells = Vec::new();
        for (bytes, lineno, line_offset) in it {
            let cell = decode_cell(&bytes).map_err(|e| {
                corrupt(format!(
                    "corruption at line {}, byte offset {line_offset}: checksummed \
                     cell record fails to decode ({e}) — rerun with `--resume \
                     --salvage` to truncate there and recompute the dropped cells",
                    lineno + 1
                ))
            })?;
            cells.push(cell);
        }
        Ok((header, cells))
    }

    /// Load a damaged journal, keeping everything before the first bad
    /// line and **truncating the file** there so subsequent appends
    /// continue from a clean tail.
    ///
    /// Returns the header, the intact cells, and a [`SalvageReport`]
    /// saying how much was kept vs dropped. A damaged or undecodable
    /// *header* line is unsalvageable (there is nothing to resume) and
    /// stays an error.
    pub fn load_salvage(
        dir: &Path,
    ) -> io::Result<(JournalHeader, Vec<JournalCell>, SalvageReport)> {
        let path = Self::file_path(dir);
        let mut text = String::new();
        std::fs::File::open(&path)?.read_to_string(&mut text)?;
        let corrupt =
            |msg: String| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {msg}"));

        let total_lines = text.lines().count();
        let mut lines = text.lines().enumerate();
        let (_, header_line) = lines
            .next()
            .ok_or_else(|| corrupt("unsalvageable: journal is empty".into()))?;
        let header_bytes = decode_checked_line(header_line)
            .map_err(|why| corrupt(format!("unsalvageable: header line is damaged: {why}")))?;
        let header = decode_header(&header_bytes)
            .map_err(|e| corrupt(format!("unsalvageable: bad header: {e}")))?;

        let mut cells = Vec::new();
        let mut offset = header_line.len() as u64 + 1;
        let mut damage: Option<(usize, u64)> = None; // (lineno, byte offset)
        for (lineno, line) in lines {
            let ok = decode_checked_line(line)
                .ok()
                .and_then(|bytes| decode_cell(&bytes).ok());
            match ok {
                Some(cell) => cells.push(cell),
                None => {
                    damage = Some((lineno, offset));
                    break;
                }
            }
            offset += line.len() as u64 + 1;
        }

        let report = match damage {
            None => SalvageReport {
                kept_cells: cells.len(),
                dropped_lines: 0,
                truncated_at_byte: None,
            },
            Some((lineno, offset)) => {
                let f = std::fs::OpenOptions::new().write(true).open(&path)?;
                f.set_len(offset)?;
                f.sync_all()?;
                SalvageReport {
                    kept_cells: cells.len(),
                    dropped_lines: total_lines - lineno,
                    truncated_at_byte: Some(offset),
                }
            }
        };
        Ok((header, cells, report))
    }
}

/// Render a payload as one checked journal line (no trailing newline):
/// `hex(payload) + space + 16-hex fnv1a64 checksum`. The inverse of
/// [`decode_checked_line`]; shared by the journal and the serve store's
/// pending-queue file.
pub fn encode_checked_line(payload: &[u8]) -> String {
    let mut line = String::with_capacity(payload.len() * 2 + 17);
    for b in payload {
        line.push_str(&format!("{b:02x}"));
    }
    line.push(' ');
    line.push_str(&format!("{:016x}", fnv1a(payload)));
    line
}

/// Parse one checked `hex payload + checksum` line, saying *why* on
/// failure (see [`LineDamage`]).
pub fn decode_checked_line(line: &str) -> Result<Vec<u8>, LineDamage> {
    let (hex, check) = line
        .split_once(' ')
        .ok_or_else(|| LineDamage::Format("no space separator".into()))?;
    if check.len() != 16 {
        return Err(LineDamage::Format(format!(
            "checksum field is {} chars, expected 16",
            check.len()
        )));
    }
    if hex.len() % 2 != 0 {
        return Err(LineDamage::Format(format!(
            "payload field has odd length {}",
            hex.len()
        )));
    }
    // Reject anything but hex digits up front: `from_str_radix` would
    // otherwise accept a leading `+`, letting some damaged bytes parse
    // to the same value they replaced.
    if let Some(bad) = line
        .bytes()
        .position(|b| !b.is_ascii_hexdigit() && b != b' ')
    {
        return Err(LineDamage::Format(format!(
            "non-hex character at column {}",
            bad + 1
        )));
    }
    let mut payload = Vec::with_capacity(hex.len() / 2);
    for i in (0..hex.len()).step_by(2) {
        payload.push(u8::from_str_radix(&hex[i..i + 2], 16).map_err(|_| {
            LineDamage::Format(format!("non-hex payload byte at column {}", i + 1))
        })?);
    }
    let recorded = u64::from_str_radix(check, 16)
        .map_err(|_| LineDamage::Format("non-hex checksum field".into()))?;
    let computed = fnv1a(&payload);
    if computed != recorded {
        return Err(LineDamage::Checksum { recorded, computed });
    }
    Ok(payload)
}

/// FNV-1a over a byte string: the per-line checksum of the journal and
/// the trailer checksum of the serve store's cell files.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_header(h: &JournalHeader) -> Vec<u8> {
    let mut w = SnapWriter::with_header(MAGIC, VERSION);
    w.write_u8(TAG_HEADER);
    w.write_u64(h.master_seed);
    w.write_u8(match h.profile {
        Profile::Quick => 0,
        Profile::Full => 1,
    });
    w.write_u64(h.replicates);
    w.write_u64(h.ids.len() as u64);
    for id in &h.ids {
        w.write_str(id);
    }
    w.into_bytes()
}

fn decode_header(bytes: &[u8]) -> Result<JournalHeader, SnapError> {
    let mut r = SnapReader::new(bytes);
    expect_journal_record(&mut r, TAG_HEADER)?;
    let master_seed = r.read_u64()?;
    let profile = match r.read_u8()? {
        0 => Profile::Quick,
        1 => Profile::Full,
        other => return Err(SnapError::Corrupt(format!("unknown profile tag {other}"))),
    };
    let replicates = r.read_u64()?;
    let n = r.read_u64()?;
    // Clamp the pre-allocation to what the remaining bytes could
    // possibly encode: a damaged count must fail with `Truncated`, not
    // abort the process with a capacity overflow.
    let mut ids = Vec::with_capacity((n as usize).min(r.remaining()));
    for _ in 0..n {
        ids.push(r.read_str()?);
    }
    r.finish()?;
    Ok(JournalHeader {
        master_seed,
        profile,
        replicates,
        ids,
    })
}

/// Serialize one completed cell as a journal record payload (exposed
/// for the codec fuzz harness; the journal writes these via `append`).
pub fn encode_cell(res: &ExperimentResult) -> Vec<u8> {
    let mut w = SnapWriter::with_header(MAGIC, VERSION);
    w.write_u8(TAG_CELL);
    w.write_str(res.id);
    w.write_u64(res.replicate);
    w.write_u64(res.seed);
    w.write_bool(res.panic.is_some());
    if let Some(msg) = &res.panic {
        w.write_str(msg);
    }
    w.write_f64(res.timing.wall_s);
    w.write_u64(res.timing.events_scheduled);
    w.write_u64(res.timing.events_dispatched);
    w.write_u64(res.timing.peak_queue_depth as u64);
    w.write_u64(res.timing.peak_rss_kib);
    w.write_bool(res.timing.peak_rss_is_process_max);
    w.write_u64(res.audit.total);
    w.write_u64(res.audit.reports.len() as u64);
    for msg in &res.audit.reports {
        w.write_str(msg);
    }
    write_report(&mut w, &res.report);
    w.into_bytes()
}

/// Decode one cell record payload. Structured errors, never panics —
/// the journal loader and the codec fuzz harness both rely on that.
pub fn decode_cell(bytes: &[u8]) -> Result<JournalCell, SnapError> {
    let mut r = SnapReader::new(bytes);
    let version = expect_journal_record(&mut r, TAG_CELL)?;
    let id = r.read_str()?;
    let replicate = r.read_u64()?;
    let seed = r.read_u64()?;
    let panic = if r.read_bool()? {
        Some(r.read_str()?)
    } else {
        None
    };
    let timing = Timing {
        wall_s: r.read_f64()?,
        events_scheduled: r.read_u64()?,
        events_dispatched: r.read_u64()?,
        peak_queue_depth: r.read_u64()? as usize,
        peak_rss_kib: if version >= 2 { r.read_u64()? } else { 0 },
        peak_rss_is_process_max: if version >= 3 { r.read_bool()? } else { true },
    };
    let total = r.read_u64()?;
    let n_reports = r.read_u64()?;
    // Clamped for the same reason as the header ids: a flipped count
    // must not become a capacity-overflow abort.
    let mut reports = Vec::with_capacity((n_reports as usize).min(r.remaining()));
    for _ in 0..n_reports {
        reports.push(r.read_str()?);
    }
    let report = read_report(&mut r)?;
    r.finish()?;
    Ok(JournalCell {
        id,
        replicate,
        seed,
        report,
        panic,
        timing,
        audit: Tally { total, reports },
    })
}

fn expect_journal_record(r: &mut SnapReader<'_>, want_tag: u8) -> Result<u32, SnapError> {
    let version = r.expect_header(MAGIC)?;
    if version > VERSION {
        return Err(SnapError::UnsupportedVersion(version));
    }
    let tag = r.read_u8()?;
    if tag != want_tag {
        return Err(SnapError::Corrupt(format!(
            "journal record tag {tag}, expected {want_tag}"
        )));
    }
    Ok(version)
}

/// Serialize a full [`Report`] into a snap stream. Shared with the
/// serve store, whose cell files embed the same report encoding.
pub fn write_report(w: &mut SnapWriter, rep: &Report) {
    w.write_str(&rep.id);
    w.write_str(&rep.title);
    w.write_str(&rep.config);
    w.write_u64(rep.rows.len() as u64);
    for row in &rep.rows {
        w.write_str(&row.metric);
        w.write_str(&row.paper);
        w.write_str(&row.measured);
        w.write_u8(match row.ok {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }
    w.write_u64(rep.plots.len() as u64);
    for p in &rep.plots {
        w.write_str(p);
    }
    w.write_u64(rep.csvs.len() as u64);
    for (name, body) in &rep.csvs {
        w.write_str(name);
        w.write_str(body);
    }
    w.write_u64(rep.blobs.len() as u64);
    for (name, bytes) in &rep.blobs {
        w.write_str(name);
        w.write_bytes(bytes);
    }
    w.write_u64(rep.metrics.len() as u64);
    for (name, value) in &rep.metrics {
        w.write_str(name);
        w.write_f64(*value);
    }
    w.write_u64(rep.diagnostics.len() as u64);
    for d in &rep.diagnostics {
        w.write_str(d);
    }
}

/// Deserialize a [`Report`] written by [`write_report`].
pub fn read_report(r: &mut SnapReader<'_>) -> Result<Report, SnapError> {
    let id = r.read_str()?;
    let title = r.read_str()?;
    let config = r.read_str()?;
    let mut rep = Report::new(&id, &title, &config);
    for _ in 0..r.read_u64()? {
        let metric = r.read_str()?;
        let paper = r.read_str()?;
        let measured = r.read_str()?;
        let ok = match r.read_u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            other => return Err(SnapError::Corrupt(format!("unknown row-ok tag {other}"))),
        };
        rep.rows.push(Row {
            metric,
            paper,
            measured,
            ok,
        });
    }
    for _ in 0..r.read_u64()? {
        rep.plots.push(r.read_str()?);
    }
    for _ in 0..r.read_u64()? {
        let name = r.read_str()?;
        let body = r.read_str()?;
        rep.csvs.push((name, body));
    }
    for _ in 0..r.read_u64()? {
        let name = r.read_str()?;
        let bytes = r.read_bytes()?.to_vec();
        rep.blobs.push((name, bytes));
    }
    for _ in 0..r.read_u64()? {
        let name = r.read_str()?;
        let value = r.read_f64()?;
        rep.metrics.push((name, value));
    }
    for _ in 0..r.read_u64()? {
        rep.diagnostics.push(r.read_str()?);
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "td-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_header() -> JournalHeader {
        JournalHeader {
            master_seed: 7,
            profile: Profile::Quick,
            replicates: 2,
            ids: vec!["fig8".into(), "short-flows".into()],
        }
    }

    fn sample_result(replicate: u64) -> ExperimentResult {
        let mut rep = Report::new("fig8", "a title", "a config");
        rep.check("metric", "paper says", "we saw".into(), true);
        rep.info("note", "-", "informational".into());
        rep.plots.push("ascii art\nline 2".into());
        rep.csvs.push(("data.csv".into(), "a,b\n1,2\n".into()));
        rep.blobs.push(("trace.bin".into(), vec![0, 1, 2, 255]));
        rep.metric("throughput", 0.75);
        rep.diagnostic("saw a thing".into());
        ExperimentResult {
            id: "fig8",
            replicate,
            seed: 42 + replicate,
            report: rep,
            panic: (replicate == 1).then(|| "boom \"quoted\"".into()),
            timing: Timing {
                wall_s: 1.5,
                events_scheduled: 100,
                events_dispatched: 90,
                peak_queue_depth: 12,
                peak_rss_kib: 4096,
                peak_rss_is_process_max: false,
            },
            audit: Tally {
                total: 1,
                reports: vec!["violation".into()],
            },
            snap: Default::default(),
            mc: Default::default(),
            replayed: false,
        }
    }

    #[test]
    fn header_and_cells_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let header = sample_header();
        let mut j = Journal::create(&dir, &header).unwrap();
        j.append(&sample_result(0)).unwrap();
        j.append(&sample_result(1)).unwrap();
        drop(j);

        let (got_header, cells) = Journal::load(&dir).unwrap();
        assert_eq!(got_header, header);
        assert_eq!(cells.len(), 2);
        let c = &cells[0];
        let want = sample_result(0);
        assert_eq!(c.id, want.id);
        assert_eq!(c.replicate, 0);
        assert_eq!(c.seed, 42);
        assert_eq!(c.panic, None);
        assert_eq!(c.timing.events_dispatched, 90);
        assert_eq!(c.timing.peak_queue_depth, 12);
        assert_eq!(c.timing.peak_rss_kib, 4096);
        assert_eq!(c.audit.total, 1);
        assert_eq!(c.audit.reports, vec!["violation".to_owned()]);
        assert_eq!(c.report.rows.len(), want.report.rows.len());
        assert_eq!(c.report.rows[0].ok, Some(true));
        assert_eq!(c.report.rows[1].ok, None);
        assert_eq!(c.report.plots, want.report.plots);
        assert_eq!(c.report.csvs, want.report.csvs);
        assert_eq!(c.report.blobs, want.report.blobs);
        assert_eq!(c.report.metrics, want.report.metrics);
        assert_eq!(c.report.diagnostics, want.report.diagnostics);
        assert_eq!(cells[1].panic.as_deref(), Some("boom \"quoted\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A journal written before v2 (no `peak_rss_kib` in cell records)
    /// must still load, with the missing field defaulting to 0.
    #[test]
    fn v1_cells_still_decode() {
        let want = sample_result(0);
        let mut w = SnapWriter::with_header(MAGIC, 1);
        w.write_u8(TAG_CELL);
        w.write_str(want.id);
        w.write_u64(want.replicate);
        w.write_u64(want.seed);
        w.write_bool(false);
        w.write_f64(want.timing.wall_s);
        w.write_u64(want.timing.events_scheduled);
        w.write_u64(want.timing.events_dispatched);
        w.write_u64(want.timing.peak_queue_depth as u64);
        w.write_u64(want.audit.total);
        w.write_u64(want.audit.reports.len() as u64);
        for msg in &want.audit.reports {
            w.write_str(msg);
        }
        write_report(&mut w, &want.report);
        let cell = decode_cell(&w.into_bytes()).unwrap();
        assert_eq!(cell.id, want.id);
        assert_eq!(cell.timing.peak_queue_depth, want.timing.peak_queue_depth);
        assert_eq!(cell.timing.peak_rss_kib, 0, "v1 default");
        assert!(
            cell.timing.peak_rss_is_process_max,
            "pre-v3 watermarks were never reset"
        );
    }

    /// A v2 journal (with `peak_rss_kib` but no per-cell watermark reset
    /// flag) must still load; its readings were process-lifetime maxima,
    /// so the flag defaults to `true`.
    #[test]
    fn v2_cells_still_decode() {
        let want = sample_result(0);
        let mut w = SnapWriter::with_header(MAGIC, 2);
        w.write_u8(TAG_CELL);
        w.write_str(want.id);
        w.write_u64(want.replicate);
        w.write_u64(want.seed);
        w.write_bool(false);
        w.write_f64(want.timing.wall_s);
        w.write_u64(want.timing.events_scheduled);
        w.write_u64(want.timing.events_dispatched);
        w.write_u64(want.timing.peak_queue_depth as u64);
        w.write_u64(want.timing.peak_rss_kib);
        w.write_u64(want.audit.total);
        w.write_u64(want.audit.reports.len() as u64);
        for msg in &want.audit.reports {
            w.write_str(msg);
        }
        write_report(&mut w, &want.report);
        let cell = decode_cell(&w.into_bytes()).unwrap();
        assert_eq!(cell.timing.peak_rss_kib, want.timing.peak_rss_kib);
        assert!(cell.timing.peak_rss_is_process_max, "v2 default");
    }

    #[test]
    fn open_append_continues_the_journal() {
        let dir = tmp_dir("append");
        let header = sample_header();
        let j = Journal::create(&dir, &header).unwrap();
        drop(j);
        let mut j = Journal::open_append(&dir).unwrap();
        j.append(&sample_result(0)).unwrap();
        drop(j);
        let (_, cells) = Journal::load(&dir).unwrap();
        assert_eq!(cells.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_tolerated() {
        let dir = tmp_dir("torn");
        let mut j = Journal::create(&dir, &sample_header()).unwrap();
        j.append(&sample_result(0)).unwrap();
        j.append(&sample_result(1)).unwrap();
        drop(j);
        // Tear the last line in half, as a crash mid-write would.
        let path = Journal::file_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - 40;
        std::fs::write(&path, &text[..keep]).unwrap();

        let (header, cells) = Journal::load(&dir).unwrap();
        assert_eq!(header, sample_header());
        assert_eq!(cells.len(), 1, "torn cell dropped, intact cell kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_damage_is_an_error() {
        let dir = tmp_dir("midfile");
        let mut j = Journal::create(&dir, &sample_header()).unwrap();
        j.append(&sample_result(0)).unwrap();
        j.append(&sample_result(1)).unwrap();
        drop(j);
        let path = Journal::file_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        // Flip a byte in the *first cell* line; the second stays intact.
        let damaged = lines[1].replace(
            lines[1].chars().next().unwrap(),
            if lines[1].starts_with('0') { "1" } else { "0" },
        );
        lines[1] = &damaged;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let err = Journal::load(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corruption"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_rejects_bit_flips() {
        let payload = encode_header(&sample_header());
        let line = encode_checked_line(&payload);
        assert_eq!(decode_checked_line(&line).unwrap(), payload);
        let flipped = line.replacen('a', "b", 1);
        if flipped != line {
            let err = decode_checked_line(&flipped).unwrap_err();
            assert!(
                matches!(err, LineDamage::Checksum { .. } | LineDamage::Format(_)),
                "{err:?}"
            );
        }
        assert!(matches!(
            decode_checked_line("nonsense"),
            Err(LineDamage::Format(_))
        ));
        assert!(matches!(
            decode_checked_line(""),
            Err(LineDamage::Format(_))
        ));
    }

    #[test]
    fn load_error_names_line_offset_and_checksums() {
        let dir = tmp_dir("richerr");
        let mut j = Journal::create(&dir, &sample_header()).unwrap();
        j.append(&sample_result(0)).unwrap();
        j.append(&sample_result(1)).unwrap();
        drop(j);
        let path = Journal::file_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let header_len = lines[0].len() as u64 + 1;
        // Flip one payload nibble of the first cell line; its recorded
        // checksum no longer matches.
        let flip = |c: char| if c == '0' { '1' } else { '0' };
        let first = lines[1].chars().next().unwrap();
        lines[1] = format!("{}{}", flip(first), &lines[1][1..]);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let err = Journal::load(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("corruption"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains(&format!("byte offset {header_len}")), "{msg}");
        assert!(msg.contains("expected") && msg.contains("found"), "{msg}");
        assert!(msg.contains("--salvage"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salvage_truncates_at_first_damage_and_keeps_prefix() {
        let dir = tmp_dir("salvage");
        let mut j = Journal::create(&dir, &sample_header()).unwrap();
        for rep in 0..4 {
            j.append(&sample_result(rep)).unwrap();
        }
        drop(j);
        let path = Journal::file_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Damage cell 2 of 4 (line index 3): cells 0–1 survive, 2–3 drop.
        let damage_offset: u64 = lines[..3].iter().map(|l| l.len() as u64 + 1).sum();
        let mut edited: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
        edited[3] = format!("zz{}", &edited[3][2..]);
        std::fs::write(&path, edited.join("\n") + "\n").unwrap();

        assert!(Journal::load(&dir).is_err(), "strict load still refuses");
        let (header, cells, report) = Journal::load_salvage(&dir).unwrap();
        assert_eq!(header, sample_header());
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].replicate, 0);
        assert_eq!(cells[1].replicate, 1);
        assert_eq!(
            report,
            SalvageReport {
                kept_cells: 2,
                dropped_lines: 2,
                truncated_at_byte: Some(damage_offset),
            }
        );
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            damage_offset,
            "file physically truncated at the damage point"
        );

        // The truncated journal is clean: strict load succeeds, appends
        // continue from the clean tail, and a re-salvage drops nothing.
        let (_, cells) = Journal::load(&dir).unwrap();
        assert_eq!(cells.len(), 2);
        let mut j = Journal::open_append(&dir).unwrap();
        j.append(&sample_result(2)).unwrap();
        drop(j);
        let (_, cells, report) = Journal::load_salvage(&dir).unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(report.dropped_lines, 0);
        assert_eq!(report.truncated_at_byte, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salvage_refuses_a_damaged_header() {
        let dir = tmp_dir("salvage-hdr");
        let mut j = Journal::create(&dir, &sample_header()).unwrap();
        j.append(&sample_result(0)).unwrap();
        drop(j);
        let path = Journal::file_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        lines[0] = format!("zz{}", &lines[0][2..]);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let err = Journal::load_salvage(&dir).unwrap_err();
        assert!(err.to_string().contains("unsalvageable"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
