//! Per-thread wall-clock deadline hook for request-serving workers.
//!
//! A long-running daemon (`td-serve`) that schedules simulation cells
//! onto a bounded worker pool needs a way to impose a *wall-clock*
//! budget on a cell it does not otherwise control: registry entries are
//! opaque `fn(seed, profile) -> Report` values, and a request whose
//! deadline has passed must stop burning the worker, not run to
//! completion for a client that already gave up.
//!
//! The mechanism mirrors the repository's existing fault-isolation
//! contract: the engine's hot loop ([`crate::World::dispatch`]-side,
//! via [`tick`]) polls a **thread-local** deadline every
//! [`CHECK_INTERVAL`] dispatched events, and when the deadline has
//! passed it panics with a recognizable [`PANIC_PREFIX`] payload. The
//! caller's `catch_unwind` (the same isolation boundary the experiment
//! runner already maintains) turns that unwind into a structured
//! `deadline_exceeded` response carrying the partial diagnostics baked
//! into the panic message (simulation time reached, events dispatched).
//! The abandoned `World` is simply dropped — nothing is resumed after a
//! deadline panic, so mid-dispatch state consistency does not matter.
//!
//! Determinism: an *armed* deadline never perturbs a run that finishes
//! in time — the poll reads a monotonic clock and either returns or
//! unwinds; it never touches RNG streams, event ordering, or any
//! simulator state. Unarmed threads pay one thread-local load and
//! branch per event (the same order of cost as the engine's telemetry
//! counters).
//!
//! Worker pools that fan replicates out to helper threads should
//! propagate the deadline with [`get`] + [`arm_until`] so helpers abort
//! promptly too (see `td_experiments::sweep::parallel_map`); the
//! serving layer additionally classifies *any* panic that unwinds out
//! of an expired-deadline cell as a deadline, because a helper-thread
//! unwind can lose the original payload at the scope boundary.

use std::cell::Cell;
use std::time::{Duration, Instant};

/// The panic payload of a fired deadline starts with this prefix, so an
/// isolation boundary can tell a budget expiry from a genuine fault.
pub const PANIC_PREFIX: &str = "td-deadline exceeded";

/// How many dispatched events pass between wall-clock polls. Small
/// enough that a stuck-in-simulation cell overruns its budget by
/// microseconds, large enough that the `Instant::now` call vanishes
/// against per-event dispatch cost.
pub const CHECK_INTERVAL: u32 = 256;

thread_local! {
    /// The armed deadline of the current thread, if any.
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
    /// Events until the next wall-clock poll.
    static COUNTDOWN: Cell<u32> = const { Cell::new(0) };
}

/// The most recent fired-deadline message, process-wide. A thread
/// scope re-raises a helper-thread panic with its own payload, losing
/// the [`PANIC_PREFIX`] message and the diagnostics inside it; this
/// side channel lets the isolation boundary recover them (see
/// [`take_last_message`]).
static LAST_MESSAGE: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);

/// Take (and clear) the message of the most recently fired deadline
/// anywhere in the process. Best-effort by design: concurrent cells
/// firing together may interleave, but the recovered diagnostics
/// (simulation time reached, events dispatched) stay representative.
pub fn take_last_message() -> Option<String> {
    LAST_MESSAGE.lock().ok().and_then(|mut m| m.take())
}

/// Disarms the thread's deadline when dropped, so an armed worker can
/// never leak its budget into the next request (including when the cell
/// unwinds and the guard drops during `catch_unwind`).
#[derive(Debug)]
pub struct DeadlineGuard {
    _private: (),
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        DEADLINE.with(|d| d.set(None));
    }
}

/// Arm this thread's deadline at an absolute instant, returning a guard
/// that disarms it on drop. Re-arming replaces the previous deadline.
pub fn arm_until(at: Instant) -> DeadlineGuard {
    DEADLINE.with(|d| d.set(Some(at)));
    COUNTDOWN.with(|c| c.set(0));
    DeadlineGuard { _private: () }
}

/// Arm this thread's deadline `budget` from now (see [`arm_until`]).
pub fn arm_for(budget: Duration) -> DeadlineGuard {
    arm_until(Instant::now() + budget)
}

/// The currently armed deadline of this thread, if any. Worker pools
/// use this to propagate the caller's deadline into helper threads.
pub fn get() -> Option<Instant> {
    DEADLINE.with(|d| d.get())
}

/// True if this thread's deadline is armed and already in the past.
/// Isolation boundaries use this to classify an unwind whose payload
/// was lost (e.g. re-raised by a thread scope) as a deadline expiry.
pub fn expired() -> bool {
    get().is_some_and(|at| Instant::now() >= at)
}

/// The engine-loop poll: cheap no-op while unarmed; once the armed
/// deadline passes, disarms and panics with a [`PANIC_PREFIX`] payload
/// naming the simulation time reached and events dispatched so far —
/// the partial diagnostics a `deadline_exceeded` response carries.
#[inline]
pub fn tick(now: td_engine::SimTime, events_dispatched: u64) {
    DEADLINE.with(|d| {
        if d.get().is_none() {
            return;
        }
        let due = COUNTDOWN.with(|c| {
            let n = c.get();
            if n == 0 {
                c.set(CHECK_INTERVAL);
                true
            } else {
                c.set(n - 1);
                false
            }
        });
        if due && d.get().is_some_and(|at| Instant::now() >= at) {
            d.set(None);
            let msg = format!(
                "{PANIC_PREFIX}: wall-clock budget elapsed at sim t={:.6}s \
                 after {events_dispatched} event(s)",
                now.as_secs_f64()
            );
            if let Ok(mut last) = LAST_MESSAGE.lock() {
                *last = Some(msg.clone());
            }
            std::panic::panic_any(msg);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_engine::SimTime;

    #[test]
    fn unarmed_tick_is_a_no_op() {
        for i in 0..10_000 {
            tick(SimTime::from_nanos(i), i);
        }
    }

    #[test]
    fn armed_deadline_fires_with_marker_payload() {
        let caught = std::panic::catch_unwind(|| {
            let _g = arm_for(Duration::from_millis(0));
            // Drive past one full poll interval so the expiry check runs.
            for i in 0..=u64::from(CHECK_INTERVAL) + 1 {
                tick(SimTime::from_nanos(i), i);
            }
        });
        let payload = caught.expect_err("deadline must fire");
        let msg = payload
            .downcast_ref::<String>()
            .expect("payload is a String");
        assert!(msg.starts_with(PANIC_PREFIX), "{msg}");
        assert!(msg.contains("event(s)"), "{msg}");
        // The unwind dropped the guard: the thread is disarmed again.
        assert!(get().is_none());
        for i in 0..1_000 {
            tick(SimTime::from_nanos(i), i);
        }
    }

    #[test]
    fn guard_disarms_on_drop_and_rearm_replaces() {
        assert!(get().is_none());
        {
            let _g = arm_for(Duration::from_secs(3600));
            assert!(get().is_some());
            assert!(!expired());
        }
        assert!(get().is_none());
        assert!(!expired());

        let far = Instant::now() + Duration::from_secs(3600);
        let _g = arm_until(far);
        assert_eq!(get(), Some(far));
        let near = Instant::now();
        let _g2 = arm_until(near);
        assert_eq!(get(), Some(near));
        assert!(expired());
    }

    #[test]
    fn future_deadline_lets_the_run_finish() {
        let _g = arm_for(Duration::from_secs(3600));
        for i in 0..10_000 {
            tick(SimTime::from_nanos(i), i);
        }
    }
}
