//! Export a simulated run as a Wireshark-readable pcap file.
//!
//! Runs the paper's Figure 4 scenario briefly, then writes the bottleneck
//! wire traffic to `fig4.pcap` (synthesized IPv4/TCP headers carrying the
//! simulated addresses, ports, sequence and ack numbers) and prints a
//! tcpdump-style preview.
//!
//! ```sh
//! cargo run --release --example pcap_dump
//! wireshark fig4.pcap    # or: tcpdump -r fig4.pcap | head
//! ```

use tahoe_dynamics::engine::SimDuration;
use tahoe_dynamics::experiments::{ConnSpec, Scenario};
use tahoe_dynamics::net::{text_dump, write_pcap, CapturePoint};

fn main() {
    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    sc.duration = SimDuration::from_secs(60);
    sc.warmup = SimDuration::from_secs(10);
    let run = sc.run();

    let point = CapturePoint::ChannelWire(run.bottleneck_12);
    let path = std::path::Path::new("fig4.pcap");
    write_pcap(run.world.trace(), point, path).expect("write pcap");
    let n = run.world.trace().records().len();
    println!(
        "wrote {} ({} trace records captured at the switch-1 bottleneck)\n",
        path.display(),
        n
    );
    println!("tcpdump-style preview of the wire (first 25 frames):\n");
    print!("{}", text_dump(run.world.trace(), point, 25));
    println!(
        "\nopen {} in Wireshark to follow the simulated TCP streams.",
        path.display()
    );
}
