//! The pending-event set.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number is a
//! monotone counter assigned at scheduling time, so events scheduled for the
//! same instant fire in scheduling order. This total order is what makes
//! whole-simulation runs reproducible: there is never an "arbitrary" choice
//! left to hash-map iteration order or heap tie-breaking.
//!
//! Cancellation is lazy: [`EventQueue::cancel`] records the id in a small
//! set, and cancelled entries are discarded when they surface at the top of
//! the heap. This keeps `cancel` O(1) without requiring a decrease-key
//! heap, and is the standard approach for simulator timer management where
//! most timers are either cancelled long before expiry (TCP retransmit
//! timers) or expire uncancelled.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle to a scheduled event, used to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-(time, seq) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable discrete-event queue.
///
/// The queue also tracks the simulation clock: [`EventQueue::now`] is the
/// timestamp of the most recently popped event (initially [`SimTime::ZERO`]),
/// and scheduling into the past is a panic — causality violations are always
/// caller bugs.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs of pending events that have been cancelled but not yet discarded.
    cancelled: HashSet<u64>,
    /// Fired seqs above `fired_watermark` (events can fire out of seq order).
    fired: HashSet<u64>,
    /// All seqs below this have fired; keeps `fired` small.
    fired_watermark: u64,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    /// Largest live length ever observed (post-schedule).
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            fired: HashSet::new(),
            fired_watermark: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            peak_len: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped (dispatched) so far. Handy as a progress /
    /// runaway-simulation guard.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }

    /// Number of events ever scheduled into this queue.
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Largest number of live pending events ever held at once — the
    /// working-set size a capacity planner would care about.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of live (not-yet-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before [`EventQueue::now`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        let live = self.len();
        if live > self.peak_len {
            self.peak_len = live;
        }
        crate::telemetry::note_schedule(live);
        EventId(seq)
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: crate::SimDuration, event: E) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed not to fire), `false` if it had
    /// already fired, been cancelled, or was never scheduled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq || self.has_fired(id) {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// True if the id refers to an event that has already fired.
    pub fn has_fired(&self, id: EventId) -> bool {
        id.0 < self.fired_watermark || self.fired.contains(&id.0)
    }

    /// Remove and return the earliest live event, advancing the clock.
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                self.note_done(entry.seq);
                continue; // lazily discard cancelled entry
            }
            debug_assert!(entry.at >= self.now, "heap produced an event in the past");
            self.now = entry.at;
            self.popped += 1;
            crate::telemetry::note_dispatch();
            self.note_done(entry.seq);
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                self.note_done(seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Record that `seq` has left the heap (fired or cancelled-and-discarded)
    /// so later `cancel` calls on it report `false`. Advancing the watermark
    /// over contiguous prefixes keeps the set's size bounded by the number
    /// of in-flight events.
    fn note_done(&mut self, seq: u64) {
        self.fired.insert(seq);
        while self.fired.remove(&self.fired_watermark) {
            self.fired_watermark += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(12));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "dead");
        q.schedule_at(SimTime::from_secs(2), "alive");
        assert!(q.cancel(id));
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "alive");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), ());
        q.pop();
        assert!(!q.cancel(id));
        assert!(q.has_fired(id));
    }

    #[test]
    fn cancel_twice_returns_false() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancel_unknown_id_returns_false() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn dispatched_counts_pops() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.schedule_at(SimTime::from_secs(i + 1), ());
        }
        while q.pop().is_some() {}
        assert_eq!(q.dispatched(), 5);
    }

    #[test]
    fn fired_watermark_bounds_memory() {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule_at(SimTime::from_secs(i), ());
        }
        while q.pop().is_some() {}
        // All seqs fired in order: the out-of-order set must be empty.
        assert!(q.fired.is_empty());
        assert_eq!(q.fired_watermark, 1000);
    }

    /// Audit of lazy cancellation (the `cancelled` set must never leak):
    /// a long interleaving of schedules, cancels of live / fired /
    /// never-scheduled ids, double-cancels, and pops must leave both
    /// bookkeeping sets empty once the queue drains. A leaked entry would
    /// corrupt `len()` (it subtracts `cancelled.len()`) and grow memory
    /// without bound in timer-heavy simulations.
    #[test]
    fn cancel_heavy_run_leaves_no_residue() {
        let mut q = EventQueue::new();
        let mut rng = crate::SimRng::new(0xCA9CE1);
        let mut live_ids: Vec<EventId> = Vec::new();
        let mut fired_ids: Vec<EventId> = Vec::new();
        for step in 0..50_000u64 {
            match rng.next_below(10) {
                // Schedule at a jittered future instant (ties included).
                0..=3 => {
                    let at = q.now() + SimDuration::from_nanos(rng.next_below(50));
                    live_ids.push(q.schedule_at(at, step));
                }
                // Cancel something still (probably) pending.
                4..=6 if !live_ids.is_empty() => {
                    let k = rng.next_below(live_ids.len() as u64) as usize;
                    let id = live_ids.swap_remove(k);
                    q.cancel(id);
                    // Double-cancel must refuse and must not re-insert.
                    assert!(!q.cancel(id), "double cancel accepted");
                }
                // Cancel an id that already fired: must be a no-op.
                7 if !fired_ids.is_empty() => {
                    let k = rng.next_below(fired_ids.len() as u64) as usize;
                    assert!(!q.cancel(fired_ids[k]), "cancel of fired id accepted");
                }
                // Cancel an id that was never scheduled: must be a no-op.
                8 => {
                    assert!(!q.cancel(EventId(u64::MAX - step)));
                }
                _ => {
                    if let Some((_, e)) = q.pop() {
                        if let Some(k) = live_ids.iter().position(|id| id.0 == e) {
                            fired_ids.push(live_ids.swap_remove(k));
                        }
                    }
                }
            }
            assert!(
                q.cancelled.len() <= q.heap.len(),
                "cancelled set outgrew the heap at step {step}"
            );
        }
        while q.pop().is_some() {}
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
        assert!(
            q.cancelled.is_empty(),
            "drained queue left {} permanent cancelled entries",
            q.cancelled.len()
        );
        assert!(q.fired.is_empty(), "fired set not folded into watermark");
        assert_eq!(q.fired_watermark, q.next_seq);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule_at(SimTime::from_secs(i + 1), i);
        }
        assert_eq!(q.peak_len(), 10);
        while q.pop().is_some() {}
        assert_eq!(q.peak_len(), 10, "peak survives draining");
        assert_eq!(q.scheduled(), 10);
        // Cancelled entries do not count toward the live peak.
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), 0);
        q.cancel(a);
        q.schedule_at(SimTime::from_secs(2), 1);
        assert_eq!(q.peak_len(), 1);
    }

    #[test]
    fn cancel_then_pop_marks_done() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        q.pop(); // discards `a`, delivers the 2 s event
        assert!(!q.cancel(a));
        assert!(q.pop().is_none());
    }
}
