//! Runner/sweep benchmarks: what the two-level job budget and batched
//! trace analysis buy inside a single experiment.
//!
//! Two kinds of pairs:
//!
//! * `…/seq` vs `…/jobsN` — the identical workload with the budget pinned
//!   to zero borrowable slots and then with `N` available. Outputs are
//!   asserted equal, so the delta is pure wall clock. The win scales with
//!   available cores (on a single-core host the pair measures the
//!   fan-out's overhead instead — it should be near parity).
//! * `…/old_rescan` vs `…/batched` — the pre-batching analysis pattern
//!   (each report question re-scanning the trace: the old fig67 path
//!   extracted each queue series twice and each cwnd once, 6 scans) vs
//!   one batched extraction feeding every question (4 scans, possibly
//!   parallel). This is an algorithmic win, measurable on any host.
//!
//! Results land in `BENCH_runner.json` (override with `TD_BENCH_JSON`).

use std::hint::black_box;
use td_analysis::{compression, RunningStats, TimeSeries};
use td_bench::Harness;
use td_engine::SimDuration;
use td_experiments::scenario::Run;
use td_experiments::sweep::{budget, ReplicateSweep};
use td_experiments::{fig45, ConnSpec, Scenario, DATA_SERVICE};

/// Borrowable helper slots for the parallel variants (beyond the calling
/// thread itself).
const HELPERS: usize = 4;

/// One replicate of the sweep workload: a short 1+1 two-way run reduced
/// worker-side to its utilization pair.
fn replicate(seed: u64) -> (f64, f64) {
    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    sc.seed = seed;
    sc.duration = SimDuration::from_secs(120);
    sc.warmup = SimDuration::from_secs(20);
    let run = sc.run();
    (run.util12(), run.util21())
}

fn replicate_sweep(c: &mut Harness) {
    let sweep = || ReplicateSweep::derived("bench-sweep", 7, 6);
    // Pin the expected output once; both variants must reproduce it.
    budget().configure(0);
    let expect: Vec<(f64, f64)> = sweep().run(|seed, _| replicate(seed));
    let fold = |cells: &[(f64, f64)]| {
        cells.iter().fold(RunningStats::new(), |acc, &(a, b)| {
            acc.merge(&RunningStats::from_slice(&[a, b]))
        })
    };
    let expect_stats = fold(&expect);

    c.bench_function("runner/replicate_sweep/6x120s/seq", |b| {
        budget().configure(0);
        b.iter(|| {
            let got = sweep().run(|seed, _| replicate(seed));
            assert_eq!(got, expect, "sweep output changed with the budget");
            black_box(fold(&got))
        });
    });
    c.bench_function(
        &format!("runner/replicate_sweep/6x120s/jobs{HELPERS}"),
        |b| {
            budget().configure(HELPERS);
            b.iter(|| {
                let got = sweep().run(|seed, _| replicate(seed));
                assert_eq!(got, expect, "sweep output changed with the budget");
                let stats = fold(&got);
                assert_eq!(stats, expect_stats, "deterministic fold diverged");
                black_box(stats)
            });
        },
    );
}

/// The questions the two-way figure reports ask of their series: the
/// simultaneous-idle fraction, the square-wave fluctuation, and a
/// plot-sized footprint of all four series.
fn questions(
    q1: &TimeSeries,
    q2: &TimeSeries,
    cw1: &TimeSeries,
    cw2: &TimeSeries,
    run: &Run,
) -> (f64, usize) {
    let n = 4000;
    let a = q1.resample(run.t0, run.t1, n);
    let b = q2.resample(run.t0, run.t1, n);
    let idle = a
        .iter()
        .zip(&b)
        .filter(|&(&x, &y)| x == 0.0 && y == 0.0)
        .count();
    let fl = compression::queue_fluctuation(q1, run.t0, run.t1, DATA_SERVICE);
    (
        fl + idle as f64,
        q1.len() + q2.len() + cw1.len() + cw2.len(),
    )
}

fn replicate_analysis(c: &mut Harness) {
    // Three pre-built replicate runs; trace extraction is the measured
    // part, construction is not.
    let runs: Vec<Run> = (1..=3u64)
        .map(|seed| fig45::scenario(seed, 300, 20).run())
        .collect();
    println!(
        "replicate trace records: {:?}",
        runs.iter()
            .map(|r| r.world.trace().len())
            .collect::<Vec<_>>()
    );
    budget().configure(0);
    let expect: Vec<(f64, usize)> = runs
        .iter()
        .map(|run| {
            let (q1, q2, cw1, cw2) = run.queues_and_cwnds(run.fwd[0], run.rev[0]);
            questions(&q1, &q2, &cw1, &cw2, run)
        })
        .collect();

    c.bench_function("runner/replicate_analysis/3x300s/old_rescan", |b| {
        // The pre-batching fig67 shape: the idle question extracted both
        // queues itself, the fluctuation question re-extracted queue 1,
        // the plots re-extracted queue 2 — six scans per replicate.
        b.iter(|| {
            let got: Vec<(f64, usize)> = runs
                .iter()
                .map(|run| {
                    let (qa, qb) = (run.queue1(), run.queue2());
                    black_box(qa.len() + qb.len());
                    let (q1, q2) = (run.queue1(), run.queue2());
                    let (cw1, cw2) = (run.cwnd(run.fwd[0]), run.cwnd(run.rev[0]));
                    questions(&q1, &q2, &cw1, &cw2, run)
                })
                .collect();
            assert_eq!(got, expect);
            black_box(got)
        });
    });
    c.bench_function("runner/replicate_analysis/3x300s/batched", |b| {
        budget().configure(HELPERS);
        b.iter(|| {
            let got: Vec<(f64, usize)> = runs
                .iter()
                .map(|run| {
                    let (q1, q2, cw1, cw2) = run.queues_and_cwnds(run.fwd[0], run.rev[0]);
                    questions(&q1, &q2, &cw1, &cw2, run)
                })
                .collect();
            assert_eq!(got, expect);
            black_box(got)
        });
    });
}

fn batched_analysis(c: &mut Harness) {
    // One shared paper-scale run; a single four-series extraction.
    let run = fig45::scenario(1, 300, 20).run();
    let (a, b2) = (run.fwd[0], run.rev[0]);
    budget().configure(0);
    let expect = run.queues_and_cwnds(a, b2);

    c.bench_function("runner/batched_analysis/4series/seq", |b| {
        budget().configure(0);
        b.iter(|| {
            let got = run.queues_and_cwnds(a, b2);
            assert!(got == expect, "batched analysis output changed");
            black_box(got.0.len())
        });
    });
    c.bench_function(
        &format!("runner/batched_analysis/4series/jobs{HELPERS}"),
        |b| {
            budget().configure(HELPERS);
            b.iter(|| {
                let got = run.queues_and_cwnds(a, b2);
                assert!(got == expect, "batched analysis output changed");
                black_box(got.0.len())
            });
        },
    );
}

fn main() {
    let mut c = Harness::new();
    replicate_sweep(&mut c);
    replicate_analysis(&mut c);
    batched_analysis(&mut c);
    let json_path = std::env::var("TD_BENCH_JSON").unwrap_or_else(|_| "BENCH_runner.json".into());
    if let Err(e) = c.write_json(std::path::Path::new(&json_path)) {
        eprintln!("could not write {json_path}: {e}");
    }
    c.finish();
}
