//! Per-thread simulation telemetry.
//!
//! The parallel experiment harness runs each experiment on its own worker
//! thread, and an experiment may build several [`crate::EventQueue`]s over
//! its lifetime (parameter sweeps, mode censuses). These thread-local
//! counters aggregate queue activity across every queue touched by the
//! current thread, so a harness can meter an experiment without threading
//! a stats handle through every scenario builder:
//!
//! ```
//! use td_engine::{telemetry, EventQueue, SimTime};
//!
//! telemetry::reset();
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_secs(1), "tick");
//! q.pop();
//! let t = telemetry::snapshot();
//! assert_eq!((t.events_scheduled, t.events_dispatched), (1, 1));
//! ```
//!
//! The counters are plain `Cell`s: no atomics, no locks, and — because
//! they never influence simulation behaviour — no effect on determinism.

use std::cell::Cell;

thread_local! {
    static SCHEDULED: Cell<u64> = const { Cell::new(0) };
    static DISPATCHED: Cell<u64> = const { Cell::new(0) };
    static PEAK_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// A snapshot of this thread's counters since the last [`reset`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Events scheduled into any queue on this thread.
    pub events_scheduled: u64,
    /// Events popped (dispatched) from any queue on this thread.
    pub events_dispatched: u64,
    /// Largest live pending-event set observed on this thread.
    pub peak_queue_depth: usize,
}

/// Zero this thread's counters (call before metering a workload).
pub fn reset() {
    SCHEDULED.with(|c| c.set(0));
    DISPATCHED.with(|c| c.set(0));
    PEAK_DEPTH.with(|c| c.set(0));
}

/// Read this thread's counters.
pub fn snapshot() -> Telemetry {
    Telemetry {
        events_scheduled: SCHEDULED.with(Cell::get),
        events_dispatched: DISPATCHED.with(Cell::get),
        peak_queue_depth: PEAK_DEPTH.with(Cell::get),
    }
}

/// Record one schedule into a queue whose live depth is now `depth`.
pub(crate) fn note_schedule(depth: usize) {
    SCHEDULED.with(|c| c.set(c.get() + 1));
    PEAK_DEPTH.with(|c| {
        if depth > c.get() {
            c.set(depth);
        }
    });
}

/// Record one pop from a queue.
pub(crate) fn note_dispatch() {
    DISPATCHED.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        note_schedule(3);
        note_schedule(1);
        note_dispatch();
        let t = snapshot();
        assert_eq!(t.events_scheduled, 2);
        assert_eq!(t.events_dispatched, 1);
        assert_eq!(t.peak_queue_depth, 3);
        reset();
        assert_eq!(snapshot(), Telemetry::default());
    }
}
