//! The parallel harness must not be able to change results: for the same
//! master seed, `--jobs N` output is byte-identical to `--jobs 1`.

use td_experiments::registry::find;
use td_experiments::runner::{run_batch, RunnerConfig};

/// FNV-1a over a byte stream — the same stable hash everywhere in the
/// workspace, so a golden value pins output bytes, not formatting luck.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Full observable surface of a report: rendered text, markdown, CSV and
/// blob bytes.
fn rendered(batch: &td_experiments::runner::BatchResult) -> Vec<(String, Vec<u8>)> {
    batch
        .results
        .iter()
        .map(|r| {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(r.report.to_string().as_bytes());
            bytes.extend_from_slice(r.report.markdown_table().as_bytes());
            for (name, csv) in &r.report.csvs {
                bytes.extend_from_slice(name.as_bytes());
                bytes.extend_from_slice(csv.as_bytes());
            }
            for (name, blob) in &r.report.blobs {
                bytes.extend_from_slice(name.as_bytes());
                bytes.extend_from_slice(blob);
            }
            (format!("{}#{}", r.id, r.replicate), bytes)
        })
        .collect()
}

#[test]
fn parallel_run_is_byte_identical_to_sequential() {
    let entries = || vec![find("fig8").unwrap(), find("short-flows").unwrap()];
    let base = RunnerConfig {
        master_seed: 7,
        replicates: 1,
        ..RunnerConfig::new()
    };
    let seq = run_batch(&entries(), &RunnerConfig { jobs: 1, ..base });
    let par = run_batch(&entries(), &RunnerConfig { jobs: 4, ..base });

    assert_eq!(seq.results.len(), par.results.len());
    for ((id_a, bytes_a), (id_b, bytes_b)) in rendered(&seq).iter().zip(rendered(&par).iter()) {
        assert_eq!(id_a, id_b, "result order depends on pool size");
        assert_eq!(
            bytes_a, bytes_b,
            "{id_a}: parallel report differs from sequential"
        );
    }
    // Seeds and simulated work must match too, not just the rendering.
    for (a, b) in seq.results.iter().zip(&par.results) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.timing.events_dispatched, b.timing.events_dispatched);
        assert_eq!(a.timing.peak_queue_depth, b.timing.peak_queue_depth);
    }
}

/// The two-level split (workers + borrowed replicate-sweep slots) must be
/// invisible in the output: multi-replicate batches are byte-identical
/// across job budgets, including budgets larger than the task count
/// (where the surplus is what in-experiment sweeps borrow).
#[test]
fn replicated_runs_are_byte_identical_across_job_budgets() {
    let entries = || vec![find("short-flows").unwrap()];
    let base = RunnerConfig {
        master_seed: 7,
        replicates: 3,
        ..RunnerConfig::new()
    };
    let seq = run_batch(&entries(), &RunnerConfig { jobs: 1, ..base });
    let par = run_batch(&entries(), &RunnerConfig { jobs: 8, ..base });

    let (a, b) = (rendered(&seq), rendered(&par));
    assert_eq!(a, b, "replicate output depends on the job budget");
    // Replicate seeds are pure functions of (master, id, replicate):
    // replicate 0 is the master verbatim, the rest are derived and
    // distinct.
    assert_eq!(seq.results[0].seed, 7);
    let mut seeds: Vec<u64> = seq.results.iter().map(|r| r.seed).collect();
    let n = seeds.len();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), n, "replicate seeds must not collide");
}

/// Cross-version regression pin: the hash below was recorded from the
/// pre-slab `EventQueue` (`BinaryHeap` + lazy cancellation). Any engine
/// change that perturbs event ordering — and therefore any experiment
/// byte — flips this hash. If it fails, the queue changed observable
/// simulation behaviour; that is a bug, not a baseline to re-record.
///
/// Since the fault subsystem landed, `Scenario::run` installs a
/// `FaultPlan::NONE` on both bottleneck channels of every experiment, so
/// this pin also asserts that a compiled-in-but-disabled fault plan (and
/// the always-on invariant auditor) is byte-invisible.
#[test]
fn experiment_output_bytes_match_golden_hash() {
    let entries = vec![find("fig8").unwrap(), find("short-flows").unwrap()];
    let batch = run_batch(
        &entries,
        &RunnerConfig {
            jobs: 2,
            master_seed: 7,
            replicates: 1,
            ..RunnerConfig::new()
        },
    );
    let stream = rendered(&batch)
        .into_iter()
        .flat_map(|(id, bytes)| id.into_bytes().into_iter().chain(bytes));
    let h = fnv1a(stream);
    assert_eq!(
        h, GOLDEN_OUTPUT_HASH,
        "experiment output bytes diverged from the pre-change engine \
         (got {h:#018x})"
    );
}

/// FNV-1a of the rendered fig8 + short-flows batch (seed 7, quick profile),
/// recorded against the pre-slab binary-heap event queue.
const GOLDEN_OUTPUT_HASH: u64 = 0xb4f1_f25c_be23_ce63;

/// The robustness instrumentation must observe, never perturb: the same
/// scenario run with and without the watchdog (which threads every event
/// through stall accounting and the auditor's delivery counter) produces
/// the identical trace, event for event.
#[test]
fn watchdog_instrumentation_is_byte_invisible() {
    use td_engine::SimDuration;
    use td_experiments::scenario::{ConnSpec, Scenario};

    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    sc.duration = SimDuration::from_secs(20);
    sc.warmup = SimDuration::from_secs(2);
    let plain = sc.run();
    sc.watchdog = Some(td_net::WatchdogConfig::default());
    let watched = sc.run();
    assert_eq!(
        plain.world.events_dispatched(),
        watched.world.events_dispatched(),
        "watchdog changed the event stream"
    );
    let bytes = |run: &td_experiments::scenario::Run| format!("{:?}", run.world.trace().records());
    assert_eq!(
        bytes(&plain),
        bytes(&watched),
        "watchdog changed the recorded trace"
    );
    assert!(watched.outcome.is_some());
    assert_eq!(plain.world.audit().total_violations(), 0);
}
