//! Congestion-control window state machines.
//!
//! The paper's window arithmetic is in *packets* and real-valued; what the
//! network ever sees is `wnd = ⌊min(cwnd, maxwnd)⌋`. For the paper's
//! modified increment rule (`cwnd += 1/⌊cwnd⌋`) we track the window in
//! exact integer form — `⌊cwnd⌋` plus a count of avoidance ACKs since the
//! last integer crossing — so the dynamics are free of floating-point
//! accumulation error and `⌊cwnd⌋` provably grows by one per epoch. The
//! original rule (`cwnd += 1/cwnd`) keeps a genuine `f64`, anomaly and all,
//! for the ablation comparing the two.

use td_engine::{SnapError, SnapReader, SnapWriter};
use td_net::LossKind;

/// Which congestion-avoidance increment to use (paper §2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IncrementRule {
    /// `cwnd += 1/⌊cwnd⌋` — the paper's modification; `⌊cwnd⌋` advances by
    /// exactly one per congestion-avoidance epoch. Our default, as in the
    /// paper's simulations.
    #[default]
    Modified,
    /// `cwnd += 1/cwnd` — the literal BSD 4.3-Tahoe rule, which can leave
    /// `⌊cwnd⌋` unchanged across an epoch (the anomaly of §2.1).
    Original,
}

/// Congestion-control algorithm selector for configs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum CcKind {
    /// BSD 4.3-Tahoe (the paper's algorithm).
    Tahoe {
        /// Avoidance increment rule.
        rule: IncrementRule,
    },
    /// Constant window, no reaction to loss (Figures 8–9 idealization).
    FixedWindow {
        /// The fixed window, in packets.
        wnd: u64,
    },
    /// Tahoe plus fast recovery (4.3-Reno).
    Reno,
    /// The DECbit / CE-bit congestion-avoidance policy of Jain,
    /// Ramakrishnan & Chiu \[8, 15\] — the algorithm whose two-way-traffic
    /// behaviour on a real OSI testbed (Wilder et al. \[17\]) the paper's §5
    /// compares against. Requires CE marking on the bottleneck channels.
    Decbit,
}

impl Default for CcKind {
    fn default() -> Self {
        CcKind::Tahoe {
            rule: IncrementRule::Modified,
        }
    }
}

impl CcKind {
    /// Instantiate the state machine.
    pub fn build(self, maxwnd: u64) -> Box<dyn CongestionControl> {
        match self {
            CcKind::Tahoe { rule } => Box::new(Tahoe::new(rule, maxwnd)),
            CcKind::FixedWindow { wnd } => Box::new(FixedWindow { wnd }),
            CcKind::Reno => Box::new(Reno::new(maxwnd)),
            CcKind::Decbit => Box::new(Decbit::new(maxwnd)),
        }
    }
}

/// A window state machine driven by the sender.
///
/// Call order per event:
/// * new data acknowledged → [`CongestionControl::on_ack`] (once per ACK
///   that advances `snd_una`, as in BSD, regardless of how many packets it
///   covers);
/// * duplicate ACK → [`CongestionControl::on_dupack`];
/// * loss detected → [`CongestionControl::on_loss`].
pub trait CongestionControl: Send {
    /// Usable window right now: `⌊min(cwnd, maxwnd)⌋`, in packets.
    fn window(&self) -> u64;

    /// Real-valued congestion window, for traces/plots.
    fn cwnd(&self) -> f64;

    /// Current slow-start threshold, for traces/plots.
    fn ssthresh(&self) -> f64;

    /// An ACK advanced `snd_una`.
    fn on_ack(&mut self);

    /// An ACK advanced `snd_una`, with its congestion-experienced echo bit
    /// (DECbit). Algorithms that ignore marking (Tahoe, Reno, fixed) keep
    /// the default, which forwards to [`CongestionControl::on_ack`].
    fn on_ack_marked(&mut self, ce: bool) {
        let _ = ce;
        self.on_ack();
    }

    /// A duplicate ACK arrived (before the fast-retransmit threshold).
    fn on_dupack(&mut self) {}

    /// A loss was detected (duplicate-ACK threshold or timeout).
    fn on_loss(&mut self, kind: LossKind);

    /// The first ACK of new data after a loss-recovery episode (Reno
    /// deflates its window here; others ignore it).
    fn on_recovery_ack(&mut self) {}

    /// True while the algorithm is in slow start (`cwnd < ssthresh`).
    fn in_slow_start(&self) -> bool;

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Serialize the algorithm's *mutable* state for a simulation
    /// snapshot. Structural parameters (`maxwnd`, the increment rule) are
    /// not written — a restore target is rebuilt from the same config and
    /// only needs the dynamics re-applied.
    fn save_state(&self, w: &mut SnapWriter);

    /// Apply state written by [`CongestionControl::save_state`] onto a
    /// structurally identical instance.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

// ---------------------------------------------------------------------------
// Tahoe
// ---------------------------------------------------------------------------

/// Exact-arithmetic cwnd for the modified rule; f64 for the original.
#[derive(Clone, Copy, Debug)]
enum Wnd {
    /// `cwnd = floor + frac/floor` with `frac < floor`.
    Exact { floor: u64, frac: u64 },
    /// Real-valued cwnd (original rule).
    Real { cwnd: f64 },
}

/// BSD 4.3-Tahoe congestion control (paper §2.1).
pub struct Tahoe {
    wnd: Wnd,
    /// In *half-packets* so `cwnd/2` stays exact: ssthresh = `ssthresh_x2/2`.
    ssthresh_x2: u64,
    maxwnd: u64,
    rule: IncrementRule,
}

impl Tahoe {
    /// A fresh connection: `cwnd = 1`, `ssthresh = maxwnd` (BSD initializes
    /// the threshold to the largest window so the first epoch is pure slow
    /// start).
    pub fn new(rule: IncrementRule, maxwnd: u64) -> Self {
        assert!(maxwnd >= 2, "maxwnd must be at least 2");
        Tahoe {
            wnd: match rule {
                IncrementRule::Modified => Wnd::Exact { floor: 1, frac: 0 },
                IncrementRule::Original => Wnd::Real { cwnd: 1.0 },
            },
            ssthresh_x2: maxwnd * 2,
            maxwnd,
            rule,
        }
    }

    fn cwnd_value(&self) -> f64 {
        match self.wnd {
            Wnd::Exact { floor, frac } => floor as f64 + frac as f64 / floor as f64,
            Wnd::Real { cwnd } => cwnd,
        }
    }

    /// `cwnd < ssthresh`, computed exactly for the Exact representation:
    /// floor + frac/floor < s/2  ⟺  2·floor² + 2·frac < s·floor.
    fn below_threshold(&self) -> bool {
        match self.wnd {
            Wnd::Exact { floor, frac } => 2 * floor * floor + 2 * frac < self.ssthresh_x2 * floor,
            Wnd::Real { cwnd } => cwnd < self.ssthresh_x2 as f64 / 2.0,
        }
    }
}

impl CongestionControl for Tahoe {
    fn window(&self) -> u64 {
        let floor = match self.wnd {
            Wnd::Exact { floor, .. } => floor,
            Wnd::Real { cwnd } => cwnd as u64,
        };
        floor.min(self.maxwnd)
    }

    fn cwnd(&self) -> f64 {
        self.cwnd_value()
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh_x2 as f64 / 2.0
    }

    fn on_ack(&mut self) {
        let slow = self.below_threshold();
        match &mut self.wnd {
            Wnd::Exact { floor, frac } => {
                if slow {
                    *floor = (*floor + 1).min(self.maxwnd);
                    *frac = 0;
                } else {
                    *frac += 1;
                    if *frac >= *floor {
                        *floor = (*floor + 1).min(self.maxwnd);
                        *frac = 0;
                    }
                }
            }
            Wnd::Real { cwnd } => {
                if slow {
                    *cwnd += 1.0;
                } else {
                    *cwnd += 1.0 / *cwnd; // the original, anomalous rule
                }
                if *cwnd > self.maxwnd as f64 {
                    *cwnd = self.maxwnd as f64;
                }
            }
        }
    }

    fn on_loss(&mut self, _kind: LossKind) {
        // ssthresh = max(min(cwnd/2, maxwnd), 2); cwnd = 1.   (paper §2.1)
        let half_x2 = match self.wnd {
            // 2·(cwnd/2) = cwnd = floor + frac/floor → round down to
            // half-packet resolution: (2·floor² + 2·frac) / (2·floor).
            Wnd::Exact { floor, frac } => (2 * floor * floor + 2 * frac) / (2 * floor),
            Wnd::Real { cwnd } => cwnd as u64, // ⌊cwnd⌋ half-packets = cwnd/2
        };
        self.ssthresh_x2 = half_x2.min(self.maxwnd * 2).max(4);
        self.wnd = match self.rule {
            IncrementRule::Modified => Wnd::Exact { floor: 1, frac: 0 },
            IncrementRule::Original => Wnd::Real { cwnd: 1.0 },
        };
    }

    fn in_slow_start(&self) -> bool {
        self.below_threshold()
    }

    fn name(&self) -> &'static str {
        match self.rule {
            IncrementRule::Modified => "tahoe-modified",
            IncrementRule::Original => "tahoe-original",
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        match self.wnd {
            Wnd::Exact { floor, frac } => {
                w.write_u8(0);
                w.write_u64(floor);
                w.write_u64(frac);
            }
            Wnd::Real { cwnd } => {
                w.write_u8(1);
                w.write_f64(cwnd);
            }
        }
        w.write_u64(self.ssthresh_x2);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let wnd = match (r.read_u8()?, self.rule) {
            (0, IncrementRule::Modified) => Wnd::Exact {
                floor: r.read_u64()?,
                frac: r.read_u64()?,
            },
            (1, IncrementRule::Original) => Wnd::Real {
                cwnd: r.read_f64()?,
            },
            (tag @ (0 | 1), _) => {
                return Err(SnapError::Mismatch(format!(
                    "tahoe window representation {tag} does not match rule {:?}",
                    self.rule
                )))
            }
            (tag, _) => return Err(SnapError::Corrupt(format!("tahoe window tag {tag}"))),
        };
        self.wnd = wnd;
        self.ssthresh_x2 = r.read_u64()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FixedWindow
// ---------------------------------------------------------------------------

/// A constant window; ignores every congestion signal. The idealization of
/// the paper's Figures 8–9 used to isolate ACK-compression from the
/// congestion-control dynamics.
pub struct FixedWindow {
    wnd: u64,
}

impl CongestionControl for FixedWindow {
    fn window(&self) -> u64 {
        self.wnd
    }
    fn cwnd(&self) -> f64 {
        self.wnd as f64
    }
    fn ssthresh(&self) -> f64 {
        self.wnd as f64
    }
    fn on_ack(&mut self) {}
    fn on_loss(&mut self, _kind: LossKind) {}
    fn in_slow_start(&self) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "fixed-window"
    }
    fn save_state(&self, _w: &mut SnapWriter) {
        // The window is structural; there is no mutable state.
    }
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------------

/// Tahoe plus fast recovery (4.3-Reno, Jacobson 1990).
///
/// On the third duplicate ACK: `ssthresh = max(min(cwnd/2, maxwnd), 2)`,
/// `cwnd = ssthresh + 3`, and each further duplicate inflates `cwnd` by one
/// (the dup ACK means a packet left the network). The first ACK of new data
/// deflates `cwnd` back to `ssthresh`. Timeouts fall back to the Tahoe
/// reduction (`cwnd = 1`).
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
    maxwnd: u64,
    in_recovery: bool,
}

impl Reno {
    /// A fresh Reno connection.
    pub fn new(maxwnd: u64) -> Self {
        assert!(maxwnd >= 2, "maxwnd must be at least 2");
        Reno {
            cwnd: 1.0,
            ssthresh: maxwnd as f64,
            maxwnd,
            in_recovery: false,
        }
    }
}

impl CongestionControl for Reno {
    fn window(&self) -> u64 {
        (self.cwnd as u64).min(self.maxwnd)
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self) {
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd.floor().max(1.0);
        }
        if self.cwnd > self.maxwnd as f64 {
            self.cwnd = self.maxwnd as f64;
        }
    }

    fn on_dupack(&mut self) {
        if self.in_recovery {
            self.cwnd += 1.0; // window inflation
        }
    }

    fn on_loss(&mut self, kind: LossKind) {
        self.ssthresh = (self.cwnd / 2.0).min(self.maxwnd as f64).max(2.0);
        match kind {
            LossKind::DupAck => {
                self.cwnd = self.ssthresh + 3.0;
                self.in_recovery = true;
            }
            LossKind::Timeout => {
                self.cwnd = 1.0;
                self.in_recovery = false;
            }
        }
    }

    fn on_recovery_ack(&mut self) {
        if self.in_recovery {
            self.cwnd = self.ssthresh; // deflate
            self.in_recovery = false;
        }
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn name(&self) -> &'static str {
        "reno"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.write_f64(self.cwnd);
        w.write_f64(self.ssthresh);
        w.write_bool(self.in_recovery);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cwnd = r.read_f64()?;
        self.ssthresh = r.read_f64()?;
        self.in_recovery = r.read_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tahoe_starts_in_slow_start() {
        let t = Tahoe::new(IncrementRule::Modified, 1000);
        assert_eq!(t.window(), 1);
        assert!(t.in_slow_start());
        assert_eq!(t.ssthresh(), 1000.0);
    }

    #[test]
    fn slow_start_doubles_per_epoch() {
        // Acking a full window's worth of packets doubles the window.
        let mut t = Tahoe::new(IncrementRule::Modified, 1000);
        let mut acked = 0;
        for _epoch in 0..4 {
            let w = t.window();
            for _ in 0..w {
                t.on_ack();
                acked += 1;
            }
        }
        let _ = acked;
        assert_eq!(t.window(), 16, "1 → 2 → 4 → 8 → 16");
    }

    #[test]
    fn loss_halves_threshold_and_resets_window() {
        let mut t = Tahoe::new(IncrementRule::Modified, 1000);
        for _ in 0..20 {
            t.on_ack(); // cwnd reaches 21 in slow start
        }
        assert_eq!(t.window(), 21);
        t.on_loss(LossKind::DupAck);
        assert_eq!(t.window(), 1);
        assert_eq!(t.ssthresh(), 10.5);
        assert!(t.in_slow_start());
    }

    #[test]
    fn modified_rule_advances_floor_once_per_epoch() {
        let mut t = Tahoe::new(IncrementRule::Modified, 1000);
        // Force into avoidance at cwnd 4: grow to 4 then fake a loss at 8.
        for _ in 0..7 {
            t.on_ack();
        }
        t.on_loss(LossKind::DupAck); // ssthresh = 4, cwnd = 1
        assert_eq!(t.ssthresh(), 4.0);
        // Slow start back: 1→2→3→4 (3 ACKs), then avoidance.
        for _ in 0..3 {
            t.on_ack();
        }
        assert_eq!(t.window(), 4);
        assert!(!t.in_slow_start());
        // One epoch = window() ACKs → floor += 1, exactly.
        for w in 4..10u64 {
            assert_eq!(t.window(), w);
            for _ in 0..w {
                t.on_ack();
            }
            assert_eq!(t.window(), w + 1, "modified rule: +1 per epoch");
        }
    }

    #[test]
    fn original_rule_can_stall_floor_for_an_epoch() {
        // The §2.1 anomaly: with cwnd += 1/cwnd, after an epoch of w ACKs
        // starting from integer w, cwnd < w+1 (since increments are all
        // < 1/w except the first). ⌊cwnd⌋ may remain w.
        let mut t = Tahoe::new(IncrementRule::Original, 1000);
        for _ in 0..7 {
            t.on_ack();
        }
        t.on_loss(LossKind::DupAck); // ssthresh 4
        for _ in 0..3 {
            t.on_ack(); // back to 4, entering avoidance
        }
        assert_eq!(t.window(), 4);
        for _ in 0..4 {
            t.on_ack(); // one epoch of avoidance
        }
        // 4 + 1/4 + ... < 5 → still 4: the anomaly.
        assert_eq!(t.window(), 4, "original rule stalls ⌊cwnd⌋");
    }

    /// Side-by-side pin of the §2.1 increment anomaly: drive an Original-
    /// and a Modified-rule controller through the *identical* ACK/loss
    /// script and watch them diverge. Starting an avoidance epoch at
    /// integer window w, `cwnd += 1/cwnd` accumulates strictly less than
    /// 1 over the w ACKs after the first (each increment < 1/w), so
    /// `⌊cwnd⌋` can stall at w for the whole epoch, while
    /// `cwnd += 1/⌊cwnd⌋` advances the floor by exactly one. This is the
    /// bias the paper corrects and `abl-increment` measures end-to-end.
    #[test]
    fn original_stalls_while_modified_advances_from_identical_state() {
        let mut orig = Tahoe::new(IncrementRule::Original, 1000);
        let mut modi = Tahoe::new(IncrementRule::Modified, 1000);
        let both = |o: &mut Tahoe, m: &mut Tahoe, acks: u64| {
            for _ in 0..acks {
                o.on_ack();
                m.on_ack();
            }
        };
        // Identical preamble: grow to 8, lose, slow-start back to
        // avoidance at window 4.
        both(&mut orig, &mut modi, 7);
        orig.on_loss(LossKind::DupAck);
        modi.on_loss(LossKind::DupAck);
        both(&mut orig, &mut modi, 3);
        assert_eq!(orig.window(), modi.window());
        assert_eq!(orig.window(), 4);
        assert!(!orig.in_slow_start() && !modi.in_slow_start());
        // One epoch of w ACKs each: Modified's floor moves to 5,
        // Original's stalls at 4 — same inputs, different windows.
        both(&mut orig, &mut modi, 4);
        assert_eq!(modi.window(), 5, "modified: exactly +1 per epoch");
        assert_eq!(orig.window(), 4, "original: floor stalled");
        // The stall is not a one-off: feeding both the *same* per-epoch
        // ACK count (the modified window, the larger) keeps Original's
        // effective window a full packet (or more) behind.
        for _ in 0..3 {
            let w = modi.window();
            both(&mut orig, &mut modi, w);
        }
        assert_eq!(modi.window(), 8);
        assert!(
            orig.window() < modi.window(),
            "original ({}) must lag modified ({}) after identical inputs",
            orig.window(),
            modi.window()
        );
    }

    #[test]
    fn ssthresh_floor_is_two() {
        // Paper footnote 9: a second loss with cwnd = 1 drives ssthresh to
        // its minimum of 2.
        let mut t = Tahoe::new(IncrementRule::Modified, 1000);
        for _ in 0..10 {
            t.on_ack();
        }
        t.on_loss(LossKind::DupAck);
        assert_eq!(t.window(), 1);
        t.on_loss(LossKind::Timeout); // second loss, cwnd still 1
        assert_eq!(t.ssthresh(), 2.0);
        assert_eq!(t.window(), 1);
    }

    #[test]
    fn ssthresh_capped_by_maxwnd() {
        let mut t = Tahoe::new(IncrementRule::Modified, 8);
        for _ in 0..100 {
            t.on_ack();
        }
        assert_eq!(t.window(), 8, "window capped at maxwnd");
        t.on_loss(LossKind::DupAck);
        assert!(t.ssthresh() <= 8.0);
    }

    #[test]
    fn exact_representation_has_no_drift() {
        // Run a thousand avoidance epochs; floor must hit exactly
        // start + 1000.
        let mut t = Tahoe::new(IncrementRule::Modified, 100_000);
        for _ in 0..2 {
            t.on_ack();
        }
        t.on_loss(LossKind::DupAck); // ssthresh small → avoidance soon
        t.on_ack(); // cwnd 2 = ssthresh? ssthresh was 1.5→max(,2)=2
        let start = t.window();
        for _ in 0..1000 {
            let w = t.window();
            for _ in 0..w {
                t.on_ack();
            }
        }
        assert_eq!(t.window(), start + 1000);
    }

    #[test]
    fn fixed_window_is_inert() {
        let mut f = FixedWindow { wnd: 30 };
        f.on_ack();
        f.on_loss(LossKind::Timeout);
        f.on_dupack();
        assert_eq!(f.window(), 30);
        assert_eq!(f.cwnd(), 30.0);
        assert!(!f.in_slow_start());
    }

    #[test]
    fn cckind_builders() {
        assert_eq!(CcKind::default().build(1000).name(), "tahoe-modified");
        assert_eq!(
            CcKind::Tahoe {
                rule: IncrementRule::Original
            }
            .build(1000)
            .name(),
            "tahoe-original"
        );
        assert_eq!(CcKind::FixedWindow { wnd: 5 }.build(1000).window(), 5);
        assert_eq!(CcKind::Reno.build(1000).name(), "reno");
    }

    #[test]
    fn reno_fast_recovery_inflates_and_deflates() {
        let mut r = Reno::new(1000);
        for _ in 0..15 {
            r.on_ack(); // cwnd 16
        }
        r.on_loss(LossKind::DupAck);
        assert_eq!(r.ssthresh(), 8.0);
        assert_eq!(r.cwnd(), 11.0, "ssthresh + 3");
        r.on_dupack();
        r.on_dupack();
        assert_eq!(r.cwnd(), 13.0, "inflation");
        r.on_recovery_ack();
        assert_eq!(r.cwnd(), 8.0, "deflation to ssthresh");
    }

    #[test]
    fn reno_timeout_resets_like_tahoe() {
        let mut r = Reno::new(1000);
        for _ in 0..15 {
            r.on_ack();
        }
        r.on_loss(LossKind::Timeout);
        assert_eq!(r.window(), 1);
        assert_eq!(r.ssthresh(), 8.0);
    }

    #[test]
    fn tahoe_window_never_zero_or_above_maxwnd() {
        let mut t = Tahoe::new(IncrementRule::Modified, 50);
        for i in 0..10_000u32 {
            if i % 97 == 0 {
                t.on_loss(LossKind::DupAck);
            } else {
                t.on_ack();
            }
            assert!(t.window() >= 1);
            assert!(t.window() <= 50);
            assert!(t.ssthresh() >= 2.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Decbit
// ---------------------------------------------------------------------------

/// The DECbit congestion-avoidance policy (Jain, Ramakrishnan & Chiu).
///
/// Switches set a congestion bit on packets that see a queue beyond a
/// threshold; receivers echo the bit on ACKs; once per window's worth of
/// ACKs the sender looks at the marked fraction and applies
/// additive-increase/multiplicative-decrease:
///
/// ```text
/// if marked_fraction ≥ 0.5:  wnd ← 0.875 · wnd     (decrease)
/// else:                      wnd ← wnd + 1          (increase)
/// ```
///
/// The original DECnet scheme rarely saw packet loss (its feedback acts
/// before buffers fill); our links can still drop under transients, so a
/// detected loss applies the same multiplicative decrease a heavily-marked
/// window would (a conservative completion of the published policy, which
/// leaves loss handling to the transport).
pub struct Decbit {
    wnd: f64,
    maxwnd: u64,
    /// ACKs counted in the current decision cycle.
    acks: u64,
    /// Marked ACKs in the current cycle.
    marked: u64,
    /// Cycle length, latched at cycle start (a window's worth of ACKs).
    cycle: u64,
}

impl Decbit {
    /// A fresh DECbit connection (window 1, like the paper's TCPs).
    pub fn new(maxwnd: u64) -> Self {
        assert!(maxwnd >= 2, "maxwnd must be at least 2");
        Decbit {
            wnd: 1.0,
            maxwnd,
            acks: 0,
            marked: 0,
            cycle: 1,
        }
    }

    fn decide(&mut self) {
        if self.marked * 2 >= self.cycle {
            self.wnd = (self.wnd * 0.875).max(1.0);
        } else {
            self.wnd = (self.wnd + 1.0).min(self.maxwnd as f64);
        }
        self.acks = 0;
        self.marked = 0;
        self.cycle = (self.wnd as u64).max(1);
    }
}

impl CongestionControl for Decbit {
    fn window(&self) -> u64 {
        (self.wnd as u64).clamp(1, self.maxwnd)
    }

    fn cwnd(&self) -> f64 {
        self.wnd
    }

    fn ssthresh(&self) -> f64 {
        // No slow-start threshold in DECbit; report the ceiling for plots.
        self.maxwnd as f64
    }

    fn on_ack(&mut self) {
        self.on_ack_marked(false);
    }

    fn on_ack_marked(&mut self, ce: bool) {
        self.acks += 1;
        self.marked += ce as u64;
        if self.acks >= self.cycle {
            self.decide();
        }
    }

    fn on_loss(&mut self, _kind: LossKind) {
        self.wnd = (self.wnd * 0.875).max(1.0);
        self.acks = 0;
        self.marked = 0;
        self.cycle = (self.wnd as u64).max(1);
    }

    fn in_slow_start(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "decbit"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.write_f64(self.wnd);
        w.write_u64(self.acks);
        w.write_u64(self.marked);
        w.write_u64(self.cycle);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.wnd = r.read_f64()?;
        self.acks = r.read_u64()?;
        self.marked = r.read_u64()?;
        self.cycle = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod decbit_tests {
    use super::*;

    #[test]
    fn unmarked_acks_grow_additively() {
        let mut d = Decbit::new(1000);
        assert_eq!(d.window(), 1);
        // One cycle of 1 unmarked ACK → wnd 2; then 2 ACKs → 3; etc.
        for expect in 2..=10u64 {
            for _ in 0..expect - 1 {
                d.on_ack_marked(false);
            }
            assert_eq!(d.window(), expect, "additive increase");
        }
    }

    #[test]
    fn majority_marked_cycle_decreases() {
        let mut d = Decbit::new(1000);
        // Grow to 8.
        while d.window() < 8 {
            d.on_ack_marked(false);
        }
        let w = d.cwnd();
        for _ in 0..8 {
            d.on_ack_marked(true);
        }
        assert!(
            (d.cwnd() - w * 0.875).abs() < 1e-9,
            "multiplicative decrease"
        );
    }

    #[test]
    fn minority_marking_still_grows() {
        let mut d = Decbit::new(1000);
        while d.window() < 10 {
            d.on_ack_marked(false);
        }
        let w = d.window();
        // 4 of 10 marked: below the 50 % rule.
        for i in 0..10 {
            d.on_ack_marked(i < 4);
        }
        assert_eq!(d.window(), w + 1);
    }

    #[test]
    fn window_never_below_one() {
        let mut d = Decbit::new(1000);
        for _ in 0..100 {
            d.on_ack_marked(true);
        }
        assert_eq!(d.window(), 1);
        assert!(d.cwnd() >= 1.0);
    }

    #[test]
    fn loss_applies_decrease() {
        let mut d = Decbit::new(1000);
        while d.window() < 16 {
            d.on_ack_marked(false);
        }
        let w = d.cwnd();
        d.on_loss(LossKind::Timeout);
        assert!((d.cwnd() - w * 0.875).abs() < 1e-9);
    }

    #[test]
    fn window_capped_at_maxwnd() {
        let mut d = Decbit::new(4);
        for _ in 0..100 {
            d.on_ack_marked(false);
        }
        assert_eq!(d.window(), 4);
    }

    #[test]
    fn cckind_builds_decbit() {
        assert_eq!(CcKind::Decbit.build(100).name(), "decbit");
    }
}
