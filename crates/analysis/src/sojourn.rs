//! Per-packet queueing delay (sojourn) at a channel.
//!
//! §4.3.1 explains the two-way utilization plateau through the *effective
//! pipe*: "whenever an ACK packet has to wait in a queue, the queueing
//! delay has the same effect as increasing the pipe size". This module
//! measures exactly that wait — the time from a packet's acceptance into a
//! buffer to the end of its serialization — so the experiments can show
//! the ACK sojourn growing with the other connection's window (and hence
//! with the buffer), which is why bigger buffers never help.

use td_engine::{SimDuration, SimTime};
use td_net::{ChannelId, Packet, Trace, TraceEvent};

/// One packet's passage through a channel buffer.
#[derive(Clone, Copy, Debug)]
pub struct Sojourn {
    /// The packet.
    pub pkt: Packet,
    /// When it was accepted into the buffer.
    pub enqueued: SimTime,
    /// Queueing + serialization time (enqueue → TxEnd).
    pub delay: SimDuration,
}

/// All completed sojourns at `ch` whose *departure* falls in `[t0, t1]`.
pub fn sojourns(trace: &Trace, ch: ChannelId, t0: SimTime, t1: SimTime) -> Vec<Sojourn> {
    // Enqueue→TxEnd pairing via a FIFO-per-channel assumption does not
    // hold for Fair Queueing, so match on packet identity.
    let mut pending: std::collections::HashMap<td_net::PacketId, SimTime> =
        std::collections::HashMap::new();
    let mut out = Vec::new();
    for r in trace.records() {
        match r.ev {
            TraceEvent::Enqueue { ch: c, pkt, .. } if c == ch => {
                pending.insert(pkt.id, r.t);
            }
            TraceEvent::TxEnd { ch: c, pkt, .. } if c == ch => {
                if let Some(enq) = pending.remove(&pkt.id) {
                    if r.t >= t0 && r.t <= t1 {
                        out.push(Sojourn {
                            pkt,
                            enqueued: enq,
                            delay: r.t.since(enq),
                        });
                    }
                }
            }
            TraceEvent::Drop { pkt, .. } => {
                pending.remove(&pkt.id);
            }
            _ => {}
        }
    }
    out
}

/// Mean sojourn of ACK packets at a channel over the window, in seconds
/// (`None` if no ACK completed). The §4.3.1 "effective pipe" contribution.
pub fn mean_ack_sojourn(trace: &Trace, ch: ChannelId, t0: SimTime, t1: SimTime) -> Option<f64> {
    let s: Vec<f64> = sojourns(trace, ch, t0, t1)
        .into_iter()
        .filter(|s| s.pkt.is_ack())
        .map(|s| s.delay.as_secs_f64())
        .collect();
    if s.is_empty() {
        None
    } else {
        Some(crate::stats::mean(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_net::{ConnId, NodeId, PacketId, PacketKind};

    fn pkt(id: u64, kind: PacketKind) -> Packet {
        Packet {
            id: PacketId(id),
            conn: ConnId(0),
            kind,
            seq: id,
            ack: 0,
            size: if kind == PacketKind::Ack { 50 } else { 500 },
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: SimTime::ZERO,
            retx: false,
            ce: false,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pairs_enqueue_with_txend() {
        let mut tr = Trace::new();
        let ch = ChannelId(0);
        let p = pkt(1, PacketKind::Data);
        tr.push(
            t(100),
            TraceEvent::Enqueue {
                ch,
                pkt: p,
                qlen_after: 1,
            },
        );
        tr.push(
            t(180),
            TraceEvent::TxEnd {
                ch,
                pkt: p,
                qlen_after: 0,
            },
        );
        let s = sojourns(&tr, ch, SimTime::ZERO, t(1000));
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].delay, SimDuration::from_millis(80));
        assert_eq!(s[0].enqueued, t(100));
    }

    #[test]
    fn dropped_packets_have_no_sojourn() {
        let mut tr = Trace::new();
        let ch = ChannelId(0);
        let p = pkt(1, PacketKind::Data);
        tr.push(
            t(100),
            TraceEvent::Enqueue {
                ch,
                pkt: p,
                qlen_after: 1,
            },
        );
        tr.push(
            t(120),
            TraceEvent::Drop {
                ch,
                pkt: p,
                reason: td_net::DropReason::BufferFull,
                qlen: 20,
            },
        );
        assert!(sojourns(&tr, ch, SimTime::ZERO, t(1000)).is_empty());
    }

    #[test]
    fn window_filters_departures() {
        let mut tr = Trace::new();
        let ch = ChannelId(0);
        for (id, enq, dep) in [(1u64, 0u64, 100u64), (2, 100, 600)] {
            let p = pkt(id, PacketKind::Data);
            tr.push(
                t(enq),
                TraceEvent::Enqueue {
                    ch,
                    pkt: p,
                    qlen_after: 1,
                },
            );
            tr.push(
                t(dep),
                TraceEvent::TxEnd {
                    ch,
                    pkt: p,
                    qlen_after: 0,
                },
            );
        }
        let s = sojourns(&tr, ch, t(500), t(1000));
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].pkt.id, PacketId(2));
    }

    #[test]
    fn ack_mean_only_counts_acks() {
        let mut tr = Trace::new();
        let ch = ChannelId(0);
        let d = pkt(1, PacketKind::Data);
        let a = pkt(2, PacketKind::Ack);
        tr.push(
            t(0),
            TraceEvent::Enqueue {
                ch,
                pkt: d,
                qlen_after: 1,
            },
        );
        tr.push(
            t(80),
            TraceEvent::TxEnd {
                ch,
                pkt: d,
                qlen_after: 0,
            },
        );
        tr.push(
            t(80),
            TraceEvent::Enqueue {
                ch,
                pkt: a,
                qlen_after: 1,
            },
        );
        tr.push(
            t(120),
            TraceEvent::TxEnd {
                ch,
                pkt: a,
                qlen_after: 0,
            },
        );
        let m = mean_ack_sojourn(&tr, ch, SimTime::ZERO, t(1000)).unwrap();
        assert!((m - 0.040).abs() < 1e-9);
        assert!(mean_ack_sojourn(&tr, ChannelId(9), SimTime::ZERO, t(1000)).is_none());
    }
}
