//! Design ablations.
//!
//! Three counterfactuals the paper argues or implies but does not plot:
//!
//! * **Pacing** (§1 footnote 2, §6): the paper conjectures the phenomena
//!   afflict any *nonpaced* window algorithm and that future designs need
//!   a clocking source other than ACKs. We run the same 1+1 two-way
//!   scenario with a sender that paces data packets at the bottleneck
//!   service rate and show ACK-compression's queue signature collapses
//!   and utilization rises.
//! * **Increment rule** (§2.1): the paper modified BSD's congestion-
//!   avoidance increment from `1/cwnd` to `1/⌊cwnd⌋` and asserts "none of
//!   the qualitative conclusions we reach will be affected by the change."
//!   We run both and compare.
//! * **Gateway discipline** (related work \[2,3,4,5,10,18\]): Fair Queueing
//!   interleaves the two directions' clusters at the switch, breaking the
//!   precondition for ACK-compression; Random Drop does not.

use crate::report::Report;
use crate::scenario::{ConnSpec, Scenario, DATA_SERVICE};
use td_analysis::{ack_spacing, compression, deliveries};
use td_core::{CcKind, IncrementRule, ReceiverConfig, SenderConfig};
use td_engine::SimDuration;
use td_net::DisciplineKind;

fn base_scenario(seed: u64, duration_s: u64) -> Scenario {
    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    sc.seed = seed;
    sc.duration = SimDuration::from_secs(duration_s);
    sc.warmup = SimDuration::from_secs(duration_s / 5);
    sc
}

struct Measured {
    util_mean: f64,
    compressed: f64,
    fluctuation: f64,
    clustering: f64,
}

fn measure(run: &crate::scenario::Run) -> Measured {
    let c1 = run.fwd[0];
    let acks: Vec<_> = deliveries(run.world.trace(), run.host1, c1, true)
        .into_iter()
        .filter(|d| d.t >= run.t0 && d.t <= run.t1)
        .collect();
    let sp = ack_spacing(&acks, DATA_SERVICE);
    let q1 = run.queue1();
    Measured {
        util_mean: (run.util12() + run.util21()) / 2.0,
        compressed: sp.map(|s| s.compressed_fraction).unwrap_or(0.0),
        fluctuation: compression::queue_fluctuation(&q1, run.t0, run.t1, DATA_SERVICE),
        clustering: run.clustering12_all().unwrap_or(0.0),
    }
}

/// Ablation A — pacing versus the nonpaced paper sender.
pub fn report_pacing(seed: u64, duration_s: u64) -> Report {
    let mut rep = Report::new(
        "abl-pacing",
        "Pacing ablation: the nonpaced conjecture's counterfactual (paper §1/§6)",
        &format!("seed {seed}, {duration_s} s per cell, 1+1 two-way, tau = 0.01 s, B = 20"),
    );
    let nonpaced = measure(&base_scenario(seed, duration_s).run());

    let mut paced_sc = base_scenario(seed, duration_s);
    let paced_spec = ConnSpec {
        sender: SenderConfig {
            pacing: Some(DATA_SERVICE),
            ..SenderConfig::paper()
        },
        receiver: ReceiverConfig::paper(),
    };
    paced_sc.fwd = vec![paced_spec];
    paced_sc.rev = vec![paced_spec];
    let paced = measure(&paced_sc.run());

    // Note the metric choice: a queue measured in *packets* falls fast
    // whenever adjacent ACKs drain (8 ms each), paced or not, so raw
    // fluctuation is not the clean signature — cluster contiguity and ACK
    // spacing are.
    rep.check(
        "cluster contiguity at the bottleneck (nonpaced -> paced)",
        "pacing dissolves the clusters that compression requires",
        format!("{:.2} -> {:.2}", nonpaced.clustering, paced.clustering),
        paced.clustering < nonpaced.clustering * 0.8,
    );
    rep.check(
        "compressed ACK fraction (nonpaced -> paced)",
        "pacing restores ACK spacing",
        format!(
            "{:.0} % -> {:.0} %",
            nonpaced.compressed * 100.0,
            paced.compressed * 100.0
        ),
        paced.compressed < nonpaced.compressed * 0.5,
    );
    rep.check(
        "mean bottleneck utilization (nonpaced -> paced)",
        "pacing raises utilization above the ~0.70 plateau",
        format!("{:.3} -> {:.3}", nonpaced.util_mean, paced.util_mean),
        paced.util_mean > nonpaced.util_mean + 0.05,
    );
    rep.info(
        "queue fluctuation per service time (nonpaced -> paced)",
        "packet-count queues fall fast whenever ACKs drain; see contiguity row",
        format!(
            "{:.0} -> {:.0} packets",
            nonpaced.fluctuation, paced.fluctuation
        ),
    );
    rep
}

/// Ablation B — the paper's modified increment vs the original BSD rule.
pub fn report_increment(seed: u64, duration_s: u64) -> Report {
    let mut rep = Report::new(
        "abl-increment",
        "Avoidance-increment ablation: 1/floor(cwnd) vs 1/cwnd (paper §2.1)",
        &format!("seed {seed}, {duration_s} s per cell, 1+1 two-way, tau = 0.01 s, B = 20"),
    );
    let modified = measure(&base_scenario(seed, duration_s).run());

    let mut orig_sc = base_scenario(seed, duration_s);
    let orig_spec = ConnSpec {
        sender: SenderConfig {
            cc: CcKind::Tahoe {
                rule: IncrementRule::Original,
            },
            ..SenderConfig::paper()
        },
        receiver: ReceiverConfig::paper(),
    };
    orig_sc.fwd = vec![orig_spec];
    orig_sc.rev = vec![orig_spec];
    let original = measure(&orig_sc.run());

    rep.check(
        "mean utilization (modified vs original)",
        "same qualitative behaviour (paper: conclusions unaffected)",
        format!("{:.3} vs {:.3}", modified.util_mean, original.util_mean),
        (modified.util_mean - original.util_mean).abs() < 0.12,
    );
    rep.check(
        "ACK-compression present under both rules",
        "yes",
        format!(
            "compressed {:.0} % vs {:.0} %",
            modified.compressed * 100.0,
            original.compressed * 100.0
        ),
        modified.compressed > 0.25 && original.compressed > 0.25,
    );
    rep.check(
        "square waves present under both rules",
        "yes",
        format!(
            "{:.0} vs {:.0} packets",
            modified.fluctuation, original.fluctuation
        ),
        modified.fluctuation >= 4.0 && original.fluctuation >= 4.0,
    );
    rep
}

/// Ablation C — gateway discipline: DropTail vs RandomDrop vs FairQueueing.
pub fn report_discipline(seed: u64, duration_s: u64) -> Report {
    let mut rep = Report::new(
        "abl-discipline",
        "Gateway-discipline ablation: FIFO drop-tail vs Random Drop vs Fair Queueing",
        &format!("seed {seed}, {duration_s} s per cell, 1+1 two-way, tau = 0.01 s, B = 20"),
    );
    let mut cells = Vec::new();
    for disc in [
        DisciplineKind::DropTail,
        DisciplineKind::RandomDrop,
        DisciplineKind::FairQueueing,
    ] {
        let mut sc = base_scenario(seed, duration_s);
        sc.discipline = disc;
        let m = measure(&sc.run());
        rep.info(
            &format!("{disc:?}: util / compressed / fluctuation"),
            "-",
            format!(
                "{:.3} / {:.0} % / {:.0} pkts",
                m.util_mean,
                m.compressed * 100.0,
                m.fluctuation
            ),
        );
        cells.push((disc, m));
    }
    let droptail = &cells[0].1;
    let randomdrop = &cells[1].1;
    let fq = &cells[2].1;
    rep.check(
        "Random Drop does not cure ACK-compression",
        "compression is a FIFO-ordering phenomenon, not a drop-policy one",
        format!(
            "compressed {:.0} % (vs {:.0} % drop-tail)",
            randomdrop.compressed * 100.0,
            droptail.compressed * 100.0
        ),
        randomdrop.compressed > droptail.compressed * 0.5,
    );
    rep.check(
        "Fair Queueing interleaves the clusters",
        "per-flow service order breaks cluster contiguity at the switch",
        format!(
            "clustering {:.2} (vs {:.2} drop-tail)",
            fq.clustering, droptail.clustering
        ),
        fq.clustering < droptail.clustering,
    );
    rep.check(
        "Fair Queueing reduces ACK-compression",
        "ACKs no longer wait behind whole data clusters",
        format!(
            "compressed {:.0} % (vs {:.0} % drop-tail)",
            fq.compressed * 100.0,
            droptail.compressed * 100.0
        ),
        fq.compressed < droptail.compressed * 0.8,
    );
    rep
}

/// Ablation D — RED versus drop-tail on the one-way Figure 2 scenario.
///
/// Drop-tail makes every connection lose in the same instant the buffer
/// fills — the loss synchronization of Figure 2 (and of the phase-effects
/// study the paper cites as \[4\]). RED was designed to break precisely
/// that: drops become probabilistic and spread over time, so connections
/// back off at different moments.
pub fn report_red(seed: u64, duration_s: u64) -> Report {
    use td_analysis::epochs::{detect_epochs, loss_synchronization};

    let mut rep = Report::new(
        "abl-red",
        "RED ablation: early random drops break loss synchronization",
        &format!("seed {seed}, {duration_s} s per cell, 3 one-way connections, tau = 1 s, B = 20"),
    );

    let build = |disc: DisciplineKind| {
        let mut sc = Scenario::paper(td_engine::SimDuration::from_secs(1), Some(20))
            .with_fwd(3, ConnSpec::paper());
        sc.discipline = disc;
        sc.seed = seed;
        sc.duration = td_engine::SimDuration::from_secs(duration_s);
        sc.warmup = td_engine::SimDuration::from_secs(duration_s / 5);
        sc
    };

    let dt = build(DisciplineKind::DropTail).run();
    let red = build(DisciplineKind::Red).run();

    let gap = td_engine::SimDuration::from_secs(10);
    let sync_dt = loss_synchronization(&detect_epochs(&dt.drops(), gap), &dt.fwd);
    let sync_red = loss_synchronization(&detect_epochs(&red.drops(), gap), &red.fwd);
    rep.check(
        "loss-synchronization fraction (drop-tail -> RED)",
        "RED decouples the losses that drop-tail synchronizes",
        format!("{sync_dt:.2} -> {sync_red:.2}"),
        sync_dt >= 0.8 && sync_red <= sync_dt - 0.3,
    );

    let (u_dt, u_red) = (dt.util12(), red.util12());
    rep.check(
        "utilization (drop-tail -> RED)",
        "comparable or better under RED",
        format!("{u_dt:.3} -> {u_red:.3}"),
        u_red > u_dt - 0.08,
    );

    let q_dt = dt.queue1().mean_in(dt.t0, dt.t1).unwrap_or(f64::NAN);
    let q_red = red.queue1().mean_in(red.t0, red.t1).unwrap_or(f64::NAN);
    rep.check(
        "mean queue (drop-tail -> RED)",
        "RED holds the queue near its thresholds, well below the brim",
        format!("{q_dt:.1} -> {q_red:.1} packets"),
        q_red < q_dt,
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_ablation() {
        let rep = report_pacing(1, 300);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }

    #[test]
    fn increment_ablation() {
        let rep = report_increment(1, 300);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }

    #[test]
    fn red_ablation() {
        let rep = report_red(1, 600);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }

    #[test]
    fn discipline_ablation() {
        let rep = report_discipline(1, 300);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }
}
