//! `td-repro` — regenerate every figure and table of the paper.
//!
//! ```text
//! td-repro list                       # show available experiment ids
//! td-repro all [--full] [--seed N] [--jobs N] [--out DIR]
//! td-repro fig45 [--full] [--seed N] [--out DIR]
//! ```
//!
//! Experiments run on a worker pool fed by one global job budget
//! (`--jobs N`, default = available cores): workers claim a slot each
//! while executing experiments, and idle slots — fewer experiments than
//! jobs, or workers that ran out of work — are borrowed by
//! *in-experiment* replicate sweeps and batched trace analysis, so one
//! big experiment still fills the machine. Seeds are a pure function of
//! `(--seed, experiment id, replicate)` — never of scheduling — so
//! reports are byte-identical whatever the budget. The canonical
//! replicate runs with `--seed` verbatim; extra `--seeds` replicates get
//! decorrelated derived seeds. A panicking experiment is isolated: it
//! becomes one failed report (message preserved in `timings.json`) while
//! the rest of the batch completes. Reports print to stdout (metric
//! rows and ASCII figures) in registry order. With `--out DIR` the
//! underlying CSV series, a markdown summary, and a `timings.json`
//! observability report are written there; `--timings FILE` writes the
//! timings report to an explicit path. Both are written even when
//! experiments fail — a red batch is exactly when the observability
//! report matters.

use std::path::PathBuf;
use std::process::ExitCode;
use td_experiments::registry::{find, registry, Profile};
use td_experiments::runner::{default_jobs, run_batch, BatchResult, RunnerConfig};

struct Args {
    ids: Vec<String>,
    seed: u64,
    seeds: u64,
    jobs: usize,
    profile: Profile,
    out: Option<PathBuf>,
    timings: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut seed = 1;
    let mut seeds = 1;
    let mut jobs = default_jobs();
    let mut profile = Profile::Quick;
    let mut out = None;
    let mut timings = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--full" => profile = Profile::Full,
            "--quick" => profile = Profile::Quick,
            "--profile" => {
                let v = argv.next().ok_or("--profile needs quick|full")?;
                profile = match v.as_str() {
                    "quick" => Profile::Quick,
                    "full" => Profile::Full,
                    other => return Err(format!("bad profile: {other} (quick|full)")),
                };
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--seeds" => {
                let v = argv.next().ok_or("--seeds needs a count")?;
                seeds = v.parse().map_err(|_| format!("bad count: {v}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--jobs" => {
                let v = argv.next().ok_or("--jobs needs a count")?;
                jobs = v.parse().map_err(|_| format!("bad job count: {v}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--timings" => {
                let v = argv.next().ok_or("--timings needs a file path")?;
                timings = Some(PathBuf::from(v));
            }
            "--only" => {
                let v = argv.next().ok_or("--only needs an experiment id")?;
                ids.push(v);
            }
            "--all" => ids.push("all".into()),
            "-h" | "--help" => {
                ids.push("help".into());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag: {other}"));
            }
            other => ids.push(other.to_owned()),
        }
    }
    Ok(Args {
        ids,
        seed,
        seeds,
        jobs,
        profile,
        out,
        timings,
    })
}

fn usage() {
    println!("td-repro — reproduce Zhang/Shenker/Clark (SIGCOMM '91)");
    println!();
    println!("usage: td-repro <id|all|list> [--full] [--seed N] [--jobs N] [--out DIR]");
    println!();
    println!("experiments:");
    for e in registry() {
        println!("  {:<14} {}", e.id, e.about);
    }
    println!();
    println!("flags:");
    println!("  --full           paper-scale run lengths (default: quick)");
    println!("  --profile P      quick | full (same as --quick / --full)");
    println!("  --only ID        run a single experiment (same as the positional id)");
    println!("  --seed N         master seed for the canonical run (default 1)");
    println!("  --seeds N        run N replicates per experiment; replicate 0 uses");
    println!("                   --seed verbatim, the rest get derived seeds");
    println!("  --jobs N         global job budget: cross-experiment workers plus",);
    println!(
        "                   in-experiment sweep slots (default: cores = {})",
        default_jobs()
    );
    println!("  --out DIR        also write CSV data, a markdown summary, and timings.json");
    println!("  --timings FILE   write the timings/observability report to FILE");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    if args.ids.is_empty() || args.ids.iter().any(|i| i == "help") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.ids.iter().any(|i| i == "list") {
        for e in registry() {
            println!("{:<14} {}", e.id, e.about);
        }
        return ExitCode::SUCCESS;
    }

    let entries: Vec<_> = if args.ids.iter().any(|i| i == "all") {
        registry()
    } else {
        let mut picked = Vec::new();
        for id in &args.ids {
            match find(id) {
                Some(e) => picked.push(e),
                None => {
                    eprintln!("error: unknown experiment id: {id} (try `td-repro list`)");
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    let cfg = RunnerConfig {
        jobs: args.jobs,
        profile: args.profile,
        master_seed: args.seed,
        replicates: args.seeds,
        progress: true,
    };
    eprintln!(
        "running {} experiment(s) × {} seed(s) on a {}-job budget ...",
        entries.len(),
        args.seeds,
        cfg.jobs.max(1)
    );
    let batch = run_batch(&entries, &cfg);

    // Reports in registry order, independent of completion order.
    for r in batch.primary() {
        println!("{}", r.report);
        if !r.report.all_ok() {
            eprintln!(
                "MISMATCH in {} (seed {}): {:?}",
                r.id,
                r.seed,
                r.report.failures()
            );
        }
    }
    if args.seeds > 1 {
        for e in &entries {
            let (passes, total) = batch.pass_count(e.id);
            eprintln!("{}: {passes}/{total} seeds fully in-band", e.id);
        }
    }

    // Persist observability and outputs unconditionally — and
    // independently of each other — before deciding the exit code: a red
    // batch (mismatches or panics) is exactly when timings.json and the
    // partial outputs matter most.
    let mut io_failed = false;
    if let Err(e) = write_timings(&args, &batch) {
        eprintln!("error writing timings: {e}");
        io_failed = true;
    }
    if let Some(dir) = &args.out {
        let reports: Vec<_> = batch.primary().map(|r| r.report.clone()).collect();
        match write_outputs(dir, &reports) {
            Err(e) => {
                eprintln!("error writing outputs: {e}");
                io_failed = true;
            }
            Ok(()) => eprintln!("wrote CSVs and summary to {}", dir.display()),
        }
    }

    for (id, replicate, msg) in batch.panics() {
        eprintln!("PANIC in {id} (replicate {replicate}): {msg}");
    }
    let ok = batch.primary().filter(|r| r.report.all_ok()).count();
    eprintln!(
        "{ok}/{} experiments fully in-band, {:.1}s wall clock on a {}-job budget",
        batch.primary().count(),
        batch.total_wall_s,
        batch.jobs
    );
    if batch.all_ok() && !io_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_timings(args: &Args, batch: &BatchResult) -> std::io::Result<()> {
    let explicit = args.timings.clone();
    let implied = args.out.as_ref().map(|d| d.join("timings.json"));
    for path in explicit.into_iter().chain(implied) {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, batch.timings_json())?;
        eprintln!("wrote timings to {}", path.display());
    }
    Ok(())
}

fn write_outputs(dir: &std::path::Path, reports: &[td_experiments::Report]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut summary = String::from("# Reproduction summary\n\n");
    for rep in reports {
        summary.push_str(&format!(
            "## {} — {}\n\n{}\n",
            rep.id, rep.title, rep.config
        ));
        summary.push('\n');
        summary.push_str(&rep.markdown_table());
        summary.push('\n');
        for p in &rep.plots {
            summary.push_str("```\n");
            summary.push_str(p);
            summary.push_str("```\n\n");
        }
        for (name, contents) in &rep.csvs {
            std::fs::write(dir.join(name), contents)?;
        }
        for (name, bytes) in &rep.blobs {
            std::fs::write(dir.join(name), bytes)?;
        }
    }
    std::fs::write(dir.join("SUMMARY.md"), summary)
}
