//! # td-experiments — the paper's evaluation, reproduced
//!
//! One module per figure or in-text claim of Zhang, Shenker & Clark
//! (SIGCOMM '91). Each module exposes a `scenario(..)` builder and a
//! `report(..)` runner returning a [`Report`] of paper-vs-measured rows,
//! ASCII figures, and CSV exports. The `td-repro` binary drives them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod chaos;
pub mod conjecture;
pub mod crosstraffic;
pub mod decbit;
pub mod delayed_ack;
pub mod fig2;
pub mod fig3;
pub mod fig45;
pub mod fig67;
pub mod fig89;
pub mod journal;
pub mod modes;
pub mod multihop;
pub mod oneway_util;
pub mod piggyback;
pub mod registry;
pub mod reno;
pub mod report;
pub mod rtt_spread;
pub mod runner;
pub mod scenario;
pub mod short_flows;
pub mod simcli;
pub mod sweep;

pub use report::{Report, Row};
pub use scenario::{ConnSpec, Run, Scenario, ACK_SERVICE, DATA_SERVICE};
