//! Streaming/batch parity: every experiment converted to the trace-free
//! streaming path must render **byte-identically** to the legacy
//! batch-from-trace path — same check rows, same plots, same SVG/CSV
//! artifacts, same machine-readable metrics. This is the contract that
//! lets the registry run trace-off by default while the golden output
//! hash (which predates streaming) stays valid.

use td_experiments::{fig2, fig89, oneway_util, report::Report, scenario};

/// Byte-compare everything a report can emit.
fn assert_reports_identical(batch: &Report, stream: &Report, what: &str) {
    assert_eq!(
        format!("{batch}"),
        format!("{stream}"),
        "{what}: rendered report differs between batch and streaming"
    );
    assert_eq!(batch.csvs, stream.csvs, "{what}: CSV exports differ");
    assert_eq!(batch.blobs, stream.blobs, "{what}: blob exports differ");
    assert_eq!(batch.plots, stream.plots, "{what}: plots differ");
    assert_eq!(batch.metrics, stream.metrics, "{what}: metrics differ");
    assert_eq!(
        batch.diagnostics, stream.diagnostics,
        "{what}: diagnostics differ"
    );
}

#[test]
fn fig8_stream_matches_batch() {
    let batch = fig89::report_fig8_mode(1, 80, false);
    let stream = fig89::report_fig8_mode(1, 80, true);
    assert_reports_identical(&batch, &stream, "fig8");
}

#[test]
fn fig9_stream_matches_batch() {
    let batch = fig89::report_fig9_mode(1, 120, false);
    let stream = fig89::report_fig9_mode(1, 120, true);
    assert_reports_identical(&batch, &stream, "fig9");
}

#[test]
fn oneway_util_stream_matches_batch() {
    let batch = oneway_util::report_mode(1, 100, false);
    let stream = oneway_util::report_mode(1, 100, true);
    assert_reports_identical(&batch, &stream, "tbl-oneway-util");
}

#[test]
fn fig2_stream_matches_batch() {
    let batch = fig2::report_mode(1, 300, false);
    let stream = fig2::report_mode(1, 300, true);
    assert_reports_identical(&batch, &stream, "fig2");
}

/// Both paths live on one run: a scenario with the trace *on* and
/// streaming *on* must agree with itself measurement by measurement —
/// the fold-vs-extractor equality on a real TCP trace, bit for bit.
#[test]
fn streamed_run_agrees_with_its_own_trace() {
    let mut sc = fig2::scenario(3, 120);
    sc.stream = true; // record_trace stays true: both paths live
    let run = sc.run();
    assert!(!run.world.trace().is_empty(), "trace should be on");
    let m = run.stream.as_ref().expect("stream metrics present");
    // Compare every streamed measurement against a batch extraction
    // from the same run's trace.
    let trace = run.world.trace();
    assert_eq!(
        *m.queue(run.bottleneck_12),
        td_analysis::queue_series(trace, run.bottleneck_12)
    );
    assert_eq!(
        *m.queue(run.bottleneck_21),
        td_analysis::queue_series(trace, run.bottleneck_21)
    );
    for &c in &run.fwd {
        assert_eq!(*m.cwnd(c), td_analysis::cwnd_series(trace, c));
    }
    assert_eq!(
        m.utilization(run.bottleneck_12).to_bits(),
        td_analysis::utilization_in(trace, run.bottleneck_12, run.t0, run.t1).to_bits()
    );
    assert_eq!(
        m.utilization(run.bottleneck_21).to_bits(),
        td_analysis::utilization_in(trace, run.bottleneck_21, run.t0, run.t1).to_bits()
    );
    let batch_drops = td_analysis::drop_events(trace);
    assert_eq!(m.drops().len(), batch_drops.len());
    for (a, b) in m.drops().iter().zip(&batch_drops) {
        assert_eq!(
            (a.t, a.ch, a.conn, a.seq, a.is_data),
            (b.t, b.ch, b.conn, b.seq, b.is_data)
        );
    }
    let batch_deps = td_analysis::departures(trace, run.bottleneck_12);
    assert_eq!(m.departures(run.bottleneck_12).len(), batch_deps.len());
    for (a, b) in m.departures(run.bottleneck_12).iter().zip(&batch_deps) {
        assert_eq!((a.t, a.pkt.id, a.pkt.seq), (b.t, b.pkt.id, b.pkt.seq));
    }
}

/// A trace-off streaming run still produces the full metrics block: the
/// report renders with every check row populated, while the world holds
/// zero trace records.
#[test]
fn trace_off_run_produces_full_metrics() {
    let mut sc = scenario::Scenario::paper(td_engine::SimDuration::from_millis(10), Some(20))
        .with_fwd(1, scenario::ConnSpec::paper())
        .with_rev(1, scenario::ConnSpec::paper());
    sc.duration = td_engine::SimDuration::from_secs(30);
    sc.warmup = td_engine::SimDuration::from_secs(5);
    sc.stream = true;
    sc.record_trace = false;
    let run = sc.run();
    assert!(run.world.trace().is_empty(), "trace must stay off");
    assert_eq!(run.world.trace().capacity(), 0, "trace must not allocate");
    // Every Run measurement works without a trace.
    assert!(run.util12() > 0.1);
    assert!(run.util21() > 0.1);
    assert!(!run.queue1().is_empty());
    assert!(!run.queue2().is_empty());
    let (a, b) = (run.fwd[0], run.rev[0]);
    let (q1, q2, cw1, cw2) = run.queues_and_cwnds(a, b);
    assert_eq!(q1, run.queue1());
    assert_eq!(q2, run.queue2());
    assert!(!cw1.is_empty());
    assert!(!cw2.is_empty());
    let _ = run.drops();
    let _ = run.clustering12();
    let _ = run.clustering12_all();
    // And the full fig8 report renders trace-free with all rows present.
    let rep = fig89::report_fig8_mode(1, 60, true);
    assert!(rep.rows.len() >= 7, "metrics block incomplete: {rep}");
}
