//! The §4.3.3 conjecture — zero-length ACKs, fixed windows.
//!
//! For the idealized system with zero-length ACK packets and fixed windows
//! `W1 ≥ W2`, the paper conjectures exactly two regimes:
//!
//! 1. `W1 > W2 + 2P`: queues synchronized **out of phase**, exactly one
//!    line fully utilized;
//! 2. `W1 < W2 + 2P`: queues synchronized **in phase**, **neither** line
//!    fully utilized (strict inequality ⇒ strict underutilization).
//!
//! This module sweeps `(W1, W2, P)` across both regimes and checks the
//! utilization half of the conjecture (sharp and cheaply measurable) plus
//! the queue-phase half where the oscillation is strong enough to
//! classify.

use crate::report::Report;
use crate::scenario::{ConnSpec, Scenario};
use td_core::{ReceiverConfig, SenderConfig};
use td_engine::SimDuration;

/// Scenario: fixed windows with zero-length ACKs, infinite buffers.
pub fn scenario(seed: u64, duration_s: u64, tau: SimDuration, w1: u64, w2: u64) -> Scenario {
    let spec = |w| ConnSpec {
        sender: SenderConfig::fixed_window(w),
        receiver: ReceiverConfig::zero_ack(),
    };
    let mut sc = Scenario::paper(tau, None)
        .with_fwd(1, spec(w1))
        .with_rev(1, spec(w2));
    sc.seed = seed;
    sc.duration = SimDuration::from_secs(duration_s);
    sc.warmup = SimDuration::from_secs(duration_s / 4);
    sc
}

/// One sweep cell.
struct Cell {
    tau: SimDuration,
    pipe: f64,
    w1: u64,
    w2: u64,
}

impl Cell {
    fn regime(&self) -> &'static str {
        if (self.w1 as f64) > self.w2 as f64 + 2.0 * self.pipe {
            "W1 > W2+2P"
        } else {
            "W1 < W2+2P"
        }
    }
}

/// Run and evaluate the conjecture sweep.
pub fn report(seed: u64, duration_s: u64) -> Report {
    let mut rep = Report::new(
        "tbl-conjecture",
        "Zero-length-ACK fixed-window conjecture (paper §4.3.3)",
        &format!("seed {seed}, {duration_s} s per cell, infinite buffers, 0-byte ACKs"),
    );

    let ms10 = SimDuration::from_millis(10);
    let s1 = SimDuration::from_secs(1);
    let cells = [
        // Small pipe (P = 0.125): almost any inequality regime 1.
        Cell {
            tau: ms10,
            pipe: 0.125,
            w1: 30,
            w2: 25,
        },
        Cell {
            tau: ms10,
            pipe: 0.125,
            w1: 40,
            w2: 10,
        },
        // Large pipe (P = 12.5).
        Cell {
            tau: s1,
            pipe: 12.5,
            w1: 60,
            w2: 20,
        }, // 60 > 20+25 → regime 1
        Cell {
            tau: s1,
            pipe: 12.5,
            w1: 30,
            w2: 25,
        }, // 30 < 50   → regime 2
        Cell {
            tau: s1,
            pipe: 12.5,
            w1: 40,
            w2: 30,
        }, // 40 < 55   → regime 2
        Cell {
            tau: ms10,
            pipe: 0.125,
            w1: 25,
            w2: 25,
        }, // 25 < 25.25 → regime 2
    ];

    for c in &cells {
        let run = scenario(seed, duration_s, c.tau, c.w1, c.w2).run();
        let (u12, u21) = (run.util12(), run.util21());
        let hi = u12.max(u21);
        let lo = u12.min(u21);
        let label = format!("W1={} W2={} P={:<6} [{}]", c.w1, c.w2, c.pipe, c.regime());
        match c.regime() {
            "W1 > W2+2P" => {
                rep.check(
                    &label,
                    "exactly one line fully utilized",
                    format!("util {u12:.3} / {u21:.3}"),
                    hi > 0.99 && lo < 0.99,
                );
            }
            _ => {
                rep.check(
                    &label,
                    "neither line fully utilized",
                    format!("util {u12:.3} / {u21:.3}"),
                    hi < 0.995,
                );
            }
        }
        let drops = run.drops().len();
        if drops != 0 {
            rep.check(&format!("{label} drops"), "0", format!("{drops}"), false);
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjecture_holds_on_sweep() {
        let rep = report(1, 200);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }
}
