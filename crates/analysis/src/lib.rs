//! # td-analysis — dynamics analysis for the SIGCOMM '91 reproduction
//!
//! Everything the paper measures, computed offline from a `td-net`
//! [`td_net::Trace`]:
//!
//! * [`series::TimeSeries`] — step-function time series with windowed
//!   time-weighted statistics (queue lengths, cwnd).
//! * [`extract`] — pull per-channel queue-length series, per-connection
//!   cwnd series, drop events, departures, deliveries, and windowed
//!   utilization out of a trace.
//! * [`epochs`] — congestion-epoch detection and per-connection loss
//!   attribution (the paper's acceleration analysis, §2.1/§3.1/§4.1).
//! * [`sync`] — in-phase / out-of-phase synchronization classification for
//!   window and queue oscillations (§4.3).
//! * [`clustering`] — packet-clustering metrics at a bottleneck (§3.1/§5).
//! * [`compression`] — ACK-compression metrics: ACK spacing at the source
//!   versus the bottleneck data service time, and rapid queue-fluctuation
//!   scores (§4.2).
//! * [`plot`] — ASCII rendering of the paper's figures (queue + cwnd
//!   traces with drop marks).
//! * [`csv`] — plain CSV export for external plotting.
//!
//! The analyses are pure functions of the trace: running them never
//! perturbs a simulation, and any single run can answer every question the
//! paper asks of it.

//! ## Example
//!
//! ```
//! use td_analysis::TimeSeries;
//! use td_engine::SimTime;
//!
//! // A queue that builds to 4 packets and drains.
//! let mut q = TimeSeries::new();
//! for (t, v) in [(0u64, 1.0), (1, 2.0), (2, 4.0), (3, 1.0), (4, 0.0)] {
//!     q.push(SimTime::from_secs(t), v);
//! }
//! assert_eq!(q.max_in(SimTime::ZERO, SimTime::from_secs(4)), Some(4.0));
//! // Time-weighted mean over \[0, 4\]: (1 + 2 + 4 + 1) / 4.
//! assert_eq!(q.mean_in(SimTime::ZERO, SimTime::from_secs(4)), Some(2.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clustering;
pub mod compression;
pub mod csv;
pub mod epochs;
pub mod extract;
pub mod period;
pub mod plot;
pub mod series;
pub mod sojourn;
pub mod stats;
pub mod stream;
pub mod svg;
pub mod sync;

pub use clustering::{cluster_lengths, clustering_coefficient};
pub use compression::{ack_spacing, queue_fluctuation, AckSpacing};
pub use epochs::{detect_epochs, DropEvent, Epoch};
pub use extract::{
    cwnd_series, data_drop_fraction, deliveries, departures, drop_events, goodput_series,
    queue_series, utilization_in, Departure,
};
pub use period::{autocorrelation, dominant_period, jain_fairness};
pub use series::TimeSeries;
pub use sojourn::{mean_ack_sojourn, sojourns, Sojourn};
pub use stats::{mean, pearson, power_law_exponent, variance, RunningStats};
pub use stream::{StreamAnalyzer, StreamMetrics, StreamSpec};
pub use svg::SvgPlot;
pub use sync::{classify_sync, SyncMode};
