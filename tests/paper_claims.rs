//! End-to-end reproduction checks: every registered experiment must come
//! out of its quick-profile run with all paper-vs-measured rows in band.
//!
//! These are the same runners behind `td-repro`; the full-length runs are
//! recorded in EXPERIMENTS.md. One test per experiment id so a regression
//! names the figure it broke.

use tahoe_dynamics::experiments::registry::{find, Profile};

fn check(id: &str) {
    let rep = find(id)
        .unwrap_or_else(|| panic!("experiment {id} not registered"))
        .run(1, Profile::Quick);
    assert!(
        rep.all_ok(),
        "{id} failed checks {:?}\n{rep}",
        rep.failures()
    );
    assert!(!rep.rows.is_empty());
}

#[test]
fn fig2_one_way_baseline() {
    check("fig2");
}

#[test]
fn fig3_ten_connection_fluctuations() {
    check("fig3");
}

#[test]
fn fig45_out_of_phase_small_pipe() {
    check("fig45");
}

#[test]
fn fig67_in_phase_large_pipe() {
    check("fig67");
}

#[test]
fn fig8_fixed_windows_small_pipe() {
    check("fig8");
}

#[test]
fn fig9_fixed_windows_large_pipe() {
    check("fig9");
}

#[test]
fn oneway_utilization_table() {
    check("oneway-util");
}

#[test]
fn zero_ack_conjecture() {
    check("conjecture");
}

#[test]
fn delayed_ack_option() {
    check("delayed-ack");
}

#[test]
fn multihop_generality() {
    check("multihop");
}

#[test]
fn ablation_pacing() {
    check("abl-pacing");
}

#[test]
fn ablation_increment_rule() {
    check("abl-increment");
}

#[test]
fn ablation_gateway_discipline() {
    check("abl-discipline");
}

/// Seed-robustness of the fig45 headline, with the paper's own caveat.
///
/// §4.3 says the small-pipe configuration is "usually" out-of-phase, and
/// §4.3.3 notes "other, less common, modes" exist. Across a dozen start
/// phases we see exactly that: a large majority land in the out-of-phase
/// ~0.70-utilization mode, and a minority in a symmetric in-phase mode
/// with higher utilization. Assert the majority behaviour, and that every
/// run lands in one of the two recognized modes.
#[test]
fn fig45_headline_is_seed_robust() {
    use tahoe_dynamics::analysis::sync::{classify_sync, SyncMode};
    use tahoe_dynamics::experiments::fig45;
    let mut out_of_phase = 0;
    let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
    for &seed in &seeds {
        let run = fig45::scenario(seed, 400, 20).run();
        let (u12, u21) = (run.util12(), run.util21());
        let (mode, r) = classify_sync(
            &run.cwnd(run.fwd[0]),
            &run.cwnd(run.rev[0]),
            run.t0,
            run.t1,
            800,
            5,
            0.15,
        );
        match mode {
            SyncMode::OutOfPhase => {
                out_of_phase += 1;
                assert!(
                    (0.55..=0.85).contains(&u12) && (0.55..=0.85).contains(&u21),
                    "seed {seed}: out-of-phase but utilization {u12:.3}/{u21:.3} not ~0.70"
                );
            }
            SyncMode::InPhase => {
                // The minority mode: symmetric, single losses, higher util.
                assert!(
                    u12 > 0.8 && u21 > 0.8,
                    "seed {seed}: in-phase mode should be the high-utilization one, got {u12:.3}/{u21:.3}"
                );
            }
            SyncMode::Indeterminate => {
                panic!("seed {seed}: unclassifiable dynamics, r = {r:.2}");
            }
        }
    }
    assert!(
        out_of_phase * 3 >= seeds.len() * 2,
        "out-of-phase should dominate at small pipe: {out_of_phase}/{}",
        seeds.len()
    );
}

#[test]
fn decbit_generality() {
    check("decbit");
}

#[test]
fn piggyback_duplex() {
    check("piggyback");
}

#[test]
fn synchronization_mode_census() {
    check("modes");
}

#[test]
fn rtt_spread_breaks_clustering() {
    check("rtt-spread");
}

#[test]
fn crosstraffic_interleaves_clusters() {
    check("crosstraffic");
}

#[test]
fn short_flow_completion_times() {
    check("short-flows");
}

#[test]
fn reno_structural_vs_specific() {
    check("reno");
}
