//! Piggybacked ACKs on a duplex connection — the paper's third
//! delayed-ACK trigger, exercised.
//!
//! §2.1 lists three ways a delayed ACK leaves the receiver: a second data
//! packet (coalescing), the conservative timer, or "a data packet
//! transmission in the other direction on which the ACK can be
//! piggy-backed". The paper's two-way workload uses two *separate*
//! connections, so the third trigger never fires there. This experiment
//! runs the same two-way byte streams over a **single duplex connection**
//! and measures what piggybacking changes:
//!
//! * with delayed ACKs on, nearly every acknowledgment rides a data
//!   packet — the pure-ACK count collapses versus the two-connection
//!   setup;
//! * with them off, immediate ACKing pre-empts piggybacking (the window
//!   is closed when data arrives, so the ack cannot wait for a carrier) —
//!   a neat demonstration of *why* the delayed-ACK option exists;
//! * full piggybacking removes the small-packet population entirely, and
//!   with it the data/ACK size asymmetry that ACK-compression requires:
//!   the queue-collapse rate drops to ~1 packet per service time, like
//!   one-way traffic.

use crate::report::Report;
use crate::scenario::{ConnSpec, Scenario, DATA_SERVICE};
use td_analysis::{compression, queue_series, utilization_in};
use td_core::{DelayedAck, ReceiverConfig, SenderConfig, TcpDuplex};
use td_engine::{SimDuration, SimTime};
use td_net::{dumbbell, ConnId, LinkSpec};

struct DuplexRun {
    pure_acks: u64,
    piggybacked: u64,
    delivered_each_way: (u64, u64),
    fluctuation: f64,
    util: (f64, f64),
}

fn run_duplex(
    seed: u64,
    duration_s: u64,
    delack: bool,
    buffer: Option<u32>,
    maxwnd: u64,
) -> DuplexRun {
    let spec = LinkSpec::paper_bottleneck(SimDuration::from_millis(10), buffer);
    let mut d = dumbbell(
        seed,
        spec,
        LinkSpec::paper_host_link(),
        SimDuration::from_micros(100),
    );
    let scfg = SenderConfig {
        maxwnd,
        ..SenderConfig::paper()
    };
    let rcfg = ReceiverConfig {
        delayed_ack: delack.then(DelayedAck::default),
        ..ReceiverConfig::paper()
    };
    let ea = d
        .world
        .attach(d.host1, d.host2, ConnId(0), TcpDuplex::boxed(scfg, rcfg));
    let eb = d
        .world
        .attach(d.host2, d.host1, ConnId(0), TcpDuplex::boxed(scfg, rcfg));
    d.world.start_at(ea, SimTime::ZERO);
    d.world.start_at(eb, SimTime::from_millis(137));
    let t1 = SimTime::from_secs(duration_s);
    d.world.run_until(t1);
    let t0 = SimTime::from_secs(duration_s / 5);

    let get = |ep| {
        d.world
            .endpoint(ep)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpDuplex>()
            .unwrap()
            .stats()
    };
    let (sa, sb) = (get(ea), get(eb));
    let q1 = queue_series(d.world.trace(), d.bottleneck_12);
    DuplexRun {
        pure_acks: sa.pure_acks_sent + sb.pure_acks_sent,
        piggybacked: sa.piggybacked_acks + sb.piggybacked_acks,
        delivered_each_way: (sa.delivered, sb.delivered),
        fluctuation: compression::queue_fluctuation(&q1, t0, t1, DATA_SERVICE),
        util: (
            utilization_in(d.world.trace(), d.bottleneck_12, t0, t1),
            utilization_in(d.world.trace(), d.bottleneck_21, t0, t1),
        ),
    }
}

/// Run and evaluate the piggybacking experiment.
pub fn report(seed: u64, duration_s: u64) -> Report {
    let mut rep = Report::new(
        "tbl-piggyback",
        "Duplex connection with piggybacked ACKs (paper Sec. 2.1's third delack trigger)",
        &format!("seed {seed}, {duration_s} s per cell, tau = 0.01 s, B = 20"),
    );

    // Baseline: the paper's two separate connections.
    let mut base_sc = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    base_sc.seed = seed;
    base_sc.duration = SimDuration::from_secs(duration_s);
    base_sc.warmup = SimDuration::from_secs(duration_s / 5);
    let base = base_sc.run();
    let base_acks: u64 = base
        .conns()
        .iter()
        .map(|&c| base.receiver(c).stats().acks_sent)
        .sum();

    // Loss-free cells isolate the piggybacking mechanism (window capped,
    // infinite buffers); the congested cell shows what loss recovery —
    // closed windows, dup-ACK signalling — does to the mix.
    let clean_on = run_duplex(seed, duration_s, true, None, 20);
    let clean_off = run_duplex(seed, duration_s, false, None, 20);
    let congested_on = run_duplex(seed, duration_s, true, Some(20), 1000);

    let piggy_frac =
        clean_on.piggybacked as f64 / (clean_on.piggybacked + clean_on.pure_acks) as f64;
    rep.check(
        "loss-free, delack on: acks riding data packets",
        "piggybacking dominates once acks may wait for a carrier",
        format!(
            "{:.0} % ({} piggybacked, {} pure)",
            piggy_frac * 100.0,
            clean_on.piggybacked,
            clean_on.pure_acks
        ),
        piggy_frac > 0.7,
    );

    let pure_frac =
        clean_off.pure_acks as f64 / (clean_off.piggybacked + clean_off.pure_acks) as f64;
    rep.check(
        "loss-free, delack off: immediate acking pre-empts piggybacking",
        "pure ACKs dominate (the ack cannot wait for a carrier)",
        format!(
            "{:.0} % pure ({} pure, {} piggybacked)",
            pure_frac * 100.0,
            clean_off.pure_acks,
            clean_off.piggybacked
        ),
        pure_frac > 0.7,
    );

    rep.check(
        "loss-free, delack on: queue collapse rate",
        "~1 packet per service time: equal-size segments cannot compress",
        format!("{:.0} packets", clean_on.fluctuation),
        clean_on.fluctuation <= 2.0,
    );

    rep.check(
        "loss-free, delack on: both directions progress",
        "bulk transfer in both directions on one connection",
        format!(
            "{} / {} packets delivered",
            clean_on.delivered_each_way.0, clean_on.delivered_each_way.1
        ),
        clean_on.delivered_each_way.0 > 500 && clean_on.delivered_each_way.1 > 500,
    );

    let cong_piggy = congested_on.piggybacked as f64
        / (congested_on.piggybacked + congested_on.pure_acks) as f64;
    rep.check(
        "congested (B = 20), delack on: piggyback share",
        "reduced by recovery stretches (closed windows force pure ACKs)",
        format!(
            "{:.0} % ({} piggybacked, {} pure; two-conn baseline sent {base_acks} pure ACKs)",
            cong_piggy * 100.0,
            congested_on.piggybacked,
            congested_on.pure_acks
        ),
        cong_piggy > 0.3 && cong_piggy < piggy_frac,
    );
    rep.info(
        "congested: utilization / queue collapse",
        "-",
        format!(
            "{:.3} / {:.3}, {:.0} pkts per service time",
            congested_on.util.0, congested_on.util.1, congested_on.fluctuation
        ),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piggyback_reproduces() {
        let rep = report(1, 400);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }
}
