//! TCP Tahoe on a faulty link — robustness beyond the paper.
//!
//! The paper's links are error-free; every loss is a buffer overflow.
//! This example turns on the fault injector (smoltcp-style random drop)
//! and shows the transport still delivers a contiguous, reliable stream —
//! at a throughput cost that grows with the loss rate — exercising the
//! timeout/backoff machinery that the congestion-driven runs rarely
//! touch.
//!
//! ```sh
//! cargo run --release --example lossy_link
//! ```

use tahoe_dynamics::engine::{Rate, SimDuration, SimTime};
use tahoe_dynamics::net::{ConnId, DisciplineKind, FaultModel, World};
use tahoe_dynamics::tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};

fn run(loss: f64) -> (u64, u64, u64) {
    let mut w = World::new(7);
    let h0 = w.add_host("src", SimDuration::from_micros(100));
    let h1 = w.add_host("dst", SimDuration::from_micros(100));
    w.add_channel(
        h0,
        h1,
        Rate::from_kbps(50),
        SimDuration::from_millis(10),
        Some(20),
        DisciplineKind::DropTail.build(),
        FaultModel::lossy(loss),
    );
    w.add_channel(
        h1,
        h0,
        Rate::from_kbps(50),
        SimDuration::from_millis(10),
        Some(20),
        DisciplineKind::DropTail.build(),
        FaultModel::NONE,
    );
    let s = w.attach(h0, h1, ConnId(0), TcpSender::boxed(SenderConfig::paper()));
    let r = w.attach(
        h1,
        h0,
        ConnId(0),
        TcpReceiver::boxed(ReceiverConfig::paper()),
    );
    w.start_at(s, SimTime::ZERO);
    w.run_until(SimTime::from_secs(600));

    let snd = w
        .endpoint(s)
        .unwrap()
        .as_any()
        .downcast_ref::<TcpSender>()
        .unwrap();
    let rcv = w
        .endpoint(r)
        .unwrap()
        .as_any()
        .downcast_ref::<TcpReceiver>()
        .unwrap();
    // Reliability check: everything delivered is contiguous.
    assert_eq!(rcv.cumulative_ack(), rcv.stats().delivered);
    (
        rcv.stats().delivered,
        snd.stats().retransmits,
        snd.stats().timeouts,
    )
}

fn main() {
    println!("600 s of bulk TCP Tahoe over a 50 Kbit/s link, random loss injected:\n");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>12}",
        "loss rate", "delivered", "goodput", "retx", "timeouts"
    );
    for loss in [0.0, 0.01, 0.05, 0.10, 0.20] {
        let (delivered, retx, timeouts) = run(loss);
        let goodput = delivered as f64 * 500.0 * 8.0 / 600.0 / 1000.0; // kbit/s
        println!(
            "{:>9.0}% {:>12} {:>9.1} kbps {:>10} {:>12}",
            loss * 100.0,
            delivered,
            goodput,
            retx,
            timeouts
        );
    }
    println!();
    println!("every run delivered a contiguous stream (reliability held); higher");
    println!("loss shifts recovery from fast-retransmit to timeout + backoff.");
}
