//! ACK-compression, dissected (paper §4.2).
//!
//! Reproduces the fixed-window idealization of Figure 8 — two connections
//! with windows frozen at 30 and 25 packets, infinite buffers — and walks
//! through the five-phase cycle the paper narrates, verifying each phase's
//! signature in the measured trace:
//!
//! 1. steady cross-flow: both queues roughly constant;
//! 2. queue 2 empties as connection 1's ACKs drain at ACK speed;
//! 3. connection 2's whole window sits in queue 1 as ACKs;
//! 4. those ACKs burst out of queue 1 at ACK speed → data bursts into
//!    queue 2;
//! 5. back to steady cross-flow.
//!
//! ```sh
//! cargo run --release --example ack_compression
//! ```

use tahoe_dynamics::analysis::plot::Plot;
use tahoe_dynamics::analysis::{ack_spacing, deliveries};
use tahoe_dynamics::engine::SimDuration;
use tahoe_dynamics::experiments::{fig89, DATA_SERVICE};

fn main() {
    println!("fixed windows W1 = 30, W2 = 25; infinite buffers; tau = 0.01 s\n");
    let run = fig89::scenario(1, 120, SimDuration::from_millis(10), 30, 25).run();

    let q1 = run.queue1();
    let q2 = run.queue2();

    println!("the paper's phase analysis, verified:");
    let q1max = q1.max_in(run.t0, run.t1).unwrap();
    println!(
        "  queue 1 peak = {:.0} packets  (paper: 55 = W1 + W2 — all of connection 2's",
        q1max
    );
    println!("    window piles into queue 1 as ACKs behind connection 1's data)");
    let q2max = q2.max_in(run.t0, run.t1).unwrap();
    println!("  queue 2 peak = {q2max:.0} packets  (paper: 23)");
    println!(
        "  utilization: line 1->2 = {:.1} %, line 2->1 = {:.1} %",
        run.util12() * 100.0,
        run.util21() * 100.0
    );
    println!("    (paper: one line saturated, the other at 86 % — W1 > W2 + 2P)");

    // ACK spacing at host 1: compression means gaps collapse to ~8 ms.
    let acks: Vec<_> = deliveries(run.world.trace(), run.host1, run.fwd[0], true)
        .into_iter()
        .filter(|d| d.t >= run.t0)
        .collect();
    let sp = ack_spacing(&acks, DATA_SERVICE).expect("ACK stream");
    println!(
        "  ACK gaps at the source: p10 = {:.1} ms (the 8 ms ACK service time),",
        sp.p10_gap_s * 1000.0
    );
    println!(
        "    {:.0} % of gaps below the 80 ms data service time — the clock is broken",
        sp.compressed_fraction * 100.0
    );

    let w0 = run.t0;
    let w1 = run.t0 + SimDuration::from_secs(20);
    println!();
    println!(
        "{}",
        Plot::new(
            "queue 1: plateaus at 55 and 25 (paper Fig. 8 top)",
            w0,
            w1,
            100,
            12
        )
        .y_max(60.0)
        .series(&q1, '#')
        .render()
    );
    println!(
        "{}",
        Plot::new(
            "queue 2: plateaus at 23 and ~0 (paper Fig. 8 bottom)",
            w0,
            w1,
            100,
            12
        )
        .y_max(60.0)
        .series(&q2, '#')
        .render()
    );

    println!("why: a cluster of ACKs crossing a nonempty queue leaves it spaced by the");
    println!("ACK service time (8 ms), not the data service time (80 ms). The source");
    println!("answers each ACK instantly, so a 10x-compressed ACK cluster becomes a");
    println!("10x-overspeed data burst — the square wave.");
}
