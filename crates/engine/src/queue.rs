//! The pending-event set: an indexed 4-ary min-heap over a slab.
//!
//! Events live in a **generation-counted slab**: scheduling claims a slot
//! (reusing freed ones), and the returned [`EventId`] is the pair
//! `(slot, generation)`. A parallel **4-ary heap of slot indices** orders
//! the pending set by `(time, seq)`, where `seq` is a monotone counter
//! assigned at scheduling time — so events scheduled for the same instant
//! fire in scheduling order. This total order is what makes
//! whole-simulation runs reproducible: there is never an "arbitrary"
//! choice left to hash-map iteration order or heap tie-breaking, and it is
//! byte-for-byte the order the engine's original binary-heap queue
//! produced (see [`crate::legacy`] and `tests/queue_differential.rs`).
//!
//! Each slot remembers its position in the heap, which buys the two
//! operations the old design faked with tombstones:
//!
//! * [`EventQueue::cancel`] is a **true O(log n) removal** — swap the
//!   victim with the last heap entry and re-sift. No tombstone ever enters
//!   the heap, so `pop` and `peek_time` never loop over corpses, `len` is
//!   a plain `Vec::len`, and there is **no hashing anywhere** on the
//!   schedule/cancel/pop path (the old queue paid a `HashSet` probe per
//!   pop plus fired-set bookkeeping per event).
//! * Liveness checks ([`EventQueue::cancel`] re-cancel, [`EventQueue::has_fired`])
//!   are a **generation compare**: freeing a slot bumps its generation, so
//!   a stale handle can never alias a reused slot (generations are `u64`;
//!   they do not wrap in any feasible run).
//!
//! Why d = 4: a d-ary heap trades deeper trees for wider nodes. With
//! 4 children per node the tree is half as deep as a binary heap
//! (log₄ n = ½ log₂ n), sift-up — the operation `schedule_at` always pays —
//! does half the comparisons, and the four children sit in adjacent
//! `Vec` cells, so the extra comparisons in sift-down are against hot
//! cache lines. For discrete-event simulation, where schedules outnumber
//! sift-downs (every pop is preceded by exactly one schedule, but cancels
//! remove many events before they ever reach the root), this is the
//! standard sweet spot.

use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::SimTime;

/// Slot index marker for "not in the heap".
const NOT_IN_HEAP: u32 = u32::MAX;

/// Opaque handle to a scheduled event, used to cancel it.
///
/// A handle is `(slot, generation)`: the slab slot the event occupies and
/// the generation of that occupancy. Slots are reused after an event
/// retires, but each reuse bumps the generation, so operations on a stale
/// handle are detected exactly and return `false` instead of touching the
/// wrong event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    slot: u32,
    gen: u64,
}

impl EventId {
    /// Decompose the handle into `(slot, generation)` for snapshotting.
    pub fn into_raw(self) -> (u32, u64) {
        (self.slot, self.gen)
    }

    /// Rebuild a handle from captured `(slot, generation)` parts. Only
    /// meaningful against a queue whose slab was restored from the same
    /// snapshot; against any other queue the handle is simply stale (the
    /// generation check makes misuse a no-op, never a wrong-event hit).
    pub fn from_raw(slot: u32, gen: u64) -> Self {
        EventId { slot, gen }
    }
}

/// One slab cell. `event == None` means vacant (on the free list, its
/// `gen` already bumped past every handle issued for it).
struct Slot<E> {
    /// Generation of the current (or next) occupant.
    gen: u64,
    /// Index into `heap` while pending; `NOT_IN_HEAP` when vacant.
    heap_pos: u32,
    /// Absolute due time of the current occupant.
    at: SimTime,
    /// Caller-supplied tie key, ordered before `seq` among same-time
    /// events. [`EventQueue::schedule_at`] always uses 0, preserving pure
    /// scheduling-order ties; [`EventQueue::schedule_keyed`] lets a caller
    /// impose a content-derived order that is independent of *when* the
    /// event was scheduled — the property sharded simulation needs.
    key: u64,
    /// Monotone schedule counter of the current occupant (tie-breaker).
    seq: u64,
    event: Option<E>,
}

/// A deterministic, cancellable discrete-event queue.
///
/// The queue also tracks the simulation clock: [`EventQueue::now`] is the
/// timestamp of the most recently popped event (initially [`SimTime::ZERO`]),
/// and scheduling into the past is a panic — causality violations are always
/// caller bugs.
///
/// Memory: the slab holds one cell per *concurrently pending* event (peak,
/// not total — retired slots are reused), and the heap is a `Vec<u32>` of
/// the same length. Nothing grows with the number of events ever
/// scheduled.
pub struct EventQueue<E> {
    /// Slot indices, heap-ordered by `(slots[i].at, slots[i].seq)`.
    heap: Vec<u32>,
    slots: Vec<Slot<E>>,
    /// Vacant slot indices, reused LIFO.
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    /// Largest live length ever observed (post-schedule).
    peak_len: usize,
    /// Schedules not yet folded into the thread telemetry counters;
    /// flushed once per pop (and on drop) instead of per call.
    unflushed_sched: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        // Flush schedules that never saw a pop (drained-by-drop queues,
        // runs truncated by a time bound) so thread telemetry stays exact.
        crate::telemetry::flush(self.unflushed_sched, 0, self.peak_len);
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            peak_len: 0,
            unflushed_sched: 0,
        }
    }

    /// An empty queue with slab and heap capacity for `n` concurrently
    /// pending events (e.g. a peak depth observed by
    /// [`crate::telemetry`] on a previous comparable run).
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(n),
            slots: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
            ..Self::new()
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped (dispatched) so far. Handy as a progress /
    /// runaway-simulation guard.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }

    /// Number of events ever scheduled into this queue.
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// Largest number of live pending events ever held at once — the
    /// working-set size a capacity planner would care about.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of live pending events. Exact: cancelled events leave the
    /// heap immediately.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `(at, key, seq)` sort key of the slot at heap position `pos`.
    #[inline]
    fn key(&self, pos: usize) -> (SimTime, u64, u64) {
        let s = &self.slots[self.heap[pos] as usize];
        (s.at, s.key, s.seq)
    }

    #[inline]
    fn set_pos(&mut self, pos: usize, slot: u32) {
        self.heap[pos] = slot;
        self.slots[slot as usize].heap_pos = pos as u32;
    }

    /// Move the entry at `pos` rootward while it sorts before its parent.
    fn sift_up(&mut self, mut pos: usize) {
        let slot = self.heap[pos];
        let key = self.key(pos);
        while pos > 0 {
            let parent = (pos - 1) / 4;
            if key >= self.key(parent) {
                break;
            }
            let p = self.heap[parent];
            self.set_pos(pos, p);
            pos = parent;
        }
        self.set_pos(pos, slot);
    }

    /// Move the entry at `pos` leafward while some child sorts before it.
    fn sift_down(&mut self, mut pos: usize) {
        let slot = self.heap[pos];
        let key = self.key(pos);
        loop {
            let first = pos * 4 + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + 4).min(self.heap.len());
            let mut best = first;
            let mut best_key = self.key(first);
            for c in first + 1..last {
                let k = self.key(c);
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if best_key >= key {
                break;
            }
            let b = self.heap[best];
            self.set_pos(pos, b);
            pos = best;
        }
        self.set_pos(pos, slot);
    }

    /// Detach the heap entry at `pos` and restore heap order. The caller
    /// still owns the slot's contents.
    fn remove_heap_entry(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        if pos == last {
            self.heap.pop();
            return;
        }
        let moved = self.heap[last];
        self.heap.pop();
        self.set_pos(pos, moved);
        // The replacement came from a leaf: it can only need to move down,
        // unless the removed entry was below the replacement's parent chain.
        self.sift_down(pos);
        self.sift_up(self.slots[moved as usize].heap_pos as usize);
    }

    /// Return `slot` to the free list, bumping its generation so every
    /// outstanding handle to the old occupant goes stale.
    fn retire(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        s.gen += 1;
        s.heap_pos = NOT_IN_HEAP;
        let ev = s.event.take().expect("retiring a vacant slot");
        self.free.push(slot);
        ev
    }

    /// Schedule `event` to fire at absolute time `at`. Same-time events
    /// fire in scheduling order (tie key 0 for every event on this path,
    /// byte-for-byte the order the pre-key queue produced).
    ///
    /// # Panics
    /// Panics if `at` is before [`EventQueue::now`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        self.schedule_keyed(at, 0, event)
    }

    /// Schedule `event` to fire at absolute time `at` with an explicit
    /// tie `key`: same-time events order by `(key, scheduling order)`.
    /// A caller that derives keys from event *content* (and keeps them
    /// unique among simultaneous events) gets a dispatch order that no
    /// longer depends on scheduling interleaving — which is what lets a
    /// sharded simulation reproduce one canonical order for any shard
    /// count.
    ///
    /// # Panics
    /// Panics if `at` is before [`EventQueue::now`].
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.at = at;
                s.key = key;
                s.seq = seq;
                s.event = Some(event);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                assert!(slot != u32::MAX, "event slab full");
                self.slots.push(Slot {
                    gen: 0,
                    heap_pos: NOT_IN_HEAP,
                    at,
                    key,
                    seq,
                    event: Some(event),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        let pos = self.heap.len();
        self.heap.push(slot);
        self.slots[slot as usize].heap_pos = pos as u32;
        self.sift_up(pos);
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
        self.unflushed_sched += 1;
        EventId { slot, gen }
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: crate::SimDuration, event: E) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed not to fire), `false` if it had
    /// already fired, been cancelled, or was never scheduled.
    ///
    /// True removal: the event leaves the heap immediately (O(log n)
    /// sift), its slot is reusable at once, and no residue survives to be
    /// skipped by later pops.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get(id.slot as usize) {
            Some(s) if s.gen == id.gen && s.event.is_some() => {
                let pos = s.heap_pos as usize;
                self.remove_heap_entry(pos);
                self.retire(id.slot);
                true
            }
            _ => false,
        }
    }

    /// True if the id refers to an event that has retired — fired, or been
    /// cancelled. (Mirrors the pre-slab queue, whose fired-set also
    /// absorbed cancelled entries once discarded; here the state is exact
    /// and immediate: a slot generation beyond the handle's.)
    pub fn has_fired(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot as usize)
            .is_some_and(|s| id.gen < s.gen)
    }

    /// Remove and return the earliest live event, advancing the clock.
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let &root = self.heap.first()?;
        let at = self.slots[root as usize].at;
        debug_assert!(at >= self.now, "heap produced an event in the past");
        self.remove_heap_entry(0);
        let event = self.retire(root);
        self.now = at;
        self.popped += 1;
        crate::telemetry::flush(self.unflushed_sched, 1, self.peak_len);
        self.unflushed_sched = 0;
        Some((at, event))
    }

    /// Remove and return the earliest live event if it is due at or before
    /// `bound`. One call replaces the `peek_time` + `pop` pair in
    /// time-bounded run loops.
    pub fn pop_at_or_before(&mut self, bound: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? > bound {
            return None;
        }
        self.pop()
    }

    /// Timestamp of the next live event without popping it. O(1) and
    /// `&self`: cancelled events are removed eagerly, so the root is
    /// always live.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&s| self.slots[s as usize].at)
    }

    /// Advance the clock to `t` without popping anything — a bounded run
    /// ends "at" its bound even when the last event fired earlier, and a
    /// sharded run must leave every shard's clock at the same instant.
    ///
    /// # Panics
    /// Panics if `t` is before [`EventQueue::now`] (the clock never
    /// rewinds).
    pub fn advance_clock(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "cannot rewind the clock: t={t:?} now={:?}",
            self.now
        );
        self.now = t;
    }

    /// Remove *every* pending event, returning them as
    /// `(at, key, event)` sorted by `(at, key, seq)` — the exact order
    /// they would have popped in. The clock, dispatch count, and schedule
    /// count are untouched; the slab and free list reset to empty.
    ///
    /// This is the shard-construction primitive: a shard builds the full
    /// world (so ids line up globally), then drains the queue and
    /// re-schedules only the events it owns.
    pub fn drain_pending(&mut self) -> Vec<(SimTime, u64, E)> {
        let mut out: Vec<(SimTime, u64, u64, E)> = Vec::with_capacity(self.heap.len());
        for slot in std::mem::take(&mut self.heap) {
            let s = &mut self.slots[slot as usize];
            // Retire like `cancel`: generations bump so any outstanding
            // handle to a drained event goes stale instead of aliasing.
            s.gen += 1;
            s.heap_pos = NOT_IN_HEAP;
            let ev = s.event.take().expect("heap entry points at vacant slot");
            out.push((s.at, s.key, s.seq, ev));
            self.free.push(slot);
        }
        out.sort_by_key(|&(at, key, seq, _)| (at, key, seq));
        out.into_iter()
            .map(|(at, key, _, e)| (at, key, e))
            .collect()
    }

    /// Borrow every pending event as `(at, key, &event)`, sorted by
    /// `(at, key, seq)` — pop order. Non-destructive; used to serialize a
    /// canonical (shard-count-independent) picture of the pending set.
    pub fn pending(&self) -> Vec<(SimTime, u64, &E)> {
        let mut refs: Vec<(SimTime, u64, u64, &E)> = self
            .heap
            .iter()
            .map(|&slot| {
                let s = &self.slots[slot as usize];
                let ev = s.event.as_ref().expect("heap entry points at vacant slot");
                (s.at, s.key, s.seq, ev)
            })
            .collect();
        refs.sort_by_key(|&(at, key, seq, _)| (at, key, seq));
        refs.into_iter()
            .map(|(at, key, _, e)| (at, key, e))
            .collect()
    }

    /// Like [`EventQueue::pending`], but also yields each event's live
    /// [`EventId`] so callers can correlate pending entries with handles
    /// held elsewhere (e.g. endpoint timer handles during a canonical
    /// snapshot).
    pub fn pending_entries(&self) -> Vec<(SimTime, u64, EventId, &E)> {
        let mut refs: Vec<(SimTime, u64, u64, EventId, &E)> = self
            .heap
            .iter()
            .map(|&slot| {
                let s = &self.slots[slot as usize];
                let ev = s.event.as_ref().expect("heap entry points at vacant slot");
                (s.at, s.key, s.seq, EventId::from_raw(slot, s.gen), ev)
            })
            .collect();
        refs.sort_by_key(|&(at, key, seq, _, _)| (at, key, seq));
        refs.into_iter()
            .map(|(at, key, _, id, e)| (at, key, id, e))
            .collect()
    }

    /// Serialize the queue's complete state — slab (including vacant
    /// slots and their generations), heap order, free list, clock, and
    /// counters — encoding each pending event with `enc`.
    ///
    /// The slab is captured **cell for cell**, not just the live events:
    /// external holders keep [`EventId`] handles into specific slots, and
    /// those handles only stay valid (and stale handles only stay stale)
    /// if slot indices and generations survive the round trip exactly.
    pub fn save_state(&self, w: &mut SnapWriter, mut enc: impl FnMut(&E, &mut SnapWriter)) {
        w.write_u64(self.next_seq);
        w.write_time(self.now);
        w.write_u64(self.popped);
        w.write_u64(self.peak_len as u64);
        w.write_u64(self.slots.len() as u64);
        for s in &self.slots {
            w.write_u64(s.gen);
            w.write_u32(s.heap_pos);
            w.write_time(s.at);
            w.write_u64(s.key);
            w.write_u64(s.seq);
            match &s.event {
                Some(e) => {
                    w.write_bool(true);
                    enc(e, w);
                }
                None => w.write_bool(false),
            }
        }
        w.write_u64(self.heap.len() as u64);
        for &slot in &self.heap {
            w.write_u32(slot);
        }
        w.write_u64(self.free.len() as u64);
        for &slot in &self.free {
            w.write_u32(slot);
        }
    }

    /// Rebuild a queue from [`EventQueue::save_state`] bytes, decoding
    /// each pending event with `dec`. Slab/heap cross-links are verified,
    /// so a corrupt snapshot fails here instead of panicking mid-run.
    ///
    /// The rebuilt queue starts with a zero telemetry debt
    /// (`unflushed_sched`): its events were already counted by the queue
    /// that originally scheduled them.
    pub fn load_state(
        r: &mut SnapReader<'_>,
        mut dec: impl FnMut(&mut SnapReader<'_>) -> Result<E, SnapError>,
    ) -> Result<Self, SnapError> {
        let next_seq = r.read_u64()?;
        let now = r.read_time()?;
        let popped = r.read_u64()?;
        let peak_len = r.read_u64()? as usize;
        let n_slots = r.read_u64()? as usize;
        if n_slots > r.remaining() {
            // Each slot costs well over one byte; cheap sanity bound that
            // stops a corrupt length from attempting a huge allocation.
            return Err(SnapError::Truncated);
        }
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let gen = r.read_u64()?;
            let heap_pos = r.read_u32()?;
            let at = r.read_time()?;
            let key = r.read_u64()?;
            let seq = r.read_u64()?;
            let event = if r.read_bool()? { Some(dec(r)?) } else { None };
            slots.push(Slot {
                gen,
                heap_pos,
                at,
                key,
                seq,
                event,
            });
        }
        let n_heap = r.read_u64()? as usize;
        if n_heap > n_slots {
            return Err(SnapError::Corrupt("heap larger than slab".into()));
        }
        let mut heap = Vec::with_capacity(n_heap);
        for _ in 0..n_heap {
            heap.push(r.read_u32()?);
        }
        let n_free = r.read_u64()? as usize;
        if n_heap + n_free != n_slots {
            return Err(SnapError::Corrupt("slab accounting broken".into()));
        }
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free.push(r.read_u32()?);
        }
        // Verify cross-links: every heap entry points at an occupied slot
        // that points back; every free entry at a vacant, detached slot.
        for (pos, &slot) in heap.iter().enumerate() {
            let s = slots
                .get(slot as usize)
                .ok_or_else(|| SnapError::Corrupt("heap entry out of slab".into()))?;
            if s.heap_pos as usize != pos || s.event.is_none() {
                return Err(SnapError::Corrupt("heap/slab backlink broken".into()));
            }
        }
        for &slot in &free {
            let s = slots
                .get(slot as usize)
                .ok_or_else(|| SnapError::Corrupt("free entry out of slab".into()))?;
            if s.heap_pos != NOT_IN_HEAP || s.event.is_some() {
                return Err(SnapError::Corrupt("free list points at live slot".into()));
            }
        }
        Ok(EventQueue {
            heap,
            slots,
            free,
            next_seq,
            now,
            popped,
            peak_len,
            unflushed_sched: 0,
        })
    }

    /// Heap-shape invariant check, for tests: every parent sorts at or
    /// before its children and every slot/heap index link is mutual.
    #[cfg(test)]
    fn assert_invariants(&self) {
        assert_eq!(
            self.heap.len() + self.free.len(),
            self.slots.len(),
            "slab accounting broken"
        );
        for pos in 0..self.heap.len() {
            let slot = self.heap[pos] as usize;
            assert_eq!(self.slots[slot].heap_pos as usize, pos, "backlink broken");
            assert!(self.slots[slot].event.is_some(), "vacant slot in heap");
            if pos > 0 {
                assert!(
                    self.key((pos - 1) / 4) <= self.key(pos),
                    "heap order broken"
                );
            }
        }
        for &slot in &self.free {
            assert!(self.slots[slot as usize].event.is_none());
            assert_eq!(self.slots[slot as usize].heap_pos, NOT_IN_HEAP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_ties_order_by_key_then_seq() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        // Scrambled insertion order; keys impose the canonical order.
        q.schedule_keyed(t, 3, "k3");
        q.schedule_keyed(t, 1, "k1b");
        q.schedule_keyed(t, 0, "k0");
        q.schedule_keyed(t, 1, "k1a");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        // Same key falls back to insertion order (seq).
        assert_eq!(order, vec!["k0", "k1b", "k1a", "k3"]);
    }

    #[test]
    fn keyed_events_sort_before_later_times_regardless_of_key() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_secs(2), 0, "later");
        q.schedule_keyed(SimTime::from_secs(1), u64::MAX, "earlier");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["earlier", "later"]);
    }

    #[test]
    fn drain_pending_returns_pop_order_and_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop(); // advance the clock so `now` is nonzero
        q.schedule_keyed(SimTime::from_secs(30), 2, "d");
        q.schedule_keyed(SimTime::from_secs(20), 5, "b");
        q.schedule_keyed(SimTime::from_secs(20), 5, "c"); // same (t, key): seq breaks tie
        q.schedule_keyed(SimTime::from_secs(20), 1, "a");
        let drained = q.drain_pending();
        assert_eq!(
            drained,
            vec![
                (SimTime::from_secs(20), 1, "a"),
                (SimTime::from_secs(20), 5, "b"),
                (SimTime::from_secs(20), 5, "c"),
                (SimTime::from_secs(30), 2, "d"),
            ]
        );
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(
            q.now(),
            SimTime::from_secs(10),
            "drain must not move the clock"
        );
        // The slab is reusable after a drain.
        q.schedule_at(SimTime::from_secs(40), "again");
        assert_eq!(q.pop(), Some((SimTime::from_secs(40), "again")));
    }

    #[test]
    fn drain_pending_staleness_matches_cancel() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "x");
        q.drain_pending();
        assert!(!q.cancel(id), "drained handle must be stale");
        // Draining retires the slot, so the handle reports retired —
        // identical to what `cancel` would have left behind.
        assert!(q.has_fired(id));
        // Reusing the slot must not resurrect the old handle.
        let id2 = q.schedule_at(SimTime::from_secs(2), "y");
        assert_eq!(id.slot, id2.slot, "slot not reused — test premise broken");
        assert!(!q.cancel(id));
        assert!(q.cancel(id2));
    }

    #[test]
    fn pending_is_nondestructive_and_sorted() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_secs(2), 7, "b");
        q.schedule_keyed(SimTime::from_secs(1), 9, "a");
        let view: Vec<_> = q
            .pending()
            .into_iter()
            .map(|(t, k, e)| (t, k, *e))
            .collect();
        assert_eq!(
            view,
            vec![
                (SimTime::from_secs(1), 9, "a"),
                (SimTime::from_secs(2), 7, "b"),
            ]
        );
        assert_eq!(q.len(), 2, "pending() must not consume events");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
    }

    #[test]
    fn advance_clock_moves_now_forward() {
        let mut q = EventQueue::<()>::new();
        q.advance_clock(SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
        // Idempotent at the same time.
        q.advance_clock(SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn advance_clock_rejects_rewind() {
        let mut q = EventQueue::<()>::new();
        q.advance_clock(SimTime::from_secs(5));
        q.advance_clock(SimTime::from_secs(4));
    }

    #[test]
    fn keyed_snapshot_roundtrip_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_secs(1), 5, 50u32);
        q.schedule_keyed(SimTime::from_secs(1), 2, 20u32);
        q.schedule_at(SimTime::from_secs(1), 99u32);
        let mut w = crate::snap::SnapWriter::new();
        q.save_state(&mut w, |e, w| w.write_u32(*e));
        let bytes = w.into_bytes();
        let mut restored: EventQueue<u32> =
            EventQueue::load_state(&mut crate::snap::SnapReader::new(&bytes), |r| r.read_u32())
                .unwrap();
        let order: Vec<_> = std::iter::from_fn(|| restored.pop())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, vec![99, 20, 50]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(12));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), "dead");
        q.schedule_at(SimTime::from_secs(2), "alive");
        assert!(q.cancel(id));
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "alive");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), ());
        q.pop();
        assert!(!q.cancel(id));
        assert!(q.has_fired(id));
    }

    #[test]
    fn cancel_twice_returns_false() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_secs(1), ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancel_unknown_id_returns_false() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId { slot: 999, gen: 0 }));
        assert!(!q.has_fired(EventId { slot: 999, gen: 0 }));
    }

    #[test]
    fn stale_handle_cannot_touch_reused_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.pop();
        // The slot is reused for a new occupant at a later generation.
        let b = q.schedule_at(SimTime::from_secs(2), "b");
        assert_eq!(a.slot, b.slot, "slot not reused — test premise broken");
        assert!(q.has_fired(a));
        assert!(!q.has_fired(b));
        assert!(!q.cancel(a), "stale handle cancelled a reused slot");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
    }

    #[test]
    fn len_is_exact_under_cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_is_immutable_and_skips_nothing() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        // `&self` peek: cancelled events are already gone from the heap.
        let q_ref: &EventQueue<()> = &q;
        assert_eq!(q_ref.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn pop_at_or_before_respects_bound() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(3), "b");
        assert_eq!(
            q.pop_at_or_before(SimTime::from_secs(2)),
            Some((SimTime::from_secs(1), "a"))
        );
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(2)), None);
        // Bound exactly on the event time: it fires.
        assert_eq!(
            q.pop_at_or_before(SimTime::from_secs(3)),
            Some((SimTime::from_secs(3), "b"))
        );
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(100)), None);
    }

    #[test]
    fn dispatched_counts_pops() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.schedule_at(SimTime::from_secs(i + 1), ());
        }
        while q.pop().is_some() {}
        assert_eq!(q.dispatched(), 5);
    }

    #[test]
    fn slab_memory_is_bounded_by_peak_not_total() {
        let mut q = EventQueue::new();
        // 10_000 events scheduled over time, never more than 2 pending.
        for i in 0..10_000u64 {
            q.schedule_at(SimTime::from_secs(i + 1), ());
            q.schedule_at(SimTime::from_secs(i + 1), ());
            q.pop();
            q.pop();
        }
        assert_eq!(q.scheduled(), 20_000);
        assert!(
            q.slots.len() <= 2,
            "slab grew to {} slots for a working set of 2",
            q.slots.len()
        );
    }

    /// Audit of true cancellation (no residue by construction): a long
    /// interleaving of schedules, cancels of live / fired / stale /
    /// never-scheduled ids, double-cancels, and pops must keep the slab
    /// and heap mutually consistent at every step and leave the slab
    /// fully free once drained. The invariant check also verifies heap
    /// order and slot↔heap backlinks, so any sift bug surfaces here.
    #[test]
    fn cancel_heavy_run_leaves_no_residue() {
        let mut q = EventQueue::new();
        let mut rng = crate::SimRng::new(0xCA9CE1);
        let mut live_ids: Vec<(EventId, u64)> = Vec::new();
        let mut fired_ids: Vec<EventId> = Vec::new();
        for step in 0..50_000u64 {
            match rng.next_below(10) {
                // Schedule at a jittered future instant (ties included).
                0..=3 => {
                    let at = q.now() + SimDuration::from_nanos(rng.next_below(50));
                    live_ids.push((q.schedule_at(at, step), step));
                }
                // Cancel something still (probably) pending.
                4..=6 if !live_ids.is_empty() => {
                    let k = rng.next_below(live_ids.len() as u64) as usize;
                    let (id, _) = live_ids.swap_remove(k);
                    q.cancel(id);
                    // Double-cancel must refuse and must not re-insert.
                    assert!(!q.cancel(id), "double cancel accepted");
                }
                // Cancel an id that already fired: must be a no-op.
                7 if !fired_ids.is_empty() => {
                    let k = rng.next_below(fired_ids.len() as u64) as usize;
                    assert!(!q.cancel(fired_ids[k]), "cancel of fired id accepted");
                    assert!(q.has_fired(fired_ids[k]));
                }
                // Cancel an id that was never scheduled: must be a no-op.
                8 => {
                    let bogus = EventId {
                        slot: u32::MAX - 1,
                        gen: step,
                    };
                    assert!(!q.cancel(bogus));
                }
                _ => {
                    if let Some((_, e)) = q.pop() {
                        if let Some(k) = live_ids.iter().position(|&(_, tag)| tag == e) {
                            fired_ids.push(live_ids.swap_remove(k).0);
                        }
                    }
                }
            }
            if step % 1024 == 0 {
                q.assert_invariants();
            }
            assert_eq!(q.len(), live_ids.len(), "len diverged at step {step}");
        }
        while q.pop().is_some() {}
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
        q.assert_invariants();
        assert_eq!(
            q.free.len(),
            q.slots.len(),
            "drained queue left occupied slots"
        );
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule_at(SimTime::from_secs(i + 1), i);
        }
        assert_eq!(q.peak_len(), 10);
        while q.pop().is_some() {}
        assert_eq!(q.peak_len(), 10, "peak survives draining");
        assert_eq!(q.scheduled(), 10);
        // Cancelled entries do not count toward the live peak.
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), 0);
        q.cancel(a);
        q.schedule_at(SimTime::from_secs(2), 1);
        assert_eq!(q.peak_len(), 1);
    }

    #[test]
    fn cancelled_event_reports_retired() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        assert!(!q.has_fired(a));
        q.cancel(a);
        // Retirement is immediate — no lazy-discard window as in the old
        // design, where this only became true after `a` surfaced at the
        // heap root.
        assert!(q.has_fired(a));
        assert!(!q.cancel(a));
        q.pop();
        assert!(q.pop().is_none());
    }

    /// Round-trip helper for a `u64`-event queue.
    fn roundtrip(q: &EventQueue<u64>) -> EventQueue<u64> {
        let mut w = SnapWriter::new();
        q.save_state(&mut w, |e, w| w.write_u64(*e));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let restored = EventQueue::load_state(&mut r, |r| r.read_u64()).unwrap();
        r.finish().unwrap();
        restored
    }

    #[test]
    fn snapshot_round_trip_replays_identically() {
        let mut q = EventQueue::new();
        let mut rng = crate::SimRng::new(0x5AFE);
        let mut ids = Vec::new();
        for step in 0..5_000u64 {
            match rng.next_below(4) {
                0..=1 => {
                    let at = q.now() + SimDuration::from_nanos(rng.next_below(100));
                    ids.push(q.schedule_at(at, step));
                }
                2 if !ids.is_empty() => {
                    let k = rng.next_below(ids.len() as u64) as usize;
                    q.cancel(ids.swap_remove(k));
                }
                _ => {
                    q.pop();
                }
            }
        }
        let mut restored = roundtrip(&q);
        restored.assert_invariants();
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.dispatched(), q.dispatched());
        assert_eq!(restored.scheduled(), q.scheduled());
        assert_eq!(restored.peak_len(), q.peak_len());
        // Outstanding handles survive: cancel through the restored queue.
        for &id in &ids {
            assert_eq!(q.has_fired(id), restored.has_fired(id));
        }
        // Both queues drain in the identical order and keep agreeing on
        // further mixed operations.
        loop {
            let a = q.pop();
            let b = restored.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn snapshot_preserves_handle_validity_and_staleness() {
        let mut q = EventQueue::new();
        let fired = q.schedule_at(SimTime::from_secs(1), 0u64);
        q.pop();
        // Reuses the fired slot at a later generation.
        let live = q.schedule_at(SimTime::from_secs(2), 1u64);
        let cancelled = q.schedule_at(SimTime::from_secs(3), 2u64);
        q.cancel(cancelled);
        let mut restored = roundtrip(&q);
        assert!(restored.has_fired(fired));
        assert!(restored.has_fired(cancelled));
        assert!(!restored.has_fired(live));
        assert!(!restored.cancel(fired), "stale handle accepted");
        assert!(restored.cancel(live), "live handle rejected");
    }

    #[test]
    fn corrupt_snapshot_is_rejected_structurally() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 7u64);
        let mut w = SnapWriter::new();
        q.save_state(&mut w, |e, w| w.write_u64(*e));
        let bytes = w.into_bytes();
        // Truncation at every prefix either loads (only at full length) or
        // errors — never panics.
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(
                EventQueue::<u64>::load_state(&mut r, |r| r.read_u64()).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.heap.capacity() >= 64);
        assert!(q.slots.capacity() >= 64);
        for i in 0..64u64 {
            q.schedule_at(SimTime::from_secs(i + 1), i);
        }
        assert_eq!(q.len(), 64);
    }
}
