//! `td-repro` — regenerate every figure and table of the paper.
//!
//! ```text
//! td-repro list                       # show available experiment ids
//! td-repro --list                     # full registry incl. hidden entries
//! td-repro all [--full] [--seed N] [--jobs N] [--out DIR]
//! td-repro fig45 [--full] [--seed N] [--out DIR]
//! td-repro --resume DIR [--jobs N]    # continue an interrupted sweep
//! td-repro mc [--seed N] [...]        # bounded model checking (fig45)
//! td-repro mc --replay FILE.tdmc      # reproduce a counterexample
//! ```
//!
//! Experiments run on a worker pool fed by one global job budget
//! (`--jobs N`, default = available cores): workers claim a slot each
//! while executing experiments, and idle slots — fewer experiments than
//! jobs, or workers that ran out of work — are borrowed by
//! *in-experiment* replicate sweeps and batched trace analysis, so one
//! big experiment still fills the machine. Seeds are a pure function of
//! `(--seed, experiment id, replicate)` — never of scheduling — so
//! reports are byte-identical whatever the budget. The canonical
//! replicate runs with `--seed` verbatim; extra `--seeds` replicates get
//! decorrelated derived seeds. A panicking experiment is isolated: it
//! becomes one failed report (message preserved in `timings.json`) while
//! the rest of the batch completes. Reports print to stdout (metric
//! rows and ASCII figures) in registry order. With `--out DIR` the
//! underlying CSV series, a markdown summary, and a `timings.json`
//! observability report are written there; `--timings FILE` writes the
//! timings report to an explicit path. Both are written even when
//! experiments fail — a red batch is exactly when the observability
//! report matters.
//!
//! # Crash resilience
//!
//! With `--out DIR` the sweep also keeps an append-only, fsynced results
//! journal (`journal.tdj`) in the directory: one line per completed
//! `(experiment, replicate)` cell, durable the moment the cell finishes.
//! `--resume DIR` replays that journal — configuration comes from the
//! journal header, completed cells are reprinted without re-running, and
//! only the missing cells execute. Because every seed is derived, not
//! scheduled, the resumed sweep's stdout and output files are
//! byte-identical to an uninterrupted run (only `timings.json` and the
//! journal itself carry wall-clock noise). Every output file is written
//! atomically (temp file + rename), so a crash can never leave a torn
//! CSV or half a `timings.json`.
//!
//! On Unix, SIGINT/SIGTERM interrupt *gracefully*: in-flight experiments
//! finish (and reach the journal), the partial `timings.json` is written
//! with `"interrupted": true`, and the process exits with status 130 —
//! `--resume` then picks up exactly where the signal landed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Mutex;
use td_experiments::journal::{Journal, JournalHeader};
use td_experiments::registry::{find, hidden, registry, Entry, Profile};
use td_experiments::runner::{default_jobs, run_batch_resumable, BatchResult, RunnerConfig};

/// Graceful-shutdown signal handling (SIGINT / SIGTERM).
///
/// The handler only raises a flag — the runner's workers poll it between
/// tasks, finish what they started, and flush the journal. This module
/// is the one place in the whole workspace that needs `unsafe`: a raw
/// `signal(2)` binding, so the zero-dependency rule holds. The handler
/// body is a single atomic store, well inside the async-signal-safe set.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

fn install_signal_handlers() -> Option<&'static std::sync::atomic::AtomicBool> {
    #[cfg(unix)]
    {
        sig::install();
        Some(&sig::INTERRUPTED)
    }
    #[cfg(not(unix))]
    {
        None
    }
}

struct Args {
    ids: Vec<String>,
    seed: u64,
    seeds: u64,
    jobs: usize,
    shards: u32,
    profile: Profile,
    out: Option<PathBuf>,
    timings: Option<PathBuf>,
    resume: Option<PathBuf>,
    salvage: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut seed = 1;
    let mut seeds = 1;
    let mut jobs = default_jobs();
    let mut shards = 1;
    let mut profile = Profile::Quick;
    let mut out = None;
    let mut timings = None;
    let mut resume = None;
    let mut salvage = false;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--full" => profile = Profile::Full,
            "--quick" => profile = Profile::Quick,
            "--profile" => {
                let v = argv.next().ok_or("--profile needs quick|full")?;
                profile = match v.as_str() {
                    "quick" => Profile::Quick,
                    "full" => Profile::Full,
                    other => return Err(format!("bad profile: {other} (quick|full)")),
                };
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--seeds" => {
                let v = argv.next().ok_or("--seeds needs a count")?;
                seeds = v.parse().map_err(|_| format!("bad count: {v}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--jobs" => {
                let v = argv.next().ok_or("--jobs needs a count")?;
                jobs = v.parse().map_err(|_| format!("bad job count: {v}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--shards" => {
                let v = argv.next().ok_or("--shards needs a count")?;
                shards = v.parse().map_err(|_| format!("bad shard count: {v}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--timings" => {
                let v = argv.next().ok_or("--timings needs a file path")?;
                timings = Some(PathBuf::from(v));
            }
            "--resume" => {
                let v = argv.next().ok_or("--resume needs a directory")?;
                resume = Some(PathBuf::from(v));
            }
            "--salvage" => salvage = true,
            "--only" => {
                let v = argv.next().ok_or("--only needs an experiment id")?;
                ids.push(v);
            }
            "--all" => ids.push("all".into()),
            "-h" | "--help" => {
                ids.push("help".into());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag: {other}"));
            }
            other => ids.push(other.to_owned()),
        }
    }
    if resume.is_some() && !ids.is_empty() {
        return Err("--resume takes its experiment list from the journal; \
                    don't pass ids with it"
            .into());
    }
    if salvage && resume.is_none() {
        return Err("--salvage only makes sense with --resume".into());
    }
    Ok(Args {
        ids,
        seed,
        seeds,
        jobs,
        shards,
        profile,
        out,
        timings,
        resume,
        salvage,
    })
}

fn usage() {
    println!("td-repro — reproduce Zhang/Shenker/Clark (SIGCOMM '91)");
    println!();
    println!("usage: td-repro <id|all|list> [--full] [--seed N] [--jobs N] [--out DIR]");
    println!("       td-repro --resume DIR [--salvage] [--jobs N]");
    println!("       td-repro --list     (full registry, hidden entries flagged)");
    println!("       td-repro mc [--seed N] [--full] [--grid N] [--seed-violation]");
    println!("                   [--artifacts DIR] | --replay FILE.tdmc");
    println!();
    println!("experiments:");
    for e in registry() {
        println!("  {:<14} {}", e.id, e.about);
    }
    println!();
    println!("flags:");
    println!("  --full           paper-scale run lengths (default: quick)");
    println!("  --profile P      quick | full (same as --quick / --full)");
    println!("  --only ID        run a single experiment (same as the positional id)");
    println!("  --seed N         master seed for the canonical run (default 1)");
    println!("  --seeds N        run N replicates per experiment; replicate 0 uses");
    println!("                   --seed verbatim, the rest get derived seeds");
    println!("  --jobs N         global job budget: cross-experiment workers plus",);
    println!(
        "                   in-experiment sweep slots (default: cores = {})",
        default_jobs()
    );
    println!("  --shards N       worker shards for shard-aware experiments (e.g. scale);");
    println!("                   results are byte-identical for every N (default 1)");
    println!("  --out DIR        also write CSV data, a markdown summary, timings.json,");
    println!("                   and an fsynced results journal (journal.tdj)");
    println!("  --timings FILE   write the timings/observability report to FILE");
    println!("  --resume DIR     continue an interrupted sweep from DIR's journal:");
    println!("                   completed cells replay, only missing cells run");
    println!("  --salvage        with --resume: if the journal has mid-file damage,");
    println!("                   truncate at the first bad line, keep the intact");
    println!("                   prefix, and rerun the dropped cells");
}

/// Print the full registry — public entries first, then the hidden
/// drills — as `(id, hidden flag, title)` rows.
fn print_list() {
    for e in registry() {
        println!("{:<14} {:<8} {}", e.id, "", e.about);
    }
    for e in hidden() {
        println!("{:<14} {:<8} {}", e.id, "hidden", e.about);
    }
}

/// `td-repro mc` — bounded model checking of the fig45 scenario.
///
/// Explore mode prints the exploration counters and any counterexamples
/// (exit 0 when the verdict matches expectation: a clean tree normally,
/// at least one counterexample under `--seed-violation`). Replay mode
/// (`--replay FILE.tdmc`) re-executes a schedule and exits 0 only if it
/// reproduces a violation or stall.
fn mc_main(argv: &[String]) -> ExitCode {
    use td_experiments::mc::{explore_fig45, replay_fig45, McParams};
    use td_net::mc::McSchedule;

    let mut seed = 1u64;
    let mut full = false;
    let mut grid: Option<usize> = None;
    let mut outage_ms: Option<u64> = None;
    let mut max_decisions: Option<usize> = None;
    let mut max_states: Option<u64> = None;
    let mut no_drops = false;
    let mut seed_violation = false;
    let mut artifacts: Option<PathBuf> = None;
    let mut replay: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{what} needs a value"))
        };
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--seed" => {
                    let v = next("--seed")?;
                    seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
                }
                "--full" => full = true,
                "--quick" => full = false,
                "--grid" => {
                    let v = next("--grid")?;
                    grid = Some(v.parse().map_err(|_| format!("bad grid size: {v}"))?);
                }
                "--outage-ms" => {
                    let v = next("--outage-ms")?;
                    outage_ms = Some(v.parse().map_err(|_| format!("bad outage: {v}"))?);
                }
                "--max-decisions" => {
                    let v = next("--max-decisions")?;
                    max_decisions = Some(v.parse().map_err(|_| format!("bad depth: {v}"))?);
                }
                "--max-states" => {
                    let v = next("--max-states")?;
                    max_states = Some(v.parse().map_err(|_| format!("bad budget: {v}"))?);
                }
                "--no-drops" => no_drops = true,
                "--seed-violation" => seed_violation = true,
                "--artifacts" => artifacts = Some(PathBuf::from(next("--artifacts")?)),
                "--replay" => replay = Some(PathBuf::from(next("--replay")?)),
                other => return Err(format!("unknown mc flag: {other}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}");
            eprintln!(
                "usage: td-repro mc [--seed N] [--full] [--grid N] [--outage-ms N]\n\
                 \x20                 [--max-decisions N] [--max-states N] [--no-drops]\n\
                 \x20                 [--seed-violation] [--artifacts DIR]\n\
                 \x20      td-repro mc --replay FILE.tdmc"
            );
            return ExitCode::from(2);
        }
    }

    if let Some(path) = replay {
        let sched = match McSchedule::read_from_file(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read schedule {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        println!(
            "mc replay: {} — seed {}, {} decision(s), seeded-violation prelude: {}",
            path.display(),
            sched.seed,
            sched.decisions.len(),
            if sched.seeded_violation { "yes" } else { "no" }
        );
        for &(gi, d) in &sched.decisions {
            println!(
                "  decision @{gi} ({:?}): {}",
                sched.grid[gi as usize],
                d.render()
            );
        }
        let out = replay_fig45(&sched);
        for v in &out.violations {
            println!("violation: {v}");
        }
        if let Some(s) = &out.stall {
            println!("stall: {s}");
        }
        if out.violations.is_empty() && out.stall.is_none() {
            eprintln!("schedule replayed clean: no violation or stall reproduced");
            return ExitCode::FAILURE;
        }
        println!(
            "reproduced {} violation(s){}",
            out.violations.len(),
            if out.stall.is_some() { " + stall" } else { "" }
        );
        return ExitCode::SUCCESS;
    }

    let mut p = if full {
        McParams::full(seed)
    } else {
        McParams::quick(seed)
    };
    if let Some(g) = grid {
        p.grid_points = g;
    }
    if let Some(ms) = outage_ms {
        p.outage = td_engine::SimDuration::from_millis(ms);
    }
    if let Some(d) = max_decisions {
        p.max_decisions = d;
    }
    if let Some(s) = max_states {
        p.max_states = s;
    }
    p.enable_drops = !no_drops;
    p.seeded_violation = seed_violation;
    p.artifact_dir = artifacts;

    println!(
        "mc: fig45 bounded exploration — seed {seed}, {} grid point(s), \
         outage {} ms, <= {} decision(s)/path, budget {} states{}",
        p.grid_points,
        p.outage.as_nanos() / 1_000_000,
        p.max_decisions,
        p.max_states,
        if p.seeded_violation {
            " [seeded violation]"
        } else {
            ""
        }
    );
    let run = explore_fig45(&p);
    let s = &run.stats;
    println!(
        "mc: window [{:?}, {:?}], horizon {:?}",
        run.grid.first().unwrap(),
        run.grid.last().unwrap(),
        run.horizon
    );
    println!(
        "mc: visited={} deduped={} pruned={} max_depth={} counterexamples={}",
        s.states_visited,
        s.states_deduped,
        s.states_pruned,
        s.max_depth,
        s.counterexamples.len()
    );
    for (i, cex) in s.counterexamples.iter().enumerate() {
        let path: Vec<String> = cex
            .schedule
            .decisions
            .iter()
            .map(|&(gi, d)| format!("@{gi} {}", d.render()))
            .collect();
        println!("counterexample {i}: [{}]", path.join(", "));
        for v in &cex.violations {
            println!("  violation: {v}");
        }
        if let Some(st) = &cex.stall {
            println!("  stall: {st}");
        }
        if let Some(sp) = &cex.schedule_path {
            println!("  schedule: {}", sp.display());
        }
        if let Some(np) = &cex.snapshot_path {
            println!("  snapshot: {}", np.display());
        }
    }
    // A clean tree is the expected verdict normally; under
    // --seed-violation the expectation inverts — the harness must find
    // (and persist) the seeded counterexamples.
    if s.counterexamples.is_empty() != p.seeded_violation {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("mc") {
        return mc_main(&raw[1..]);
    }
    if raw.iter().any(|a| a == "--list") {
        print_list();
        return ExitCode::SUCCESS;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    td_experiments::set_shards(args.shards);
    if args.resume.is_none() && (args.ids.is_empty() || args.ids.iter().any(|i| i == "help")) {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.ids.iter().any(|i| i == "list") {
        for e in registry() {
            println!("{:<14} {}", e.id, e.about);
        }
        return ExitCode::SUCCESS;
    }

    let interrupt = install_signal_handlers();

    // Resolve what to run. A fresh sweep takes everything from the
    // command line; a resumed one takes seed, profile, replicates, and
    // the experiment list from the journal header (only --jobs and
    // --timings still apply), so the two runs cannot diverge.
    let (entries, cfg, out, completed): (Vec<Entry>, RunnerConfig, Option<PathBuf>, Vec<_>) =
        if let Some(dir) = &args.resume {
            let (header, cells) = if args.salvage {
                match Journal::load_salvage(dir) {
                    Ok((header, cells, report)) => {
                        match report.truncated_at_byte {
                            Some(offset) => eprintln!(
                                "salvage: kept {} intact cell(s), dropped {} damaged \
                                 line(s), truncated journal at byte {offset}",
                                report.kept_cells, report.dropped_lines
                            ),
                            None => eprintln!(
                                "salvage: journal is fully intact ({} cell(s)), \
                                 nothing to drop",
                                report.kept_cells
                            ),
                        }
                        (header, cells)
                    }
                    Err(e) => {
                        eprintln!("error: cannot salvage {}: {e}", dir.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                match Journal::load(dir) {
                    Ok(x) => x,
                    Err(e) => {
                        eprintln!("error: cannot resume from {}: {e}", dir.display());
                        return ExitCode::from(2);
                    }
                }
            };
            let mut picked = Vec::new();
            for id in &header.ids {
                match find(id) {
                    Some(e) => picked.push(e),
                    None => {
                        eprintln!(
                            "error: journal names experiment {id:?} but the registry \
                             doesn't know it"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            eprintln!(
                "resuming from {}: {} of {} cells already journaled",
                dir.display(),
                cells.len(),
                picked.len() * header.replicates.max(1) as usize,
            );
            let cfg = RunnerConfig {
                jobs: args.jobs,
                profile: header.profile,
                master_seed: header.master_seed,
                replicates: header.replicates,
                progress: true,
                interrupt,
            };
            (picked, cfg, Some(dir.clone()), cells)
        } else {
            let entries: Vec<_> = if args.ids.iter().any(|i| i == "all") {
                registry()
            } else {
                let mut picked = Vec::new();
                for id in &args.ids {
                    match find(id) {
                        Some(e) => picked.push(e),
                        None => {
                            eprintln!("error: unknown experiment id: {id} (try `td-repro list`)");
                            return ExitCode::from(2);
                        }
                    }
                }
                picked
            };
            let cfg = RunnerConfig {
                jobs: args.jobs,
                profile: args.profile,
                master_seed: args.seed,
                replicates: args.seeds,
                progress: true,
                interrupt,
            };
            (entries, cfg, args.out.clone(), Vec::new())
        };

    // Open the journal: fresh (with a header line) for a new sweep with
    // an output directory, append-mode for a resume. No directory, no
    // journal — there is nowhere durable to put it.
    let journal = match &out {
        Some(dir) if args.resume.is_some() => match Journal::open_append(dir) {
            Ok(j) => Some(Mutex::new(j)),
            Err(e) => {
                eprintln!("error: cannot reopen journal in {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        },
        Some(dir) => {
            let header = JournalHeader {
                master_seed: cfg.master_seed,
                profile: cfg.profile,
                replicates: cfg.replicates.max(1),
                ids: entries.iter().map(|e| e.id.to_owned()).collect(),
            };
            match Journal::create(dir, &header) {
                Ok(j) => Some(Mutex::new(j)),
                Err(e) => {
                    eprintln!("error: cannot create journal in {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    eprintln!(
        "running {} experiment(s) × {} seed(s) on a {}-job budget ...",
        entries.len(),
        cfg.replicates.max(1),
        cfg.jobs.max(1)
    );
    let batch = run_batch_resumable(&entries, &cfg, journal.as_ref(), completed);

    // Reports in registry order, independent of completion order (and of
    // whether a cell ran now or was replayed from the journal).
    for r in batch.primary() {
        println!("{}", r.report);
        if !r.report.all_ok() {
            eprintln!(
                "MISMATCH in {} (seed {}): {:?}",
                r.id,
                r.seed,
                r.report.failures()
            );
        }
    }
    if cfg.replicates > 1 {
        for e in &entries {
            let (passes, total) = batch.pass_count(e.id);
            eprintln!("{}: {passes}/{total} seeds fully in-band", e.id);
        }
    }

    // Persist observability and outputs unconditionally — and
    // independently of each other — before deciding the exit code: a red
    // batch (mismatches, panics, or an interrupt) is exactly when
    // timings.json and the partial outputs matter most.
    let mut io_failed = false;
    if let Err(e) = write_timings(&args, &out, &batch) {
        eprintln!("error writing timings: {e}");
        io_failed = true;
    }
    if let Some(dir) = &out {
        let reports: Vec<_> = batch.primary().map(|r| r.report.clone()).collect();
        match write_outputs(dir, &reports) {
            Err(e) => {
                eprintln!("error writing outputs: {e}");
                io_failed = true;
            }
            Ok(()) => eprintln!("wrote CSVs and summary to {}", dir.display()),
        }
    }

    for (id, replicate, msg) in batch.panics() {
        eprintln!("PANIC in {id} (replicate {replicate}): {msg}");
    }
    let ok = batch.primary().filter(|r| r.report.all_ok()).count();
    eprintln!(
        "{ok}/{} experiments fully in-band, {:.1}s wall clock on a {}-job budget",
        batch.primary().count(),
        batch.total_wall_s,
        batch.jobs
    );
    if batch.interrupted {
        eprintln!(
            "interrupted: {} cell(s) journaled; finish with `td-repro --resume DIR`",
            batch.results.len()
        );
        return ExitCode::from(130);
    }
    if batch.all_ok() && !io_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Write `contents` to `path` atomically: a sibling temp file is written
/// in full, then renamed over the target, so a crash at any instant
/// leaves either the old file or the new one — never a torn hybrid.
fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("no file name in {path:?}"),
        )
    })?;
    let mut tmp_name = name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn write_timings(args: &Args, out: &Option<PathBuf>, batch: &BatchResult) -> std::io::Result<()> {
    let explicit = args.timings.clone();
    let implied = out.as_ref().map(|d| d.join("timings.json"));
    for path in explicit.into_iter().chain(implied) {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        write_atomic(&path, batch.timings_json().as_bytes())?;
        eprintln!("wrote timings to {}", path.display());
    }
    Ok(())
}

fn write_outputs(dir: &Path, reports: &[td_experiments::Report]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut summary = String::from("# Reproduction summary\n\n");
    for rep in reports {
        summary.push_str(&format!(
            "## {} — {}\n\n{}\n",
            rep.id, rep.title, rep.config
        ));
        summary.push('\n');
        summary.push_str(&rep.markdown_table());
        summary.push('\n');
        for p in &rep.plots {
            summary.push_str("```\n");
            summary.push_str(p);
            summary.push_str("```\n\n");
        }
        for (name, contents) in &rep.csvs {
            write_atomic(&dir.join(name), contents.as_bytes())?;
        }
        for (name, bytes) in &rep.blobs {
            write_atomic(&dir.join(name), bytes)?;
        }
    }
    write_atomic(&dir.join("SUMMARY.md"), summary.as_bytes())
}
