//! Intra-experiment parallelism: replicate sweeps and batched trace
//! analysis on the runner's shared job budget.
//!
//! PR 1 parallelized *across* experiments; a single sweep-style experiment
//! (a mode census over ten start phases, the fig45 buffer sweep, the
//! rtt-spread A/B cells) still ran one replicate at a time on one thread.
//! This module adds the second level:
//!
//! * [`JobBudget`] — the process-wide pool of job slots shared between the
//!   cross-experiment scheduler and in-experiment sweeps. The split is
//!   two-level and work-stealing-free: `run_batch` workers each *own* one
//!   slot while they execute experiments; whatever `--jobs` budget is left
//!   over (fewer tasks than jobs, or workers that ran out of tasks and
//!   retired) stays in the pool, and sweeps *borrow* those idle slots to
//!   drain their replicate queues. Nothing ever migrates a replicate
//!   between sweeps, so there is no stealing and no cross-sweep contention
//!   beyond one atomic.
//! * [`parallel_map`] — run one closure over N items on the caller plus
//!   however many borrowed helper threads the budget grants, collecting
//!   results **by item index**. Output is identical — byte for byte —
//!   whether zero or N−1 helpers were granted, because item order, seeds,
//!   and per-item work never depend on scheduling; only wall clock does.
//! * [`ReplicateSweep`] — the (seed, replicate) fan-out abstraction on top
//!   of `parallel_map`: explicit seed lists (the mode census) or seeds
//!   derived with the runner's [`derive_seed`] discipline (decorrelated
//!   replicates of a canonical run).
//!
//! Per-replicate results are reduced worker-side (workers return small
//! stats, dropping multi-MB `Trace`s before they cross threads) and merged
//! with a deterministic fold in replicate order by the caller.
//!
//! Engine telemetry stays exact: each helper-run item is metered with a
//! thread-local reset/snapshot pair and the delta is folded back into the
//! calling thread's counters ([`td_engine::telemetry::merge`]), so an
//! experiment's `timings.json` row reports the same event totals whether
//! its sweeps ran on one thread or eight.

use crate::runner::derive_seed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use td_engine::telemetry;

/// Sentinel for a [`JobBudget`] that was never configured (library/test
/// use outside `run_batch`): sweeps then self-limit to a small default
/// fan-out instead of accounting against a pool.
const UNCONFIGURED: usize = usize::MAX;

/// Helper cap per sweep when no budget was configured. Keeps `cargo test`
/// (which runs many experiment tests concurrently already) from spawning
/// cores² threads while still letting standalone sweeps overlap their
/// replicates.
const UNCONFIGURED_HELPER_CAP: usize = 4;

/// The process-wide pool of job slots shared by the experiment runner and
/// in-experiment replicate sweeps.
///
/// `run_batch` calls [`JobBudget::configure`] with the `--jobs` value,
/// then acquires one slot per worker it spawns; each worker releases its
/// slot when it retires. Sweeps borrow from what remains via
/// [`JobBudget::acquire_up_to`] and return the slots when done. The
/// accounting is purely a concurrency-level policy: granting fewer or more
/// slots can never change any result, only the wall clock, so races
/// between concurrent `configure` calls (e.g. parallel tests running
/// `run_batch`) are benign.
pub struct JobBudget {
    /// Slots currently available for borrowing.
    available: AtomicUsize,
    /// Total slots configured (clamps release; `UNCONFIGURED` until the
    /// first `configure`).
    total: AtomicUsize,
}

impl JobBudget {
    const fn new() -> Self {
        JobBudget {
            available: AtomicUsize::new(0),
            total: AtomicUsize::new(UNCONFIGURED),
        }
    }

    /// Set the pool to exactly `slots` available out of `slots` total.
    pub fn configure(&self, slots: usize) {
        self.total.store(slots, Ordering::SeqCst);
        self.available.store(slots, Ordering::SeqCst);
    }

    /// Borrow up to `want` slots; returns how many were granted (possibly
    /// zero — callers must degrade to sequential, never block).
    pub fn acquire_up_to(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        if self.total.load(Ordering::SeqCst) == UNCONFIGURED {
            // No policy installed: self-limit rather than account.
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            return want
                .min(cores.saturating_sub(1))
                .min(UNCONFIGURED_HELPER_CAP);
        }
        let mut cur = self.available.load(Ordering::SeqCst);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match self.available.compare_exchange(
                cur,
                cur - take,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }

    /// Return `n` borrowed slots. Clamped to the configured total so a
    /// mid-flight `configure` from a concurrent batch cannot inflate the
    /// pool; a no-op while unconfigured (those grants are unaccounted).
    pub fn release(&self, n: usize) {
        let total = self.total.load(Ordering::SeqCst);
        if total == UNCONFIGURED || n == 0 {
            return;
        }
        let mut cur = self.available.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_add(n).min(total);
            match self
                .available
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Slots currently available for borrowing (observability/tests).
    pub fn available(&self) -> usize {
        match self.available.load(Ordering::SeqCst) {
            _ if self.total.load(Ordering::SeqCst) == UNCONFIGURED => 0,
            n => n,
        }
    }
}

/// The process-wide budget instance.
pub fn budget() -> &'static JobBudget {
    static BUDGET: JobBudget = JobBudget::new();
    &BUDGET
}

/// Returns borrowed slots on drop, so a panicking replicate (unwound
/// through [`std::thread::scope`]) cannot leak budget.
struct BudgetLease {
    slots: usize,
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        budget().release(self.slots);
    }
}

/// Run `f` over every item, on the calling thread plus up to `len - 1`
/// borrowed helper threads, and collect the results **in item order**.
///
/// Determinism contract: `f(i, &items[i])` must depend only on its
/// arguments (plus immutable captures), never on which thread runs it or
/// in what order items complete. Under that contract the returned vector
/// is identical for any number of granted helpers — the helpers are pure
/// wall-clock.
///
/// Each helper-run item is telemetry-metered in isolation and the deltas
/// are folded back into the caller's thread-local counters, so callers
/// (e.g. the experiment runner) see the same engine totals as a
/// sequential run. Worker closures should return reduced, `Send` stats —
/// not whole `World`s — so multi-MB traces die on the thread that made
/// them.
///
/// A panic in `f` propagates to the caller (after all threads join and
/// the budget lease is returned), where the runner's per-task
/// `catch_unwind` turns it into a failed experiment.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let lease = BudgetLease {
        slots: budget().acquire_up_to(n - 1),
    };
    if lease.slots == 0 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Propagate the caller's wall-clock deadline (if a serving layer
    // armed one) into the helpers, so an over-budget sweep aborts on
    // every thread promptly instead of only when the caller's own items
    // poll. Note `std::thread::scope` re-raises a helper panic with a
    // generic payload, so deadline classification upstream must rely on
    // `deadline::expired()`, not on the payload alone.
    let deadline = td_net::deadline::get();
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    // Telemetry and audit-tally deltas of helper-run items, merged into
    // the caller after the join so totals match a sequential run exactly.
    let telem: Vec<OnceLock<telemetry::Telemetry>> = (0..n).map(|_| OnceLock::new()).collect();
    let audits: Vec<OnceLock<td_net::audit::Tally>> = (0..n).map(|_| OnceLock::new()).collect();
    let snaps: Vec<OnceLock<td_net::snapcount::SnapCounters>> =
        (0..n).map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for _ in 0..lease.slots {
            scope.spawn(|| {
                let _deadline_guard = deadline.map(td_net::deadline::arm_until);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    telemetry::reset();
                    td_net::audit::reset_thread();
                    td_net::snapcount::reset_thread();
                    let r = f(i, &items[i]);
                    let _ = telem[i].set(telemetry::snapshot());
                    let _ = audits[i].set(td_net::audit::take_thread());
                    let _ = snaps[i].set(td_net::snapcount::take_thread());
                    let _ = slots[i].set(r);
                }
            });
        }
        // The caller drains the same queue; its items accumulate into its
        // own thread-local telemetry directly, as they would sequentially.
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let _ = slots[i].set(f(i, &items[i]));
        }
    });
    drop(lease);

    for t in &telem {
        if let Some(&delta) = t.get() {
            telemetry::merge(delta);
        }
    }
    for a in audits {
        if let Some(delta) = a.into_inner() {
            td_net::audit::absorb(delta);
        }
    }
    for s in &snaps {
        if let Some(&delta) = s.get() {
            td_net::snapcount::absorb(delta);
        }
    }
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every item ran"))
        .collect()
}

/// A scenario fanned out over N seeded replicates.
///
/// The seeds are fixed at construction — either an explicit list (the
/// §4.3.3 mode census enumerates start phases `seed0..seed0+10`) or
/// derived from a master seed with the runner's [`derive_seed`]
/// discipline (replicate `i` gets `derive_seed(master, id, i)`), so the
/// fan-out is a pure function of `(id, master_seed, replicate)` and never
/// of scheduling. [`ReplicateSweep::run`] executes the replicates via
/// [`parallel_map`] and returns per-replicate results in replicate order,
/// ready for a deterministic fold.
pub struct ReplicateSweep {
    id: &'static str,
    seeds: Vec<u64>,
}

impl ReplicateSweep {
    /// A sweep over an explicit seed list.
    pub fn explicit(id: &'static str, seeds: Vec<u64>) -> Self {
        ReplicateSweep { id, seeds }
    }

    /// A sweep over `n` decorrelated replicates of `master_seed`:
    /// replicate `i` runs with `derive_seed(master_seed, id, i + 1)`
    /// (replicate index 0 is reserved for the canonical run, which the
    /// caller typically executes itself with `master_seed` verbatim).
    pub fn derived(id: &'static str, master_seed: u64, n: usize) -> Self {
        ReplicateSweep {
            id,
            seeds: (0..n)
                .map(|i| derive_seed(master_seed, id, i as u64 + 1))
                .collect(),
        }
    }

    /// The replicate seeds, in replicate order.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Run `f(seed, replicate_idx)` for every replicate (in parallel when
    /// the budget grants slots) and return the results in replicate
    /// order.
    pub fn run<R: Send + Sync>(&self, f: impl Fn(u64, usize) -> R + Sync) -> Vec<R> {
        parallel_map(&self.seeds, |i, &seed| f(seed, i))
    }

    /// The experiment id the seeds were derived under.
    pub fn id(&self) -> &'static str {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_tiny_inputs() {
        let empty: [u8; 0] = [];
        assert!(parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u8], |i, &x| (i, x)), vec![(0, 5)]);
    }

    #[test]
    fn budget_accounting_is_bounded() {
        let b = JobBudget::new();
        assert_eq!(b.available(), 0, "unconfigured reports zero");
        b.configure(3);
        assert_eq!(b.available(), 3);
        assert_eq!(b.acquire_up_to(2), 2);
        assert_eq!(b.acquire_up_to(5), 1, "grants what is left");
        assert_eq!(b.acquire_up_to(1), 0, "empty pool grants nothing");
        b.release(2);
        assert_eq!(b.available(), 2);
        b.release(100);
        assert_eq!(b.available(), 3, "release clamps at the configured total");
    }

    #[test]
    fn unconfigured_budget_self_limits() {
        let b = JobBudget::new();
        let granted = b.acquire_up_to(64);
        assert!(granted <= UNCONFIGURED_HELPER_CAP);
        b.release(granted); // must be a no-op, not a panic
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn telemetry_totals_match_sequential() {
        use td_engine::{EventQueue, SimTime};
        let work = |k: u64| {
            let mut q = EventQueue::new();
            for i in 0..=k {
                q.schedule_at(SimTime::from_secs(i), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            sum
        };
        let items: Vec<u64> = (1..40).collect();

        telemetry::reset();
        let seq: Vec<u64> = items.iter().map(|&k| work(k)).collect();
        let t_seq = telemetry::snapshot();

        telemetry::reset();
        let par = parallel_map(&items, |_, &k| work(k));
        let t_par = telemetry::snapshot();

        assert_eq!(seq, par);
        assert_eq!(t_seq.events_scheduled, t_par.events_scheduled);
        assert_eq!(t_seq.events_dispatched, t_par.events_dispatched);
        assert_eq!(t_seq.peak_queue_depth, t_par.peak_queue_depth);
    }

    #[test]
    fn replicate_sweep_seeds_are_pure_and_ordered() {
        let a = ReplicateSweep::derived("fig67", 7, 4);
        let b = ReplicateSweep::derived("fig67", 7, 4);
        assert_eq!(a.seeds(), b.seeds());
        assert_eq!(a.seeds().len(), 4);
        // Replicates are decorrelated from each other and from the master.
        let mut uniq: Vec<u64> = a.seeds().to_vec();
        uniq.push(7);
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5);
        // And a different experiment id derives a different stream.
        assert_ne!(a.seeds(), ReplicateSweep::derived("fig45", 7, 4).seeds());

        let ex = ReplicateSweep::explicit("tbl-modes", vec![3, 1, 2]);
        let got = ex.run(|seed, i| (i, seed));
        assert_eq!(got, vec![(0, 3), (1, 1), (2, 2)], "replicate order kept");
    }

    #[test]
    fn parallel_map_propagates_panics_without_leaking_budget() {
        let b = budget();
        b.configure(2);
        let items: Vec<u32> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            parallel_map(&items, |_, &x| {
                if x == 3 {
                    panic!("replicate {x} exploded");
                }
                x
            })
        });
        assert!(r.is_err());
        assert_eq!(b.available(), 2, "lease returned on unwind");
    }
}
