//! Bidirectional TCP with piggybacked acknowledgments.
//!
//! The paper's two-way traffic consists of two *separate* one-way
//! connections, so its delayed-ACK discussion notes a third trigger that
//! can never fire there: "a data packet transmission in the other
//! direction on which the ACK can be piggy-backed" (§2.1). This module
//! supplies the configuration where it does fire: a single connection with
//! bulk data flowing in *both* directions between its two endpoints.
//!
//! A [`TcpDuplex`] endpoint combines the sender and receiver machinery:
//!
//! * every data packet carries a piggybacked cumulative ack
//!   ([`td_net::Packet::ack`]). Whether piggybacks actually replace pure
//!   ACKs depends on the delayed-ACK option: with it **off**, arrivals are
//!   acknowledged immediately, the window is typically closed at that
//!   instant, and the ack goes out pure (the later reverse data carries a
//!   stale number); with it **on**, the held ack rides the next reverse
//!   data packet — the behaviour BSD's option was designed to enable;
//! * pure ACKs are generated only when acknowledgment is urgent (an
//!   out-of-order or duplicate segment — the dup-ACK congestion signal) or
//!   when the window is closed and nothing can carry the ack (after the
//!   delayed-ACK grace period, or immediately with delack off);
//! * duplicate-ACK counting follows BSD: only *pure* ACKs repeating the
//!   cumulative point count toward fast retransmit — data-bearing
//!   segments never do;
//! * loss recovery, RTT estimation (Karn's rule), RTO backoff, and the
//!   congestion-control plumbing are the same as [`crate::TcpSender`]'s.
//!
//! The interesting dynamical consequence, tested in the experiments crate:
//! full piggybacking removes the data/ACK *size asymmetry* that
//! ACK-compression feeds on — every segment serializes in a data-packet
//! time, so the 10× spacing collapse cannot happen.

use crate::cc::CongestionControl;
use crate::config::{ReceiverConfig, SenderConfig};
use crate::rtt::RttEstimator;
use std::any::Any;
use std::collections::BTreeSet;
use td_engine::{SimTime, SnapError, SnapReader, SnapWriter};
use td_net::{Ctx, Endpoint, LossKind, Packet, PacketKind, ProtoEvent, TimerHandle};

const TOKEN_RTO: u64 = 1;
const TOKEN_DELACK: u64 = 2;

/// Counters exposed after a run.
#[derive(Clone, Copy, Default, Debug)]
pub struct DuplexStats {
    /// Data transmissions, including retransmissions.
    pub data_sent: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// Pure (data-less) ACK packets transmitted.
    pub pure_acks_sent: u64,
    /// Acks that rode on outgoing data packets.
    pub piggybacked_acks: u64,
    /// Data packets delivered in order.
    pub delivered: u64,
    /// Fast retransmits triggered.
    pub fast_retransmits: u64,
    /// Timeouts fired.
    pub timeouts: u64,
}

/// One endpoint of a bidirectional TCP connection.
pub struct TcpDuplex {
    scfg: SenderConfig,
    rcfg: ReceiverConfig,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    // -- sender half --
    snd_una: u64,
    snd_nxt: u64,
    snd_max: u64,
    dupacks: u32,
    rto_armed: Option<td_net::TimerHandle>,
    timing: Option<(u64, SimTime)>,
    // -- receiver half --
    next_expected: u64,
    reassembly: BTreeSet<u64>,
    ack_pending: bool,
    ce_pending: bool,
    stats: DuplexStats,
}

impl TcpDuplex {
    /// A fresh duplex endpoint.
    pub fn new(scfg: SenderConfig, rcfg: ReceiverConfig) -> Self {
        assert!(
            scfg.pacing.is_none(),
            "pacing is not supported on duplex endpoints"
        );
        TcpDuplex {
            cc: scfg.cc.build(scfg.maxwnd),
            rtt: RttEstimator::new(scfg.rto),
            scfg,
            rcfg,
            snd_una: 1,
            snd_nxt: 1,
            snd_max: 1,
            dupacks: 0,
            rto_armed: None,
            timing: None,
            next_expected: 1,
            reassembly: BTreeSet::new(),
            ack_pending: false,
            ce_pending: false,
            stats: DuplexStats::default(),
        }
    }

    /// A boxed endpoint, ready for [`td_net::World::attach`].
    pub fn boxed(scfg: SenderConfig, rcfg: ReceiverConfig) -> Box<dyn Endpoint> {
        Box::new(Self::new(scfg, rcfg))
    }

    /// Run counters.
    pub fn stats(&self) -> DuplexStats {
        self.stats
    }

    /// Highest in-order sequence received.
    pub fn cumulative_ack(&self) -> u64 {
        self.next_expected - 1
    }

    /// Usable send window.
    pub fn window(&self) -> u64 {
        self.cc.window().min(self.scfg.maxwnd)
    }

    /// Packets in flight.
    pub fn outstanding(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn emit_cwnd(&mut self, ctx: &mut Ctx<'_>) {
        let (cwnd, ssthresh) = (self.cc.cwnd(), self.cc.ssthresh());
        ctx.emit(ProtoEvent::Cwnd { cwnd, ssthresh });
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(h) = self.rto_armed.take() {
            ctx.cancel_timer(h);
        }
        self.rto_armed = Some(ctx.set_timer(self.rtt.rto(), TOKEN_RTO));
    }

    fn send_data(&mut self, ctx: &mut Ctx<'_>, seq: u64, retx: bool) {
        // Every data packet carries the current cumulative ack.
        let ack = self.cumulative_ack();
        let ce = std::mem::take(&mut self.ce_pending);
        ctx.send_full(PacketKind::Data, seq, ack, self.scfg.data_size, retx, ce);
        self.stats.data_sent += 1;
        if self.ack_pending {
            self.ack_pending = false;
            self.stats.piggybacked_acks += 1;
        }
        if retx {
            self.stats.retransmits += 1;
            ctx.emit(ProtoEvent::Retransmit { seq });
        } else if self.timing.is_none() {
            self.timing = Some((seq, ctx.now()));
        }
        if self.rto_armed.is_none() {
            self.arm_rto(ctx);
        }
    }

    fn send_pure_ack(&mut self, ctx: &mut Ctx<'_>) {
        self.ack_pending = false;
        self.stats.pure_acks_sent += 1;
        let ce = std::mem::take(&mut self.ce_pending);
        ctx.send_marked(
            PacketKind::Ack,
            self.cumulative_ack(),
            self.rcfg.ack_size,
            false,
            ce,
        );
    }

    fn try_send(&mut self, ctx: &mut Ctx<'_>) {
        let wnd = self.window();
        while self.snd_nxt - self.snd_una < wnd {
            let seq = self.snd_nxt;
            let retx = seq < self.snd_max;
            self.send_data(ctx, seq, retx);
            self.snd_nxt += 1;
            self.snd_max = self.snd_max.max(self.snd_nxt);
        }
    }

    /// Handle an acknowledgment point (from a pure ACK's `seq` or a data
    /// packet's piggyback field). `pure` controls dup-ACK counting.
    fn process_ack(&mut self, ctx: &mut Ctx<'_>, ack: u64, ce: bool, pure: bool) {
        if ack + 1 > self.snd_una {
            if self.dupacks >= self.scfg.dupack_threshold {
                self.cc.on_recovery_ack();
            }
            self.dupacks = 0;
            self.snd_una = ack + 1;
            if let Some((seq, sent_at)) = self.timing {
                if ack >= seq {
                    self.rtt.sample(ctx.now().since(sent_at));
                    self.timing = None;
                }
            }
            self.cc.on_ack_marked(ce);
            self.emit_cwnd(ctx);
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            if self.snd_max > self.snd_una {
                self.arm_rto(ctx);
            } else if let Some(h) = self.rto_armed.take() {
                ctx.cancel_timer(h);
            }
        } else if pure && ack + 1 == self.snd_una && self.snd_max > self.snd_una {
            self.dupacks += 1;
            self.cc.on_dupack();
            if self.dupacks == self.scfg.dupack_threshold {
                self.stats.fast_retransmits += 1;
                ctx.emit(ProtoEvent::LossDetected {
                    seq: self.snd_una,
                    kind: LossKind::DupAck,
                });
                self.cc.on_loss(LossKind::DupAck);
                self.emit_cwnd(ctx);
                self.timing = None;
                self.send_data(ctx, self.snd_una, true);
                self.arm_rto(ctx);
            }
        }
    }

    /// Handle arriving data; returns whether an ack must go out *now*
    /// (congestion signal) or merely *eventually* (in-order progress).
    fn process_data(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) -> AckUrgency {
        self.ce_pending |= pkt.ce;
        let seq = pkt.seq;
        if seq < self.next_expected {
            return AckUrgency::Now; // duplicate — resignal cumulative point
        }
        if seq > self.next_expected {
            self.reassembly.insert(seq);
            return AckUrgency::Now; // out of order — dup-ACK signal
        }
        self.stats.delivered += 1;
        self.next_expected += 1;
        while self.reassembly.remove(&self.next_expected) {
            self.stats.delivered += 1;
            self.next_expected += 1;
        }
        ctx.emit(ProtoEvent::InOrder {
            seq: self.cumulative_ack(),
        });
        AckUrgency::Eventually
    }
}

enum AckUrgency {
    Now,
    Eventually,
}

impl Endpoint for TcpDuplex {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.emit_cwnd(ctx);
        self.try_send(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        match pkt.kind {
            PacketKind::Ack => {
                self.process_ack(ctx, pkt.seq, pkt.ce, true);
                self.try_send(ctx);
            }
            PacketKind::Data => {
                let urgency = self.process_data(ctx, &pkt);
                // The piggybacked ack advances our sender side (never
                // counted as a duplicate: it rides data).
                self.process_ack(ctx, pkt.ack, pkt.ce, false);
                // Whatever data the window now allows carries our ack.
                let before = self.stats.data_sent;
                self.ack_pending = true;
                self.try_send(ctx);
                let data_flowed = self.stats.data_sent > before;
                if !data_flowed {
                    match (urgency, self.rcfg.delayed_ack) {
                        (AckUrgency::Now, _) | (_, None) => self.send_pure_ack(ctx),
                        (AckUrgency::Eventually, Some(del)) => {
                            // Hold the ack for a future data transmission
                            // or the delack timer, whichever first.
                            ctx.set_timer(del.max_delay, TOKEN_DELACK);
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_RTO => {
                self.rto_armed = None;
                if self.snd_max <= self.snd_una {
                    return;
                }
                self.stats.timeouts += 1;
                self.rtt.on_timeout();
                self.dupacks = 0;
                ctx.emit(ProtoEvent::LossDetected {
                    seq: self.snd_una,
                    kind: LossKind::Timeout,
                });
                self.cc.on_loss(LossKind::Timeout);
                self.emit_cwnd(ctx);
                self.timing = None;
                self.snd_nxt = self.snd_una;
                self.try_send(ctx);
                self.arm_rto(ctx);
            }
            TOKEN_DELACK => {
                if self.ack_pending {
                    self.send_pure_ack(ctx);
                }
            }
            other => unreachable!("unknown duplex timer token {other}"),
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.cc.save_state(w);
        self.rtt.save_state(w);
        w.write_u64(self.snd_una);
        w.write_u64(self.snd_nxt);
        w.write_u64(self.snd_max);
        w.write_u32(self.dupacks);
        w.write_bool(self.rto_armed.is_some());
        if let Some(h) = &self.rto_armed {
            h.save_state(w);
        }
        w.write_bool(self.timing.is_some());
        if let Some((seq, at)) = self.timing {
            w.write_u64(seq);
            w.write_time(at);
        }
        w.write_u64(self.next_expected);
        w.write_u64(self.reassembly.len() as u64);
        for seq in &self.reassembly {
            w.write_u64(*seq); // BTreeSet iterates sorted: deterministic
        }
        w.write_bool(self.ack_pending);
        w.write_bool(self.ce_pending);
        w.write_u64(self.stats.data_sent);
        w.write_u64(self.stats.retransmits);
        w.write_u64(self.stats.pure_acks_sent);
        w.write_u64(self.stats.piggybacked_acks);
        w.write_u64(self.stats.delivered);
        w.write_u64(self.stats.fast_retransmits);
        w.write_u64(self.stats.timeouts);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cc.load_state(r)?;
        self.rtt.load_state(r)?;
        self.snd_una = r.read_u64()?;
        self.snd_nxt = r.read_u64()?;
        self.snd_max = r.read_u64()?;
        self.dupacks = r.read_u32()?;
        self.rto_armed = if r.read_bool()? {
            Some(TimerHandle::load_state(r)?)
        } else {
            None
        };
        self.timing = if r.read_bool()? {
            Some((r.read_u64()?, r.read_time()?))
        } else {
            None
        };
        self.next_expected = r.read_u64()?;
        let n = r.read_u64()?;
        self.reassembly.clear();
        for _ in 0..n {
            self.reassembly.insert(r.read_u64()?);
        }
        self.ack_pending = r.read_bool()?;
        self.ce_pending = r.read_bool()?;
        self.stats.data_sent = r.read_u64()?;
        self.stats.retransmits = r.read_u64()?;
        self.stats.pure_acks_sent = r.read_u64()?;
        self.stats.piggybacked_acks = r.read_u64()?;
        self.stats.delivered = r.read_u64()?;
        self.stats.fast_retransmits = r.read_u64()?;
        self.stats.timeouts = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DelayedAck;
    use td_engine::{Rate, SimDuration};
    use td_net::{ConnId, DisciplineKind, FaultModel, World};

    fn duplex_world(
        delack: bool,
        capacity: Option<u32>,
        maxwnd: u64,
    ) -> (World, td_net::EndpointId, td_net::EndpointId) {
        let mut w = World::new(5);
        let h0 = w.add_host("A", SimDuration::from_micros(100));
        let h1 = w.add_host("B", SimDuration::from_micros(100));
        for (a, b) in [(h0, h1), (h1, h0)] {
            w.add_channel(
                a,
                b,
                Rate::from_kbps(50),
                SimDuration::from_millis(10),
                capacity,
                DisciplineKind::DropTail.build(),
                FaultModel::NONE,
            );
        }
        let scfg = SenderConfig {
            maxwnd,
            ..SenderConfig::paper()
        };
        let rcfg = ReceiverConfig {
            delayed_ack: delack.then(DelayedAck::default),
            ..ReceiverConfig::paper()
        };
        let ea = w.attach(h0, h1, ConnId(0), TcpDuplex::boxed(scfg, rcfg));
        let eb = w.attach(h1, h0, ConnId(0), TcpDuplex::boxed(scfg, rcfg));
        w.start_at(ea, td_engine::SimTime::ZERO);
        w.start_at(eb, td_engine::SimTime::from_millis(137));
        (w, ea, eb)
    }

    fn stats(w: &World, ep: td_net::EndpointId) -> DuplexStats {
        w.endpoint(ep)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpDuplex>()
            .unwrap()
            .stats()
    }

    #[test]
    fn both_directions_make_progress() {
        let (mut w, ea, eb) = duplex_world(false, Some(20), 1000);
        w.run_until(td_engine::SimTime::from_secs(300));
        let (sa, sb) = (stats(&w, ea), stats(&w, eb));
        assert!(sa.delivered > 800, "A delivered {}", sa.delivered);
        assert!(sb.delivered > 800, "B delivered {}", sb.delivered);
    }

    #[test]
    fn immediate_acks_preempt_piggybacking() {
        // With delayed ACKs OFF, every data arrival is acknowledged on the
        // spot; at window-limited steady state the window is closed at
        // that instant, so the ack goes out *pure*, and by the time
        // reverse data flows its piggybacked ack number is stale. This is
        // why BSD's delayed-ACK option is what makes piggybacking pay on
        // bidirectional connections — asserted in the companion test.
        let (mut w, ea, eb) = duplex_world(false, None, 20);
        w.run_until(td_engine::SimTime::from_secs(300));
        for s in [stats(&w, ea), stats(&w, eb)] {
            let total_acks = s.pure_acks_sent + s.piggybacked_acks;
            assert!(total_acks > 0);
            let pure_frac = s.pure_acks_sent as f64 / total_acks as f64;
            assert!(
                pure_frac > 0.8,
                "without delack pure acks should dominate: {pure_frac:.2} \
                 ({} pure / {} piggy)",
                s.pure_acks_sent,
                s.piggybacked_acks
            );
        }
    }

    #[test]
    fn delivery_is_reliable_under_loss() {
        let (mut w, ea, eb) = duplex_world(false, Some(4), 1000);
        w.run_until(td_engine::SimTime::from_secs(300));
        let (da, db) = (
            w.endpoint(ea)
                .unwrap()
                .as_any()
                .downcast_ref::<TcpDuplex>()
                .unwrap(),
            w.endpoint(eb)
                .unwrap()
                .as_any()
                .downcast_ref::<TcpDuplex>()
                .unwrap(),
        );
        // Each side's cumulative point equals its delivered count.
        assert_eq!(da.cumulative_ack(), da.stats().delivered);
        assert_eq!(db.cumulative_ack(), db.stats().delivered);
        // A tight buffer forces losses; recovery must have fired.
        let s = stats(&w, ea);
        assert!(
            s.fast_retransmits + s.timeouts > 0,
            "no loss recovery in 300 s"
        );
        assert!(s.delivered > 300);
    }

    #[test]
    fn delack_holds_acks_for_data_to_carry() {
        let (mut w, ea, _eb) = duplex_world(true, None, 20);
        w.run_until(td_engine::SimTime::from_secs(200));
        let s = stats(&w, ea);
        let total = s.pure_acks_sent + s.piggybacked_acks;
        assert!(
            (s.pure_acks_sent as f64) < total as f64 * 0.2,
            "delack + duplex should piggyback nearly everything: {} pure of {total}",
            s.pure_acks_sent
        );
    }

    #[test]
    fn window_discipline_respected() {
        let (mut w, ea, _eb) = duplex_world(false, None, 40);
        w.run_until(td_engine::SimTime::from_secs(100));
        let d = w
            .endpoint(ea)
            .unwrap()
            .as_any()
            .downcast_ref::<TcpDuplex>()
            .unwrap();
        assert!(
            d.outstanding() <= d.window() || d.stats().fast_retransmits + d.stats().timeouts > 0,
            "{} in flight > window {}",
            d.outstanding(),
            d.window()
        );
    }

    #[test]
    #[should_panic(expected = "pacing is not supported")]
    fn pacing_rejected() {
        let scfg = SenderConfig {
            pacing: Some(SimDuration::from_millis(80)),
            ..SenderConfig::paper()
        };
        let _ = TcpDuplex::new(scfg, ReceiverConfig::paper());
    }
}
