//! Snapshot-equivalence over real registry-grade scenarios.
//!
//! The whole-simulator checkpoint guarantee, property-style: for a
//! spread of experiment configurations — including chaos cells with
//! *active* fault plans mid-burst and mid-outage — running to a
//! pseudo-random mid-point `T`, snapshotting, restoring into a freshly
//! built twin, and running to the end must be **byte-identical** to an
//! uninterrupted run. "Byte-identical" is checked at the strongest
//! level available: the FNV-1a hash of the *final snapshot* of each
//! world, which serializes the event queue slab, every RNG stream, all
//! endpoint state, channel/queue occupancy with in-flight packets,
//! fault progress, the audit tally, and the full trace.

use td_engine::{SimDuration, SimRng, SimTime};
use td_experiments::{ConnSpec, Scenario};
use td_net::{FaultPlan, GilbertElliott, Outage, WatchdogConfig};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The configurations under test, spanning the registry's spread:
/// fig45-style paper dynamics, fig8-style fixed windows, a delayed-ack
/// asymmetric load, and two chaos cells with live fault plans.
fn configs() -> Vec<(&'static str, Scenario)> {
    let mut out = Vec::new();

    // Figure 4–5: 1+1 two-way paper Tahoe, the headline configuration.
    let mut fig45 = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    fig45.seed = 11;
    fig45.duration = SimDuration::from_secs(60);
    fig45.warmup = SimDuration::from_secs(10);
    out.push(("fig45", fig45));

    // Figure 8: fixed windows, no congestion control, 2+2.
    let mut fig8 = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(2, ConnSpec::fixed(8))
        .with_rev(2, ConnSpec::fixed(8));
    fig8.seed = 12;
    fig8.duration = SimDuration::from_secs(60);
    fig8.warmup = SimDuration::from_secs(10);
    out.push(("fig8", fig8));

    // Asymmetric load: 3 forward flows against 1 reverse.
    let mut asym = Scenario::paper(SimDuration::from_millis(10), Some(15))
        .with_fwd(3, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    asym.seed = 13;
    asym.duration = SimDuration::from_secs(60);
    asym.warmup = SimDuration::from_secs(10);
    out.push(("asym", asym));

    // Chaos, outage cell: the forward bottleneck goes dark mid-run, so
    // the snapshot point can land before, inside, or after the outage.
    // Runs under the watchdog like the real chaos experiment.
    let mut outage = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    outage.seed = 14;
    outage.duration = SimDuration::from_secs(90);
    outage.warmup = SimDuration::from_secs(15);
    outage.fault_fwd = FaultPlan::with_outages(vec![Outage {
        down: SimTime::from_secs(30),
        up: SimTime::from_secs(45),
    }]);
    outage.watchdog = Some(WatchdogConfig::default());
    out.push(("chaos-outage", outage));

    // Chaos, burst cell: Gilbert–Elliott loss keeps the per-channel
    // fault RNG and the Markov state hot across the snapshot point.
    let mut burst = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, ConnSpec::paper())
        .with_rev(1, ConnSpec::paper());
    burst.seed = 15;
    burst.duration = SimDuration::from_secs(60);
    burst.warmup = SimDuration::from_secs(10);
    burst.fault_fwd =
        FaultPlan::with_burst(GilbertElliott::new(0.02, 0.2, 0.5).expect("valid burst"));
    burst.watchdog = Some(WatchdogConfig::default());
    out.push(("chaos-burst", burst));

    out
}

#[test]
fn snapshot_restore_rerun_is_byte_identical_across_scenarios() {
    for (name, sc) in configs() {
        // The uninterrupted twin: build → finish, hash the final state.
        let mut straight = sc.build();
        sc.finish(&mut straight);
        let golden = fnv1a(straight.world.snapshot().as_bytes());

        // Three pseudo-random snapshot points per scenario, spread over
        // the middle 80% of the run (derived, so the test is stable).
        let dur_ns = sc.duration.as_nanos();
        let mut trng = SimRng::new(sc.seed).derive(0x51A9);
        for round in 0..3 {
            let t_snap = SimTime::from_nanos(dur_ns / 10 + trng.next_below(dur_ns * 8 / 10));

            let mut partial = sc.build();
            partial.world.run_until(t_snap);
            let snap = partial.world.snapshot();

            let mut resumed = sc.build();
            resumed
                .world
                .restore(&snap)
                .unwrap_or_else(|e| panic!("{name} round {round}: restore failed: {e}"));
            // Restoring must be lossless: re-snapshotting the restored
            // world reproduces the snapshot bit-for-bit.
            assert_eq!(
                resumed.world.snapshot().as_bytes(),
                snap.as_bytes(),
                "{name} round {round}: re-snapshot diverged at T={t_snap:?}"
            );

            sc.finish(&mut resumed);
            let resumed_hash = fnv1a(resumed.world.snapshot().as_bytes());
            assert_eq!(
                resumed_hash, golden,
                "{name} round {round}: snapshot at T={t_snap:?} + restore + run-to-end \
                 diverged from the uninterrupted run"
            );
        }
    }
}

#[test]
fn scenario_build_plus_finish_equals_run() {
    // The build/finish split must be behavior-preserving: `run()` and
    // `build()`+`finish()` land in identical final states (the golden
    // output hash in runner_determinism.rs pins `run()` itself).
    let (_, sc) = configs().remove(0);
    let via_run = sc.run();
    let mut via_split = sc.build();
    sc.finish(&mut via_split);
    assert_eq!(
        fnv1a(via_run.world.snapshot().as_bytes()),
        fnv1a(via_split.world.snapshot().as_bytes())
    );
}
