//! ASCII rendering of the paper's figures.
//!
//! Every figure in the paper is a time trace (queue length or cwnd) with
//! optional event marks above it (packet drops). [`Plot`] renders the same
//! thing into a monospace grid for terminals, test logs, and
//! EXPERIMENTS.md — no plotting stack required.
//!
//! ```text
//! queue at switch 1 (pkts)                         * = drop
//!        *            *            *
//! 20.0 |      ##           ##            ##
//!      |    ####         ####          ####
//!      |  ######       ######        ######
//!  0.0 |########______########______########
//!      +----------------------------------------
//!      540.0s                              570.0s
//! ```

use crate::series::TimeSeries;
use td_engine::SimTime;

/// A fixed-size ASCII plot of step-function series over a time window.
pub struct Plot {
    width: usize,
    height: usize,
    t0: SimTime,
    t1: SimTime,
    title: String,
    y_max: Option<f64>,
    series: Vec<(char, Vec<f64>)>,
    marks: Vec<(SimTime, char)>,
}

impl Plot {
    /// A plot of the window `[t0, t1]`, `width` columns by `height` rows
    /// of data area.
    pub fn new(title: &str, t0: SimTime, t1: SimTime, width: usize, height: usize) -> Self {
        assert!(t1 > t0, "empty plot window");
        assert!(width >= 10 && height >= 2, "plot too small to read");
        Plot {
            width,
            height,
            t0,
            t1,
            title: title.to_owned(),
            y_max: None,
            series: Vec::new(),
            marks: Vec::new(),
        }
    }

    /// Fix the y-axis maximum (default: autoscale to the data).
    pub fn y_max(mut self, y: f64) -> Self {
        self.y_max = Some(y);
        self
    }

    /// Add a series drawn with `glyph`.
    pub fn series(mut self, ts: &TimeSeries, glyph: char) -> Self {
        self.series
            .push((glyph, ts.resample(self.t0, self.t1, self.width)));
        self
    }

    /// Add instantaneous event marks (rendered on a line above the data
    /// area, like the paper's drop symbols).
    pub fn marks(mut self, times: &[SimTime], glyph: char) -> Self {
        for &t in times {
            if t >= self.t0 && t <= self.t1 {
                self.marks.push((t, glyph));
            }
        }
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let y_hi = self.y_max.unwrap_or_else(|| {
            self.series
                .iter()
                .flat_map(|(_, v)| v.iter().copied())
                .fold(1.0_f64, f64::max)
        });
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, vals) in &self.series {
            for (x, &v) in vals.iter().enumerate() {
                // Fill from the bottom up to the value (bar style reads
                // better in ASCII than a lone dot).
                let level = ((v / y_hi) * self.height as f64).round() as usize;
                let level = level.min(self.height);
                for y in 0..level {
                    let row = self.height - 1 - y;
                    let cell = &mut grid[row][x];
                    if *cell == ' ' {
                        *cell = *glyph;
                    }
                }
            }
        }
        // Mark line.
        let mut mark_row = vec![' '; self.width];
        let span = self.t1.since(self.t0).as_nanos();
        for &(t, glyph) in &self.marks {
            let frac = t.since(self.t0).as_nanos() as f64 / span as f64;
            let x = ((self.width - 1) as f64 * frac).round() as usize;
            mark_row[x] = glyph;
        }

        let label_w = 8;
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&" ".repeat(label_w + 1));
        out.push_str(&mark_row.iter().collect::<String>());
        out.push('\n');
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_hi:>label_w$.1}")
            } else if i == self.height - 1 {
                format!("{:>label_w$.1}", 0.0)
            } else {
                " ".repeat(label_w)
            };
            out.push_str(&label);
            out.push('|');
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&" ".repeat(label_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        let t0s = format!("{:.1}s", self.t0.as_secs_f64());
        let t1s = format!("{:.1}s", self.t1.as_secs_f64());
        let pad = (self.width + 1).saturating_sub(t0s.len() + t1s.len());
        out.push_str(&" ".repeat(label_w));
        out.push_str(&t0s);
        out.push_str(&" ".repeat(pad));
        out.push_str(&t1s);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        let mut ts = TimeSeries::new();
        for i in 0..=10u64 {
            ts.push(SimTime::from_secs(i), i as f64);
        }
        ts
    }

    #[test]
    fn renders_with_axes_and_title() {
        let p =
            Plot::new("queue", SimTime::ZERO, SimTime::from_secs(10), 40, 8).series(&ramp(), '#');
        let s = p.render();
        assert!(s.starts_with("queue\n"));
        assert!(s.contains("10.0"), "y max label");
        assert!(s.contains("0.0s"), "x start label");
        assert!(s.contains("10.0s"), "x end label");
        assert!(s.contains('#'));
        // All data rows equal width.
        let lines: Vec<&str> = s.lines().collect();
        let data_lines: Vec<&str> = lines.iter().filter(|l| l.contains('|')).copied().collect();
        assert_eq!(data_lines.len(), 8);
    }

    #[test]
    fn ramp_fills_bottom_right_corner_not_top_left() {
        let p = Plot::new("r", SimTime::ZERO, SimTime::from_secs(10), 40, 8).series(&ramp(), '#');
        let s = p.render();
        let rows: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        let top = rows.first().unwrap();
        let bottom = rows.last().unwrap();
        let top_hashes = top.matches('#').count();
        let bottom_hashes = bottom.matches('#').count();
        assert!(
            bottom_hashes > top_hashes,
            "{bottom_hashes} vs {top_hashes}"
        );
        // Top row: only the right edge reaches max.
        assert!(top.trim_end().ends_with('#'));
        assert!(!top.contains("|#"), "left edge must be empty at top");
    }

    #[test]
    fn marks_appear_above_plot() {
        let p = Plot::new("m", SimTime::ZERO, SimTime::from_secs(10), 40, 4)
            .series(&ramp(), '#')
            .marks(&[SimTime::from_secs(5)], '*');
        let s = p.render();
        let mark_line = s.lines().nth(1).unwrap();
        assert_eq!(mark_line.matches('*').count(), 1);
    }

    #[test]
    fn marks_outside_window_are_dropped() {
        let p = Plot::new("m", SimTime::from_secs(5), SimTime::from_secs(10), 40, 4)
            .series(&ramp(), '#')
            .marks(&[SimTime::from_secs(1), SimTime::from_secs(20)], '*');
        let s = p.render();
        assert_eq!(s.lines().nth(1).unwrap().matches('*').count(), 0);
    }

    #[test]
    fn fixed_y_max_rescales() {
        let p = Plot::new("m", SimTime::ZERO, SimTime::from_secs(10), 40, 4)
            .series(&ramp(), '#')
            .y_max(100.0);
        let s = p.render();
        assert!(s.contains("100.0"));
        // Values ≤ 10 against a 100 ceiling: top three rows empty.
        let rows: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows[0].matches('#').count(), 0);
        assert_eq!(rows[1].matches('#').count(), 0);
    }

    #[test]
    #[should_panic(expected = "empty plot window")]
    fn rejects_empty_window() {
        let _ = Plot::new("x", SimTime::from_secs(1), SimTime::from_secs(1), 40, 4);
    }

    #[test]
    fn two_series_share_canvas() {
        let mut flat = TimeSeries::new();
        flat.push(SimTime::ZERO, 5.0);
        let p = Plot::new("2", SimTime::ZERO, SimTime::from_secs(10), 40, 8)
            .series(&ramp(), '#')
            .series(&flat, '.');
        let s = p.render();
        assert!(s.contains('#'));
        assert!(s.contains('.'));
    }
}
