//! Sharded parallel execution of a [`World`] — conservative-lookahead PDES.
//!
//! [`ShardedWorld`] splits the topology graph across worker threads. Each
//! shard owns a subset of the nodes (and every channel whose *sender* sits
//! on an owned node), runs its own event heap independently, and exchanges
//! cross-shard packet deliveries through bounded per-shard inboxes. There
//! is no global barrier: a shard runs ahead as far as its **horizon** — the
//! earliest instant any neighbour could still send it a packet — allows.
//!
//! ## Protocol (Chandy–Misra–Bryant with shared-memory null messages)
//!
//! Every shard `i` publishes a monotone lower bound `lb[i]` on the
//! timestamp of any event it will ever dispatch again:
//!
//! ```text
//! lb[i]      = min(next pending local event, horizon[i])
//! horizon[i] = min over shards j of ( lb[j] + d[j][i] )
//! ```
//!
//! where `d[j][i]` is the smallest propagation delay over cut channels from
//! shard `j` into shard `i`. A packet crossing `j → i` is *sent* at a
//! `TxComplete` dispatched at some `t ≥ lb[j]` and *arrives* no earlier
//! than `t + d[j][i]`, so shard `i` may safely dispatch everything strictly
//! before `horizon[i]`. All cut delays are strictly positive (the
//! `partition` module never cuts a zero-delay channel), so the
//! bounds rise monotonically and the fixpoint iteration cannot deadlock.
//! Termination: the run is over when every `lb` has passed `t_end` and no
//! exported delivery is still in flight.
//!
//! ## Determinism contract
//!
//! Sharded runs are **byte-identical for every shard count**, including
//! `--shards 1`. Three mechanisms carry the proof:
//!
//! * every shard world runs in *canonical mode* (`World::set_canonical`):
//!   same-instant events are dispatched in content-key order, packet ids
//!   are per-endpoint, and discipline randomness comes from per-channel
//!   streams, so a shard's local evolution never depends on which other
//!   events exist elsewhere;
//! * the merged trace is re-sorted by `(time, causal rank, canonical
//!   encoding)` — see `causal_rank` for why same-instant records need a
//!   pipeline-order tie-break — and the
//!   merged audit by `(time, invariant, detail)`, removing the residual
//!   cross-shard interleaving freedom;
//! * snapshots use a shard-count-invariant layout ([`ShardSnapshot`],
//!   magic `TDSW`): global-id row order, globally sorted pending events,
//!   and timer handles translated to pending-event indices.
//!
//! One obligation falls on workloads: endpoints driven under a sharded
//! world must not draw from [`crate::Ctx::rng`] (the world-shared stream),
//! because its draw order depends on the partition. The TCP machines in
//! `td-core` never do; the datagram blaster does and is therefore
//! serial-only.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::SeqCst};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use td_engine::{telemetry, SimTime, SnapError, SnapReader, SnapWriter};

use crate::audit::{self, Audit};
use crate::packet::{NodeId, Packet};
use crate::partition::partition;
use crate::snapcount;
use crate::trace::{canonical_trace_cmp, Trace, TraceObserver, TraceRecord};
use crate::world::{
    load_event, load_trace_record, save_trace_record, set_timer_load_xlat, set_timer_save_xlat,
    ChannelId, ChannelStats, Endpoint, EndpointId, World,
};

/// How long a worker sleeps waiting for neighbour progress before
/// re-checking on its own (belt-and-braces against a missed wakeup).
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// One pending event while assembling a snapshot: `(time, canonical key,
/// encoded blob, owning shard, raw queue id)`. The first three fields are
/// the global sort key; the last two let endpoint timer handles be
/// rewritten as indices into the sorted list.
type PendingBlob = (SimTime, u64, Vec<u8>, usize, (u32, u64));

/// State shared by all shard workers for one `run_until` call.
struct Shared {
    /// `lb[i]`: monotone lower bound (nanoseconds) on any future event of
    /// shard `i`. Raised with `fetch_max`, never lowered.
    lbs: Vec<AtomicU64>,
    /// Cross-shard deliveries addressed to shard `i`.
    inboxes: Vec<Mutex<Vec<(SimTime, ChannelId, Packet)>>>,
    /// Deliveries pushed to an inbox but not yet drained. Incremented
    /// *before* the push and decremented *after* the inject, so the
    /// termination check can never observe "all idle" while a delivery is
    /// still in flight.
    inflight: AtomicI64,
    /// Set exactly once, when some worker observes global completion.
    done: AtomicBool,
    /// Progress epoch: bumped under the lock whenever any worker drains,
    /// sends, dispatches, or raises its bound. Idle workers sleep on it.
    epoch: Mutex<u64>,
    wake: Condvar,
}

impl Shared {
    fn bump(&self) {
        let mut e = self.epoch.lock().expect("epoch lock");
        *e = e.wrapping_add(1);
        drop(e);
        self.wake.notify_all();
    }
}

/// A topology sharded across worker threads, runnable in parallel with
/// byte-identical results for any shard count. See the module docs for the
/// protocol and the determinism contract.
pub struct ShardedWorld {
    worlds: Vec<World>,
    node_shard: Vec<u32>,
    /// `lookahead[j][i]`: min delay (ns) over cut channels `j → i`.
    lookahead: Vec<Vec<u64>>,
    /// Owning shard of each channel's *receiver* (delivery target).
    ch_dst_shard: Vec<u32>,
    seed: u64,
    now: SimTime,
    /// Merged, canonically ordered trace of everything run so far.
    trace: Trace,
    /// Audit state carried in from a restored snapshot (zero otherwise);
    /// the merged view is `base_audit ⊕ per-shard deltas`.
    base_audit: Audit,
    /// Latest merged audit view.
    audit: Audit,
}

impl ShardedWorld {
    /// Build the world `shards` times via `build_fn` (once per shard, so
    /// global node/channel/endpoint ids align), partition the topology,
    /// and keep each shard's slice of the initial event population.
    ///
    /// `build_fn` must be deterministic: every invocation has to produce
    /// the same topology and endpoint set. All worlds run in canonical
    /// mode — including the single-shard case, so `shards == 1` produces
    /// the same bytes as any other count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, if `build_fn` is non-deterministic
    /// (replicas are cross-checked by component counts plus a structural
    /// digest over wiring, rates, delays, routes, fault plans, endpoint
    /// placement and start times — see `World::structure_digest` for the
    /// one blind spot, discipline parameters), or if the partition would
    /// cut a zero-delay channel (the partitioner never does; this guards
    /// direct misuse).
    pub fn build(seed: u64, shards: u32, build_fn: impl Fn(&mut World)) -> ShardedWorld {
        assert!(shards >= 1, "need at least one shard");
        let mut worlds = Vec::with_capacity(shards as usize);
        for _ in 0..shards {
            let mut w = World::new(seed);
            w.set_canonical();
            build_fn(&mut w);
            worlds.push(w);
        }
        let (n_nodes, n_channels, n_eps) = (
            worlds[0].node_count(),
            worlds[0].channel_count(),
            worlds[0].endpoint_count(),
        );
        // Counts catch gross divergence cheaply and give a better message;
        // the structural digest then catches builders that keep the counts
        // but vary wiring, rates, delays, routes, fault plans, endpoint
        // placement, or start times between replicas.
        let digest = worlds[0].structure_digest();
        for w in &worlds {
            assert!(
                w.node_count() == n_nodes
                    && w.channel_count() == n_channels
                    && w.endpoint_count() == n_eps,
                "world builder is non-deterministic: shard replicas disagree on topology size"
            );
            assert!(
                w.structure_digest() == digest,
                "world builder is non-deterministic: shard replicas disagree on structure \
                 (same component counts, different configuration)"
            );
        }

        let node_shard = partition(&worlds[0], shards);
        let mut lookahead = vec![vec![u64::MAX; shards as usize]; shards as usize];
        let mut ch_dst_shard = Vec::with_capacity(n_channels);
        for ch in worlds[0].channel_ids() {
            let (src, dst) = worlds[0].channel_nodes(ch);
            let (sj, si) = (
                node_shard[src.0 as usize] as usize,
                node_shard[dst.0 as usize] as usize,
            );
            ch_dst_shard.push(si as u32);
            if sj != si {
                let d = worlds[0].channel_delay(ch).as_nanos();
                assert!(
                    d > 0,
                    "partition cut zero-delay channel {:?}: no lookahead possible",
                    ch
                );
                if d < lookahead[sj][si] {
                    lookahead[sj][si] = d;
                }
            }
        }

        for (s, w) in worlds.iter_mut().enumerate() {
            let remote: Vec<bool> = node_shard.iter().map(|&ns| ns != s as u32).collect();
            w.set_remote_nodes(remote);
            w.retain_owned_events(&node_shard, s as u32);
        }

        ShardedWorld {
            worlds,
            node_shard,
            lookahead,
            ch_dst_shard,
            seed,
            now: SimTime::ZERO,
            trace: Trace::new(),
            base_audit: Audit::default(),
            audit: Audit::default(),
        }
    }

    /// Number of shards (worker threads used by [`ShardedWorld::run_until`]).
    pub fn shard_count(&self) -> u32 {
        self.worlds.len() as u32
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.node_shard[node.0 as usize]
    }

    /// The world seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current simulated time (the `t_end` of the last run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Enable or disable packet tracing on every shard.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
        for w in &mut self.worlds {
            w.trace_mut().set_enabled(enabled);
        }
    }

    /// The merged trace: all shards' records in canonical
    /// `(time, encoding)` order.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Register one streaming observer per shard. The factory is called
    /// once per shard world; each observer sees only its own shard's
    /// emissions (in that shard's dispatch order) and travels with the
    /// world into the worker thread. Recover them with
    /// [`ShardedWorld::take_observers`] and merge — every channel,
    /// endpoint, and connection lives wholly on one shard, so per-key
    /// streaming state partitions cleanly across the returned set.
    pub fn add_observers(&mut self, mut make: impl FnMut(u32) -> Box<dyn TraceObserver>) {
        for (i, w) in self.worlds.iter_mut().enumerate() {
            w.add_observer(make(i as u32));
        }
    }

    /// Remove and return all observers, in shard order (each shard's
    /// observers are contiguous, in registration order).
    pub fn take_observers(&mut self) -> Vec<Box<dyn TraceObserver>> {
        self.worlds
            .iter_mut()
            .flat_map(|w| w.take_observers())
            .collect()
    }

    /// The merged audit across all shards (violations canonically ordered,
    /// conservation checked on the summed counters).
    pub fn audit(&self) -> &Audit {
        &self.audit
    }

    /// Lifetime statistics of a channel, read from its owning shard.
    pub fn channel_stats(&self, ch: ChannelId) -> ChannelStats {
        self.owner_of_channel(ch).channel_stats(ch)
    }

    /// Busy fraction of a channel since time zero, from its owning shard.
    pub fn utilization(&self, ch: ChannelId) -> f64 {
        self.owner_of_channel(ch).utilization(ch)
    }

    /// Total events dispatched, summed over shards.
    pub fn events_dispatched(&self) -> u64 {
        self.worlds.iter().map(|w| w.events_dispatched()).sum()
    }

    /// Heap bytes held by one replica's compressed routing tables. Every
    /// shard replicates the full topology, so this is per-replica (and
    /// therefore shard-count-invariant), not a process total.
    pub fn route_table_bytes(&self) -> u64 {
        self.worlds[0].route_table_bytes()
    }

    /// Bytes the legacy dense next-hop map would need per replica (see
    /// [`World::dense_route_bytes`]) — the baseline for compression
    /// ratios.
    pub fn dense_route_bytes(&self) -> u64 {
        self.worlds[0].dense_route_bytes()
    }

    /// Borrow an endpoint (from its owning shard — replicas on other
    /// shards never run and hold stale initial state).
    pub fn endpoint(&self, ep: EndpointId) -> Option<&dyn Endpoint> {
        self.owner_of_ep(ep.0 as usize).endpoint(ep)
    }

    fn owner_of_channel(&self, ch: ChannelId) -> &World {
        let (src, _) = self.worlds[0].channel_nodes(ch);
        &self.worlds[self.node_shard[src.0 as usize] as usize]
    }

    fn owner_of_ep(&self, i: usize) -> &World {
        let host = self.worlds[0].ep_host(i);
        &self.worlds[self.node_shard[host.0 as usize] as usize]
    }

    fn ep_owner_shard(&self, i: usize) -> usize {
        let host = self.worlds[0].ep_host(i);
        self.node_shard[host.0 as usize] as usize
    }

    /// Run every shard forward to `t_end` (inclusive), in parallel when
    /// more than one shard exists, then fold the shards' traces and audit
    /// state into the canonical merged views.
    ///
    /// # Panics
    ///
    /// Panics if `t_end == SimTime::MAX`: the inclusive run bound needs
    /// `t_end + 1` to be representable, and saturating instead would
    /// silently exclude events at exactly `t_end`.
    pub fn run_until(&mut self, t_end: SimTime) {
        assert!(
            t_end < SimTime::MAX,
            "run bound must be below SimTime::MAX for the inclusive +1 bound to be representable"
        );
        let bound = SimTime::from_nanos(t_end.as_nanos() + 1);
        if self.worlds.len() == 1 {
            self.worlds[0].run_before(bound);
        } else {
            self.run_parallel(t_end);
        }
        for w in &mut self.worlds {
            w.advance_clock(t_end);
        }
        self.now = t_end;
        self.merge_outputs(t_end);
    }

    fn run_parallel(&mut self, t_end: SimTime) {
        let n = self.worlds.len();
        let t_end_n = t_end.as_nanos();
        let shared = Shared {
            lbs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            inboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            inflight: AtomicI64::new(0),
            done: AtomicBool::new(false),
            epoch: Mutex::new(0),
            wake: Condvar::new(),
        };
        // Each worker needs its *incoming* delays — column `i` of the
        // lookahead matrix (`lookahead[j][i]` = min cut delay `j → i`),
        // not row `i`, which holds the delays *out of* `i`. The two
        // coincide only for symmetric cuts; per-direction delay
        // differences or simplex cut channels make them differ, and
        // handing a shard its row would let it run past events a
        // neighbour can still deliver.
        let d_in_cols: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| self.lookahead[j][i]).collect())
            .collect();
        let d_in_cols = &d_in_cols;
        let ch_dst_shard = &self.ch_dst_shard;

        let worlds = std::mem::take(&mut self.worlds);
        let results: Vec<(
            World,
            telemetry::Telemetry,
            audit::Tally,
            snapcount::SnapCounters,
        )> = std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = worlds
                .into_iter()
                .enumerate()
                .map(|(i, mut w)| {
                    scope.spawn(move || {
                        // Side-channel meters are thread-local: zero
                        // them here, ship the deltas back to the
                        // orchestrating thread afterwards.
                        telemetry::reset();
                        audit::reset_thread();
                        snapcount::reset_thread();
                        run_shard(i, &mut w, shared, &d_in_cols[i], ch_dst_shard, t_end_n);
                        (
                            w,
                            telemetry::snapshot(),
                            audit::take_thread(),
                            snapcount::take_thread(),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        for (w, tel, tally, snaps) in results {
            telemetry::merge(tel);
            audit::absorb(tally);
            snapcount::absorb(snaps);
            self.worlds.push(w);
        }
    }

    /// Fold the shards' run products into the canonical merged views:
    /// traces re-sorted by `(time, encoding)`, audits summed and their
    /// violation records re-sorted, conservation re-checked globally.
    fn merge_outputs(&mut self, t_end: SimTime) {
        let mut batch: Vec<TraceRecord> = Vec::new();
        for w in &mut self.worlds {
            batch.extend_from_slice(w.trace().records());
            w.trace_mut().clear();
        }
        // Each run_until produces records strictly later than the last, so
        // a sorted batch appends in globally sorted order. Ties at the
        // same instant sort by causal rank and then in encoded-content
        // order — both pure functions of the record, so the merged order
        // cannot depend on the shard count. `canonical_trace_cmp` is a
        // field-wise mirror of the old sort key `(t, causal_rank(ev),
        // SnapWriter encoding bytes)`: same total order, but without
        // encoding every record into a fresh `Vec<u8>` just to compare.
        batch.sort_by(canonical_trace_cmp);
        let mut records = self.trace.records().to_vec();
        records.extend(batch);
        self.trace.set_records(records);

        let mut merged = self.base_audit.clone();
        for w in &self.worlds {
            merged.merge_from(w.audit());
        }
        merged.finalize_merge();
        merged.check_merged_conservation(t_end);
        self.audit = merged;
    }
}

/// One shard's worker loop. `d_in[j]` is the minimum delay over cut
/// channels *from shard `j` into this shard* (the horizon formula's
/// `d[j][i]` for fixed `i`), `u64::MAX` when `j` has no channel into us.
///
/// See the module docs for the protocol; the
/// ordering subtlety worth restating: the horizon is computed from the
/// neighbour bounds **before** draining the inbox. Reading the bounds
/// first means any delivery that the freshly read bounds already account
/// for is visible in the inbox by the time we drain it (the sender pushes
/// before raising its bound), so we can never run past an undrained
/// delivery.
fn run_shard(
    i: usize,
    world: &mut World,
    shared: &Shared,
    d_in: &[u64],
    ch_dst_shard: &[u32],
    t_end_n: u64,
) {
    let n = shared.lbs.len();
    loop {
        if shared.done.load(SeqCst) {
            break;
        }
        let epoch_start = *shared.epoch.lock().expect("epoch lock");

        // 1. Safe horizon from the neighbours' published bounds.
        let mut horizon = u64::MAX;
        for (j, &d) in d_in.iter().enumerate().take(n) {
            if j != i && d != u64::MAX {
                horizon = horizon.min(shared.lbs[j].load(SeqCst).saturating_add(d));
            }
        }

        // 2. Drain deliveries other shards exported to us.
        let msgs = std::mem::take(&mut *shared.inboxes[i].lock().expect("inbox lock"));
        let drained = msgs.len();
        for (at, ch, pkt) in msgs {
            world.inject_arrival(at, ch, pkt);
        }
        if drained > 0 {
            shared.inflight.fetch_sub(drained as i64, SeqCst);
        }

        // 3. Dispatch everything provably safe.
        let before = world.events_dispatched();
        let bound = horizon.min(t_end_n.saturating_add(1));
        world.run_before(SimTime::from_nanos(bound));
        let ran = world.events_dispatched() != before;

        // 4. Export deliveries to their receiving shards. Count them as
        // in-flight *before* they become visible, so the termination
        // check cannot miss them.
        let out = world.take_outbox();
        let sent = out.len();
        for (at, ch, pkt) in out {
            let dest = ch_dst_shard[ch.0 as usize] as usize;
            shared.inflight.fetch_add(1, SeqCst);
            shared.inboxes[dest]
                .lock()
                .expect("inbox lock")
                .push((at, ch, pkt));
        }

        // 5. Publish our new bound (monotone).
        let next_local = world
            .next_event_time()
            .map(|t| t.as_nanos())
            .unwrap_or(u64::MAX);
        let lb = next_local.min(horizon);
        let prev = shared.lbs[i].fetch_max(lb, SeqCst);
        let progressed = drained > 0 || sent > 0 || ran || lb > prev;

        // 6. Global completion: every bound past t_end and nothing in
        // flight. The in-flight counter is incremented before a delivery
        // is visible and a sender's bound only rises after the push, so
        // "all bounds high + zero in flight" proves no delivery at or
        // before t_end can still appear.
        let all_past_end = (0..n).all(|j| shared.lbs[j].load(SeqCst) > t_end_n);
        if all_past_end && shared.inflight.load(SeqCst) == 0 {
            shared.done.store(true, SeqCst);
            shared.bump();
            break;
        }

        if progressed {
            shared.bump();
        } else {
            let guard = shared.epoch.lock().expect("epoch lock");
            if *guard == epoch_start && !shared.done.load(SeqCst) {
                // Missed-wakeup-safe: progress bumps the epoch under this
                // lock, so an unchanged epoch means nothing happened since
                // we sampled it. The timeout is a pure backstop.
                let _ = shared
                    .wake
                    .wait_timeout(guard, WAIT_SLICE)
                    .expect("epoch lock");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shard-count-invariant snapshots
// ---------------------------------------------------------------------------

/// Magic for sharded-world snapshots (`TDSN` is the serial format).
const SHARD_MAGIC: &[u8; 4] = b"TDSW";
const SHARD_VERSION: u32 = 1;

/// A serialized [`ShardedWorld`]: one canonical byte string per simulation
/// state, *independent of the shard count* that produced it or will
/// consume it — save at `--shards 4`, restore at `--shards 2`.
///
/// Layout (all rows in global-id order, pending events globally sorted by
/// `(time, canonical key, encoding)`, timer handles translated to indices
/// into that sorted pending list):
///
/// ```text
/// "TDSW" v1 | seed | node/channel/endpoint counts | now
/// | per-endpoint packet-id counters
/// | pending events (count, then time + encoded event)
/// | merged trace | merged audit
/// | host rows | channel rows | endpoint rows
/// ```
pub struct ShardSnapshot {
    bytes: Vec<u8>,
}

impl ShardSnapshot {
    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Adopt raw bytes, validating the header and the structural counts
    /// against the byte budget so corrupt input fails fast with a
    /// [`SnapError`] instead of a panic or an absurd allocation.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<ShardSnapshot, SnapError> {
        let mut r = SnapReader::new(&bytes);
        let version = r.expect_header(SHARD_MAGIC)?;
        if version != SHARD_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        let _seed = r.read_u64()?;
        let n_nodes = r.read_u32()? as usize;
        let n_channels = r.read_u32()? as usize;
        let n_endpoints = r.read_u32()? as usize;
        if n_nodes
            .saturating_add(n_channels)
            .saturating_add(n_endpoints)
            > r.remaining()
        {
            return Err(SnapError::Corrupt(
                "snapshot counts exceed the bytes that could encode them".into(),
            ));
        }
        Ok(ShardSnapshot { bytes })
    }

    /// Write the snapshot to `path`.
    pub fn write_to_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, &self.bytes)
    }

    /// Read and validate a snapshot from `path`.
    pub fn read_from_file(path: &Path) -> std::io::Result<ShardSnapshot> {
        let bytes = std::fs::read(path)?;
        ShardSnapshot::from_bytes(bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl ShardedWorld {
    /// Serialize the full simulation state into the shard-count-invariant
    /// [`ShardSnapshot`] format.
    pub fn snapshot(&self) -> ShardSnapshot {
        let n = self.worlds.len();
        let w0 = &self.worlds[0];
        let mut w = SnapWriter::with_header(SHARD_MAGIC, SHARD_VERSION);
        w.write_u64(self.seed);
        w.write_u32(w0.node_count() as u32);
        w.write_u32(w0.channel_count() as u32);
        w.write_u32(w0.endpoint_count() as u32);
        w.write_time(self.now);

        for i in 0..w0.endpoint_count() {
            w.write_u64(self.owner_of_ep(i).ep_packet_ctr(i));
        }

        // Pending events, sorted into the global canonical order. The
        // per-shard queue ids are remembered so endpoint timer handles can
        // be rewritten as indices into this very list.
        let mut pend: Vec<PendingBlob> = Vec::new();
        for (s, world) in self.worlds.iter().enumerate() {
            for (at, key, id, blob) in world.pending_event_blobs() {
                pend.push((at, key, blob, s, id.into_raw()));
            }
        }
        pend.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        w.write_u64(pend.len() as u64);
        for (at, _, blob, _, _) in &pend {
            w.write_time(*at);
            w.write_bytes(blob);
        }
        let mut xlats: Vec<HashMap<(u32, u64), u64>> = vec![HashMap::new(); n];
        for (gi, (_, _, _, s, raw)) in pend.iter().enumerate() {
            xlats[*s].insert(*raw, gi as u64);
        }

        w.write_bool(self.trace.is_enabled());
        w.write_u64(self.trace.len() as u64);
        for rec in self.trace.records() {
            save_trace_record(rec, &mut w);
        }
        self.audit.save_state(&mut w);

        for ni in 0..w0.node_count() {
            if w0.is_host_node(ni) {
                self.worlds[self.node_shard[ni] as usize].save_host_row(ni, &mut w);
            }
        }
        for ch in w0.channel_ids() {
            self.owner_of_channel(ch)
                .save_channel_row(ch.0 as usize, &mut w);
        }

        // Endpoint rows serialize timer handles through the thread-local
        // translation table of their owning shard.
        let mut installed: Option<usize> = None;
        for i in 0..w0.endpoint_count() {
            let s = self.ep_owner_shard(i);
            if installed != Some(s) {
                set_timer_save_xlat(Some(xlats[s].clone()));
                installed = Some(s);
            }
            self.worlds[s].save_endpoint_row(i, &mut w);
        }
        set_timer_save_xlat(None);

        ShardSnapshot {
            bytes: w.into_bytes(),
        }
    }

    /// Restore a [`ShardSnapshot`] into this world. The receiver must be
    /// **freshly built** (same seed and builder as the producer; any shard
    /// count) and never run: restore rewinds nothing. On error the world
    /// is partially mutated — rebuild before retrying.
    pub fn restore(&mut self, snap: &ShardSnapshot) -> Result<(), SnapError> {
        if self.now != SimTime::ZERO || self.events_dispatched() != 0 {
            return Err(SnapError::Mismatch(
                "sharded restore target must be freshly built, not already run".into(),
            ));
        }
        let mut r = SnapReader::new(&snap.bytes);
        let version = r.expect_header(SHARD_MAGIC)?;
        if version != SHARD_VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        if r.read_u64()? != self.seed {
            return Err(SnapError::Mismatch(
                "snapshot seed differs from world seed".into(),
            ));
        }
        let w0_counts = (
            self.worlds[0].node_count() as u32,
            self.worlds[0].channel_count() as u32,
            self.worlds[0].endpoint_count() as u32,
        );
        let counts = (r.read_u32()?, r.read_u32()?, r.read_u32()?);
        if counts != w0_counts {
            return Err(SnapError::Mismatch(
                "snapshot topology counts differ from the built world".into(),
            ));
        }
        let now = r.read_time()?;

        let mut ep_ctrs = Vec::with_capacity(counts.2 as usize);
        for _ in 0..counts.2 {
            ep_ctrs.push(r.read_u64()?);
        }

        // Replace every shard's initial event population with the
        // snapshot's pending set, routed to its owning shard.
        for w in &mut self.worlds {
            w.clear_pending();
        }
        let n_pend = r.read_u64()? as usize;
        if n_pend > r.remaining() {
            return Err(SnapError::Corrupt(
                "pending event count exceeds the bytes that could encode it".into(),
            ));
        }
        let mut load_xlats: Vec<HashMap<u64, (u32, u64)>> = vec![HashMap::new(); self.worlds.len()];
        for gi in 0..n_pend {
            let at = r.read_time()?;
            let blob = r.read_bytes()?;
            let ev = {
                let mut er = SnapReader::new(blob);
                let ev = load_event(&mut er)?;
                er.finish()?;
                ev
            };
            let owner = self.worlds[0].event_shard(&self.node_shard, &ev) as usize;
            let id = self.worlds[owner].schedule_event_blob(at, blob)?;
            load_xlats[owner].insert(gi as u64, id.into_raw());
        }

        let trace_enabled = r.read_bool()?;
        let n_recs = r.read_u64()? as usize;
        if n_recs > r.remaining() {
            return Err(SnapError::Corrupt(
                "trace record count exceeds the bytes that could encode it".into(),
            ));
        }
        let mut records = Vec::with_capacity(n_recs);
        for _ in 0..n_recs {
            records.push(load_trace_record(&mut r)?);
        }
        self.trace.set_enabled(trace_enabled);
        self.trace.set_records(records);
        for w in &mut self.worlds {
            w.trace_mut().set_enabled(trace_enabled);
        }

        let mut restored_audit = Audit::default();
        restored_audit.load_state(&mut r)?;
        self.base_audit = restored_audit.clone();
        self.audit = restored_audit;

        for ni in 0..counts.0 as usize {
            if self.worlds[0].is_host_node(ni) {
                let s = self.node_shard[ni] as usize;
                self.worlds[s].load_host_row(ni, &mut r)?;
            }
        }
        for ci in 0..counts.1 as usize {
            let (src, _) = self.worlds[0].channel_nodes(ChannelId(ci as u32));
            let s = self.node_shard[src.0 as usize] as usize;
            self.worlds[s].load_channel_row(ci, &mut r)?;
        }

        let mut installed: Option<usize> = None;
        let res = (0..counts.2 as usize).try_for_each(|i| {
            let s = self.ep_owner_shard(i);
            if installed != Some(s) {
                set_timer_load_xlat(Some(load_xlats[s].clone()));
                installed = Some(s);
            }
            self.worlds[s].load_endpoint_row(i, &mut r)
        });
        set_timer_load_xlat(None);
        res?;
        r.finish()?;

        for (i, ctr) in ep_ctrs.iter().enumerate() {
            let s = self.ep_owner_shard(i);
            self.worlds[s].set_ep_packet_ctr(i, *ctr);
        }
        for w in &mut self.worlds {
            w.advance_clock(now);
        }
        self.now = now;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Ctx;
    use crate::{
        ConnId, DisciplineKind, FaultModel, FaultPlan, GilbertElliott, Outage, PacketKind,
        ReorderJitter,
    };
    use std::any::Any;
    use td_engine::{Rate, SimDuration};

    /// Sends a data packet at start and on every ACK; a periodic timer
    /// keeps it alive through loss. Never touches `Ctx::rng`.
    struct Chatter {
        sent: u64,
        acked: u64,
    }

    impl Chatter {
        fn boxed() -> Box<dyn Endpoint> {
            Box::new(Chatter { sent: 0, acked: 0 })
        }
    }

    impl Endpoint for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.sent += 1;
            ctx.send(PacketKind::Data, self.sent, 500, false);
            ctx.set_timer(SimDuration::from_millis(40), 1);
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            if pkt.is_ack() {
                self.acked += 1;
                self.sent += 1;
                ctx.send(PacketKind::Data, self.sent, 500, false);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            self.sent += 1;
            ctx.send(PacketKind::Data, self.sent, 500, true);
            ctx.set_timer(SimDuration::from_millis(40), 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn save_state(&self, w: &mut SnapWriter) {
            w.write_u64(self.sent);
            w.write_u64(self.acked);
        }
        fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.sent = r.read_u64()?;
            self.acked = r.read_u64()?;
            Ok(())
        }
    }

    /// Acknowledges every data packet.
    struct Acker;

    impl Endpoint for Acker {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            if !pkt.is_ack() {
                ctx.send(PacketKind::Ack, pkt.seq, 40, false);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Two host/switch clusters joined by a slow trunk; two cross-cluster
    /// connections and one intra-cluster connection. With `faulty`, the
    /// trunk gets a live composite fault plan (burst + loss + dup +
    /// jitter + a scheduled outage) and a Random Drop queue, exercising
    /// the per-channel RNG streams across the cut.
    fn two_clusters(faulty: bool) -> impl Fn(&mut World) {
        move |w: &mut World| {
            let h = SimDuration::from_micros(100);
            let a0 = w.add_host("a0", h);
            let a1 = w.add_host("a1", h);
            let s0 = w.add_switch("s0");
            let b0 = w.add_host("b0", h);
            let b1 = w.add_host("b1", h);
            let s1 = w.add_switch("s1");
            for (x, y) in [(a0, s0), (a1, s0), (b0, s1), (b1, s1)] {
                for (src, dst) in [(x, y), (y, x)] {
                    w.add_channel(
                        src,
                        dst,
                        Rate::from_kbps(1000),
                        SimDuration::from_micros(100),
                        Some(20),
                        DisciplineKind::DropTail.build(),
                        FaultModel::NONE,
                    );
                }
            }
            let trunk_disc = if faulty {
                DisciplineKind::RandomDrop
            } else {
                DisciplineKind::DropTail
            };
            let mut trunks = Vec::new();
            for (src, dst) in [(s0, s1), (s1, s0)] {
                trunks.push(w.add_channel(
                    src,
                    dst,
                    Rate::from_kbps(400),
                    SimDuration::from_millis(5),
                    Some(10),
                    trunk_disc.build(),
                    FaultModel::NONE,
                ));
            }
            if faulty {
                let plan = FaultPlan {
                    model: FaultModel::lossy(0.05),
                    burst: Some(GilbertElliott::new(0.02, 0.3, 0.5).expect("valid burst")),
                    dup_prob: 0.04,
                    jitter: Some(ReorderJitter {
                        prob: 0.1,
                        max_extra: SimDuration::from_micros(800),
                    }),
                    outages: vec![Outage {
                        down: SimTime::from_millis(120),
                        up: SimTime::from_millis(140),
                    }],
                };
                for &t in &trunks {
                    w.set_fault_plan(t, plan.clone()).expect("valid plan");
                }
            }
            w.compute_routes();
            let c0 = w.attach(a0, b0, ConnId(0), Chatter::boxed());
            w.attach(b0, a0, ConnId(0), Box::new(Acker));
            let c1 = w.attach(b1, a1, ConnId(1), Chatter::boxed());
            w.attach(a1, b1, ConnId(1), Box::new(Acker));
            let c2 = w.attach(a1, a0, ConnId(2), Chatter::boxed());
            w.attach(a0, a1, ConnId(2), Box::new(Acker));
            w.start_at(c0, SimTime::from_millis(1));
            w.start_at(c1, SimTime::from_millis(2));
            w.start_at(c2, SimTime::from_millis(3));
        }
    }

    /// Swallows every packet and never sends, so it needs no return route.
    struct Sink {
        got: u64,
    }

    impl Endpoint for Sink {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.got += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn save_state(&self, w: &mut SnapWriter) {
            w.write_u64(self.got);
        }
        fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.got = r.read_u64()?;
            Ok(())
        }
    }

    /// Like `two_clusters`, but the trunk's two directions have very
    /// different delays (5 ms out, 50 ms back), making the cut — and the
    /// lookahead matrix — asymmetric: the b-side shard may run only 5 ms
    /// past the a-side's bound while the reverse direction allows 50 ms.
    /// Regression for the transposed-lookahead bug, where each worker was
    /// handed its outgoing row instead of its incoming column and the
    /// b-side shard ran 45 ms further than the a-side could cover.
    fn asymmetric_clusters(w: &mut World) {
        let h = SimDuration::from_micros(100);
        let a0 = w.add_host("a0", h);
        let a1 = w.add_host("a1", h);
        let s0 = w.add_switch("s0");
        let b0 = w.add_host("b0", h);
        let b1 = w.add_host("b1", h);
        let s1 = w.add_switch("s1");
        for (x, y) in [(a0, s0), (a1, s0), (b0, s1), (b1, s1)] {
            for (src, dst) in [(x, y), (y, x)] {
                w.add_channel(
                    src,
                    dst,
                    Rate::from_kbps(1000),
                    SimDuration::from_micros(100),
                    Some(20),
                    DisciplineKind::DropTail.build(),
                    FaultModel::NONE,
                );
            }
        }
        for (src, dst, ms) in [(s0, s1, 5), (s1, s0, 50)] {
            w.add_channel(
                src,
                dst,
                Rate::from_kbps(400),
                SimDuration::from_millis(ms),
                Some(10),
                DisciplineKind::DropTail.build(),
                FaultModel::NONE,
            );
        }
        w.compute_routes();
        let c0 = w.attach(a0, b0, ConnId(0), Chatter::boxed());
        w.attach(b0, a0, ConnId(0), Box::new(Acker));
        let c1 = w.attach(b1, a1, ConnId(1), Chatter::boxed());
        w.attach(a1, b1, ConnId(1), Box::new(Acker));
        w.start_at(c0, SimTime::from_millis(1));
        w.start_at(c1, SimTime::from_millis(2));
    }

    /// One-way traffic over a *simplex* trunk: the cut has channels in one
    /// direction only, so the receiving shard is bounded by the sender's
    /// clock while the sender is unbounded by the receiver. Regression for
    /// the transposed-lookahead bug, where the receiving shard read its
    /// (empty) outgoing direction, saw no constraint, ran straight to the
    /// end bound, and the first cross-shard delivery landed in its past.
    fn simplex_cut(w: &mut World) {
        let h = SimDuration::from_micros(100);
        let a0 = w.add_host("a0", h);
        let s0 = w.add_switch("s0");
        let b0 = w.add_host("b0", h);
        let s1 = w.add_switch("s1");
        for (x, y) in [(a0, s0), (b0, s1)] {
            for (src, dst) in [(x, y), (y, x)] {
                w.add_channel(
                    src,
                    dst,
                    Rate::from_kbps(1000),
                    SimDuration::from_micros(100),
                    Some(20),
                    DisciplineKind::DropTail.build(),
                    FaultModel::NONE,
                );
            }
        }
        // The trunk exists s0 → s1 only.
        w.add_channel(
            s0,
            s1,
            Rate::from_kbps(400),
            SimDuration::from_millis(5),
            Some(10),
            DisciplineKind::DropTail.build(),
            FaultModel::NONE,
        );
        w.compute_routes();
        let c0 = w.attach(a0, b0, ConnId(0), Chatter::boxed());
        w.attach(b0, a0, ConnId(0), Box::new(Sink { got: 0 }));
        w.start_at(c0, SimTime::from_millis(1));
    }

    fn run_at(shards: u32, faulty: bool, t_end: SimTime) -> ShardedWorld {
        let mut sw = ShardedWorld::build(0xC0FFEE, shards, two_clusters(faulty));
        sw.run_until(t_end);
        sw
    }

    #[test]
    fn shard_counts_are_byte_identical() {
        let t = SimTime::from_millis(300);
        let base = run_at(1, false, t);
        let base_snap = base.snapshot();
        assert!(
            base.trace().len() > 100,
            "workload too quiet to prove anything"
        );
        assert!(base.audit().delivered() > 0);
        for n in [2, 3, 4] {
            let other = run_at(n, false, t);
            assert_eq!(
                base.trace().records(),
                other.trace().records(),
                "merged trace differs at {n} shards"
            );
            assert_eq!(
                base_snap.as_bytes(),
                other.snapshot().as_bytes(),
                "snapshot bytes differ at {n} shards"
            );
            assert_eq!(base.audit().injected(), other.audit().injected());
            assert_eq!(base.audit().delivered(), other.audit().delivered());
            assert_eq!(base.audit().dropped(), other.audit().dropped());
        }
    }

    #[test]
    fn asymmetric_trunk_delays_are_shard_invariant() {
        let t = SimTime::from_millis(300);
        let mut base = ShardedWorld::build(0xA5, 1, asymmetric_clusters);
        base.run_until(t);
        assert!(base.audit().delivered() > 0, "nothing crossed the trunk");
        let base_snap = base.snapshot();
        for n in [2, 4] {
            let mut other = ShardedWorld::build(0xA5, n, asymmetric_clusters);
            other.run_until(t);
            assert_eq!(
                base.trace().records(),
                other.trace().records(),
                "merged trace differs at {n} shards over an asymmetric cut"
            );
            assert_eq!(
                base_snap.as_bytes(),
                other.snapshot().as_bytes(),
                "snapshot bytes differ at {n} shards over an asymmetric cut"
            );
        }
    }

    #[test]
    fn simplex_cut_is_shard_invariant() {
        let t = SimTime::from_millis(300);
        let mut base = ShardedWorld::build(0x51, 1, simplex_cut);
        base.run_until(t);
        assert!(
            base.audit().delivered() > 0,
            "one-way traffic never crossed the trunk"
        );
        let base_snap = base.snapshot();
        for n in [2, 4] {
            let mut other = ShardedWorld::build(0x51, n, simplex_cut);
            other.run_until(t);
            assert_eq!(
                base.trace().records(),
                other.trace().records(),
                "merged trace differs at {n} shards over a simplex cut"
            );
            assert_eq!(
                base_snap.as_bytes(),
                other.snapshot().as_bytes(),
                "snapshot bytes differ at {n} shards over a simplex cut"
            );
        }
    }

    #[test]
    #[should_panic(expected = "below SimTime::MAX")]
    fn run_until_rejects_unrepresentable_bound() {
        let mut sw = ShardedWorld::build(1, 1, two_clusters(false));
        sw.run_until(SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "disagree on structure")]
    fn build_rejects_same_size_nondeterministic_builders() {
        // Counts match across replicas; only a channel delay varies — the
        // structural digest has to catch it.
        let calls = std::cell::Cell::new(0u64);
        let _ = ShardedWorld::build(1, 2, |w: &mut World| {
            let n = calls.get();
            calls.set(n + 1);
            let h = SimDuration::from_micros(100);
            let a = w.add_host("a", h);
            let s = w.add_switch("s");
            for (src, dst) in [(a, s), (s, a)] {
                w.add_channel(
                    src,
                    dst,
                    Rate::from_kbps(1000),
                    SimDuration::from_micros(100 + n),
                    Some(20),
                    DisciplineKind::DropTail.build(),
                    FaultModel::NONE,
                );
            }
        });
    }

    #[test]
    fn chaos_shard_invariance_with_live_fault_plans() {
        let t = SimTime::from_millis(300);
        let base = run_at(1, true, t);
        let base_snap = base.snapshot();
        assert!(
            base.audit().dropped() > 0,
            "fault plans never fired; the chaos case is vacuous"
        );
        for n in [2, 4] {
            let other = run_at(n, true, t);
            assert_eq!(
                base.trace().records(),
                other.trace().records(),
                "merged trace differs at {n} shards under faults"
            );
            assert_eq!(
                base_snap.as_bytes(),
                other.snapshot().as_bytes(),
                "snapshot bytes differ at {n} shards under faults"
            );
        }
    }

    #[test]
    fn snapshot_restores_across_shard_counts() {
        let t1 = SimTime::from_millis(150);
        let t2 = SimTime::from_millis(300);
        let mut origin = ShardedWorld::build(0xC0FFEE, 2, two_clusters(true));
        origin.run_until(t1);
        let mid = origin.snapshot();
        origin.run_until(t2);
        let straight = origin.snapshot();
        for n in [1, 2, 4] {
            let mut resumed = ShardedWorld::build(0xC0FFEE, n, two_clusters(true));
            resumed.restore(&mid).expect("restore succeeds");
            assert_eq!(resumed.now(), t1);
            resumed.run_until(t2);
            assert_eq!(
                straight.as_bytes(),
                resumed.snapshot().as_bytes(),
                "resume at {n} shards diverged from the straight run"
            );
        }
    }

    #[test]
    fn restore_rejects_run_worlds_and_foreign_snapshots() {
        let mut a = ShardedWorld::build(1, 1, two_clusters(false));
        a.run_until(SimTime::from_millis(10));
        let snap = a.snapshot();
        // Already-run target.
        assert!(matches!(a.restore(&snap), Err(SnapError::Mismatch(_))));
        // Wrong seed.
        let mut b = ShardedWorld::build(2, 1, two_clusters(false));
        assert!(matches!(b.restore(&snap), Err(SnapError::Mismatch(_))));
    }

    #[test]
    fn shard_snapshot_from_bytes_rejects_corrupt_input() {
        let mut sw = ShardedWorld::build(9, 2, two_clusters(false));
        sw.run_until(SimTime::from_millis(20));
        let good = sw.snapshot().as_bytes().to_vec();
        assert!(ShardSnapshot::from_bytes(good.clone()).is_ok());
        // Truncation anywhere must surface as a structured error — at
        // `from_bytes` when the header can see it, at `restore` otherwise
        // — and must never panic.
        for cut in [0, 3, 7, 12, 20, good.len() / 2, good.len() - 1] {
            match ShardSnapshot::from_bytes(good[..cut].to_vec()) {
                Err(_) => {}
                Ok(snap) => {
                    let mut fresh = ShardedWorld::build(9, 2, two_clusters(false));
                    assert!(
                        fresh.restore(&snap).is_err(),
                        "truncation at {cut} restored cleanly"
                    );
                }
            }
        }
        // Oversized structural counts must fail fast, not allocate wildly.
        let mut huge = good.clone();
        huge[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(ShardSnapshot::from_bytes(huge).is_err());
        // Bad magic.
        let mut bad = good;
        bad[0..4].copy_from_slice(b"XXXX");
        assert!(matches!(
            ShardSnapshot::from_bytes(bad),
            Err(SnapError::BadMagic)
        ));
    }
}
