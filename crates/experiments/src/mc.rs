//! Bounded model checking of the fig45 scenario (`mc_fig45`,
//! `td-repro mc`).
//!
//! [`td_net::mc`] provides the generic explorer: snapshot at a decision
//! point, try every fault placement, restore for the siblings, dedup
//! convergent states by canonical hash, and audit every segment. This
//! module aims it at the paper's most dynamics-rich scenario — the 1+1
//! two-way fig45 run — by answering the scenario-specific questions:
//!
//! * **Where to branch.** A probe run (streamed analysis, no trace)
//!   locates the first congestion epoch after warm-up with
//!   [`detect_epochs`]; the decision grid spans one epoch cycle — from
//!   that epoch's first loss to the next epoch's onset (capped) — which
//!   is exactly the window where the paper's out-of-phase machinery
//!   (double loss, roles alternating, square-wave ACK compression) is in
//!   flight and most worth perturbing.
//! * **What to branch on.** Outages and forced single drops on the two
//!   bottleneck channels, the only contended resources in the dumbbell.
//! * **What must hold.** Zero audit violations and zero stalls on every
//!   explored path; the exploration counters themselves are a pure
//!   function of `(seed, params)` and are pinned in tests and CI.
//!
//! The seeded-violation mode inverts the game to prove the detector
//! works end to end: a prelude installs an impossible window bound after
//! the run-in, every first-level branch then trips the `window-bound`
//! invariant, and each counterexample's `TDMC` schedule replays — via
//! [`replay_fig45`] or `td-repro mc --replay` — to the identical
//! violation record.

use crate::fig45;
use crate::registry::Profile;
use crate::report::Report;
use std::path::PathBuf;
use td_analysis::epochs::detect_epochs;
use td_engine::{SimDuration, SimTime};
use td_net::mc::{self, McConfig, McSchedule, McStats, ReplayOutcome};
use td_net::{ChannelId, ConnId, WatchdogConfig, World};

/// Probe run length (simulated seconds) used to locate the congestion
/// epoch. Also the nominal duration the explorer's world is built with;
/// the world's structure does not depend on it.
const PROBE_SECS: u64 = 200;

/// Safety margin the horizon extends past the last grid point, so the
/// final segment observes the consequences of a decision made late in
/// the epoch.
const HORIZON_MARGIN: SimDuration = SimDuration::from_secs(5);

/// Cap on the explored window: keeps one segment's re-execution cost
/// bounded even if the probe finds a single late epoch.
const MAX_WINDOW: SimDuration = SimDuration::from_secs(40);

/// Scenario-specific exploration parameters.
#[derive(Clone, Debug)]
pub struct McParams {
    /// World seed (the probe, the exploration, and any replay share it).
    pub seed: u64,
    /// Number of decision points spread across the epoch window.
    pub grid_points: usize,
    /// Outage length branched at every decision point.
    pub outage: SimDuration,
    /// Also branch on one forced packet drop per bottleneck channel.
    pub enable_drops: bool,
    /// Depth budget: at most this many non-skip decisions per path.
    pub max_decisions: usize,
    /// State budget: at most this many segment executions.
    pub max_states: u64,
    /// Seed a deliberate window-bound violation after the run-in
    /// (acceptance harness for the counterexample pipeline).
    pub seeded_violation: bool,
    /// Where counterexample artifacts (`cex-<i>.tdmc` / `.tdsnap`) go.
    pub artifact_dir: Option<PathBuf>,
}

impl McParams {
    /// CI-sized exploration: 4 decision points, one fault per path.
    pub fn quick(seed: u64) -> Self {
        McParams {
            seed,
            grid_points: 4,
            outage: SimDuration::from_secs(2),
            enable_drops: true,
            max_decisions: 1,
            max_states: 512,
            seeded_violation: false,
            artifact_dir: None,
        }
    }

    /// Deeper sweep: 5 decision points, up to two faults per path.
    pub fn full(seed: u64) -> Self {
        McParams {
            grid_points: 5,
            max_decisions: 2,
            max_states: 2048,
            ..Self::quick(seed)
        }
    }

    /// The parameter set a registry profile maps to.
    pub fn for_profile(seed: u64, profile: Profile) -> Self {
        match profile {
            Profile::Quick => Self::quick(seed),
            Profile::Full => Self::full(seed),
        }
    }
}

/// One finished exploration: the counters plus the window it searched.
#[derive(Debug)]
pub struct McRun {
    /// Explorer counters and counterexamples.
    pub stats: McStats,
    /// The decision grid used.
    pub grid: Vec<SimTime>,
    /// The exploration horizon.
    pub horizon: SimTime,
}

/// Build the fig45 world the explorer (and any replay) runs on: same
/// topology, connections, and seed-derived start jitter as the figure
/// reproduction, trace recording off (the canonical state hash excludes
/// the trace, and branches would otherwise accumulate dead records).
/// Returns the world plus the two bottleneck channel ids.
pub fn build_fig45_world(seed: u64) -> (World, ChannelId, ChannelId) {
    let mut sc = fig45::scenario(seed, PROBE_SECS, 20);
    sc.record_trace = false;
    let run = sc.build();
    (run.world, run.bottleneck_12, run.bottleneck_21)
}

/// The seeded-violation prelude: an impossible bound on the forward
/// connection's window, so every subsequent cwnd sample trips the
/// `window-bound` invariant. Exploration and replay must apply the
/// identical prelude (see [`McSchedule::seeded_violation`]).
fn seeded_prelude(w: &mut World) {
    w.set_window_bound(ConnId(0), 1.0);
}

/// Probe the scenario for its first congestion epoch after warm-up and
/// return the exploration window `[start, end)`.
fn probe_window(seed: u64) -> (SimTime, SimTime) {
    let mut sc = fig45::scenario(seed, PROBE_SECS, 20);
    sc.record_trace = false;
    sc.stream = true;
    let run = sc.run();
    let drops = run.drops();
    let epochs = detect_epochs(&drops, SimDuration::from_secs(4));
    let (i, epoch) = epochs
        .iter()
        .enumerate()
        .find(|(_, e)| e.t_start >= run.t0)
        .expect("mc: probe found no congestion epoch inside the measurement window");
    // One epoch cycle: this epoch's onset up to the next epoch's onset
    // (the loss -> recovery -> next loss arc), capped to bound the cost
    // of re-executing a segment.
    let cycle_end = match epochs.get(i + 1) {
        Some(next) => next.t_start,
        None => epoch.t_end + SimDuration::from_secs(20),
    };
    let end = cycle_end.min(epoch.t_start + MAX_WINDOW);
    (epoch.t_start, end)
}

/// The [`McConfig`] a parameter set expands to over window
/// `[start, end)` on channels `b12` / `b21`.
fn config_for(
    p: &McParams,
    start: SimTime,
    end: SimTime,
    b12: ChannelId,
    b21: ChannelId,
) -> McConfig {
    let span_ns = end.since(start).as_nanos();
    let g = p.grid_points.max(1) as u64;
    let grid = (0..g)
        .map(|i| start + SimDuration::from_nanos(span_ns * i / g))
        .collect();
    McConfig {
        grid,
        horizon: end + HORIZON_MARGIN,
        channels: vec![b12, b21],
        outage_durations: vec![p.outage],
        enable_drops: p.enable_drops,
        max_decisions: p.max_decisions,
        max_states: p.max_states,
        watchdog: WatchdogConfig::default(),
        artifact_dir: p.artifact_dir.clone(),
        seeded_violation: p.seeded_violation,
    }
}

/// Probe for the epoch window, then explore the bounded fault space of
/// the fig45 scenario under `p`.
pub fn explore_fig45(p: &McParams) -> McRun {
    let (start, end) = probe_window(p.seed);
    let (mut world, b12, b21) = build_fig45_world(p.seed);
    let cfg = config_for(p, start, end, b12, b21);
    let stats = if p.seeded_violation {
        mc::explore_with_prelude(&mut world, &cfg, seeded_prelude)
    } else {
        mc::explore(&mut world, &cfg)
    };
    McRun {
        stats,
        grid: cfg.grid,
        horizon: cfg.horizon,
    }
}

/// Re-execute one `TDMC` schedule on a freshly built fig45 world (same
/// seed, same run-in, seeded prelude reapplied if the schedule was
/// explored under one). Determinism makes a counterexample schedule
/// reproduce its violation record exactly.
pub fn replay_fig45(sched: &McSchedule) -> ReplayOutcome {
    let (mut world, _, _) = build_fig45_world(sched.seed);
    let watchdog = WatchdogConfig::default();
    if sched.seeded_violation {
        mc::replay(&mut world, sched, &watchdog, seeded_prelude)
    } else {
        mc::replay(&mut world, sched, &watchdog, |_| {})
    }
}

/// The `mc_fig45` registry experiment: explore, then re-explore on a
/// fresh world and demand byte-identical counters.
pub fn report(seed: u64, profile: Profile) -> Report {
    let p = McParams::for_profile(seed, profile);
    let a = explore_fig45(&p);
    let b = explore_fig45(&p);
    let mut rep = Report::new(
        "mc_fig45",
        "Bounded model checking: fault placements across one fig45 congestion epoch",
        &format!(
            "seed {seed}, {} grid points in [{:.1} s, {:.1} s], outage {:.0} ms, \
             <= {} decision(s)/path, budget {} states",
            a.grid.len(),
            a.grid.first().map_or(0.0, |t| t.as_secs_f64()),
            a.horizon.as_secs_f64(),
            p.outage.as_secs_f64() * 1000.0,
            p.max_decisions,
            p.max_states
        ),
    );
    let s = &a.stats;
    rep.check(
        "counterexamples",
        "0 (audit invariants + watchdog hold on every explored path)",
        format!("{}", s.counterexamples.len()),
        s.counterexamples.is_empty(),
    );
    rep.check(
        "exploration coverage",
        "every branch within budget executed",
        format!(
            "{} states visited, {} deduped, {} pruned, max depth {}",
            s.states_visited, s.states_deduped, s.states_pruned, s.max_depth
        ),
        s.states_visited > 0 && s.max_depth as usize == p.max_decisions,
    );
    let twin_equal = s.states_visited == b.stats.states_visited
        && s.states_deduped == b.stats.states_deduped
        && s.states_pruned == b.stats.states_pruned
        && s.max_depth == b.stats.max_depth;
    rep.check(
        "deterministic re-exploration",
        "identical counters from a fresh world",
        format!(
            "{}/{}/{}/{} vs {}/{}/{}/{}",
            s.states_visited,
            s.states_deduped,
            s.states_pruned,
            s.max_depth,
            b.stats.states_visited,
            b.stats.states_deduped,
            b.stats.states_pruned,
            b.stats.max_depth
        ),
        twin_equal,
    );
    for cex in &s.counterexamples {
        let path: Vec<String> = cex
            .schedule
            .decisions
            .iter()
            .map(|&(gi, d)| format!("@{gi} {}", d.render()))
            .collect();
        rep.diagnostic(format!(
            "counterexample: [{}] violations: {:?} stall: {:?}",
            path.join(", "),
            cex.violations,
            cex.stall
        ));
    }
    rep.metric("mc_states_visited", s.states_visited as f64);
    rep.metric("mc_states_deduped", s.states_deduped as f64);
    rep.metric("mc_states_pruned", s.states_pruned as f64);
    rep.metric("mc_max_depth", s.max_depth as f64);
    rep.metric("mc_counterexamples", s.counterexamples.len() as f64);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_finds_a_window_and_config_expands() {
        let (start, end) = probe_window(1);
        assert!(end > start);
        assert!(end.since(start) <= MAX_WINDOW);
        let p = McParams::quick(1);
        let cfg = config_for(&p, start, end, ChannelId(4), ChannelId(5));
        assert_eq!(cfg.grid.len(), 4);
        assert!(cfg.grid.windows(2).all(|w| w[0] < w[1]));
        assert!(cfg.horizon > *cfg.grid.last().unwrap());
    }

    #[test]
    fn profiles_differ_in_depth() {
        assert_eq!(McParams::for_profile(1, Profile::Quick).max_decisions, 1);
        assert_eq!(McParams::for_profile(1, Profile::Full).max_decisions, 2);
    }
}
