//! Figures 8 & 9 — fixed windows, infinite buffers (§4.2, §4.3.3).
//!
//! The paper disentangles ACK-compression from the congestion-control
//! dynamics by fixing the windows: TCP-1 at 30 packets, TCP-2 at 25,
//! infinite switch buffers, random start times. Two pipe sizes:
//!
//! * **Figure 8** (τ = 0.01 s, P = 0.125): constant-amplitude square
//!   waves; queue 1 peaks at **55** (= W1 + W2: all of connection 2's
//!   ACKs pile into queue 1 behind connection 1's data), queue 2 peaks at
//!   **23**; line 1→2 is fully utilized while line 2→1 idles at ≈ 86 %.
//!   `W1 > W2 + 2P` → the out-of-phase queue pattern.
//! * **Figure 9** (τ = 1 s, P = 12.5): both queues peak at the same
//!   height **23** with an alternation pattern in plateau heights; both
//!   lines underutilized (≈ 81 % / 70 %). `W1 < W2 + 2P` → in-phase.
//!
//! No packet is ever dropped in either run (infinite buffers), and the
//! queue falls are ACK-cluster-sized — pure ACK-compression.

use crate::report::Report;
use crate::scenario::{ConnSpec, Scenario, DATA_SERVICE};
use td_analysis::plot::Plot;
use td_analysis::{compression, csv};
use td_engine::SimDuration;

/// Scenario: fixed windows `w1`/`w2`, infinite buffers, pipe delay `tau`.
pub fn scenario(seed: u64, duration_s: u64, tau: SimDuration, w1: u64, w2: u64) -> Scenario {
    let mut sc = Scenario::paper(tau, None)
        .with_fwd(1, ConnSpec::fixed(w1))
        .with_rev(1, ConnSpec::fixed(w2));
    sc.seed = seed;
    sc.duration = SimDuration::from_secs(duration_s);
    sc.warmup = SimDuration::from_secs(duration_s / 4);
    sc
}

/// Run and evaluate the Figure 8 reproduction (small pipe).
pub fn report_fig8(seed: u64, duration_s: u64) -> Report {
    report_fig8_mode(seed, duration_s, true)
}

/// Figure 8 with an explicit analysis path: `stream = true` computes the
/// metrics online with the trace disabled (the registry default);
/// `stream = false` is the legacy batch-from-trace path. Byte-identical
/// either way (pinned by the `stream_parity` suite and the golden output
/// hash, which covers this report).
#[doc(hidden)]
pub fn report_fig8_mode(seed: u64, duration_s: u64, stream: bool) -> Report {
    let mut sc = scenario(seed, duration_s, SimDuration::from_millis(10), 30, 25);
    sc.stream = stream;
    sc.record_trace = !stream;
    let run = sc.run();
    let mut rep = Report::new(
        "fig8",
        "Fixed windows 30/25, tau = 0.01 s, infinite buffers (paper Fig. 8)",
        &format!(
            "seed {seed}, {duration_s} s simulated, measured after {}",
            run.t0
        ),
    );
    // Batched extraction: pure scans, byte-identical to sequential — safe
    // under the golden output hash that pins this report.
    let (q1, q2) = run.queues();

    let q1max = q1.max_in(run.t0, run.t1).unwrap_or(0.0);
    let q2max = q2.max_in(run.t0, run.t1).unwrap_or(0.0);
    rep.check(
        "queue 1 maximum",
        "55 (= W1 + W2)",
        format!("{q1max:.0}"),
        (50.0..=57.0).contains(&q1max),
    );
    rep.check(
        "queue 2 maximum",
        "23",
        format!("{q2max:.0}"),
        (20.0..=27.0).contains(&q2max),
    );

    let (u12, u21) = (run.util12(), run.util21());
    rep.check(
        "line 1->2 utilization",
        "~1.0 (W1 > W2 + 2P: exactly one line saturated)",
        format!("{u12:.3}"),
        u12 > 0.99,
    );
    rep.check(
        "line 2->1 utilization",
        "0.86",
        format!("{u21:.3}"),
        (0.80..=0.92).contains(&u21),
    );

    let drops = run.drops().len();
    rep.check(
        "packet drops",
        "0 (infinite buffers)",
        format!("{drops}"),
        drops == 0,
    );

    // The queue drains one packet per ACK service time while the ACK
    // cluster passes, so the fall per data service time is exactly the
    // RA/RD ratio (10 in the paper), and the full square-wave amplitude
    // (~W2) unfolds over W2 ACK service times (200 ms).
    let fl1 = compression::queue_fluctuation(&q1, run.t0, run.t1, DATA_SERVICE);
    rep.check(
        "queue 1 fall within one data service time",
        "10 (= data/ACK size ratio: drains at ACK rate)",
        format!("{fl1:.0} packets"),
        (8.0..=12.0).contains(&fl1),
    );
    let amp = compression::queue_fluctuation(&q1, run.t0, run.t1, SimDuration::from_millis(250));
    rep.check(
        "queue 1 square-wave amplitude (fall within 250 ms)",
        "~W2 = 25 (connection 2's compressed ACK cluster)",
        format!("{amp:.0} packets"),
        (18.0..=28.0).contains(&amp),
    );

    let w0 = run.t0;
    let w1 = (run.t0 + SimDuration::from_secs(20)).min(run.t1);
    rep.plots.push(
        Plot::new(
            "Fig 8 (top): queue at switch 1 — plateaus at 55/25",
            w0,
            w1,
            100,
            12,
        )
        .y_max(60.0)
        .series(&q1, '#')
        .render(),
    );
    rep.plots.push(
        Plot::new(
            "Fig 8 (bottom): queue at switch 2 — plateaus at 23",
            w0,
            w1,
            100,
            12,
        )
        .y_max(60.0)
        .series(&q2, '#')
        .render(),
    );
    let svg = td_analysis::SvgPlot::new("Fig 8: fixed windows 30/25, small pipe", w0, w1, 900, 360)
        .y_max(60.0)
        .series("queue 1", "#1f77b4", &q1)
        .series("queue 2", "#ff7f0e", &q2)
        .render();
    rep.blobs.push(("fig8_queues.svg".into(), svg.into_bytes()));

    rep.csvs
        .push(("fig8_queue1.csv".into(), csv::series_csv("qlen", &q1)));
    rep.csvs
        .push(("fig8_queue2.csv".into(), csv::series_csv("qlen", &q2)));
    rep
}

/// Run and evaluate the Figure 9 reproduction (large pipe).
pub fn report_fig9(seed: u64, duration_s: u64) -> Report {
    report_fig9_mode(seed, duration_s, true)
}

/// Figure 9 with an explicit analysis path; see [`report_fig8_mode`].
#[doc(hidden)]
pub fn report_fig9_mode(seed: u64, duration_s: u64, stream: bool) -> Report {
    let mut sc = scenario(seed, duration_s, SimDuration::from_secs(1), 30, 25);
    sc.stream = stream;
    sc.record_trace = !stream;
    let run = sc.run();
    let mut rep = Report::new(
        "fig9",
        "Fixed windows 30/25, tau = 1 s, infinite buffers (paper Fig. 9)",
        &format!(
            "seed {seed}, {duration_s} s simulated, measured after {}",
            run.t0
        ),
    );
    let (q1, q2) = run.queues();

    let q1max = q1.max_in(run.t0, run.t1).unwrap_or(0.0);
    let q2max = q2.max_in(run.t0, run.t1).unwrap_or(0.0);
    rep.check(
        "queue maxima equal",
        "both queues reach the same maximum (~23)",
        format!("{q1max:.0} / {q2max:.0}"),
        (q1max - q2max).abs() <= 4.0,
    );
    // The exact steady-state height depends on the connections' relative
    // start phase (the paper's random start times gave 23; seeds here give
    // 16-23); the paper-robust claims are the *equality* of the two
    // maxima and the utilizations.
    rep.check(
        "queue 1 maximum",
        "~23 (height varies with relative start phase)",
        format!("{q1max:.0}"),
        (14.0..=28.0).contains(&q1max),
    );

    let (u12, u21) = (run.util12(), run.util21());
    rep.check(
        "line 1->2 utilization",
        "0.81 (W1 < W2 + 2P: neither line saturated)",
        format!("{u12:.3}"),
        (0.74..=0.88).contains(&u12),
    );
    rep.check(
        "line 2->1 utilization",
        "0.70",
        format!("{u21:.3}"),
        (0.62..=0.78).contains(&u21),
    );

    let drops = run.drops().len();
    rep.check(
        "packet drops",
        "0 (infinite buffers)",
        format!("{drops}"),
        drops == 0,
    );

    // Alternation pattern in plateau heights: successive local maxima of
    // queue 1 alternate between two levels (paper's note on Fig. 9).
    let samples = q1.resample(run.t0, run.t1, 2000);
    let mut peaks: Vec<f64> = Vec::new();
    for w in samples.windows(3) {
        if w[1] > w[0] && w[1] >= w[2] && w[1] > 5.0 {
            peaks.push(w[1]);
        }
    }
    let distinct = {
        let mut p = peaks.clone();
        p.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        p.dedup();
        p.len()
    };
    rep.info(
        "plateau height variety (queue 1 local maxima)",
        "alternating plateau heights",
        format!("{} peaks at {} distinct heights", peaks.len(), distinct),
    );

    let w0 = run.t0;
    let w1 = (run.t0 + SimDuration::from_secs(60)).min(run.t1);
    rep.plots.push(
        Plot::new("Fig 9 (top): queue at switch 1", w0, w1, 100, 12)
            .y_max(26.0)
            .series(&q1, '#')
            .render(),
    );
    rep.plots.push(
        Plot::new("Fig 9 (bottom): queue at switch 2", w0, w1, 100, 12)
            .y_max(26.0)
            .series(&q2, '#')
            .render(),
    );
    let svg = td_analysis::SvgPlot::new("Fig 9: fixed windows 30/25, large pipe", w0, w1, 900, 360)
        .y_max(26.0)
        .series("queue 1", "#1f77b4", &q1)
        .series("queue 2", "#ff7f0e", &q2)
        .render();
    rep.blobs.push(("fig9_queues.svg".into(), svg.into_bytes()));

    rep.csvs
        .push(("fig9_queue1.csv".into(), csv::series_csv("qlen", &q1)));
    rep.csvs
        .push(("fig9_queue2.csv".into(), csv::series_csv("qlen", &q2)));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_reproduces() {
        let rep = report_fig8(1, 120);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }

    #[test]
    fn fig9_reproduces() {
        let rep = report_fig9(1, 300);
        assert!(rep.all_ok(), "failed checks: {:?}\n{rep}", rep.failures());
    }
}
