//! Cluster-chain scale-out of the §5 four-switch topology (`scale`).
//!
//! The paper's generality check (§5 / \[19\]) ran four switches and 50
//! connections. This experiment grows that unit into a *chain of
//! clusters*: each cluster is the full four-switch topology with its own
//! 1–3-hop traffic pattern, and consecutive clusters are joined by a
//! long-haul trunk whose propagation delay — a prime 10 000 007 ns, so it
//! can never alias the paper's round 10 ms intra-cluster delays — is what
//! the shard partitioner cuts. A slice of connections crosses each
//! long-haul trunk, so the cut carries real two-way TCP traffic rather
//! than being decorative.
//!
//! The full profile runs 10 000+ connections; the quick profile is a
//! two-cluster miniature. Both honor the process-wide
//! [`crate::shards`] setting (`--shards N` on `td-repro` / `td-sim`) and
//! produce **byte-identical reports for every shard count** — the CI
//! determinism job diffs `--shards 2` against serial output. Every
//! rendered row is a pure function of `(seed, profile)`: audit counters,
//! trace-derived series, and an FNV-1a hash over the canonical trace
//! encoding. Wall-clock, shard count, and core count appear nowhere.

use std::cell::RefCell;

use crate::registry::Profile;
use crate::report::Report;
use crate::scenario::DATA_SERVICE;
use td_analysis::{
    compression, queue_series, utilization_in, StreamAnalyzer, StreamMetrics, StreamSpec,
};
use td_core::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};
use td_engine::{Rate, SimDuration, SimRng, SimTime};
use td_net::{
    ChannelId, ConnId, DisciplineKind, FaultModel, LinkSpec, NodeId, ShardedWorld, World,
};

/// Propagation delay of the long-haul trunks joining clusters: prime, so
/// no event-time arithmetic can alias it onto the 10 ms paper delays,
/// and large, so it is always the delay class the partitioner cuts.
pub const LONG_HAUL_DELAY: SimDuration = SimDuration::from_nanos(10_000_007);

/// Topology and traffic dimensions of one scale run.
#[derive(Clone, Copy)]
pub struct ScaleParams {
    /// Number of four-switch clusters in the chain.
    pub clusters: usize,
    /// Intra-cluster connections per cluster (1–3 hop paths, as in §5).
    pub conns_per_cluster: u32,
    /// Connections crossing each long-haul trunk (two-way: alternating
    /// directions).
    pub inter_conns: u32,
    /// Simulated duration, seconds.
    pub duration_s: u64,
    /// Whether to record the packet trace (off at full scale: the trace
    /// would dwarf the simulation itself).
    pub trace: bool,
}

impl ScaleParams {
    /// Dimensions for the given profile. Full: 64 clusters × 156
    /// intra-cluster plus 63 × 4 inter-cluster connections = 10 236 —
    /// past the 10k mark.
    pub fn for_profile(p: Profile) -> ScaleParams {
        match p {
            Profile::Quick => ScaleParams {
                clusters: 2,
                conns_per_cluster: 24,
                inter_conns: 4,
                duration_s: 30,
                trace: true,
            },
            Profile::Full => ScaleParams {
                clusters: 64,
                conns_per_cluster: 156,
                inter_conns: 4,
                duration_s: 60,
                trace: false,
            },
        }
    }

    /// Total connection count.
    pub fn total_conns(&self) -> u64 {
        self.clusters as u64 * u64::from(self.conns_per_cluster)
            + (self.clusters as u64 - 1) * u64::from(self.inter_conns)
    }

    /// Dimensions of the 100k-connection rung (ROADMAP item 1): a
    /// 640-cluster chain, 102 396 connections, trace off, audit on,
    /// streaming metrics only. The quick profile is the 1 s CI smoke run
    /// under the pinned RSS budget (see EXPERIMENTS.md).
    pub fn rung_100k(p: Profile) -> ScaleParams {
        ScaleParams {
            clusters: 640,
            conns_per_cluster: 156,
            inter_conns: 4,
            duration_s: match p {
                Profile::Quick => 1,
                Profile::Full => 5,
            },
            trace: false,
        }
    }

    /// Dimensions of the 1M-connection rung: a 6400-cluster chain,
    /// 6400 × 156 + 6399 × 4 = 1 023 996 connections. Only viable with
    /// the compressed routing tables — a dense per-switch map at this
    /// scale would cost tens of GiB before the first packet moves. Trace
    /// off, streaming metrics only, same shape as [`rung_100k`].
    pub fn rung_1m(p: Profile) -> ScaleParams {
        ScaleParams {
            clusters: 6400,
            conns_per_cluster: 156,
            inter_conns: 4,
            duration_s: match p {
                Profile::Quick => 1,
                Profile::Full => 5,
            },
            trace: false,
        }
    }
}

/// Channel ids the report reads, captured while building.
pub struct ScaleMap {
    /// Middle intra-cluster trunk of cluster 0, forward direction.
    pub probe_trunk: ChannelId,
    /// First long-haul trunk (cluster 0 → 1), forward direction
    /// (`None` for a single-cluster chain).
    pub long_haul: Option<ChannelId>,
}

/// Build the cluster chain into `w` and attach all connections. Pure
/// function of `(seed, params)` — called once per shard replica by
/// [`ShardedWorld::build`], so it must stay deterministic.
pub fn build_chain(w: &mut World, seed: u64, p: &ScaleParams) -> ScaleMap {
    let host_link = LinkSpec::paper_host_link();
    let trunk = LinkSpec::paper_bottleneck(SimDuration::from_millis(10), Some(30));
    let long_haul = LinkSpec {
        rate: Rate::from_kbps(200),
        delay: LONG_HAUL_DELAY,
        capacity: Some(50),
        discipline: DisciplineKind::DropTail,
        fault: FaultModel::NONE,
    };

    let mut hosts: Vec<[NodeId; 4]> = Vec::with_capacity(p.clusters);
    let mut probe_trunk = None;
    let mut long_haul_ch = None;
    let mut prev_tail: Option<NodeId> = None;
    for c in 0..p.clusters {
        let mut sw = [NodeId(0); 4];
        let mut hs = [NodeId(0); 4];
        for j in 0..4 {
            sw[j] = w.add_switch(&format!("c{c}s{j}"));
            hs[j] = w.add_host(&format!("c{c}h{j}"), SimDuration::from_micros(100));
            host_link.add_between(w, hs[j], sw[j]);
        }
        for j in 0..3 {
            let (right, _) = trunk.add_between(w, sw[j], sw[j + 1]);
            if c == 0 && j == 1 {
                probe_trunk = Some(right);
            }
        }
        if let Some(tail) = prev_tail {
            let (right, _) = long_haul.add_between(w, tail, sw[0]);
            if long_haul_ch.is_none() {
                long_haul_ch = Some(right);
            }
        }
        prev_tail = Some(sw[3]);
        hosts.push(hs);
    }
    w.compute_routes();
    // The chain is fully connected by construction; fail loudly at build
    // time if a wiring regression ever partitions it.
    w.validate_routes();

    // Traffic. Start times are jittered from a seed-derived stream that is
    // independent of the world RNG, so attachment stays shard-invariant.
    let mut rng = SimRng::new(seed).derive(0x5CA1_E000);
    let mut next_conn = 0u32;
    let mut attach_pair = |w: &mut World, src: NodeId, dst: NodeId, rng: &mut SimRng| {
        let conn = ConnId(next_conn);
        next_conn += 1;
        let s = w.attach(src, dst, conn, TcpSender::boxed(SenderConfig::paper()));
        w.attach(dst, src, conn, TcpReceiver::boxed(ReceiverConfig::paper()));
        w.start_at(s, SimTime::from_nanos(rng.next_below(1_000_000_000)));
    };
    for (c, hs) in hosts.iter().enumerate() {
        for i in 0..p.conns_per_cluster {
            let hops = 1 + (i as usize % 3);
            let start = rng.next_below((4 - hops) as u64) as usize;
            let (src, dst) = if i % 2 == 0 {
                (hs[start], hs[start + hops])
            } else {
                (hs[start + hops], hs[start])
            };
            attach_pair(w, src, dst, &mut rng);
        }
        if c + 1 < p.clusters {
            for i in 0..p.inter_conns {
                // Tail host of this cluster ↔ head host of the next, in
                // alternating directions: two-way traffic over the cut.
                let (src, dst) = if i % 2 == 0 {
                    (hs[3], hosts_head(&hosts, c + 1, p))
                } else {
                    (hosts_head(&hosts, c + 1, p), hs[3])
                };
                attach_pair(w, src, dst, &mut rng);
            }
        }
    }

    ScaleMap {
        probe_trunk: probe_trunk.expect("cluster 0 has a middle trunk"),
        long_haul: long_haul_ch,
    }
}

/// Head host of cluster `c + 1`. The `hosts` vec is filled cluster by
/// cluster, but host *node ids* are assigned during construction, so the
/// next cluster's entry already exists by the time inter-cluster
/// connections are attached — guarded here for clarity.
fn hosts_head(hosts: &[[NodeId; 4]], next: usize, p: &ScaleParams) -> NodeId {
    debug_assert!(next < p.clusters);
    hosts[next][0]
}

/// FNV-1a over a byte stream — the workspace's stable golden-hash
/// function.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Build and run the chain at the process-wide shard count, returning
/// the finished sharded world and the probe channel map.
pub fn run_chain(seed: u64, p: &ScaleParams) -> (ShardedWorld, ScaleMap, SimTime, SimTime) {
    let (sw, map, t0, t1, _) = run_chain_mode(seed, p, false);
    (sw, map, t0, t1)
}

/// [`run_chain`] with optional streaming metrics: when `stream` is set,
/// one [`StreamAnalyzer`] rides each shard (canonical-ties mode, so its
/// folds see same-instant records in merged-trace order) and the merged
/// metrics come back alongside the world. This is what lets the trace-off
/// profiles measure the probe-trunk fluctuation and long-haul utilization
/// without storing a single trace record.
pub fn run_chain_mode(
    seed: u64,
    p: &ScaleParams,
    stream: bool,
) -> (
    ShardedWorld,
    ScaleMap,
    SimTime,
    SimTime,
    Option<StreamMetrics>,
) {
    let map_cell: RefCell<Option<ScaleMap>> = RefCell::new(None);
    let mut sw = ShardedWorld::build(seed, crate::shards(), |w| {
        let m = build_chain(w, seed, p);
        map_cell.borrow_mut().get_or_insert(m);
    });
    sw.set_trace_enabled(p.trace);
    let map = map_cell.into_inner().expect("builder ran at least once");
    let t1 = SimTime::from_secs(p.duration_s);
    let t0 = SimTime::from_secs(p.duration_s / 5);
    if stream {
        let mut spec = StreamSpec::new().queue(map.probe_trunk).canonical_ties();
        if let Some(lh) = map.long_haul {
            spec = spec.utilization(lh, t0, t1);
        }
        sw.add_observers(|_| Box::new(StreamAnalyzer::new(&spec)));
    }
    sw.run_until(t1);
    let metrics = if stream {
        let parts = sw
            .take_observers()
            .into_iter()
            .map(|o| {
                *o.into_any()
                    .downcast::<StreamAnalyzer>()
                    .expect("scale observers are StreamAnalyzers")
            })
            .collect();
        Some(StreamAnalyzer::merge(parts).finish())
    } else {
        None
    };
    (sw, map, t0, t1, metrics)
}

/// Run and evaluate the scale experiment.
pub fn report(seed: u64, profile: Profile) -> Report {
    report_mode(seed, profile, true)
}

/// The scale report with an explicit analysis path; `stream = false` is
/// the legacy batch-from-trace path (kept alive by the parity suite).
#[doc(hidden)]
pub fn report_mode(seed: u64, profile: Profile, stream: bool) -> Report {
    let p = ScaleParams::for_profile(profile);
    report_params(
        seed,
        &p,
        stream,
        "tbl-scale",
        "Cluster chain of §5 four-switch units (sharded executor)",
    )
}

/// The 100k-connection rung: [`ScaleParams::rung_100k`] rendered under
/// its own id. Hidden from `--all` (it is a resource-budget drill, not a
/// paper claim) but addressable via `td-repro --only scale100k`.
pub fn report_100k(seed: u64, profile: Profile) -> Report {
    let p = ScaleParams::rung_100k(profile);
    report_params(
        seed,
        &p,
        true,
        "scale100k",
        "100k-connection rung: 640-cluster chain, trace off, streaming metrics",
    )
}

/// The 1M-connection rung: [`ScaleParams::rung_1m`] rendered under its
/// own id. Hidden from `--all` like `scale100k`; addressable via
/// `td-repro --only scale1m`. This is the rung the compressed routing
/// tables exist for — its CI job runs under a hard `ulimit -v`.
pub fn report_1m(seed: u64, profile: Profile) -> Report {
    let p = ScaleParams::rung_1m(profile);
    report_params(
        seed,
        &p,
        true,
        "scale1m",
        "1M-connection rung: 6400-cluster chain, trace off, streaming metrics",
    )
}

fn report_params(seed: u64, p: &ScaleParams, stream: bool, id: &str, title: &str) -> Report {
    let (sw, map, t0, t1, metrics) = run_chain_mode(seed, p, stream);
    let mut rep = Report::new(
        id,
        title,
        &format!(
            "seed {seed}, {} clusters, {} connections, {} s simulated",
            p.clusters,
            p.total_conns(),
            p.duration_s
        ),
    );

    let audit = sw.audit();
    rep.check(
        "packets delivered",
        "traffic flows at scale",
        format!("{}", audit.delivered()),
        audit.delivered() > 0,
    );
    rep.check(
        "invariant violations",
        "0",
        format!("{}", audit.total_violations()),
        audit.total_violations() == 0,
    );
    rep.info("packets injected", "-", format!("{}", audit.injected()));
    rep.info("packets dropped", "-", format!("{}", audit.dropped()));
    rep.info(
        "events dispatched",
        "-",
        format!("{}", sw.events_dispatched()),
    );
    rep.metric("connections", p.total_conns() as f64);
    rep.metric("delivered", audit.delivered() as f64);
    rep.metric("dropped", audit.dropped() as f64);

    // Route-memory accounting, reported on the resource-budget rungs
    // (scale100k / scale1m) where CI gates the compression ratio. Both
    // figures come from shard replica 0, so they are shard-invariant and
    // the rows survive the serial-vs-sharded determinism diff.
    if id.starts_with("scale") {
        let compressed = sw.route_table_bytes();
        let dense = sw.dense_route_bytes();
        rep.info(
            "route table bytes (compressed / dense)",
            "-",
            format!(
                "{compressed} / {dense} ({:.0}x)",
                dense as f64 / compressed.max(1) as f64
            ),
        );
        rep.metric("route_table_bytes", compressed as f64);
        rep.metric("route_table_dense_bytes", dense as f64);
    }

    // §5's signature phenomenon survives inside a cluster — measured
    // online when streaming, from the stored trace otherwise. The two
    // paths are byte-identical (pinned by the parity suite), so with
    // streaming on the check now also runs on trace-off profiles.
    let qs = match &metrics {
        Some(m) => Some(m.queue(map.probe_trunk).clone()),
        None if p.trace => Some(queue_series(sw.trace(), map.probe_trunk)),
        None => None,
    };
    if let Some(qs) = &qs {
        let fl = compression::queue_fluctuation(qs, t0, t1, DATA_SERVICE);
        // Connections start with up to 1 s of jitter, so sub-5 s smoke
        // runs (the 100k CI rung) haven't reached steady-state dynamics
        // yet: report the number without passing judgement on it.
        if p.duration_s >= 5 {
            rep.check(
                "cluster-0 middle-trunk queue fluctuation",
                "rapid fluctuations (ACK compression, §5)",
                format!("{fl:.0} packets per service time"),
                fl >= 3.0,
            );
        } else {
            rep.info(
                "cluster-0 middle-trunk queue fluctuation",
                "-",
                format!("{fl:.0} packets per service time (window too short to judge)"),
            );
        }
    }
    if let Some(lh) = map.long_haul {
        let u = match &metrics {
            Some(m) => Some(m.utilization(lh)),
            None if p.trace => Some(utilization_in(sw.trace(), lh, t0, t1)),
            None => None,
        };
        if let Some(u) = u {
            rep.check(
                "first long-haul trunk utilization",
                "cut carries real traffic",
                format!("{u:.3}"),
                u > 0.05,
            );
        }
    }
    if p.trace {
        // Golden hash over the canonical trace encoding: equal for every
        // shard count, pinned by the shard-determinism CI job.
        let h = fnv1a(
            sw.trace()
                .records()
                .iter()
                .flat_map(|r| r.t.as_nanos().to_le_bytes()),
        );
        rep.info("merged trace FNV-1a (times)", "-", format!("{h:#018x}"));
    } else {
        rep.diagnostic(format!(
            "trace disabled at {} connections; audit counters and streamed \
             metrics above are the deterministic surface",
            p.total_conns()
        ));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick-profile report must not depend on the shard count —
    /// this is the in-process version of the CI determinism diff.
    #[test]
    fn quick_report_is_shard_invariant() {
        crate::set_shards(1);
        let serial = report(5, Profile::Quick);
        crate::set_shards(2);
        let sharded = report(5, Profile::Quick);
        crate::set_shards(1);
        assert_eq!(serial.to_string(), sharded.to_string());
        assert_eq!(serial.markdown_table(), sharded.markdown_table());
        assert!(serial.all_ok(), "scale quick checks failed: {serial}");
    }

    /// Streaming folds must reproduce the batch-from-trace rows byte for
    /// byte on the sharded chain (trace on, both paths live), at more
    /// than one shard count — this is where canonical-ties buffering
    /// earns its keep.
    #[test]
    fn quick_report_stream_matches_batch() {
        for shards in [1, 2] {
            crate::set_shards(shards);
            let batch = report_mode(7, Profile::Quick, false);
            let stream = report_mode(7, Profile::Quick, true);
            crate::set_shards(1);
            assert_eq!(
                batch.to_string(),
                stream.to_string(),
                "scale stream/batch divergence at {shards} shard(s)"
            );
            assert_eq!(batch.metrics, stream.metrics);
        }
    }
}
