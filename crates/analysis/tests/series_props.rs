//! Property tests for the step-function time series, over randomized
//! change-point sets generated from the engine's deterministic [`SimRng`]
//! (one fixed seed per case — no external test-framework dependency).

use td_analysis::TimeSeries;
use td_engine::{SimRng, SimTime};

/// Sorted (time, value) change points, 1..80 of them.
fn points(rng: &mut SimRng) -> Vec<(SimTime, f64)> {
    let len = rng.next_range(1, 79) as usize;
    let mut v: Vec<(u64, f64)> = (0..len)
        .map(|_| (rng.next_below(1_000_000), rng.next_f64() * 2000.0 - 1000.0))
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    v.into_iter()
        .map(|(t, x)| (SimTime::from_micros(t), x))
        .collect()
}

/// A window `[a, a + b)` with b ≥ 1 µs.
fn window(rng: &mut SimRng) -> (SimTime, SimTime) {
    let a = rng.next_below(1_000_000);
    let b = rng.next_range(1, 999_999);
    (SimTime::from_micros(a), SimTime::from_micros(a + b))
}

/// The time-weighted mean always lies within [min, max] of the window.
#[test]
fn mean_bounded_by_extrema() {
    for case in 0..256u64 {
        let mut rng = SimRng::new(0x005E_81E5 + case);
        let pts = points(&mut rng);
        let ts = TimeSeries::from_points(pts);
        let (t0, t1) = window(&mut rng);
        if let Some(m) = ts.mean_in(t0, t1) {
            // The mean may also involve the first value extended backwards,
            // so bound by the global extrema as well as the window's.
            let lo = ts
                .min_in(t0, t1)
                .unwrap_or(f64::INFINITY)
                .min(ts.points()[0].1);
            let hi = ts
                .max_in(t0, t1)
                .unwrap_or(f64::NEG_INFINITY)
                .max(ts.points()[0].1);
            assert!(
                m >= lo - 1e-9 && m <= hi + 1e-9,
                "case {case}: mean {m} outside [{lo}, {hi}]"
            );
        }
    }
}

/// value_at agrees with a linear scan of the change points.
#[test]
fn value_at_matches_scan() {
    for case in 0..256u64 {
        let mut rng = SimRng::new(0x0005_CA11 + case);
        let pts = points(&mut rng);
        let ts = TimeSeries::from_points(pts.clone());
        let t = SimTime::from_micros(rng.next_below(1_200_000));
        let expected = pts.iter().rev().find(|&&(pt, _)| pt <= t).map(|&(_, v)| v);
        assert_eq!(ts.value_at(t), expected, "case {case}");
    }
}

/// Resampling returns exactly n values, all of which occur in the series
/// (or are the first value).
#[test]
fn resample_values_come_from_series() {
    for case in 0..256u64 {
        let mut rng = SimRng::new(0x8E5A_3F1E + case);
        let pts = points(&mut rng);
        let n = rng.next_range(1, 49) as usize;
        let ts = TimeSeries::from_points(pts.clone());
        let t1 = pts.last().unwrap().0;
        let out = ts.resample(SimTime::ZERO, t1, n);
        assert_eq!(out.len(), n, "case {case}");
        for v in out {
            assert!(
                pts.iter().any(|&(_, x)| x == v),
                "case {case}: resampled {v} not a point value"
            );
        }
    }
}

/// max_in ≥ min_in whenever both exist, and both are attained values.
#[test]
fn extrema_consistent() {
    for case in 0..256u64 {
        let mut rng = SimRng::new(0x0E87_8E3A + case);
        let pts = points(&mut rng);
        let ts = TimeSeries::from_points(pts.clone());
        let (t0, t1) = window(&mut rng);
        match (ts.min_in(t0, t1), ts.max_in(t0, t1)) {
            (Some(lo), Some(hi)) => {
                assert!(lo <= hi, "case {case}");
                assert!(pts.iter().any(|&(_, v)| v == lo), "case {case}");
                assert!(pts.iter().any(|&(_, v)| v == hi), "case {case}");
            }
            (None, None) => {}
            other => panic!("case {case}: mismatched extrema {other:?}"),
        }
    }
}
