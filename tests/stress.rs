//! Long-haul stress runs, ignored by default (`cargo test -- --ignored`).
//!
//! These push well past the paper's configurations — more connections,
//! longer horizons, adversarial buffers, fault injection — and assert the
//! global invariants still hold. CI runs the quick suite; these are for
//! release qualification.

use tahoe_dynamics::engine::{Rate, SimDuration, SimTime};
use tahoe_dynamics::experiments::{ConnSpec, Scenario};
use tahoe_dynamics::net::{ConnId, DisciplineKind, FaultModel, World};
use tahoe_dynamics::tcp::{ReceiverConfig, SenderConfig, TcpReceiver, TcpSender};

#[test]
#[ignore = "long-haul stress; run with --ignored"]
fn twenty_connections_for_an_hour() {
    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(30))
        .with_fwd(10, ConnSpec::paper())
        .with_rev(10, ConnSpec::paper());
    sc.duration = SimDuration::from_secs(3600);
    sc.warmup = SimDuration::from_secs(600);
    let run = sc.run();
    for conn in run.conns() {
        let rx = run.receiver(conn);
        assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
        assert!(rx.stats().delivered > 500, "conn {conn:?} starved");
    }
    let drops = run.drops();
    let data = drops.iter().filter(|d| d.is_data).count();
    assert!(data as f64 / drops.len() as f64 > 0.99);
    assert!(run.util12() > 0.7 && run.util21() > 0.7);
}

#[test]
#[ignore = "long-haul stress; run with --ignored"]
fn heavy_fault_injection_never_wedges() {
    // 15 % loss both ways for an hour: progress must continue and the
    // stream must stay contiguous.
    let mut w = World::new(99);
    let a = w.add_host("a", SimDuration::from_micros(100));
    let b = w.add_host("b", SimDuration::from_micros(100));
    for (x, y) in [(a, b), (b, a)] {
        w.add_channel(
            x,
            y,
            Rate::from_kbps(50),
            SimDuration::from_millis(10),
            Some(20),
            DisciplineKind::DropTail.build(),
            FaultModel::lossy(0.15),
        );
    }
    let s = w.attach(a, b, ConnId(0), TcpSender::boxed(SenderConfig::paper()));
    let r = w.attach(b, a, ConnId(0), TcpReceiver::boxed(ReceiverConfig::paper()));
    w.start_at(s, SimTime::ZERO);
    w.run_until(SimTime::from_secs(3600));
    let rx = w
        .endpoint(r)
        .unwrap()
        .as_any()
        .downcast_ref::<TcpReceiver>()
        .unwrap();
    assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
    assert!(
        rx.stats().delivered > 5000,
        "delivered {}",
        rx.stats().delivered
    );
}

#[test]
#[ignore = "long-haul stress; run with --ignored"]
fn fixed_window_runs_stay_strictly_periodic() {
    // The fig8 square wave must not drift over a very long horizon: the
    // autocorrelation at its (measured) dominant period must stay
    // essentially perfect both early and late in the run.
    use tahoe_dynamics::analysis::{autocorrelation, dominant_period};
    use tahoe_dynamics::experiments::fig89;
    let run = fig89::scenario(1, 2000, SimDuration::from_millis(10), 30, 25).run();
    let q1 = run.queue1();
    for t0_s in [500u64, 1800] {
        let t0 = SimTime::from_secs(t0_s);
        let t1 = SimTime::from_secs(t0_s + 100);
        let period =
            dominant_period(&q1, t0, t1, 4000, 0.5).expect("square wave must register a period");
        assert!(
            (1.0..=10.0).contains(&period),
            "implausible period {period} s"
        );
        // Peak autocorrelation at the period ≈ 1: no drift, no decay.
        let xs = q1.resample(t0, t1, 4000);
        let lag = (period / 100.0 * 4000.0).round() as usize;
        let ac = autocorrelation(&xs, lag + 2);
        assert!(
            ac[lag] > 0.90,
            "window at {t0_s}s: correlation {} at the {period:.2}s period",
            ac[lag]
        );
    }
}
