//! Thread-local snapshot/restore counters for the experiment harness.
//!
//! [`crate::World::snapshot`] and [`crate::World::restore`] tick these so
//! the runner can surface checkpoint activity (including watchdog
//! post-mortem dumps) in `timings.json` without threading a counter
//! through every call site. Same discipline as [`crate::audit`]'s tally
//! and `td_engine::telemetry`: reset before a task, take after, merge
//! helper-thread deltas with [`absorb`].

use std::cell::Cell;

/// Snapshot activity on one thread since the last [`reset_thread`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapCounters {
    /// Worlds serialized ([`crate::World::snapshot`] calls).
    pub taken: u64,
    /// Worlds deserialized ([`crate::World::restore`] calls that
    /// succeeded).
    pub restored: u64,
}

thread_local! {
    static TAKEN: Cell<u64> = const { Cell::new(0) };
    static RESTORED: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn on_snapshot() {
    TAKEN.with(|c| c.set(c.get() + 1));
}

pub(crate) fn on_restore() {
    RESTORED.with(|c| c.set(c.get() + 1));
}

/// Clear this thread's counters (harness: before running a task).
pub fn reset_thread() {
    TAKEN.with(|c| c.set(0));
    RESTORED.with(|c| c.set(0));
}

/// Take this thread's counters, leaving them zero (harness: after a task).
pub fn take_thread() -> SnapCounters {
    SnapCounters {
        taken: TAKEN.with(|c| c.replace(0)),
        restored: RESTORED.with(|c| c.replace(0)),
    }
}

/// Fold a helper thread's counters into this thread's (harness:
/// `parallel_map` merging metered deltas back into the caller).
pub fn absorb(delta: SnapCounters) {
    TAKEN.with(|c| c.set(c.get() + delta.taken));
    RESTORED.with(|c| c.set(c.get() + delta.restored));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_take_absorb_roundtrip() {
        reset_thread();
        on_snapshot();
        on_snapshot();
        on_restore();
        let a = take_thread();
        assert_eq!(
            a,
            SnapCounters {
                taken: 2,
                restored: 1
            }
        );
        assert_eq!(take_thread(), SnapCounters::default(), "take leaves zero");
        on_snapshot();
        absorb(a);
        assert_eq!(
            take_thread(),
            SnapCounters {
                taken: 3,
                restored: 1
            }
        );
    }
}
