//! Always-on runtime invariant auditor.
//!
//! Every [`crate::World`] carries an [`Audit`]: a set of cheap online
//! checks of the simulation's own bookkeeping —
//!
//! * **packet conservation**: every injected packet is eventually
//!   delivered, dropped, or still in the network (checked exactly at
//!   quiescence, monotonically while running);
//! * **monotone cumulative ACKs**: the ACK sequence a host emits for one
//!   connection never goes backwards;
//! * **window bounds**: cwnd samples are finite, positive, and within the
//!   registered `maxwnd`; ssthresh is finite and non-negative;
//! * **queue occupancy** never exceeds a channel's capacity.
//!
//! Violations become structured [`AuditViolation`]s, *not* panics: a
//! corrupted run completes and reports what went wrong (the experiment
//! runner surfaces them through `timings.json`). The checks are passive —
//! no events, no randomness, no trace records — so an audited run is
//! byte-identical to an unaudited one.
//!
//! A thread-local tally mirrors each world's violations so the experiment
//! harness can meter tasks the same way it meters
//! [`td_engine::telemetry`]: reset before a task, take after, merge
//! helper-thread deltas.

use crate::packet::{ConnId, NodeId};
use crate::world::ChannelId;
use std::cell::RefCell;
use std::collections::HashMap;
use td_engine::SimTime;

/// Keep the first this-many violation records (the count keeps rising).
pub const MAX_RECORDED: usize = 32;

/// Which invariant a violation broke.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Invariant {
    /// injected = delivered + dropped + in-flight.
    PacketConservation,
    /// Cumulative ACK sequence regressed.
    MonotoneAck,
    /// cwnd/ssthresh out of bounds.
    WindowBound,
    /// Buffer occupancy exceeded capacity.
    QueueOccupancy,
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Invariant::PacketConservation => "packet-conservation",
            Invariant::MonotoneAck => "monotone-ack",
            Invariant::WindowBound => "window-bound",
            Invariant::QueueOccupancy => "queue-occupancy",
        };
        f.write_str(s)
    }
}

/// One structured invariant violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuditViolation {
    /// Simulation time of the offending observation.
    pub t: SimTime,
    /// The invariant broken.
    pub invariant: Invariant,
    /// Human-readable specifics.
    pub detail: String,
}

impl AuditViolation {
    /// One-line rendering, used for diagnostics and `timings.json`.
    pub fn render(&self) -> String {
        format!(
            "[{}] t={:.6}s {}",
            self.invariant,
            self.t.as_secs_f64(),
            self.detail
        )
    }
}

/// The per-world auditor state. Owned by [`crate::World`]; experiments
/// read it back through [`crate::World::audit`].
#[derive(Clone, Default)]
pub struct Audit {
    injected: u64,
    delivered: u64,
    dropped: u64,
    /// Highest ACK sequence seen per (connection, emitting host).
    last_ack: HashMap<(ConnId, NodeId), u64>,
    /// Registered cwnd upper bound per connection (sender `maxwnd`).
    window_bounds: HashMap<ConnId, f64>,
    violations: Vec<AuditViolation>,
    total: u64,
    /// Conservation is flagged at most once: a broken counter would
    /// otherwise flood the record with one violation per delivery.
    conservation_flagged: bool,
    /// This auditor covers one shard of a sharded run: packets crossing
    /// shard borders are injected on one auditor and delivered on
    /// another, so per-shard conservation checks are disabled. The
    /// sharded executor checks conservation on the merged counters
    /// instead. Structural (set before running), so not serialized.
    distributed: bool,
}

impl Audit {
    /// Record a violation (first [`MAX_RECORDED`] kept; count unbounded),
    /// mirrored into the thread-local tally for the harness.
    fn record(&mut self, t: SimTime, invariant: Invariant, detail: String) {
        let v = AuditViolation {
            t,
            invariant,
            detail,
        };
        record_thread(&v);
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(v);
        }
    }

    /// A packet entered the network (endpoint send or fault duplication).
    pub(crate) fn on_inject(&mut self) {
        self.injected += 1;
    }

    /// A packet was discarded (buffer, AQM, fault, or outage).
    pub(crate) fn on_drop(&mut self) {
        self.dropped += 1;
    }

    /// A packet reached an endpoint. Checks the running conservation
    /// inequality: accounted packets can never exceed injected ones.
    pub(crate) fn on_deliver(&mut self, t: SimTime) {
        self.delivered += 1;
        if !self.distributed
            && !self.conservation_flagged
            && self.delivered + self.dropped > self.injected
        {
            self.conservation_flagged = true;
            self.record(
                t,
                Invariant::PacketConservation,
                format!(
                    "delivered {} + dropped {} > injected {}",
                    self.delivered, self.dropped, self.injected
                ),
            );
        }
    }

    /// An ACK left a host: its cumulative sequence must not regress.
    pub(crate) fn on_ack_send(&mut self, t: SimTime, conn: ConnId, host: NodeId, seq: u64) {
        match self.last_ack.get_mut(&(conn, host)) {
            Some(prev) if seq < *prev => {
                let prev = *prev;
                self.record(
                    t,
                    Invariant::MonotoneAck,
                    format!(
                        "conn {} host {} ack regressed {prev} -> {seq}",
                        conn.0, host.0
                    ),
                );
            }
            Some(prev) => *prev = seq,
            None => {
                self.last_ack.insert((conn, host), seq);
            }
        }
    }

    /// A cwnd sample was emitted. Checked against the registered bound
    /// (if any) and basic sanity (finite, positive; ssthresh finite,
    /// non-negative).
    pub(crate) fn on_cwnd(&mut self, t: SimTime, conn: ConnId, cwnd: f64, ssthresh: f64) {
        if !cwnd.is_finite() || cwnd <= 0.0 {
            self.record(
                t,
                Invariant::WindowBound,
                format!("conn {} cwnd = {cwnd} is not finite-positive", conn.0),
            );
        } else if let Some(&bound) = self.window_bounds.get(&conn) {
            // The usable window is ⌊min(cwnd, maxwnd)⌋: the integer part
            // of cwnd is clamped at maxwnd while congestion avoidance
            // keeps accumulating the fractional increment, so the raw
            // variable legitimately sits in [maxwnd, maxwnd + 1). Only a
            // full packet beyond the cap is a broken clamp.
            if cwnd >= bound + 1.0 {
                self.record(
                    t,
                    Invariant::WindowBound,
                    format!("conn {} cwnd {cwnd} exceeds maxwnd {bound} + 1", conn.0),
                );
            }
        }
        if !ssthresh.is_finite() || ssthresh < 0.0 {
            self.record(
                t,
                Invariant::WindowBound,
                format!(
                    "conn {} ssthresh = {ssthresh} is not finite-nonnegative",
                    conn.0
                ),
            );
        }
    }

    /// A packet was accepted into a buffer; occupancy must respect
    /// capacity.
    pub(crate) fn on_enqueue(
        &mut self,
        t: SimTime,
        ch: ChannelId,
        occupancy: u32,
        capacity: Option<u32>,
    ) {
        if let Some(cap) = capacity {
            if occupancy > cap {
                self.record(
                    t,
                    Invariant::QueueOccupancy,
                    format!("channel {} occupancy {occupancy} > capacity {cap}", ch.0),
                );
            }
        }
    }

    /// The event queue drained: conservation must now hold exactly, with
    /// `in_network` the packets still buffered in channels and host
    /// processing queues.
    pub(crate) fn on_quiescent(&mut self, t: SimTime, in_network: u64) {
        if self.distributed {
            return;
        }
        if self.delivered + self.dropped + in_network != self.injected {
            self.record(
                t,
                Invariant::PacketConservation,
                format!(
                    "at quiescence: injected {} != delivered {} + dropped {} + in-network {}",
                    self.injected, self.delivered, self.dropped, in_network
                ),
            );
        }
    }

    /// Register the cwnd upper bound of a connection (its sender's
    /// `maxwnd`). Samples at or above `maxwnd + 1` are flagged — the raw
    /// variable may carry a sub-packet fractional overshoot while its
    /// integer part is clamped.
    pub(crate) fn set_window_bound(&mut self, conn: ConnId, maxwnd: f64) {
        self.window_bounds.insert(conn, maxwnd);
    }

    /// Switch this auditor into distributed (per-shard) mode; see the
    /// `distributed` field.
    pub(crate) fn set_distributed(&mut self) {
        self.distributed = true;
    }

    /// Fold one shard's auditor into this (merged) one: counters add,
    /// ACK high-water marks union by max, window bounds union, recorded
    /// violations concatenate (canonicalized by
    /// [`Audit::finalize_merge`]). Direct field arithmetic, never
    /// [`Audit::record`]: the shard already mirrored its violations into
    /// the thread tally when they happened.
    pub(crate) fn merge_from(&mut self, other: &Audit) {
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        for (&key, &seq) in &other.last_ack {
            let e = self.last_ack.entry(key).or_insert(seq);
            *e = (*e).max(seq);
        }
        for (&conn, &bound) in &other.window_bounds {
            self.window_bounds.insert(conn, bound);
        }
        self.violations.extend(other.violations.iter().cloned());
        self.total += other.total;
        self.conservation_flagged |= other.conservation_flagged;
    }

    /// Canonicalize a merged auditor: violations in `(t, invariant,
    /// detail)` order — a shard-count-independent order, unlike the
    /// interleaving-dependent order they were observed in — truncated to
    /// the recording cap.
    pub(crate) fn finalize_merge(&mut self) {
        fn tag(i: Invariant) -> u8 {
            match i {
                Invariant::PacketConservation => 0,
                Invariant::MonotoneAck => 1,
                Invariant::WindowBound => 2,
                Invariant::QueueOccupancy => 3,
            }
        }
        self.violations.sort_by(|a, b| {
            (a.t, tag(a.invariant), &a.detail).cmp(&(b.t, tag(b.invariant), &b.detail))
        });
        self.violations.truncate(MAX_RECORDED);
    }

    /// Global conservation over merged counters, checked at the end of a
    /// sharded run. The run stops at a time bound, not at quiescence, so
    /// in-flight packets are unaccounted and only the inequality
    /// `delivered + dropped ≤ injected` must hold.
    pub(crate) fn check_merged_conservation(&mut self, t: SimTime) {
        if !self.conservation_flagged && self.delivered + self.dropped > self.injected {
            self.conservation_flagged = true;
            self.record(
                t,
                Invariant::PacketConservation,
                format!(
                    "merged: delivered {} + dropped {} > injected {}",
                    self.delivered, self.dropped, self.injected
                ),
            );
        }
    }

    /// Packets injected so far (sends + fault duplications).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Packets delivered to endpoints so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets dropped so far (any reason).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Recorded violations (first [`MAX_RECORDED`]; see
    /// [`Audit::total_violations`] for the full count).
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Total violations observed, including any beyond the recording cap.
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Serialize the auditor (snapshot support). Maps are written in
    /// sorted key order so the byte stream is deterministic.
    pub(crate) fn save_state(&self, w: &mut td_engine::SnapWriter) {
        w.write_u64(self.injected);
        w.write_u64(self.delivered);
        w.write_u64(self.dropped);
        let mut acks: Vec<_> = self.last_ack.iter().collect();
        acks.sort_by_key(|((c, n), _)| (c.0, n.0));
        w.write_u64(acks.len() as u64);
        for ((c, n), seq) in acks {
            w.write_u32(c.0);
            w.write_u32(n.0);
            w.write_u64(*seq);
        }
        let mut bounds: Vec<_> = self.window_bounds.iter().collect();
        bounds.sort_by_key(|(c, _)| c.0);
        w.write_u64(bounds.len() as u64);
        for (c, b) in bounds {
            w.write_u32(c.0);
            w.write_f64(*b);
        }
        w.write_u64(self.violations.len() as u64);
        for v in &self.violations {
            w.write_time(v.t);
            w.write_u8(match v.invariant {
                Invariant::PacketConservation => 0,
                Invariant::MonotoneAck => 1,
                Invariant::WindowBound => 2,
                Invariant::QueueOccupancy => 3,
            });
            w.write_str(&v.detail);
        }
        w.write_u64(self.total);
        w.write_bool(self.conservation_flagged);
    }

    /// Stream the *behavioral* subset of the auditor into a canonical
    /// state encoding (see `World::state_hash`): the packet balance
    /// still in the network (not the absolute totals — two histories
    /// with different throughput but identical in-flight packets behave
    /// identically), the protocol-visible ACK high-water marks and
    /// window bounds (sorted, like [`Audit::save_state`]), and the
    /// conservation latch. Recorded violations and their count are
    /// reporting, not state, and are excluded.
    pub(crate) fn write_canonical(&self, w: &mut td_engine::SnapWriter) {
        w.write_i64(self.injected as i64 - self.delivered as i64 - self.dropped as i64);
        let mut acks: Vec<_> = self.last_ack.iter().collect();
        acks.sort_by_key(|((c, n), _)| (c.0, n.0));
        w.write_u64(acks.len() as u64);
        for ((c, n), seq) in acks {
            w.write_u32(c.0);
            w.write_u32(n.0);
            w.write_u64(*seq);
        }
        let mut bounds: Vec<_> = self.window_bounds.iter().collect();
        bounds.sort_by_key(|(c, _)| c.0);
        w.write_u64(bounds.len() as u64);
        for (c, b) in bounds {
            w.write_u32(c.0);
            w.write_f64(*b);
        }
        w.write_bool(self.conservation_flagged);
    }

    /// Restore state written by [`Audit::save_state`].
    ///
    /// Fields are assigned directly, never through [`Audit::record`]:
    /// replaying captured violations must not re-mirror them into the
    /// thread-local tally the experiment harness meters.
    pub(crate) fn load_state(
        &mut self,
        r: &mut td_engine::SnapReader<'_>,
    ) -> Result<(), td_engine::SnapError> {
        self.injected = r.read_u64()?;
        self.delivered = r.read_u64()?;
        self.dropped = r.read_u64()?;
        let n_acks = r.read_u64()?;
        // Capacity bounded by the bytes that could actually encode the
        // entries (each costs ≥ 16 bytes), so a corrupt count fails on
        // a read instead of attempting a huge allocation.
        self.last_ack = HashMap::with_capacity((n_acks as usize).min(r.remaining()));
        for _ in 0..n_acks {
            let c = ConnId(r.read_u32()?);
            let n = NodeId(r.read_u32()?);
            let seq = r.read_u64()?;
            self.last_ack.insert((c, n), seq);
        }
        let n_bounds = r.read_u64()?;
        self.window_bounds = HashMap::with_capacity((n_bounds as usize).min(r.remaining()));
        for _ in 0..n_bounds {
            let c = ConnId(r.read_u32()?);
            let b = r.read_f64()?;
            self.window_bounds.insert(c, b);
        }
        let n_viol = r.read_u64()?;
        self.violations = Vec::with_capacity((n_viol as usize).min(MAX_RECORDED));
        for _ in 0..n_viol {
            let t = r.read_time()?;
            let invariant = match r.read_u8()? {
                0 => Invariant::PacketConservation,
                1 => Invariant::MonotoneAck,
                2 => Invariant::WindowBound,
                3 => Invariant::QueueOccupancy,
                k => {
                    return Err(td_engine::SnapError::Corrupt(format!(
                        "unknown invariant tag {k}"
                    )))
                }
            };
            let detail = r.read_str()?;
            self.violations.push(AuditViolation {
                t,
                invariant,
                detail,
            });
        }
        self.total = r.read_u64()?;
        self.conservation_flagged = r.read_bool()?;
        Ok(())
    }
}

/// Per-thread violation tally for the experiment harness: worlds mirror
/// every violation here, the runner brackets each task with
/// [`reset_thread`] / [`take_thread`], and `parallel_map`-style helpers
/// merge their deltas back with [`absorb`] — the exact discipline
/// `td_engine::telemetry` uses for event counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Tally {
    /// Total violations on this thread since the last reset.
    pub total: u64,
    /// Rendered violations (first [`MAX_RECORDED`] per tally).
    pub reports: Vec<String>,
}

impl Tally {
    /// True if no violations were tallied.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }
}

thread_local! {
    static TALLY: RefCell<Tally> = RefCell::new(Tally::default());
}

fn record_thread(v: &AuditViolation) {
    TALLY.with(|t| {
        let mut t = t.borrow_mut();
        t.total += 1;
        if t.reports.len() < MAX_RECORDED {
            t.reports.push(v.render());
        }
    });
}

/// Clear this thread's tally (harness: before running a task).
pub fn reset_thread() {
    TALLY.with(|t| *t.borrow_mut() = Tally::default());
}

/// Take this thread's tally, leaving it empty (harness: after a task).
pub fn take_thread() -> Tally {
    TALLY.with(|t| std::mem::take(&mut *t.borrow_mut()))
}

/// Fold a helper thread's tally into this thread's (harness:
/// `parallel_map` merging metered deltas back into the caller).
pub fn absorb(delta: Tally) {
    TALLY.with(|t| {
        let mut t = t.borrow_mut();
        t.total += delta.total;
        for r in delta.reports {
            if t.reports.len() >= MAX_RECORDED {
                break;
            }
            t.reports.push(r);
        }
    });
}

/// Test-only hook: inject a synthetic violation into this thread's tally,
/// so harness plumbing (timings.json surfacing) can be exercised without
/// corrupting a real simulation.
pub fn inject_violation_for_test(detail: &str) {
    record_thread(&AuditViolation {
        t: SimTime::ZERO,
        invariant: Invariant::PacketConservation,
        detail: detail.to_owned(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_audit_reports_nothing() {
        reset_thread();
        let mut a = Audit::default();
        a.on_inject();
        a.on_deliver(SimTime::from_secs(1));
        a.on_inject();
        a.on_drop();
        a.on_quiescent(SimTime::from_secs(2), 0);
        assert_eq!(a.total_violations(), 0);
        assert!(a.violations().is_empty());
        assert!(take_thread().is_clean());
    }

    #[test]
    fn conservation_violation_is_flagged_once() {
        reset_thread();
        let mut a = Audit::default();
        a.on_deliver(SimTime::from_secs(1)); // delivered with nothing injected
        a.on_deliver(SimTime::from_secs(2));
        assert_eq!(a.total_violations(), 1, "flood-guarded to one record");
        assert_eq!(a.violations()[0].invariant, Invariant::PacketConservation);
        let tally = take_thread();
        assert_eq!(tally.total, 1);
        assert!(tally.reports[0].contains("packet-conservation"));
    }

    #[test]
    fn quiescence_accounts_in_network_packets() {
        reset_thread();
        let mut a = Audit::default();
        for _ in 0..5 {
            a.on_inject();
        }
        a.on_deliver(SimTime::from_secs(1));
        a.on_drop();
        // 3 still buffered: balanced.
        a.on_quiescent(SimTime::from_secs(9), 3);
        assert_eq!(a.total_violations(), 0);
        // 0 in network but 3 unaccounted: violation.
        a.on_quiescent(SimTime::from_secs(10), 0);
        assert_eq!(a.total_violations(), 1);
        let _ = take_thread();
    }

    #[test]
    fn ack_regression_detected_per_conn_and_host() {
        reset_thread();
        let mut a = Audit::default();
        let (c, h) = (ConnId(1), NodeId(2));
        a.on_ack_send(SimTime::from_secs(1), c, h, 5);
        a.on_ack_send(SimTime::from_secs(2), c, h, 5); // equal is fine
        a.on_ack_send(SimTime::from_secs(3), c, h, 9);
        // A different connection has its own sequence.
        a.on_ack_send(SimTime::from_secs(4), ConnId(2), h, 1);
        assert_eq!(a.total_violations(), 0);
        a.on_ack_send(SimTime::from_secs(5), c, h, 3);
        assert_eq!(a.total_violations(), 1);
        assert_eq!(a.violations()[0].invariant, Invariant::MonotoneAck);
        let _ = take_thread();
    }

    #[test]
    fn window_bounds_checked_when_registered() {
        reset_thread();
        let mut a = Audit::default();
        let c = ConnId(0);
        a.set_window_bound(c, 8.0);
        a.on_cwnd(SimTime::from_secs(1), c, 7.5, 4.0);
        // Congestion avoidance legitimately parks cwnd in
        // [maxwnd, maxwnd + 1) while the usable window stays ⌊min⌋-capped.
        a.on_cwnd(SimTime::from_secs(1), c, 8.875, 4.0);
        assert_eq!(a.total_violations(), 0);
        a.on_cwnd(SimTime::from_secs(2), c, 9.0, 4.0);
        assert_eq!(a.total_violations(), 1);
        a.on_cwnd(SimTime::from_secs(3), c, f64::NAN, 4.0);
        a.on_cwnd(SimTime::from_secs(4), c, 1.0, f64::NAN);
        assert_eq!(a.total_violations(), 3);
        assert!(a
            .violations()
            .iter()
            .all(|v| v.invariant == Invariant::WindowBound));
        let _ = take_thread();
    }

    #[test]
    fn occupancy_over_capacity_detected() {
        reset_thread();
        let mut a = Audit::default();
        a.on_enqueue(SimTime::from_secs(1), ChannelId(0), 20, Some(20));
        a.on_enqueue(SimTime::from_secs(1), ChannelId(0), 7, None);
        assert_eq!(a.total_violations(), 0);
        a.on_enqueue(SimTime::from_secs(2), ChannelId(0), 21, Some(20));
        assert_eq!(a.total_violations(), 1);
        assert_eq!(a.violations()[0].invariant, Invariant::QueueOccupancy);
        let _ = take_thread();
    }

    #[test]
    fn recording_caps_but_count_does_not() {
        reset_thread();
        let mut a = Audit::default();
        for i in 0..(MAX_RECORDED as u32 + 10) {
            a.on_enqueue(SimTime::from_secs(1), ChannelId(0), 100 + i, Some(1));
        }
        assert_eq!(a.violations().len(), MAX_RECORDED);
        assert_eq!(a.total_violations(), MAX_RECORDED as u64 + 10);
        let tally = take_thread();
        assert_eq!(tally.total, MAX_RECORDED as u64 + 10);
        assert_eq!(tally.reports.len(), MAX_RECORDED);
    }

    #[test]
    fn tally_reset_take_absorb_roundtrip() {
        reset_thread();
        inject_violation_for_test("synthetic A");
        let a = take_thread();
        assert_eq!(a.total, 1);
        assert!(a.reports[0].contains("synthetic A"));
        assert!(take_thread().is_clean(), "take leaves the tally empty");
        inject_violation_for_test("local");
        absorb(a);
        let merged = take_thread();
        assert_eq!(merged.total, 2);
        assert_eq!(merged.reports.len(), 2);
    }
}
