//! Cross-crate conservation and sanity invariants.
//!
//! Property-based tests over randomized scenarios: whatever the topology,
//! workload, and timing, packets must be conserved, buffers must respect
//! their capacity, and the transport must stay reliable.

use proptest::prelude::*;
use std::collections::HashMap;
use tahoe_dynamics::engine::SimDuration;
use tahoe_dynamics::experiments::{ConnSpec, Scenario};
use tahoe_dynamics::net::{PacketId, TraceEvent};
use tahoe_dynamics::tcp::{ReceiverConfig, SenderConfig};

/// Build a randomized small scenario.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        1u64..1000,                                         // seed
        1u64..2000,                                         // tau in ms
        prop_oneof![Just(None), (2u32..40).prop_map(Some)], // buffer
        1usize..4,                                          // fwd conns
        0usize..4,                                          // rev conns
        20u64..90,                                          // duration s
        prop::bool::ANY,                                    // fixed windows?
    )
        .prop_map(|(seed, tau_ms, buffer, nf, nr, dur, fixed)| {
            let spec = if fixed {
                ConnSpec::fixed(5 + seed % 20)
            } else {
                ConnSpec::paper()
            };
            let mut sc = Scenario::paper(SimDuration::from_millis(tau_ms), buffer)
                .with_fwd(nf, spec)
                .with_rev(nr, spec);
            sc.seed = seed;
            sc.duration = SimDuration::from_secs(dur);
            sc.warmup = SimDuration::from_secs(dur / 4);
            sc
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every packet ever sent is eventually delivered, dropped, or still
    /// in flight — nothing is duplicated or vanishes.
    #[test]
    fn packets_are_conserved(sc in scenario_strategy()) {
        let run = sc.run();
        let mut state: HashMap<PacketId, &'static str> = HashMap::new();
        for r in run.world.trace().records() {
            match r.ev {
                TraceEvent::Send { pkt, .. } => {
                    let prev = state.insert(pkt.id, "inflight");
                    prop_assert!(prev.is_none(), "packet id reused: {:?}", pkt.id);
                }
                TraceEvent::Drop { pkt, .. } => {
                    let prev = state.insert(pkt.id, "dropped");
                    prop_assert_eq!(prev, Some("inflight"), "drop of non-inflight packet");
                }
                TraceEvent::Deliver { pkt, .. } => {
                    let prev = state.insert(pkt.id, "delivered");
                    prop_assert_eq!(prev, Some("inflight"), "delivery of non-inflight packet");
                }
                _ => {}
            }
        }
        // Every state is one of the three; counts add up by construction.
        let delivered = state.values().filter(|&&s| s == "delivered").count();
        let total = state.len();
        prop_assert!(total > 0, "nothing was ever sent");
        prop_assert!(delivered > 0, "nothing was ever delivered");
    }

    /// Buffer occupancy never exceeds the configured capacity.
    #[test]
    fn capacity_is_respected(sc in scenario_strategy()) {
        let cap = sc.buffer;
        let run = sc.run();
        if let Some(cap) = cap {
            for r in run.world.trace().records() {
                if let TraceEvent::Enqueue { ch, qlen_after, .. } = r.ev {
                    if ch == run.bottleneck_12 || ch == run.bottleneck_21 {
                        prop_assert!(
                            qlen_after <= cap,
                            "occupancy {qlen_after} > capacity {cap}"
                        );
                    }
                }
            }
        }
    }

    /// The receiver's cumulative point equals its delivered count:
    /// delivery is contiguous and exactly-once (transport reliability).
    #[test]
    fn transport_is_reliable(sc in scenario_strategy()) {
        let run = sc.run();
        for conn in run.conns() {
            let rx = run.receiver(conn);
            prop_assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
        }
    }

    /// Flight size is window-bounded — except transiently after a loss,
    /// where Tahoe collapses the window to 1 while the old flight is
    /// still draining (BSD restores `snd_nxt` after fast retransmit).
    #[test]
    fn flight_never_exceeds_window(sc in scenario_strategy()) {
        let run = sc.run();
        for conn in run.conns() {
            let tx = run.sender(conn);
            let st = tx.stats();
            let in_recovery = st.fast_retransmits + st.timeouts > 0;
            prop_assert!(
                tx.outstanding() <= tx.window() || in_recovery,
                "conn {:?}: {} in flight > window {} with no loss ever detected",
                conn,
                tx.outstanding(),
                tx.window()
            );
            // Even in recovery the flight is bounded by the configured
            // maximum window.
            prop_assert!(tx.outstanding() <= 1000);
        }
    }

    /// Utilization is a fraction.
    #[test]
    fn utilization_is_a_fraction(sc in scenario_strategy()) {
        let run = sc.run();
        for u in [run.util12(), run.util21()] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
    }

    /// Identical scenarios replay bit-identically.
    #[test]
    fn runs_are_deterministic(sc in scenario_strategy()) {
        let a = sc.run();
        let b = sc.run();
        prop_assert_eq!(a.world.events_dispatched(), b.world.events_dispatched());
        prop_assert_eq!(a.world.trace().len(), b.world.trace().len());
        // Spot-check the full event streams match, not just the lengths.
        for (x, y) in a
            .world
            .trace()
            .records()
            .iter()
            .zip(b.world.trace().records())
        {
            prop_assert_eq!(x, y);
        }
    }
}

/// Sequence numbers delivered in order per connection (non-proptest: one
/// adversarial deterministic case with heavy loss).
#[test]
fn in_order_delivery_under_heavy_congestion() {
    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(3))
        .with_fwd(2, ConnSpec::paper())
        .with_rev(2, ConnSpec::paper());
    sc.duration = SimDuration::from_secs(200);
    sc.warmup = SimDuration::from_secs(40);
    let run = sc.run();
    let drops = run.drops();
    assert!(!drops.is_empty(), "a 3-packet buffer must drop");
    for conn in run.conns() {
        let rx = run.receiver(conn);
        assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
        assert!(rx.stats().delivered > 100, "conn {conn:?} starved");
    }
}

/// Zero-size ACKs and fixed windows: the conservation laws hold in the
/// idealized conjecture configuration too.
#[test]
fn conservation_with_zero_size_acks() {
    let spec = ConnSpec {
        sender: SenderConfig::fixed_window(20),
        receiver: ReceiverConfig::zero_ack(),
    };
    let mut sc = Scenario::paper(SimDuration::from_secs(1), None)
        .with_fwd(1, spec)
        .with_rev(1, spec);
    sc.duration = SimDuration::from_secs(100);
    sc.warmup = SimDuration::from_secs(20);
    let run = sc.run();
    assert!(run.drops().is_empty(), "infinite buffers cannot drop");
    for conn in run.conns() {
        let rx = run.receiver(conn);
        assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
    }
}
