//! Deterministic topology partitioner for the sharded executor.
//!
//! The conservative-lookahead protocol in [`crate::shard`] lets a shard run
//! ahead of its neighbours by the *minimum propagation delay of the channels
//! crossing the cut*, so the quality of a partition is the size of its
//! smallest cut-channel delay. Two rules follow:
//!
//! 1. A zero-delay channel must never be cut: it would give zero lookahead
//!    and the shards could never safely advance past each other.
//! 2. Among positive delays, cut only the *largest* delay classes needed to
//!    get enough pieces — in the paper's topologies the long-haul trunks
//!    dwarf the host access links, so cutting at the trunks yields both a
//!    balanced partition and a generous horizon.
//!
//! The algorithm welds nodes joined by "short" channels into atoms with a
//! union-find, lowering the cuttable-delay bar one distinct delay class at
//! a time until at least `shards` atoms exist (or only zero-delay welds
//! remain), then packs atoms onto shards greedily, heaviest first, with the
//! attached-endpoint count as the load estimate. Every step breaks ties on
//! the smallest node id, so the assignment is a pure function of the
//! topology — the same on every run, machine, and thread count.

use crate::world::World;
use td_engine::SimDuration;

/// Plain union-find over node indices.
struct Dsu(Vec<u32>);

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu((0..n as u32).collect())
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.0[root as usize] != root {
            root = self.0[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.0[cur as usize] != root {
            let next = self.0[cur as usize];
            self.0[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Union by *smaller root id* so representatives are deterministic.
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi as usize] = lo;
        }
    }
}

/// Assign every node of `world`'s topology to a shard in `0..shards`.
///
/// Guarantees: the returned vector has one entry per node; every channel
/// whose endpoints land on different shards has a strictly positive delay;
/// the assignment is deterministic. When the topology cannot be split into
/// `shards` pieces without cutting a zero-delay channel, fewer shards are
/// used (the extras simply stay empty, which the executor tolerates).
pub(crate) fn partition(world: &World, shards: u32) -> Vec<u32> {
    let n = world.node_count();
    if shards <= 1 || n == 0 {
        return vec![0; n];
    }

    let edges: Vec<(u32, u32, SimDuration)> = world
        .channel_ids()
        .into_iter()
        .map(|ch| {
            let (src, dst) = world.channel_nodes(ch);
            (src.0, dst.0, world.channel_delay(ch))
        })
        .collect();

    // Distinct positive delay classes, largest first. `classes[k]` is the
    // cutoff when the top `k + 1` classes are cuttable: channels with
    // delay < classes[k] are welded.
    let mut classes: Vec<SimDuration> = edges
        .iter()
        .map(|&(_, _, d)| d)
        .filter(|&d| d > SimDuration::ZERO)
        .collect();
    classes.sort_unstable_by(|a, b| b.cmp(a));
    classes.dedup();

    let mut dsu = Dsu::new(n);
    if classes.is_empty() {
        // Every channel has zero delay: nothing is cuttable.
        for &(a, b, _) in &edges {
            dsu.union(a, b);
        }
    } else {
        for k in 0..classes.len() {
            let cutoff = classes[k];
            let mut trial = Dsu::new(n);
            for &(a, b, d) in &edges {
                if d < cutoff {
                    trial.union(a, b);
                }
            }
            let atoms = (0..n as u32).filter(|&i| trial.find(i) == i).count();
            if atoms >= shards as usize || k == classes.len() - 1 {
                dsu = trial;
                break;
            }
        }
    }

    // Collect atoms in order of their (deterministic, minimal) root id and
    // weigh each by how many protocol endpoints live on it — the best
    // proxy we have for event load.
    let mut ep_load = vec![0u64; n];
    for i in 0..world.endpoint_count() {
        ep_load[world.ep_host(i).0 as usize] += 1;
    }
    let mut atoms: Vec<(u32, u64)> = Vec::new(); // (root, weight)
    for i in 0..n as u32 {
        if dsu.find(i) == i {
            atoms.push((i, 1));
        }
    }
    for i in 0..n as u32 {
        let root = dsu.find(i);
        let slot = atoms
            .iter_mut()
            .find(|(r, _)| *r == root)
            .expect("every node has a root atom");
        slot.1 += ep_load[i as usize];
    }

    // Heaviest atoms first; ties broken by root id. Greedily place each on
    // the lightest shard, lowest index winning ties.
    atoms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut shard_load = vec![0u64; shards as usize];
    let mut root_shard = vec![0u32; n];
    for (root, weight) in atoms {
        let target = (0..shards as usize)
            .min_by_key(|&s| (shard_load[s], s))
            .expect("at least one shard");
        shard_load[target] += weight;
        root_shard[root as usize] = target as u32;
    }

    (0..n as u32)
        .map(|i| root_shard[dsu.find(i) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DisciplineKind, FaultModel};
    use td_engine::{Rate, SimDuration};

    fn link(w: &mut World, a: crate::NodeId, b: crate::NodeId, delay_us: u64) {
        for (s, d) in [(a, b), (b, a)] {
            w.add_channel(
                s,
                d,
                Rate::from_kbps(1000),
                SimDuration::from_micros(delay_us),
                Some(20),
                DisciplineKind::DropTail.build(),
                FaultModel::NONE,
            );
        }
    }

    /// Two clusters joined by one long trunk: the trunk is the only cut.
    fn two_cluster_world() -> World {
        let mut w = World::new(7);
        let h = SimDuration::from_micros(100);
        let a0 = w.add_host("a0", h);
        let s0 = w.add_switch("s0");
        let a1 = w.add_host("a1", h);
        let b0 = w.add_host("b0", h);
        let s1 = w.add_switch("s1");
        let b1 = w.add_host("b1", h);
        link(&mut w, a0, s0, 10);
        link(&mut w, a1, s0, 10);
        link(&mut w, b0, s1, 10);
        link(&mut w, b1, s1, 10);
        link(&mut w, s0, s1, 10_000); // trunk
        w
    }

    #[test]
    fn single_shard_is_all_zero() {
        let w = two_cluster_world();
        assert_eq!(partition(&w, 1), vec![0; 6]);
    }

    #[test]
    fn trunk_is_the_cut() {
        let w = two_cluster_world();
        let p = partition(&w, 2);
        // Each cluster stays whole...
        assert_eq!(p[0], p[1]); // a0 with s0
        assert_eq!(p[0], p[2]); // a1 with s0
        assert_eq!(p[3], p[4]); // b0 with s1
        assert_eq!(p[3], p[5]); // b1 with s1
                                // ...and the two clusters land on different shards.
        assert_ne!(p[0], p[3]);
    }

    #[test]
    fn partition_is_deterministic() {
        let w = two_cluster_world();
        let w2 = two_cluster_world();
        assert_eq!(partition(&w, 4), partition(&w2, 4));
    }

    #[test]
    fn zero_delay_edges_are_never_cut() {
        let mut w = World::new(3);
        let a = w.add_host("a", SimDuration::ZERO);
        let b = w.add_switch("b");
        let c = w.add_switch("c");
        link(&mut w, a, b, 0); // must stay welded
        link(&mut w, b, c, 500);
        let p = partition(&w, 2);
        assert_eq!(p[0], p[1], "zero-delay edge was cut");
        assert_ne!(p[1], p[2]);
    }

    #[test]
    fn unsplittable_topology_collapses_to_one_shard() {
        let mut w = World::new(3);
        let a = w.add_host("a", SimDuration::ZERO);
        let b = w.add_switch("b");
        link(&mut w, a, b, 0);
        let p = partition(&w, 4);
        assert_eq!(p[0], p[1]);
    }
}
