//! Model-based property test for the event queue.
//!
//! Replays an arbitrary interleaving of schedule / cancel / pop operations
//! against a reference model (a sorted map keyed by `(time, seq)`) and
//! checks every observable: pop order, clock, length, cancellation results.

use proptest::prelude::*;
use std::collections::BTreeMap;
use td_engine::{EventId, EventQueue, SimTime};

#[derive(Clone, Debug)]
enum Op {
    /// Schedule at now + offset.
    Schedule(u64),
    /// Cancel the k-th id ever issued (mod issued count).
    Cancel(usize),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..1000).prop_map(Op::Schedule),
            (0usize..64).prop_map(Op::Cancel),
            Just(Op::Pop),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_matches_reference_model(script in ops()) {
        let mut q = EventQueue::new();
        // Model: (time, seq) -> payload; issued ids with their keys.
        let mut model: BTreeMap<(SimTime, u64), u64> = BTreeMap::new();
        let mut issued: Vec<(EventId, (SimTime, u64), bool)> = Vec::new(); // (id, key, live)
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;

        for op in script {
            match op {
                Op::Schedule(off) => {
                    let at = now + td_engine::SimDuration::from_nanos(off);
                    let id = q.schedule_at(at, seq);
                    model.insert((at, seq), seq);
                    issued.push((id, (at, seq), true));
                    seq += 1;
                }
                Op::Cancel(k) => {
                    if issued.is_empty() {
                        continue;
                    }
                    let k = k % issued.len();
                    let (id, key, live) = issued[k];
                    let expected = live && model.contains_key(&key);
                    let got = q.cancel(id);
                    prop_assert_eq!(got, expected, "cancel of {:?}", key);
                    if expected {
                        model.remove(&key);
                        issued[k].2 = false;
                    }
                }
                Op::Pop => {
                    let expected = model.iter().next().map(|(&k, &v)| (k, v));
                    let got = q.pop();
                    match (expected, got) {
                        (None, None) => {}
                        (Some(((at, _), v)), Some((t, e))) => {
                            prop_assert_eq!(t, at, "pop time");
                            prop_assert_eq!(e, v, "pop payload");
                            now = at;
                            let key = model.iter().next().map(|(&k, _)| k).unwrap();
                            model.remove(&key);
                        }
                        (exp, got) => {
                            return Err(TestCaseError::fail(format!(
                                "model {exp:?} vs queue {got:?}"
                            )));
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len(), "live length");
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }

        // Drain: remaining events come out in exact model order.
        while let Some((t, e)) = q.pop() {
            let (&key, &v) = model.iter().next().expect("queue longer than model");
            prop_assert_eq!((t, e), (key.0, v));
            model.remove(&key);
        }
        prop_assert!(model.is_empty(), "queue shorter than model");
    }
}
