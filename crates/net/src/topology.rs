//! Topology builders.
//!
//! Two topologies cover every configuration in the paper:
//!
//! * [`dumbbell`] — Figure 1: `Host-1 — Switch-1 ══ Switch-2 — Host-2`,
//!   with the inter-switch link as the bottleneck. Used by every experiment
//!   in §3.1 and §4.
//! * [`chain`] — the four-switch topology of Zhang & Clark \[19\] revisited
//!   in §5: `K` switches in a row, one host per switch, traffic crossing
//!   1..K−1 bottleneck hops.

use crate::discipline::DisciplineKind;
use crate::fault::FaultModel;
use crate::packet::NodeId;
use crate::world::{ChannelId, World};
use td_engine::{Rate, SimDuration};

/// Parameters of one duplex link (both directions identical).
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Bandwidth of each direction.
    pub rate: Rate,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Buffer capacity in packets at each sending side
    /// (`None` = unbounded).
    pub capacity: Option<u32>,
    /// Queue discipline at each sending side.
    pub discipline: DisciplineKind,
    /// Fault model for each direction.
    pub fault: FaultModel,
}

impl LinkSpec {
    /// The paper's bottleneck link: 50 Kbit/s, propagation `delay`, buffer
    /// of `capacity` packets, FIFO drop-tail, error-free (§2.2).
    pub fn paper_bottleneck(delay: SimDuration, capacity: Option<u32>) -> Self {
        LinkSpec {
            rate: Rate::from_kbps(50),
            delay,
            capacity,
            discipline: DisciplineKind::DropTail,
            fault: FaultModel::NONE,
        }
    }

    /// The paper's host–switch link: 10 Mbit/s, 0.1 ms propagation,
    /// effectively unbounded buffer (never binding at these speeds).
    pub fn paper_host_link() -> Self {
        LinkSpec {
            rate: Rate::from_mbps(10),
            delay: SimDuration::from_micros(100),
            capacity: None,
            discipline: DisciplineKind::DropTail,
            fault: FaultModel::NONE,
        }
    }

    /// Add this link between `a` and `b` as a pair of simplex channels.
    /// Returns `(a→b, b→a)`.
    pub fn add_between(&self, w: &mut World, a: NodeId, b: NodeId) -> (ChannelId, ChannelId) {
        let ab = w.add_channel(
            a,
            b,
            self.rate,
            self.delay,
            self.capacity,
            self.discipline.build(),
            self.fault,
        );
        let ba = w.add_channel(
            b,
            a,
            self.rate,
            self.delay,
            self.capacity,
            self.discipline.build(),
            self.fault,
        );
        (ab, ba)
    }
}

/// The paper's Figure 1 network, fully wired and routed.
pub struct Dumbbell {
    /// The world, ready for endpoint attachment.
    pub world: World,
    /// Host-1 (left).
    pub host1: NodeId,
    /// Host-2 (right).
    pub host2: NodeId,
    /// Switch-1 (left).
    pub switch1: NodeId,
    /// Switch-2 (right).
    pub switch2: NodeId,
    /// Bottleneck channel Switch-1 → Switch-2. Its buffer is "queue 1" in
    /// the paper's figures (data from Host-1, ACKs from connection 2).
    pub bottleneck_12: ChannelId,
    /// Bottleneck channel Switch-2 → Switch-1 ("queue 2").
    pub bottleneck_21: ChannelId,
}

/// Build the Figure 1 dumbbell.
///
/// * `seed` — world RNG seed.
/// * `bottleneck` — the inter-switch link (50 Kbit/s in the paper, with
///   τ ∈ {0.01 s, 1 s} and a 20/30/60/120-packet or unbounded buffer).
/// * `host_link` — both host–switch links (10 Mbit/s, 0.1 ms in the paper).
/// * `host_proc_delay` — per-packet host processing time (0.1 ms).
pub fn dumbbell(
    seed: u64,
    bottleneck: LinkSpec,
    host_link: LinkSpec,
    host_proc_delay: SimDuration,
) -> Dumbbell {
    let mut w = World::new(seed);
    let host1 = w.add_host("Host-1", host_proc_delay);
    let host2 = w.add_host("Host-2", host_proc_delay);
    let switch1 = w.add_switch("Switch-1");
    let switch2 = w.add_switch("Switch-2");
    host_link.add_between(&mut w, host1, switch1);
    host_link.add_between(&mut w, host2, switch2);
    let (bottleneck_12, bottleneck_21) = bottleneck.add_between(&mut w, switch1, switch2);
    w.compute_routes();
    w.validate_routes();
    Dumbbell {
        world: w,
        host1,
        host2,
        switch1,
        switch2,
        bottleneck_12,
        bottleneck_21,
    }
}

/// A chain of switches, one host each (the \[19\] §5 topology generalized).
pub struct Chain {
    /// The world, ready for endpoint attachment.
    pub world: World,
    /// `hosts[i]` hangs off `switches[i]`.
    pub hosts: Vec<NodeId>,
    /// The switch backbone, left to right.
    pub switches: Vec<NodeId>,
    /// `trunk_right[i]` is the bottleneck channel `switches[i] →
    /// switches[i+1]`.
    pub trunk_right: Vec<ChannelId>,
    /// `trunk_left[i]` is the bottleneck channel `switches[i+1] →
    /// switches[i]`.
    pub trunk_left: Vec<ChannelId>,
}

/// Build a chain of `n_switches` switches (≥ 2), each with one attached
/// host. Inter-switch links use `trunk`; host links use `host_link`.
pub fn chain(
    seed: u64,
    n_switches: usize,
    trunk: LinkSpec,
    host_link: LinkSpec,
    host_proc_delay: SimDuration,
) -> Chain {
    assert!(n_switches >= 2, "a chain needs at least two switches");
    let mut w = World::new(seed);
    let mut hosts = Vec::with_capacity(n_switches);
    let mut switches = Vec::with_capacity(n_switches);
    for i in 0..n_switches {
        hosts.push(w.add_host(&format!("Host-{}", i + 1), host_proc_delay));
        switches.push(w.add_switch(&format!("Switch-{}", i + 1)));
    }
    for i in 0..n_switches {
        host_link.add_between(&mut w, hosts[i], switches[i]);
    }
    let mut trunk_right = Vec::new();
    let mut trunk_left = Vec::new();
    for i in 0..n_switches - 1 {
        let (r, l) = trunk.add_between(&mut w, switches[i], switches[i + 1]);
        trunk_right.push(r);
        trunk_left.push(l);
    }
    w.compute_routes();
    w.validate_routes();
    Chain {
        world: w,
        hosts,
        switches,
        trunk_right,
        trunk_left,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ConnId, Packet, PacketKind};
    use crate::world::{Ctx, Endpoint};
    use std::any::Any;
    use td_engine::SimTime;

    struct OneShot;
    impl Endpoint for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(PacketKind::Data, 1, 500, false);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
    struct Sink {
        got: u64,
    }
    impl Endpoint for Sink {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
            assert!(pkt.is_data());
            self.got += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
    impl OneShot {
        fn boxed() -> Box<dyn Endpoint> {
            Box::new(OneShot)
        }
    }

    #[test]
    fn dumbbell_is_wired_and_routed() {
        let spec = LinkSpec::paper_bottleneck(SimDuration::from_millis(10), Some(20));
        let mut d = dumbbell(
            1,
            spec,
            LinkSpec::paper_host_link(),
            SimDuration::from_micros(100),
        );
        let src = d
            .world
            .attach(d.host1, d.host2, ConnId(0), OneShot::boxed());
        let snk = d
            .world
            .attach(d.host2, d.host1, ConnId(0), Box::new(Sink { got: 0 }));
        d.world.start_at(src, SimTime::ZERO);
        d.world.run_to_completion();
        let sink = d
            .world
            .endpoint(snk)
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap();
        assert_eq!(sink.got, 1);
        // The data packet crossed the 1→2 bottleneck, not 2→1.
        assert_eq!(d.world.channel_stats(d.bottleneck_12).tx_packets, 1);
        assert_eq!(d.world.channel_stats(d.bottleneck_21).tx_packets, 0);
    }

    #[test]
    fn dumbbell_latency_matches_hand_computation() {
        // host uplink: 500B @10Mbps = 400 us, +0.1 ms prop
        // bottleneck:  500B @50Kbps = 80 ms, +10 ms prop
        // downlink:    400 us, +0.1 ms prop; host processing 0.1 ms.
        let spec = LinkSpec::paper_bottleneck(SimDuration::from_millis(10), Some(20));
        let mut d = dumbbell(
            1,
            spec,
            LinkSpec::paper_host_link(),
            SimDuration::from_micros(100),
        );
        let src = d
            .world
            .attach(d.host1, d.host2, ConnId(0), OneShot::boxed());
        let _ = d
            .world
            .attach(d.host2, d.host1, ConnId(0), Box::new(Sink { got: 0 }));
        d.world.start_at(src, SimTime::ZERO);
        d.world.run_to_completion();
        let expected = 400 + 100 + 80_000 + 10_000 + 400 + 100 + 100; // microseconds
        assert_eq!(d.world.now(), SimTime::from_micros(expected));
    }

    #[test]
    fn chain_routes_across_multiple_hops() {
        let trunk = LinkSpec::paper_bottleneck(SimDuration::from_millis(10), Some(30));
        let mut c = chain(
            1,
            4,
            trunk,
            LinkSpec::paper_host_link(),
            SimDuration::from_micros(100),
        );
        // Host-1 → Host-4: three trunk hops.
        let src = c
            .world
            .attach(c.hosts[0], c.hosts[3], ConnId(0), OneShot::boxed());
        let snk = c
            .world
            .attach(c.hosts[3], c.hosts[0], ConnId(0), Box::new(Sink { got: 0 }));
        c.world.start_at(src, SimTime::ZERO);
        c.world.run_to_completion();
        let sink = c
            .world
            .endpoint(snk)
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap();
        assert_eq!(sink.got, 1);
        for i in 0..3 {
            assert_eq!(c.world.channel_stats(c.trunk_right[i]).tx_packets, 1);
            assert_eq!(c.world.channel_stats(c.trunk_left[i]).tx_packets, 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn chain_rejects_single_switch() {
        let trunk = LinkSpec::paper_bottleneck(SimDuration::from_millis(10), Some(30));
        let _ = chain(
            1,
            1,
            trunk,
            LinkSpec::paper_host_link(),
            SimDuration::from_micros(100),
        );
    }
}

#[cfg(test)]
mod routing_tests {
    use super::*;
    use crate::packet::{ConnId, Packet, PacketKind};
    use crate::world::{Ctx, Endpoint, World};
    use std::any::Any;
    use td_engine::SimTime;

    struct Shot;
    impl Endpoint for Shot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(PacketKind::Data, 1, 100, false);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }
    struct Count {
        got: u64,
    }
    impl Endpoint for Count {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.got += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Star: one central switch, four hosts; all-pairs reachability.
    #[test]
    fn star_topology_routes_all_pairs() {
        let mut w = World::new(1);
        let hub = w.add_switch("hub");
        let hosts: Vec<_> = (0..4)
            .map(|i| w.add_host(&format!("h{i}"), SimDuration::from_micros(10)))
            .collect();
        for &h in &hosts {
            LinkSpec::paper_host_link().add_between(&mut w, h, hub);
        }
        w.compute_routes();
        let mut conn = 0u32;
        let mut sinks = Vec::new();
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let c = ConnId(conn);
                conn += 1;
                let s = w.attach(a, b, c, Box::new(Shot));
                sinks.push(w.attach(b, a, c, Box::new(Count { got: 0 })));
                w.start_at(s, SimTime::ZERO);
            }
        }
        w.run_to_completion();
        for snk in sinks {
            let c = w
                .endpoint(snk)
                .unwrap()
                .as_any()
                .downcast_ref::<Count>()
                .unwrap();
            assert_eq!(c.got, 1);
        }
    }

    /// Long chain: traffic crosses every trunk exactly once per direction.
    #[test]
    fn long_chain_end_to_end() {
        let trunk = LinkSpec::paper_bottleneck(SimDuration::from_millis(1), Some(30));
        let mut c = chain(
            1,
            6,
            trunk,
            LinkSpec::paper_host_link(),
            SimDuration::from_micros(10),
        );
        let n = c.hosts.len();
        let s = c
            .world
            .attach(c.hosts[0], c.hosts[n - 1], ConnId(0), Box::new(Shot));
        let snk = c.world.attach(
            c.hosts[n - 1],
            c.hosts[0],
            ConnId(0),
            Box::new(Count { got: 0 }),
        );
        c.world.start_at(s, SimTime::ZERO);
        c.world.run_to_completion();
        let got = c
            .world
            .endpoint(snk)
            .unwrap()
            .as_any()
            .downcast_ref::<Count>()
            .unwrap()
            .got;
        assert_eq!(got, 1);
        for t in &c.trunk_right {
            assert_eq!(c.world.channel_stats(*t).tx_packets, 1);
        }
        for t in &c.trunk_left {
            assert_eq!(c.world.channel_stats(*t).tx_packets, 0);
        }
    }

    /// Routes are shortest-path: in a chain, a middle-to-middle flow never
    /// touches the outer trunks.
    #[test]
    fn shortest_path_stays_local() {
        let trunk = LinkSpec::paper_bottleneck(SimDuration::from_millis(1), Some(30));
        let mut c = chain(
            1,
            5,
            trunk,
            LinkSpec::paper_host_link(),
            SimDuration::from_micros(10),
        );
        let s = c
            .world
            .attach(c.hosts[1], c.hosts[2], ConnId(0), Box::new(Shot));
        c.world.attach(
            c.hosts[2],
            c.hosts[1],
            ConnId(0),
            Box::new(Count { got: 0 }),
        );
        c.world.start_at(s, SimTime::ZERO);
        c.world.run_to_completion();
        assert_eq!(c.world.channel_stats(c.trunk_right[1]).tx_packets, 1);
        assert_eq!(c.world.channel_stats(c.trunk_right[0]).tx_packets, 0);
        assert_eq!(c.world.channel_stats(c.trunk_right[2]).tx_packets, 0);
        assert_eq!(c.world.channel_stats(c.trunk_right[3]).tx_packets, 0);
    }
}
