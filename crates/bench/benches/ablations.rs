//! Ablation benches: regenerate the three design-ablation tables and time
//! their kernels (pacing, increment rule, gateway discipline).

use std::hint::black_box;
use td_bench::Harness;
use td_core::{CcKind, IncrementRule, ReceiverConfig, SenderConfig};
use td_engine::SimDuration;
use td_experiments::registry::{find, Profile};
use td_experiments::{ConnSpec, Scenario, DATA_SERVICE};
use td_net::DisciplineKind;

fn print_report_once(id: &str) {
    let rep = find(id).expect("registered").run(1, Profile::Quick);
    println!("\n{rep}");
    assert!(rep.all_ok(), "{id} out of band: {:?}", rep.failures());
}

fn kernel(discipline: DisciplineKind, sender: SenderConfig) -> u64 {
    let spec = ConnSpec {
        sender,
        receiver: ReceiverConfig::paper(),
    };
    let mut sc = Scenario::paper(SimDuration::from_millis(10), Some(20))
        .with_fwd(1, spec)
        .with_rev(1, spec);
    sc.discipline = discipline;
    sc.duration = SimDuration::from_secs(60);
    sc.warmup = SimDuration::from_secs(10);
    sc.run().world.events_dispatched()
}

fn ablations(c: &mut Harness) {
    print_report_once("abl-pacing");
    c.bench_function("ablation/nonpaced", |b| {
        b.iter(|| black_box(kernel(DisciplineKind::DropTail, SenderConfig::paper())));
    });
    c.bench_function("ablation/paced", |b| {
        b.iter(|| {
            black_box(kernel(
                DisciplineKind::DropTail,
                SenderConfig {
                    pacing: Some(DATA_SERVICE),
                    ..SenderConfig::paper()
                },
            ))
        });
    });

    print_report_once("abl-increment");
    c.bench_function("ablation/increment-original", |b| {
        b.iter(|| {
            black_box(kernel(
                DisciplineKind::DropTail,
                SenderConfig {
                    cc: CcKind::Tahoe {
                        rule: IncrementRule::Original,
                    },
                    ..SenderConfig::paper()
                },
            ))
        });
    });

    print_report_once("abl-red");
    c.bench_function("ablation/discipline-Red", |b| {
        b.iter(|| black_box(kernel(DisciplineKind::Red, SenderConfig::paper())));
    });

    print_report_once("abl-discipline");
    for disc in [
        DisciplineKind::DropTail,
        DisciplineKind::RandomDrop,
        DisciplineKind::FairQueueing,
    ] {
        c.bench_function(&format!("ablation/discipline-{disc:?}"), |b| {
            b.iter(|| black_box(kernel(disc, SenderConfig::paper())));
        });
    }
}

fn main() {
    let mut c = Harness::new();
    ablations(&mut c);
    c.finish();
}
