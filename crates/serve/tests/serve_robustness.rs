//! End-to-end robustness proof for the `td-serve` daemon.
//!
//! Each test boots the real binary on its own store + socket and
//! drives it over the wire:
//!
//! * miss → hit → corrupt → quarantine → recompute, with the `ok`
//!   responses byte-identical throughout (the cache is invisible except
//!   through `stats`);
//! * a worker panic (the hidden `faulty` experiment) retried to
//!   success, and — with retries exhausted — tripping the circuit
//!   breaker;
//! * a wall-clock deadline killing an oversized cell with a structured
//!   `deadline_exceeded`;
//! * admission control shedding a lower-priority queued request and
//!   rejecting on a full queue, then an in-band `shutdown` drain
//!   (exit 0) persisting the queue;
//! * SIGTERM drain (exit 130) persisting the unstarted queue to
//!   `pending.tdq`, and a restarted daemon replaying it and serving
//!   the same request as a cache hit.
#![cfg(unix)]

use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_td-serve");

struct Daemon {
    child: Child,
    socket: PathBuf,
    store: PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("td-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(tag: &str, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
    let store = tmp_dir(tag);
    let socket = store.join("s.sock");
    spawn_daemon_at(&store, &socket, extra, envs)
}

fn spawn_daemon_at(store: &Path, socket: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
    let mut cmd = Command::new(EXE);
    cmd.arg("serve")
        .arg("--store")
        .arg(store)
        .arg("--socket")
        .arg(socket)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let child = cmd.spawn().expect("spawn td-serve");
    let daemon = Daemon {
        child,
        socket: socket.to_path_buf(),
        store: store.to_path_buf(),
    };
    // Wait until the daemon accepts connections.
    let start = Instant::now();
    loop {
        if UnixStream::connect(&daemon.socket).is_ok() {
            break daemon;
        }
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "daemon never came up on {}",
            daemon.socket.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One request, one reply, connection closed.
fn request(socket: &Path, line: &str) -> String {
    let stream = UnixStream::connect(socket).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(!reply.is_empty(), "daemon closed without replying");
    reply.trim_end().to_owned()
}

/// Open a connection and send a request without waiting for the reply —
/// for building up concurrent in-flight/queued work.
struct PendingReply {
    reader: BufReader<UnixStream>,
}

fn request_async(socket: &Path, line: &str) -> PendingReply {
    let stream = UnixStream::connect(socket).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    PendingReply {
        reader: BufReader::new(stream),
    }
}

impl PendingReply {
    fn recv(mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        assert!(!reply.is_empty(), "daemon closed without replying");
        reply.trim_end().to_owned()
    }
}

fn stats(socket: &Path) -> String {
    request(socket, "{\"op\":\"stats\"}")
}

/// Pull `"name":N` out of a stats/response line.
fn field(json: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no field {name} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("field {name} not numeric in {json}"))
}

/// Poll stats until `pred` holds (daemon-side state is asynchronous).
fn wait_stats(socket: &Path, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let start = Instant::now();
    loop {
        let s = stats(socket);
        if pred(&s) {
            break s;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "timed out waiting for {what}; last stats: {s}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A request that stays in the event loop long enough to trip any
/// wall-clock deadline: `multihop` (the heaviest topology) over a
/// 100 000 s simulation — minutes of dispatch in a debug build. The
/// deadline poll lives in the dispatch loop, so the busy experiment
/// must be dispatch-bound, not analysis-bound.
fn oversized(seed: u64, deadline_ms: u64) -> String {
    format!(
        "{{\"op\":\"simulate\",\"experiment\":\"multihop\",\"seed\":{seed},\
         \"sim_secs\":100000,\"deadline_ms\":{deadline_ms}}}"
    )
}

#[test]
fn miss_hit_corrupt_quarantine_recompute_byte_identical() {
    let d = spawn_daemon("cache", &["--jobs", "2"], &[]);
    let req = "{\"op\":\"simulate\",\"experiment\":\"fig2\",\"seed\":5,\"sim_secs\":2}";

    // Miss: computed and stored.
    let first = request(&d.socket, req);
    assert!(first.contains("\"status\":\"ok\""), "miss reply: {first}");
    // Hit: byte-identical to the computed response.
    let second = request(&d.socket, req);
    assert_eq!(first, second, "cache hit must be byte-identical");
    let s = stats(&d.socket);
    assert_eq!(field(&s, "misses"), 1, "stats: {s}");
    assert_eq!(field(&s, "hits"), 1, "stats: {s}");
    assert_eq!(field(&s, "computed"), 1, "stats: {s}");
    assert_eq!(field(&s, "quarantined"), 0, "stats: {s}");

    // Corrupt the stored cell: flip one byte mid-file.
    let cell = std::fs::read_dir(&d.store)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "tdc"))
        .expect("a .tdc cell in the store");
    let mut bytes = std::fs::read(&cell).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&cell, &bytes).unwrap();

    // The daemon quarantines the corrupt cell and transparently
    // recomputes — the reply is still byte-identical.
    let third = request(&d.socket, req);
    assert_eq!(first, third, "recompute after quarantine must match");
    let s = stats(&d.socket);
    assert_eq!(field(&s, "quarantined"), 1, "stats: {s}");
    assert_eq!(field(&s, "recomputed"), 1, "stats: {s}");
    let quarantine = d.store.join("quarantine");
    let held = std::fs::read_dir(&quarantine)
        .map(Iterator::count)
        .unwrap_or(0);
    assert_eq!(held, 1, "corrupt cell should sit in quarantine/");

    // And the store is intact again: the recomputed cell verifies.
    let fourth = request(&d.socket, req);
    assert_eq!(first, fourth);
    let s = stats(&d.socket);
    assert_eq!(field(&s, "hits"), 2, "stats: {s}");

    // Sanity: a bad request is a structured rejection, not a hangup.
    let bad = request(&d.socket, "{\"op\":\"simulate\"}");
    assert!(
        bad.contains("\"status\":\"bad_request\""),
        "bad reply: {bad}"
    );
    let unknown = request(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"no-such-thing\"}",
    );
    assert!(
        unknown.contains("\"status\":\"bad_request\""),
        "unknown-experiment reply: {unknown}"
    );
}

#[test]
fn worker_panic_is_retried_to_success() {
    // The hidden `faulty` experiment panics on its first call, then
    // succeeds; one retry should rescue the request.
    let d = spawn_daemon(
        "retry",
        &["--jobs", "1", "--retries", "2", "--backoff-ms", "1"],
        &[("TD_FAULTY_PANICS", "1")],
    );
    let reply = request(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"faulty\",\"seed\":3}",
    );
    assert!(reply.contains("\"status\":\"ok\""), "reply: {reply}");
    let s = stats(&d.socket);
    assert_eq!(field(&s, "worker_panics"), 1, "stats: {s}");
    assert_eq!(field(&s, "retries"), 1, "stats: {s}");
    assert_eq!(field(&s, "failed"), 0, "stats: {s}");
    assert_eq!(field(&s, "computed"), 1, "stats: {s}");
}

#[test]
fn exhausted_retries_trip_the_circuit_breaker() {
    // Every call panics; two final failures open the breaker for the
    // config, after which requests are rejected without a worker.
    let d = spawn_daemon(
        "breaker",
        &[
            "--jobs",
            "1",
            "--retries",
            "1",
            "--backoff-ms",
            "1",
            "--breaker",
            "2",
        ],
        &[("TD_FAULTY_PANICS", "1000000")],
    );
    let r1 = request(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"faulty\",\"seed\":1}",
    );
    assert!(r1.contains("\"status\":\"failed\""), "r1: {r1}");
    assert_eq!(field(&r1, "attempts"), 2, "r1: {r1}");
    assert!(r1.contains("\"circuit_open\":false"), "r1: {r1}");

    let r2 = request(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"faulty\",\"seed\":2}",
    );
    assert!(r2.contains("\"status\":\"failed\""), "r2: {r2}");
    assert!(
        r2.contains("\"circuit_open\":true"),
        "second final failure should open the breaker: {r2}"
    );

    // Breaker open: rejected up front, attempts 0.
    let r3 = request(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"faulty\",\"seed\":3}",
    );
    assert!(r3.contains("\"status\":\"failed\""), "r3: {r3}");
    assert_eq!(field(&r3, "attempts"), 0, "r3: {r3}");
    assert!(r3.contains("circuit breaker open"), "r3: {r3}");

    let s = stats(&d.socket);
    assert_eq!(field(&s, "worker_panics"), 4, "stats: {s}");
    assert_eq!(field(&s, "retries"), 2, "stats: {s}");
    assert_eq!(field(&s, "failed"), 2, "stats: {s}");
    assert_eq!(field(&s, "circuit_open"), 1, "stats: {s}");
    // The daemon survived every panic: still answering.
    let pong = request(&d.socket, "{\"op\":\"ping\"}");
    assert!(pong.contains("\"pong\":true"), "pong: {pong}");
}

#[test]
fn deadline_kills_an_oversized_cell() {
    let d = spawn_daemon("deadline", &["--jobs", "1"], &[]);
    let reply = request(&d.socket, &oversized(99, 200));
    assert!(
        reply.contains("\"status\":\"deadline_exceeded\""),
        "reply: {reply}"
    );
    assert!(
        reply.contains("td-deadline exceeded") && reply.contains("event(s)"),
        "diagnostics should name sim time and events: {reply}"
    );
    let s = stats(&d.socket);
    assert_eq!(field(&s, "deadline_exceeded"), 1, "stats: {s}");
    // The daemon is unharmed and the cell was not stored.
    let quick = request(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"fig2\",\"seed\":99,\"sim_secs\":1}",
    );
    assert!(quick.contains("\"status\":\"ok\""), "quick: {quick}");
}

#[test]
fn shed_queue_full_and_shutdown_drain() {
    let mut d = spawn_daemon("shed", &["--jobs", "1", "--queue-cap", "1"], &[]);

    // Occupy the single worker with an oversized cell; its 2s deadline
    // bounds how long the drain can take (the cell itself needs >3s).
    let busy = request_async(&d.socket, &oversized(1, 2000));
    wait_stats(&d.socket, "worker busy", |s| field(s, "in_flight") == 1);

    // Fill the queue with a priority-2 job.
    let low = request_async(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"fig2\",\"seed\":11,\"sim_secs\":1,\"priority\":2}",
    );
    wait_stats(&d.socket, "queued job", |s| field(s, "queued") == 1);

    // A priority-5 job sheds it…
    let high = request_async(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"fig2\",\"seed\":12,\"sim_secs\":1,\"priority\":5}",
    );
    let low_reply = low.recv();
    assert!(
        low_reply.contains("\"status\":\"overloaded\"")
            && low_reply.contains("\"reason\":\"shed\""),
        "shed victim reply: {low_reply}"
    );

    // …and a priority-1 job finds no lower-priority victim: queue_full.
    let rejected = request(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"fig2\",\"seed\":13,\"sim_secs\":1,\"priority\":1}",
    );
    assert!(
        rejected.contains("\"reason\":\"queue_full\""),
        "reject reply: {rejected}"
    );

    // In-band shutdown: drains and exits 0.
    let ack = request(&d.socket, "{\"op\":\"shutdown\"}");
    assert!(ack.contains("\"draining\":true"), "ack: {ack}");
    let high_reply = high.recv();
    assert!(
        high_reply.contains("\"reason\":\"draining\""),
        "queued client at drain: {high_reply}"
    );
    let busy_reply = busy.recv();
    assert!(
        busy_reply.contains("\"status\":\"deadline_exceeded\""),
        "in-flight reply: {busy_reply}"
    );
    let status = d.child.wait().expect("wait daemon");
    assert_eq!(status.code(), Some(0), "shutdown drain exits 0");
    // The queued-but-unstarted job was persisted.
    let pending = std::fs::read_to_string(d.store.join("pending.tdq")).unwrap();
    assert_eq!(pending.lines().count(), 1, "pending: {pending:?}");
}

#[test]
fn sigterm_drain_persists_queue_and_restart_replays_it() {
    let store = tmp_dir("drain");
    let socket1 = store.join("s1.sock");
    let mut d = spawn_daemon_at(&store, &socket1, &["--jobs", "1"], &[]);

    // Worker busy on a deadline-bounded oversized cell; two quick jobs
    // queued behind it.
    let busy = request_async(&d.socket, &oversized(1, 2000));
    wait_stats(&d.socket, "worker busy", |s| field(s, "in_flight") == 1);
    let q1 = request_async(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"fig2\",\"seed\":21,\"sim_secs\":1}",
    );
    let q2 = request_async(
        &d.socket,
        "{\"op\":\"simulate\",\"experiment\":\"fig2\",\"seed\":22,\"sim_secs\":1}",
    );
    wait_stats(&d.socket, "two queued jobs", |s| field(s, "queued") == 2);

    // SIGTERM: graceful drain, exit 130.
    let pid = d.child.id();
    let kill = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());
    for pending in [q1, q2] {
        let reply = pending.recv();
        assert!(
            reply.contains("\"reason\":\"draining\""),
            "queued client at drain: {reply}"
        );
    }
    let busy_reply = busy.recv();
    assert!(
        busy_reply.contains("\"status\":\"deadline_exceeded\""),
        "in-flight reply: {busy_reply}"
    );
    let status = d.child.wait().expect("wait daemon");
    assert_eq!(status.code(), Some(130), "signal drain exits 130");
    let pending = std::fs::read_to_string(store.join("pending.tdq")).unwrap();
    assert_eq!(pending.lines().count(), 2, "pending: {pending:?}");

    // Restart on the same store: the pending queue replays as orphan
    // jobs and lands in the store; the same request is then a hit.
    let socket2 = store.join("s2.sock");
    let d2 = spawn_daemon_at(&store, &socket2, &["--jobs", "2"], &[]);
    let s = wait_stats(&d2.socket, "restored queue drained", |s| {
        field(s, "queue_restored") == 2 && field(s, "computed") == 2 && field(s, "in_flight") == 0
    });
    assert!(
        !store.join("pending.tdq").exists(),
        "pending.tdq consumed at startup"
    );
    let hit = request(
        &d2.socket,
        "{\"op\":\"simulate\",\"experiment\":\"fig2\",\"seed\":21,\"sim_secs\":1}",
    );
    assert!(hit.contains("\"status\":\"ok\""), "hit: {hit}");
    let s2 = stats(&d2.socket);
    assert_eq!(
        field(&s2, "hits"),
        field(&s, "hits") + 1,
        "restored job should make the request a cache hit: {s2}"
    );
}
