//! Per-thread simulation telemetry.
//!
//! The parallel experiment harness runs each experiment on its own worker
//! thread, and an experiment may build several [`crate::EventQueue`]s over
//! its lifetime (parameter sweeps, mode censuses). These thread-local
//! counters aggregate queue activity across every queue touched by the
//! current thread, so a harness can meter an experiment without threading
//! a stats handle through every scenario builder:
//!
//! ```
//! use td_engine::{telemetry, EventQueue, SimTime};
//!
//! telemetry::reset();
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_secs(1), "tick");
//! q.pop();
//! let t = telemetry::snapshot();
//! assert_eq!((t.events_scheduled, t.events_dispatched), (1, 1));
//! ```
//!
//! Hot-path cost: the queue does **not** touch thread-local storage per
//! operation. It accumulates plain-field deltas and folds them in with one
//! crate-internal `flush` per pop (and one on queue drop, covering events scheduled but
//! never dispatched), so a schedule-heavy workload pays zero TLS lookups
//! and a pop pays exactly one. All counters live in a single `thread_local`
//! struct, so one access reaches all of them. Because they never influence
//! simulation behaviour, they have no effect on determinism.

use std::cell::Cell;

struct Counters {
    scheduled: Cell<u64>,
    dispatched: Cell<u64>,
    peak_depth: Cell<usize>,
}

thread_local! {
    static COUNTERS: Counters = const {
        Counters {
            scheduled: Cell::new(0),
            dispatched: Cell::new(0),
            peak_depth: Cell::new(0),
        }
    };
}

/// A snapshot of this thread's counters since the last [`reset`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Events scheduled into any queue on this thread.
    pub events_scheduled: u64,
    /// Events popped (dispatched) from any queue on this thread.
    pub events_dispatched: u64,
    /// Largest live pending-event set observed on this thread.
    pub peak_queue_depth: usize,
}

/// Zero this thread's counters (call before metering a workload).
///
/// Queues created before the reset still hold unflushed schedule deltas;
/// meter whole queue lifetimes (as the experiment runner does) rather than
/// resetting mid-run.
pub fn reset() {
    COUNTERS.with(|c| {
        c.scheduled.set(0);
        c.dispatched.set(0);
        c.peak_depth.set(0);
    });
}

/// Read this thread's counters.
pub fn snapshot() -> Telemetry {
    COUNTERS.with(|c| Telemetry {
        events_scheduled: c.scheduled.get(),
        events_dispatched: c.dispatched.get(),
        peak_queue_depth: c.peak_depth.get(),
    })
}

/// Fold a snapshot taken on *another* thread into this thread's counters:
/// counts add, peak depth maxes in. Parallel harnesses (replicate sweeps)
/// meter each helper-run work item with a `reset`/`snapshot` pair and
/// merge the deltas back into the orchestrating thread, so its totals
/// match what a sequential run of the same items would have recorded.
pub fn merge(t: Telemetry) {
    flush(t.events_scheduled, t.events_dispatched, t.peak_queue_depth);
}

/// Fold a batch of queue activity into this thread's counters: `scheduled`
/// schedules, `dispatched` pops, and a queue whose peak live depth so far
/// is `peak_depth` (maxed in, so repeated flushes are idempotent on peak).
pub(crate) fn flush(scheduled: u64, dispatched: u64, peak_depth: usize) {
    COUNTERS.with(|c| {
        c.scheduled.set(c.scheduled.get() + scheduled);
        c.dispatched.set(c.dispatched.get() + dispatched);
        if peak_depth > c.peak_depth.get() {
            c.peak_depth.set(peak_depth);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        flush(1, 0, 3);
        flush(1, 1, 1);
        let t = snapshot();
        assert_eq!(t.events_scheduled, 2);
        assert_eq!(t.events_dispatched, 1);
        assert_eq!(t.peak_queue_depth, 3, "peak is a running max");
        reset();
        assert_eq!(snapshot(), Telemetry::default());
    }

    #[test]
    fn queue_flushes_on_pop_and_on_drop() {
        reset();
        let mut q = crate::EventQueue::new();
        q.schedule_at(crate::SimTime::from_secs(1), ());
        q.schedule_at(crate::SimTime::from_secs(2), ());
        q.pop();
        // One pop flushed both pending schedules and the dispatch.
        let t = snapshot();
        assert_eq!((t.events_scheduled, t.events_dispatched), (2, 1));
        assert_eq!(t.peak_queue_depth, 2);
        // The undispatched remainder is flushed when the queue drops.
        q.schedule_at(crate::SimTime::from_secs(3), ());
        drop(q);
        let t = snapshot();
        assert_eq!((t.events_scheduled, t.events_dispatched), (3, 1));
    }
}
