//! # td-core — the BSD 4.3-Tahoe TCP congestion-control algorithm
//!
//! The algorithm under study in Zhang, Shenker & Clark, SIGCOMM '91 (§2.1),
//! implemented as [`td_net::Endpoint`]s: a [`TcpSender`] with pluggable
//! congestion control and a [`TcpReceiver`] with an optional delayed-ACK
//! mode.
//!
//! ## The algorithm (paper §2.1)
//!
//! Windows are measured in maximum-size packets. The sender's usable window
//! is `wnd = ⌊min(cwnd, maxwnd)⌋`. The congestion window evolves in two
//! phases separated by the threshold `ssthresh`:
//!
//! ```text
//! on new data acked:            on packet drop detected:
//!   if cwnd < ssthresh             ssthresh = max(min(cwnd/2, maxwnd), 2)
//!     cwnd += 1                    cwnd = 1
//!   else
//!     cwnd += 1/cwnd        (original BSD 4.3-Tahoe rule)
//!     cwnd += 1/⌊cwnd⌋      (the paper's modified rule, our default)
//! ```
//!
//! The paper's modification (§2.1) removes an anomaly in which `⌊cwnd⌋`
//! could stall for an epoch; with it, `⌊cwnd⌋` grows by exactly one per
//! epoch during congestion avoidance. Both rules are provided
//! ([`IncrementRule`]) and compared by an ablation bench.
//!
//! Losses are detected by duplicate ACKs (fast retransmit, threshold 3 as
//! in BSD) or retransmission-timer expiry (Jacobson/Karels estimation with
//! the BSD 500 ms coarse clock, Karn's rule, exponential backoff). On
//! either signal the sender performs the window reduction above and pulls
//! `snd_nxt` back to the first unacknowledged segment — BSD Tahoe's
//! go-back-N recovery. Receivers keep out-of-order segments (BSD
//! reassembly queue), so cumulative ACKs jump forward once a hole is
//! filled.
//!
//! ## Variants
//!
//! * [`CcKind::Tahoe`] — the paper's algorithm (either increment rule).
//! * [`CcKind::FixedWindow`] — no congestion control; the fixed-`wnd`
//!   idealization of §4.2/§4.3.3 (Figures 8–9).
//! * [`CcKind::Reno`] — Tahoe plus fast recovery (Jacobson's 4.3-Reno
//!   evolution, cited as \[7\]); used to test the paper's conjecture that
//!   the phenomena afflict *any* nonpaced window algorithm.
//! * [`SenderConfig::pacing`] — optional rate-pacing of data transmissions,
//!   the counterfactual for the paper's "nonpaced" conjecture (§1, §6).

//! ## Example: a Tahoe bulk transfer over a lossy bottleneck
//!
//! ```
//! use td_core::*;
//! use td_engine::{Rate, SimDuration, SimTime};
//! use td_net::{ConnId, DisciplineKind, FaultModel, World};
//!
//! let mut w = World::new(7);
//! let src = w.add_host("src", SimDuration::from_micros(100));
//! let dst = w.add_host("dst", SimDuration::from_micros(100));
//! // Tight 5-packet buffer: slow start will overshoot and drop.
//! w.add_channel(src, dst, Rate::from_kbps(50), SimDuration::from_millis(10),
//!               Some(5), DisciplineKind::DropTail.build(), FaultModel::NONE);
//! w.add_channel(dst, src, Rate::from_kbps(50), SimDuration::from_millis(10),
//!               Some(5), DisciplineKind::DropTail.build(), FaultModel::NONE);
//! let s = w.attach(src, dst, ConnId(0), TcpSender::boxed(SenderConfig::paper()));
//! let r = w.attach(dst, src, ConnId(0), TcpReceiver::boxed(ReceiverConfig::paper()));
//! w.start_at(s, SimTime::ZERO);
//! w.run_until(SimTime::from_secs(120));
//!
//! let rx = w.endpoint(r).unwrap().as_any().downcast_ref::<TcpReceiver>().unwrap();
//! // Reliable: the cumulative point equals the delivered count, and the
//! // link (12.5 pkt/s peak) was kept usefully busy despite the drops.
//! assert_eq!(rx.cumulative_ack(), rx.stats().delivered);
//! assert!(rx.stats().delivered > 1000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cc;
mod config;
mod datagram;
mod duplex;
mod receiver;
mod rtt;
mod sender;

pub use cc::{CcKind, CongestionControl, IncrementRule};
pub use config::{DelayedAck, ReceiverConfig, RtoConfig, SenderConfig};
pub use datagram::{Blackhole, PoissonSource};
pub use duplex::{DuplexStats, TcpDuplex};
pub use receiver::{ReceiverStats, TcpReceiver};
pub use rtt::RttEstimator;
pub use sender::{SenderStats, TcpSender};
