//! # td-serve — a fault-tolerant simulation-serving daemon
//!
//! The ROADMAP's census item calls for a long-running service that
//! answers "simulate this config" queries from a journal-backed store.
//! This crate is that service: a daemon on a Unix socket speaking
//! line-delimited JSON, content-addressing every result cell by
//! `(config_hash, seed)` into an on-disk [`store::Store`], serving
//! cache hits from disk and scheduling misses onto a bounded worker
//! pool that shares `td_experiments::sweep`'s process-wide job budget.
//!
//! A server that merely computes is not a product; one that degrades
//! gracefully is. The robustness layer — all of it deterministic and
//! exercised end to end by the integration tests and the CI `serve`
//! job — is:
//!
//! * **Admission control** ([`server`]): a bounded priority queue;
//!   when full, a request either sheds a strictly-lower-priority queued
//!   request (whose client gets `overloaded`/`shed`) or is itself
//!   rejected `overloaded`/`queue_full`. A draining daemon rejects
//!   everything with `overloaded`/`draining`.
//! * **Deadlines**: `deadline_ms` is armed as a thread-local wall-clock
//!   budget via [`td_net::deadline`], which the engine's dispatch loop
//!   polls; an over-budget cell unwinds and the client gets a
//!   structured `deadline_exceeded` carrying the partial diagnostics
//!   (simulated time reached, events dispatched).
//! * **Crash isolation**: every cell runs under `catch_unwind`; a
//!   panicking experiment is retried with deterministic exponential
//!   backoff (jitter seeded from `(config_hash, seed, attempt)`), and a
//!   config that keeps failing trips a circuit breaker that rejects
//!   further requests for it without burning workers.
//! * **Store integrity** ([`store`]): cell files carry a checksum
//!   trailer verified on every read; a corrupt cell is moved into a
//!   `quarantine/` sidecar and transparently recomputed; writes are
//!   atomic (temp file + fsync + rename); `td-serve verify` and
//!   `td-serve compact` are the offline maintenance pair.
//! * **Graceful drain**: SIGINT/SIGTERM (or an in-band `shutdown`
//!   request) stops admission, finishes in-flight cells, answers every
//!   queued client, persists the unstarted queue to `pending.tdq`
//!   (checked-line format shared with the results journal), and exits
//!   130 (signal) or 0 (`shutdown`). A restarted daemon replays
//!   `pending.tdq` into the store, so the work still happens.
//!
//! Responses for the same `(config_hash, seed)` are **byte-identical**
//! whether served from cache or recomputed — the response deliberately
//! carries no cache/wall-clock fields; cache behavior is observable
//! only through the `stats` counters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod proto;
#[cfg(unix)]
pub mod server;
pub mod store;
