//! Configuration parsing for the `td-sim` general-purpose scenario CLI.
//!
//! `td-repro` regenerates the paper; `td-sim` lets a user run *their own*
//! dumbbell scenario from the command line — any mix of algorithms,
//! disciplines, pipe sizes, and buffers — and get the standard outputs
//! (summary, CSV, SVG, pcap). This module holds the flag grammar and its
//! translation into a [`Scenario`], kept out of the binary so it is unit-
//! testable.

use crate::scenario::{ConnSpec, Scenario};
use td_core::{CcKind, DelayedAck, IncrementRule, ReceiverConfig, SenderConfig};
use td_engine::SimDuration;
use td_net::DisciplineKind;

/// Parsed `td-sim` invocation.
#[derive(Debug)]
pub struct SimArgs {
    /// The scenario to run.
    pub scenario: Scenario,
    /// Output directory for CSV/SVG/pcap (None = summary only).
    pub out: Option<std::path::PathBuf>,
    /// Write a pcap of the 1→2 bottleneck.
    pub pcap: bool,
    /// Worker-shard count (`--shards N`, default 1). Fed into
    /// [`crate::set_shards`]; the dumbbell itself is a single-bottleneck
    /// topology and always executes serially, but the flag keeps the two
    /// binaries' CLIs uniform for scripts that drive both.
    pub shards: u32,
}

/// Parse a congestion-control name.
pub fn parse_cc(s: &str) -> Result<CcKind, String> {
    match s {
        "tahoe" => Ok(CcKind::Tahoe {
            rule: IncrementRule::Modified,
        }),
        "tahoe-original" => Ok(CcKind::Tahoe {
            rule: IncrementRule::Original,
        }),
        "reno" => Ok(CcKind::Reno),
        "decbit" => Ok(CcKind::Decbit),
        other => {
            if let Some(w) = other.strip_prefix("fixed:") {
                let wnd: u64 = w.parse().map_err(|_| format!("bad fixed window: {w}"))?;
                // A zero window deadlocks the sender: nothing is ever
                // transmitted, so no ACK and no timer can unstick it.
                if wnd == 0 {
                    return Err(
                        "fixed window must be at least 1 packet (fixed:0 never sends)".into(),
                    );
                }
                Ok(CcKind::FixedWindow { wnd })
            } else {
                Err(format!(
                    "unknown cc {other:?} (tahoe, tahoe-original, reno, decbit, fixed:N)"
                ))
            }
        }
    }
}

/// Parse a queue-discipline name.
pub fn parse_discipline(s: &str) -> Result<DisciplineKind, String> {
    match s {
        "drop-tail" | "droptail" => Ok(DisciplineKind::DropTail),
        "random-drop" | "randomdrop" => Ok(DisciplineKind::RandomDrop),
        "fq" | "fair-queueing" => Ok(DisciplineKind::FairQueueing),
        "red" => Ok(DisciplineKind::Red),
        other => Err(format!(
            "unknown discipline {other:?} (drop-tail, random-drop, fq, red)"
        )),
    }
}

/// Parse the full argument list (exclusive of `argv\[0\]`).
pub fn parse(args: &[String]) -> Result<SimArgs, String> {
    let mut tau_ms: u64 = 10;
    let mut buffer: Option<u32> = Some(20);
    let mut fwd: usize = 1;
    let mut rev: usize = 1;
    let mut duration_s: u64 = 300;
    let mut seed: u64 = 1;
    let mut cc = CcKind::default();
    let mut discipline = DisciplineKind::DropTail;
    let mut delack = false;
    let mut pacing = false;
    let mut maxwnd: u64 = 1000;
    let mut mark: Option<u32> = None;
    let mut out = None;
    let mut pcap = false;
    let mut shards: u32 = 1;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--tau-ms" => tau_ms = val("--tau-ms")?.parse().map_err(|e| format!("{e}"))?,
            "--buffer" => {
                let v = val("--buffer")?;
                buffer = if v == "inf" {
                    None
                } else {
                    Some(v.parse().map_err(|e| format!("{e}"))?)
                };
            }
            "--fwd" => fwd = val("--fwd")?.parse().map_err(|e| format!("{e}"))?,
            "--rev" => rev = val("--rev")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => duration_s = val("--duration")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--cc" => cc = parse_cc(val("--cc")?)?,
            "--discipline" => discipline = parse_discipline(val("--discipline")?)?,
            "--maxwnd" => maxwnd = val("--maxwnd")?.parse().map_err(|e| format!("{e}"))?,
            "--mark" => mark = Some(val("--mark")?.parse().map_err(|e| format!("{e}"))?),
            "--delack" => delack = true,
            "--paced" => pacing = true,
            "--pcap" => pcap = true,
            "--out" => out = Some(std::path::PathBuf::from(val("--out")?)),
            "--shards" => {
                shards = val("--shards")?.parse().map_err(|e| format!("{e}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if fwd + rev == 0 {
        return Err("need at least one connection (--fwd/--rev)".into());
    }
    // Like fixed:0, a zero advertised window means the sender may never
    // transmit: no data, no ACK clock, no pending timer — a silent
    // deadlock rather than a simulation.
    if maxwnd == 0 {
        return Err(
            "--maxwnd must be at least 1 packet (a zero window deadlocks the sender)".into(),
        );
    }
    if duration_s < 10 {
        return Err("--duration must be at least 10 s".into());
    }
    // DECbit needs marking to function; default its threshold.
    if cc == CcKind::Decbit && mark.is_none() {
        mark = Some(2);
    }

    let spec = ConnSpec {
        sender: SenderConfig {
            cc,
            maxwnd,
            pacing: pacing.then_some(crate::scenario::DATA_SERVICE),
            ..SenderConfig::paper()
        },
        receiver: ReceiverConfig {
            delayed_ack: delack.then(DelayedAck::default),
            ..ReceiverConfig::paper()
        },
    };
    let mut sc = Scenario::paper(SimDuration::from_millis(tau_ms), buffer)
        .with_fwd(fwd, spec)
        .with_rev(rev, spec);
    sc.seed = seed;
    sc.discipline = discipline;
    sc.mark_threshold = mark;
    sc.duration = SimDuration::from_secs(duration_s);
    sc.warmup = SimDuration::from_secs(duration_s / 5);
    Ok(SimArgs {
        scenario: sc,
        out,
        pcap,
        shards,
    })
}

/// The `--help` text.
pub fn usage() -> String {
    "td-sim — run a custom dumbbell scenario\n\
     \n\
     usage: td-sim [flags]\n\
     \n\
     topology / workload:\n\
     \x20 --tau-ms N        bottleneck propagation delay, ms   [10]\n\
     \x20 --buffer N|inf    bottleneck buffer, packets         [20]\n\
     \x20 --fwd N           connections Host-1 -> Host-2       [1]\n\
     \x20 --rev N           connections Host-2 -> Host-1       [1]\n\
     \x20 --duration SECS   simulated time                     [300]\n\
     \x20 --seed N          RNG seed                           [1]\n\
     \n\
     protocol:\n\
     \x20 --cc NAME         tahoe | tahoe-original | reno | decbit | fixed:N\n\
     \x20 --maxwnd N        receiver-advertised window         [1000]\n\
     \x20 --delack          enable delayed ACKs\n\
     \x20 --paced           pace data at the bottleneck rate\n\
     \n\
     gateway:\n\
     \x20 --discipline D    drop-tail | random-drop | fq | red [drop-tail]\n\
     \x20 --mark N          CE-mark above this occupancy (DECbit)\n\
     \n\
     output:\n\
     \x20 --out DIR         write CSV + SVG (+ pcap with --pcap)\n\
     \x20 --pcap            capture the 1->2 bottleneck wire\n\
     \n\
     execution:\n\
     \x20 --shards N        worker shards for shard-aware runs    [1]\n\
     \x20                   (the dumbbell is single-bottleneck and runs\n\
     \x20                   serially; results never depend on N)\n"
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_owned()).collect()
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scenario.fwd.len(), 1);
        assert_eq!(a.scenario.rev.len(), 1);
        assert_eq!(a.scenario.buffer, Some(20));
        assert!(!a.pcap);
        assert!(a.out.is_none());
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&args(
            "--tau-ms 1000 --buffer inf --fwd 3 --rev 0 --duration 100 --seed 9 \
             --cc fixed:30 --discipline fq --delack --pcap --out /tmp/x",
        ))
        .unwrap();
        assert_eq!(a.scenario.tau, SimDuration::from_secs(1));
        assert_eq!(a.scenario.buffer, None);
        assert_eq!(a.scenario.fwd.len(), 3);
        assert!(a.scenario.rev.is_empty());
        assert_eq!(a.scenario.seed, 9);
        assert_eq!(a.scenario.discipline, DisciplineKind::FairQueueing);
        assert_eq!(a.scenario.fwd[0].sender.cc, CcKind::FixedWindow { wnd: 30 });
        assert!(a.scenario.fwd[0].receiver.delayed_ack.is_some());
        assert!(a.pcap);
        assert_eq!(a.out.unwrap(), std::path::PathBuf::from("/tmp/x"));
    }

    #[test]
    fn decbit_defaults_marking() {
        let a = parse(&args("--cc decbit")).unwrap();
        assert_eq!(a.scenario.mark_threshold, Some(2));
        let b = parse(&args("--cc decbit --mark 5")).unwrap();
        assert_eq!(b.scenario.mark_threshold, Some(5));
    }

    #[test]
    fn cc_names() {
        assert!(parse_cc("tahoe").is_ok());
        assert!(parse_cc("tahoe-original").is_ok());
        assert!(parse_cc("reno").is_ok());
        assert!(parse_cc("decbit").is_ok());
        assert_eq!(
            parse_cc("fixed:12").unwrap(),
            CcKind::FixedWindow { wnd: 12 }
        );
        assert!(parse_cc("cubic").is_err());
        assert!(parse_cc("fixed:x").is_err());
    }

    #[test]
    fn zero_windows_are_rejected() {
        // fixed:0 configures a sender that can never transmit — reject it
        // up front instead of deadlocking the simulation.
        let err = parse_cc("fixed:0").unwrap_err();
        assert!(err.contains("at least 1"), "unhelpful error: {err}");
        let err = parse(&args("--maxwnd 0")).unwrap_err();
        assert!(err.contains("at least 1"), "unhelpful error: {err}");
        // The boundary value stays accepted.
        assert_eq!(parse_cc("fixed:1").unwrap(), CcKind::FixedWindow { wnd: 1 });
        assert!(parse(&args("--maxwnd 1")).is_ok());
    }

    #[test]
    fn discipline_names() {
        assert!(parse_discipline("drop-tail").is_ok());
        assert!(parse_discipline("red").is_ok());
        assert!(parse_discipline("fq").is_ok());
        assert!(parse_discipline("codel").is_err());
    }

    #[test]
    fn rejections() {
        assert!(parse(&args("--fwd 0 --rev 0")).is_err());
        assert!(parse(&args("--duration 5")).is_err());
        assert!(parse(&args("--bogus")).is_err());
        assert!(parse(&args("--buffer")).is_err(), "missing value");
    }

    #[test]
    fn usage_mentions_every_flag() {
        let u = usage();
        for flag in [
            "--tau-ms",
            "--buffer",
            "--fwd",
            "--rev",
            "--duration",
            "--seed",
            "--cc",
            "--maxwnd",
            "--delack",
            "--paced",
            "--discipline",
            "--mark",
            "--out",
            "--pcap",
        ] {
            assert!(u.contains(flag), "usage missing {flag}");
        }
    }
}
